"""Regenerate the paper's table5 (see repro.experiments.table5)."""

from conftest import regenerate


def test_regenerate_table5(benchmark, bench_scale):
    table = regenerate(benchmark, "table5", bench_scale)
    assert table.rows
