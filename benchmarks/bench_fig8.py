"""Regenerate the paper's fig8 (see repro.experiments.fig8)."""

from conftest import regenerate


def test_regenerate_fig8(benchmark, bench_scale):
    table = regenerate(benchmark, "fig8", bench_scale)
    assert table.rows
