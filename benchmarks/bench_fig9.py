"""Regenerate the paper's fig9 (see repro.experiments.fig9)."""

from conftest import regenerate


def test_regenerate_fig9(benchmark, bench_scale):
    table = regenerate(benchmark, "fig9", bench_scale)
    assert table.rows
