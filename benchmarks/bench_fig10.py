"""Regenerate the paper's fig10 (see repro.experiments.fig10)."""

from conftest import regenerate


def test_regenerate_fig10(benchmark, bench_scale):
    table = regenerate(benchmark, "fig10", bench_scale)
    assert table.rows
