"""Regenerate the paper's table4 (see repro.experiments.table4)."""

from conftest import regenerate


def test_regenerate_table4(benchmark, bench_scale):
    table = regenerate(benchmark, "table4", bench_scale)
    assert table.rows
