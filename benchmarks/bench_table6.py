"""Regenerate the paper's table6 (see repro.experiments.table6)."""

from conftest import regenerate


def test_regenerate_table6(benchmark, bench_scale):
    table = regenerate(benchmark, "table6", bench_scale)
    assert table.rows
