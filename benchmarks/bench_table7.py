"""Regenerate the paper's table7 (see repro.experiments.table7)."""

from conftest import regenerate


def test_regenerate_table7(benchmark, bench_scale):
    table = regenerate(benchmark, "table7", bench_scale)
    assert table.rows
