"""Benchmark configuration.

``REPRO_BENCH_SCALE`` selects the data scale (tiny/small/paper; default
small).  Each ``bench_<artifact>.py`` regenerates one table/figure of the
paper and prints its rows; micro-benchmarks time the hot kernels.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def regenerate(benchmark, name: str, scale: str, **kwargs):
    """Run one experiment exactly once under the benchmark timer and print
    the regenerated table."""
    from repro.experiments import run_experiment

    table = benchmark.pedantic(
        run_experiment,
        args=(name,),
        kwargs={"scale": scale, **kwargs},
        rounds=1,
        iterations=1,
    )
    print()
    print(table)
    return table
