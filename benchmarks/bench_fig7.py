"""Regenerate the paper's fig7 (see repro.experiments.fig7)."""

from conftest import regenerate


def test_regenerate_fig7(benchmark, bench_scale):
    table = regenerate(benchmark, "fig7", bench_scale)
    assert table.rows
