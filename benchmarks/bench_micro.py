"""Micro-benchmarks of the hot kernels behind the compressor.

These run with pytest-benchmark's normal multi-round statistics (unlike
the experiment regenerations, which are one-shot), making them useful for
tracking performance regressions of the substrates themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress, decompress
from repro.core.quantizer import interval_radius
from repro.core.wavefront import WavefrontPlan, wavefront_compress
from repro.datasets import load
from repro.encoding.bitio import pack_varlen, unpack_varlen
from repro.encoding.huffman import HuffmanCodec


@pytest.fixture(scope="module")
def field(bench_scale):
    return load("ATM", scale=bench_scale)["FREQSH"]


@pytest.fixture(scope="module")
def symbols():
    rng = np.random.default_rng(0)
    # mimics a quantization-code stream: strong center peak
    return np.clip(
        np.rint(128 + 6 * rng.standard_normal(1_000_000)), 0, 255
    ).astype(np.int64)


class TestEncodingKernels:
    def test_pack_varlen_uniform(self, benchmark):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**16, 1_000_000, dtype=np.uint64)
        lengths = np.full(1_000_000, 16, dtype=np.int64)
        buf, nbits = benchmark(pack_varlen, values, lengths)
        assert nbits == 16_000_000

    def test_pack_varlen_variable(self, benchmark):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 24, 500_000)
        values = rng.integers(0, 2, 500_000, dtype=np.uint64)
        benchmark(pack_varlen, values, lengths)

    def test_unpack_varlen(self, benchmark):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 24, 200_000)
        values = rng.integers(0, 2, 200_000, dtype=np.uint64)
        buf, _ = pack_varlen(values, lengths)
        out = benchmark(unpack_varlen, buf, lengths)
        assert out.size == 200_000

    def test_huffman_encode(self, benchmark, symbols):
        codec = HuffmanCodec.from_symbols(symbols, 256)
        stream = benchmark(codec.encode, symbols)
        assert stream.n_symbols == symbols.size

    def test_huffman_decode(self, benchmark, symbols):
        codec = HuffmanCodec.from_symbols(symbols, 256)
        stream = codec.encode(symbols)
        out = benchmark(codec.decode, stream)
        assert np.array_equal(out, symbols)


class TestCompressorKernels:
    def test_wavefront_compress(self, benchmark, field):
        plan = WavefrontPlan(field.shape, 1)
        eb = 1e-4 * float(field.max() - field.min())
        res = benchmark(wavefront_compress, field, eb, plan, interval_radius(8))
        assert res.hit_rate > 0.5

    def test_sz14_end_to_end_compress(self, benchmark, field):
        blob = benchmark(compress, field, mode="rel", bound=1e-4)
        assert len(blob) < field.nbytes

    def test_sz14_end_to_end_decompress(self, benchmark, field):
        blob = compress(field, mode="rel", bound=1e-4)
        out = benchmark(decompress, blob)
        assert out.shape == field.shape


class TestTiledContainer:
    """Smoke benchmarks of the v2 tiled container (CI runs these)."""

    def test_compress_tiled(self, benchmark, field):
        from repro.chunked import compress_tiled

        blob = benchmark(compress_tiled, field, tile_shape=64,
                         mode="rel", bound=1e-4)
        assert len(blob) < field.nbytes

    def test_decompress_tiled(self, benchmark, field):
        from repro.chunked import compress_tiled, decompress_tiled

        blob = compress_tiled(field, tile_shape=64, mode="rel", bound=1e-4)
        out = benchmark(decompress_tiled, blob)
        assert out.shape == field.shape

    def test_decompress_region(self, benchmark, field):
        from repro.chunked import compress_tiled, decompress_region

        blob = compress_tiled(field, tile_shape=64, mode="rel", bound=1e-4)
        roi = tuple(slice(s // 4, s // 4 + 32) for s in field.shape)
        out = benchmark(decompress_region, blob, roi)
        assert out.shape == tuple(sl.stop - sl.start for sl in roi)


class TestBaselineKernels:
    def test_zfp_compress(self, benchmark, field):
        from repro.baselines import ZFPLike

        z = ZFPLike(mode="accuracy", tolerance=1e-4)
        blob = benchmark(z.compress, field)
        assert len(blob) < field.nbytes

    def test_fpzip_compress(self, benchmark, field):
        from repro.baselines import FPZIPLike

        blob = benchmark(FPZIPLike().compress, field)
        assert len(blob) < field.nbytes
