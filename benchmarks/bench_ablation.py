"""Ablation benchmarks: the design-choice studies from DESIGN.md.

Each regenerates one ablation table (layers / intervals / entropy stage /
quantization scheme) at the configured scale.
"""

from __future__ import annotations


import pytest

from repro.experiments.ablation import ABLATIONS


@pytest.mark.parametrize("name", sorted(ABLATIONS))
def test_ablation(benchmark, bench_scale, name):
    runner = ABLATIONS[name]
    table = benchmark.pedantic(
        runner, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(table)
    assert table.rows
