"""Regenerate the paper's table8 (see repro.experiments.table8)."""

from conftest import regenerate


def test_regenerate_table8(benchmark, bench_scale):
    table = regenerate(benchmark, "table8", bench_scale)
    assert table.rows
