"""Regenerate the paper's table2 (see repro.experiments.table2)."""

from conftest import regenerate


def test_regenerate_table2(benchmark, bench_scale):
    table = regenerate(benchmark, "table2", bench_scale)
    assert table.rows
