"""Regenerate the paper's fig3 (see repro.experiments.fig3)."""

from conftest import regenerate


def test_regenerate_fig3(benchmark, bench_scale):
    table = regenerate(benchmark, "fig3", bench_scale)
    assert table.rows
