"""Regenerate the paper's table3 (see repro.experiments.table3)."""

from conftest import regenerate


def test_regenerate_table3(benchmark, bench_scale):
    table = regenerate(benchmark, "table3", bench_scale)
    assert table.rows
