"""Regenerate the paper's fig4 (see repro.experiments.fig4)."""

from conftest import regenerate


def test_regenerate_fig4(benchmark, bench_scale):
    table = regenerate(benchmark, "fig4", bench_scale)
    assert table.rows
