"""Regenerate the paper's fig6 (see repro.experiments.fig6)."""

from conftest import regenerate


def test_regenerate_fig6(benchmark, bench_scale):
    table = regenerate(benchmark, "fig6", bench_scale)
    assert table.rows
