#!/usr/bin/env python
"""Parallel compression example (paper Section VI).

Measures real process-pool strong scaling on this machine, then extends
to the paper's 1024-process Blues configuration with the cluster model
and shows when compression starts paying for itself in I/O time.

Run:  python examples/parallel_throughput.py
"""

import os

from repro.datasets import atm_dataset
from repro.parallel import BluesClusterModel, ParallelIOModel
from repro.parallel.pool import measure_pool_scaling


def main() -> None:
    data = atm_dataset(shape=(384, 768), seed=0)["FREQSH"]
    cores = os.cpu_count() or 1
    counts = [p for p in (1, 2, 4, 8) if p <= cores]

    print(f"measured pool scaling on this machine ({cores} cores):")
    rows = measure_pool_scaling(data, counts, mode="rel", bound=1e-4)
    print(f"  {'procs':>5s} {'MB/s':>8s} {'speedup':>8s} {'eff':>6s}")
    for r in rows:
        print(f"  {r['processes']:5d} {r['comp_speed_mb_s']:8.1f} "
              f"{r['speedup']:8.2f} {r['efficiency']:6.1%}")

    single_gb_s = rows[0]["comp_speed_mb_s"] / 1000.0
    print("\nBlues cluster model seeded with the measured single-process "
          f"speed ({single_gb_s * 1000:.1f} MB/s):")
    model = BluesClusterModel()
    print(f"  {'procs':>5s} {'GB/s':>8s} {'eff':>6s}")
    for row in model.strong_scaling([1, 16, 128, 512, 1024], single_gb_s):
        print(f"  {row.processes:5d} {row.speed_gb_s:8.2f} "
              f"{row.efficiency:6.1%}")

    print("\nwhen does compression reduce total I/O time? (Fig. 10 model)")
    io = ParallelIOModel()
    for b in io.sweep([1, 8, 32, 256, 1024], codec_single_gb_s=single_gb_s):
        verdict = "pays off" if b.compression_pays_off else "does not pay"
        print(f"  {b.processes:5d} procs: codec {b.shares[0]:5.1%}, "
              f"compressed I/O {b.shares[1]:5.1%}, "
              f"initial I/O {b.shares[2]:5.1%} -> {verdict}")


if __name__ == "__main__":
    main()
