#!/usr/bin/env python
"""X-ray detector example: spiky data and the adaptive interval scheme.

APS-like diffraction frames are the paper's "sharp or spiky changes in
small data regions" regime: Bragg peaks are thousands of times brighter
than the background.  Curve-fitting compressors lose here; error-
controlled quantization with enough intervals does not.

Run:  python examples/xray_aps.py
"""

import numpy as np

import repro
from repro.baselines import SZ11
from repro.datasets import aps_like
from repro.metrics import max_rel_error


def main() -> None:
    frame = aps_like(shape=(512, 512), seed=0)
    print(f"frame: {frame.shape}, background ~{np.median(frame):.1f}, "
          f"brightest peak {frame.max():.0f} "
          f"({frame.max() / np.median(frame):.0f}x the median)\n")

    rel = 1e-4
    print(f"value-range-based relative bound: {rel:g}\n")

    print(f"{'compressor':28s} {'CF':>7s} {'max e_rel':>10s}")
    for m in (4, 8, 12):
        blob, stats = repro.compress_with_stats(
            frame, mode="rel", bound=rel, interval_bits=m
        )
        out = repro.decompress(blob)
        label = f"SZ-1.4, {(1 << m) - 1} intervals"
        print(f"{label:28s} {stats.compression_factor:7.2f} "
              f"{max_rel_error(frame, out):10.2e}   "
              f"(hit rate {stats.hit_rate:.1%})")

    sz11 = SZ11(rel_bound=rel)
    blob11 = sz11.compress(frame)
    out11 = sz11.decompress(blob11)
    print(f"{'SZ-1.1 (1-D curve fitting)':28s} "
          f"{frame.nbytes / len(blob11):7.2f} "
          f"{max_rel_error(frame, out11):10.2e}")

    print("\nnote: more intervals rescue the hitting rate around peaks "
          "(Sec. IV-B); the 1-D curve-fitting baseline cannot exploit 2-D "
          "structure at all.")


if __name__ == "__main__":
    main()
