#!/usr/bin/env python
"""Production workflow example: archive a multi-variable snapshot,
inspect it, extract selectively, and verify quality — the paper's
off-line many-files mode (Section VI) as a library API.

Run:  python examples/archive_workflow.py
"""

import numpy as np

import repro
from repro.core.pointwise import compress_pointwise, decompress_pointwise
from repro.datasets import hurricane_dataset
from repro.metrics.report import evaluate
from repro.parallel.files import archive_info, create_archive, extract


def main() -> None:
    snapshot = hurricane_dataset(shape=(16, 64, 64), seed=3)

    print("1. archive the whole snapshot (one container per variable):")
    archive = create_archive(arrays=snapshot, mode="rel", bound=1e-4)
    total_in = sum(v.nbytes for v in snapshot.values())
    print(f"   {len(snapshot)} variables, {total_in:,} -> {len(archive):,} "
          f"bytes (CF {total_in / len(archive):.2f})\n")

    print("2. inspect without decompressing:")
    for row in archive_info(archive):
        print(f"   {row['name']:8s} {str(row['shape']):14s} "
              f"{row['dtype']:8s} CF {row['cf']:6.2f}")

    print("\n3. extract one variable and run the full quality report:")
    u = extract(archive, "U")
    report = evaluate(
        snapshot["U"],
        lambda d: repro.compress(d, mode="rel", bound=1e-4),
        repro.decompress,
    )
    assert np.array_equal(u.shape, snapshot["U"].shape)
    print(report.to_markdown())
    print(f"\n   bound respected: {report.within(rel_bound=1e-4)}")

    print("\n4. moisture spans decades -> point-wise relative bounds:")
    qv = snapshot["QVAPOR"]
    blob = compress_pointwise(qv, rel_bound=1e-3)
    out = decompress_pointwise(blob)
    nz = qv != 0
    pw_err = np.max(
        np.abs(out[nz].astype(np.float64) - qv[nz].astype(np.float64))
        / np.abs(qv[nz].astype(np.float64))
    )
    print(f"   CF {qv.nbytes / len(blob):.2f}, worst point-wise relative "
          f"error {pw_err:.2e} (bound 1e-3)")


if __name__ == "__main__":
    main()
