#!/usr/bin/env python
"""3-D example: SZ-1.4 vs ZFP-like rate-distortion on hurricane fields.

Reproduces the Fig. 8(c) story on one wind component: SZ-1.4 wins above
~2 bits/value, ZFP-like is competitive at very low rates.

Run:  python examples/hurricane_3d.py
"""

import numpy as np

import repro
from repro.baselines import ZFPLike
from repro.datasets import hurricane_dataset
from repro.metrics import psnr


def main() -> None:
    field = hurricane_dataset(shape=(24, 96, 96), seed=0)["U"]
    print(f"field: U wind component {field.shape} float32 "
          f"({field.nbytes / 1e6:.1f} MB)\n")

    print("SZ-1.4 (error-bounded):")
    print(f"  {'eb_rel':>8s} {'bits/val':>8s} {'PSNR dB':>8s}")
    for eb in (1e-2, 1e-3, 1e-4, 1e-5):
        blob = repro.compress(field, mode="rel", bound=eb)
        out = repro.decompress(blob)
        print(f"  {eb:8.0e} {8 * len(blob) / field.size:8.2f} "
              f"{psnr(field, out):8.1f}")

    print("\nZFP-like (fixed-rate):")
    print(f"  {'rate':>8s} {'bits/val':>8s} {'PSNR dB':>8s}")
    for rate in (1, 2, 4, 8):
        z = ZFPLike(mode="rate", rate=rate)
        blob = z.compress(field)
        out = z.decompress(blob)
        print(f"  {rate:8d} {8 * len(blob) / field.size:8.2f} "
              f"{psnr(field, out):8.1f}")

    print("\ntip: compare PSNR at matching bits/value — the 3-D multilayer "
          "predictor gives SZ-1.4 the edge at moderate-to-high rates.")


if __name__ == "__main__":
    main()
