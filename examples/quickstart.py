#!/usr/bin/env python
"""Quickstart: compress a scientific field with a guaranteed error bound.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.metrics import max_abs_error, pearson, psnr


def main() -> None:
    # A synthetic "simulation snapshot": smooth structure + sharp features.
    y, x = np.mgrid[0:400, 0:600] / 60.0
    data = (
        np.sin(x) * np.cos(y)
        + 0.4 * np.tanh(5 * np.sin(0.7 * x + 1.3 * y))
    ).astype(np.float32)

    # Compress with a value-range-based relative error bound of 1e-4
    # (paper Metric 1): every point of the reconstruction is guaranteed
    # within 1e-4 * (max - min) of the original.
    blob, stats = repro.compress_with_stats(data, mode="rel", bound=1e-4)
    out = repro.decompress(blob)

    eb = 1e-4 * float(data.max() - data.min())
    print(f"original size      : {data.nbytes:,} bytes")
    print(f"compressed size    : {stats.compressed_bytes:,} bytes")
    print(f"compression factor : {stats.compression_factor:.2f}x")
    print(f"bit rate           : {stats.bit_rate:.2f} bits/value")
    print(f"prediction hit rate: {stats.hit_rate:.1%}")
    print(f"error bound        : {eb:.3e}")
    print(f"max abs error      : {max_abs_error(data, out):.3e}")
    print(f"PSNR               : {psnr(data, out):.1f} dB")
    print(f"Pearson rho        : {pearson(data, out):.7f}")
    assert max_abs_error(data, out) <= eb, "bound violated?!"
    print("error bound holds for every point ✓")

    # The same pipeline through the canonical config/codec objects: one
    # validated SZConfig, one Codec, numcodecs-style encode/decode with
    # a reusable output buffer.
    codec = repro.Codec(repro.SZConfig.from_kwargs(mode="rel", bound=1e-4))
    assert codec.encode(data) == blob, "codec path is byte-identical"
    buf = np.empty_like(data)
    codec.decode(blob, out=buf)          # decode into a caller buffer
    assert np.array_equal(buf, out)
    print(f"codec config       : {codec.config.to_json()}")


if __name__ == "__main__":
    main()
