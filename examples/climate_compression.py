#!/usr/bin/env python
"""Climate-workload example: per-variable compression of an ATM-like bundle.

Mirrors the paper's motivating use case (CESM producing petabytes of
2-D fields): each variable gets the bound climate science tolerates
(eb_rel = 1e-5 per Baker et al., cited in Section IV-B) and an adaptive
interval count.

Run:  python examples/climate_compression.py
"""

import numpy as np

import repro
from repro.core.adaptive import suggest_interval_bits
from repro.datasets import atm_dataset
from repro.metrics import max_rel_error, psnr


def main() -> None:
    variables = atm_dataset(shape=(384, 768), seed=0)
    rel_bound = 1e-5  # "enough for climate research" (Baker et al.)

    print(f"{'variable':10s} {'m*':>3s} {'CF':>7s} {'bits/val':>8s} "
          f"{'hit rate':>8s} {'max e_rel':>10s} {'PSNR dB':>8s}")
    total_in = total_out = 0
    for name, field in variables.items():
        eb_abs = rel_bound * float(field.max() - field.min())
        if eb_abs == 0:
            print(f"{name:10s}  constant field, skipped")
            continue
        m = suggest_interval_bits(field, eb_abs)
        blob, stats = repro.compress_with_stats(
            field, mode="rel", bound=rel_bound, interval_bits=m
        )
        out = repro.decompress(blob)
        assert max_rel_error(field, out) <= rel_bound
        total_in += field.nbytes
        total_out += len(blob)
        print(
            f"{name:10s} {m:3d} {stats.compression_factor:7.2f} "
            f"{stats.bit_rate:8.2f} {stats.hit_rate:8.1%} "
            f"{max_rel_error(field, out):10.2e} {psnr(field, out):8.1f}"
        )
    print("-" * 60)
    print(f"bundle: {total_in:,} -> {total_out:,} bytes "
          f"(overall CF {total_in / total_out:.2f})")
    print("note: m* = adaptive interval bits chosen per variable (Sec. IV-B)")


if __name__ == "__main__":
    main()
