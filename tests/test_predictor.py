"""Tests for the multilayer multidimensional prediction model.

The crucial checks: coefficients match the paper's Table I exactly for
2-D layers 1..4, and the model reproduces polynomial surfaces of total
degree <= 2n-1 (Theorem 1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.predictor import (
    layer_counts,
    predict_from_original,
    prediction_stencil,
)

# Table I of the paper, transcribed: {(k1, k2): coefficient}.
TABLE1 = {
    1: {(0, 1): 1, (1, 0): 1, (1, 1): -1},
    2: {
        (1, 0): 2, (0, 1): 2, (1, 1): -4, (2, 0): -1, (0, 2): -1,
        (2, 1): 2, (1, 2): 2, (2, 2): -1,
    },
    3: {
        (1, 0): 3, (0, 1): 3, (1, 1): -9, (2, 0): -3, (0, 2): -3,
        (2, 1): 9, (1, 2): 9, (2, 2): -9, (3, 0): 1, (0, 3): 1,
        (3, 1): -3, (1, 3): -3, (3, 2): 3, (2, 3): 3, (3, 3): -1,
    },
    4: {
        (1, 0): 4, (0, 1): 4, (1, 1): -16, (2, 0): -6, (0, 2): -6,
        (2, 1): 24, (1, 2): 24, (2, 2): -36, (3, 0): 4, (0, 3): 4,
        (3, 1): -16, (1, 3): -16, (3, 2): 24, (2, 3): 24, (3, 3): -16,
        (4, 0): -1, (0, 4): -1, (4, 1): 4, (1, 4): 4, (4, 2): -6,
        (2, 4): -6, (4, 3): 4, (3, 4): 4, (4, 4): -1,
    },
}


class TestStencilCoefficients:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_paper_table1(self, n):
        offsets, coeffs = prediction_stencil(n, 2)
        got = {tuple(o): c for o, c in zip(offsets, coeffs)}
        expected = TABLE1[n]
        assert set(got) == set(expected)
        for key, val in expected.items():
            assert got[key] == pytest.approx(val), f"n={n}, offset={key}"

    @pytest.mark.parametrize("n,d", [(1, 1), (2, 1), (1, 2), (2, 2), (1, 3), (2, 3)])
    def test_coefficients_sum_to_one(self, n, d):
        # A constant field must be predicted exactly.
        _, coeffs = prediction_stencil(n, d)
        assert coeffs.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("n,d", [(1, 2), (3, 2), (1, 3), (2, 4)])
    def test_stencil_size(self, n, d):
        offsets, coeffs = prediction_stencil(n, d)
        assert offsets.shape == (layer_counts(n, d), d)
        assert coeffs.shape == (layer_counts(n, d),)

    def test_paper_count_formula_2d(self):
        # Paper: the n-layer data subset S has n(n+2) points for d=2.
        for n in range(1, 5):
            assert layer_counts(n, 2) == n * (n + 2)

    def test_lorenzo_special_case_1d(self):
        offsets, coeffs = prediction_stencil(1, 1)
        np.testing.assert_array_equal(offsets, [[1]])
        np.testing.assert_array_equal(coeffs, [1.0])

    def test_lorenzo_special_case_3d(self):
        offsets, coeffs = prediction_stencil(1, 3)
        got = {tuple(o): c for o, c in zip(offsets, coeffs)}
        # 3-D Lorenzo: +1 for odd |k|, -1 for even |k|.
        for k, c in got.items():
            expected = 1.0 if sum(k) % 2 == 1 else -1.0
            assert c == pytest.approx(expected)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            prediction_stencil(0, 2)
        with pytest.raises(ValueError):
            prediction_stencil(1, 0)

    def test_stencil_is_cached_and_immutable(self):
        a = prediction_stencil(2, 2)
        b = prediction_stencil(2, 2)
        assert a[0] is b[0]
        with pytest.raises(ValueError):
            a[1][0] = 99.0


class TestPolynomialExactness:
    """Theorem 1: the n-layer model is exact on surfaces of degree <= 2n-1."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_exact_on_polynomial_2d(self, n, rng):
        deg = 2 * n - 1
        coef = rng.standard_normal((deg + 1, deg + 1))
        for i in range(deg + 1):
            for j in range(deg + 1):
                if i + j > deg:
                    coef[i, j] = 0.0
        y, x = np.mgrid[0:20, 0:24].astype(np.float64)
        field = np.polynomial.polynomial.polyval2d(y, x, coef)
        pred = predict_from_original(field, n)
        # Interior only: border predictions see zero padding.
        interior = (slice(n, None), slice(n, None))
        scale = np.abs(field[interior]).max() + 1.0
        err = np.abs(pred[interior] - field[interior]) / scale
        assert err.max() < 1e-8

    def test_prediction_error_is_mixed_difference(self, rng):
        """The model's error equals the tensor backward difference
        prod_j Delta_j^n V, so a monomial with every exponent >= n (here
        x^2 y^2 for n=2) must miss, while x^4 + y^4 is still exact."""
        y, x = np.mgrid[0:16, 0:16].astype(np.float64)
        interior = (slice(2, None), slice(2, None))
        miss = (x**2) * (y**2)
        pred = predict_from_original(miss, 2)
        assert np.abs(pred[interior] - miss[interior]).max() > 1.0
        hit = x**4 + y**4
        pred = predict_from_original(hit, 2)
        scale = np.abs(hit).max()
        assert np.abs(pred[interior] - hit[interior]).max() < 1e-8 * scale

    @pytest.mark.parametrize("n", [1, 2])
    def test_exact_on_polynomial_3d(self, n, rng):
        z, y, x = np.mgrid[0:8, 0:9, 0:10].astype(np.float64)
        deg = 2 * n - 1
        field = (0.3 * x + 0.5 * y - 0.2 * z + 1.0) ** deg
        pred = predict_from_original(field, n)
        interior = tuple(slice(n, None) for _ in range(3))
        scale = np.abs(field[interior]).max() + 1.0
        assert (np.abs(pred - field)[interior] / scale).max() < 1e-8

    def test_1d_exactness_degree_n_minus_1(self):
        """In 1-D the n-layer model is n-point backward extrapolation,
        exact for polynomials of degree <= n-1 (finite differences)."""
        i = np.arange(50, dtype=np.float64)
        linear = i * 3.0 + 7.0
        pred = predict_from_original(linear, 2)
        np.testing.assert_allclose(pred[2:], linear[2:], rtol=1e-12)
        quadratic = 0.5 * i**2 - i + 2.0
        pred = predict_from_original(quadratic, 3)
        np.testing.assert_allclose(pred[3:], quadratic[3:], rtol=1e-10)
        # and n=1 (previous-value prediction) misses a linear ramp by slope
        pred = predict_from_original(linear, 1)
        np.testing.assert_allclose(pred[1:] - linear[1:], -3.0)


class TestBorderBehaviour:
    def test_first_row_degrades_to_1d_prediction(self):
        """Zero padding makes row 0 use the 1-D form of the same model."""
        field = np.zeros((4, 30))
        field[0] = np.linspace(5, 8, 30)
        pred2d = predict_from_original(field, 2)
        pred1d = predict_from_original(field[0], 2)
        np.testing.assert_allclose(pred2d[0], pred1d, rtol=1e-12)

    def test_origin_predicted_as_zero(self):
        field = np.full((5, 5), 42.0)
        pred = predict_from_original(field, 1)
        assert pred[0, 0] == 0.0


class TestPredictFromOriginal:
    @given(st.integers(1, 3), st.integers(1, 2**31))
    def test_shapes_and_dtype(self, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((6, 7))
        pred = predict_from_original(data, n)
        assert pred.shape == data.shape
        assert pred.dtype == np.float64

    def test_smooth_field_predicts_well(self, smooth2d):
        pred = predict_from_original(smooth2d.astype(np.float64), 1)
        resid = np.abs(pred - smooth2d)[1:, 1:]
        assert np.median(resid) < 0.3 * smooth2d.std()
