"""Tests for ragged-array index utilities."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.ragged import (
    count_true_per_segment,
    intra_segment_positions,
    last_true_index,
    ragged_take,
    segment_ids,
    segment_starts,
)


class TestSegmentStarts:
    def test_basic(self):
        np.testing.assert_array_equal(segment_starts([3, 1, 2]), [0, 3, 4])

    def test_empty_segments_allowed(self):
        np.testing.assert_array_equal(segment_starts([0, 0, 5, 0]), [0, 0, 0, 5])

    def test_single(self):
        np.testing.assert_array_equal(segment_starts([7]), [0])


class TestSegmentIds:
    def test_basic(self):
        np.testing.assert_array_equal(segment_ids([2, 0, 3]), [0, 0, 2, 2, 2])

    @given(st.lists(st.integers(0, 6), max_size=30))
    def test_length_matches_total(self, lens):
        ids = segment_ids(lens)
        assert ids.size == sum(lens)


class TestIntraSegmentPositions:
    def test_basic(self):
        np.testing.assert_array_equal(
            intra_segment_positions([3, 1, 2]), [0, 1, 2, 0, 0, 1]
        )

    def test_empty(self):
        assert intra_segment_positions([]).size == 0
        assert intra_segment_positions([0, 0]).size == 0

    @given(st.lists(st.integers(0, 6), max_size=30))
    def test_positions_below_own_length(self, lens):
        pos = intra_segment_positions(lens)
        ids = segment_ids(lens)
        lens_arr = np.asarray(lens)
        if pos.size:
            assert np.all(pos < lens_arr[ids])
            assert np.all(pos >= 0)


class TestRaggedTake:
    def test_gather(self):
        flat = np.array([10, 11, 12, 20, 30, 31])
        lens = np.array([3, 1, 2])
        got = ragged_take(flat, lens, np.array([0, 2, 1]), np.array([2, 1, 0]))
        np.testing.assert_array_equal(got, [12, 31, 20])


class TestLastTrueIndex:
    def test_rows(self):
        mask = np.array([[0, 1, 0, 1], [0, 0, 0, 0], [1, 0, 0, 0]], dtype=bool)
        np.testing.assert_array_equal(last_true_index(mask, axis=1), [3, -1, 0])

    def test_all_true(self):
        mask = np.ones((2, 5), dtype=bool)
        np.testing.assert_array_equal(last_true_index(mask, axis=1), [4, 4])


class TestCountTruePerSegment:
    def test_counts(self):
        lens = [2, 0, 3]
        seg = segment_ids(lens)
        mask = np.array([True, False, True, True, False])
        np.testing.assert_array_equal(
            count_true_per_segment(mask, seg, 3), [1, 0, 2]
        )
