"""Shared hypothesis strategies for the differential test harnesses.

The identity suites (``test_wavefront_identity.py`` and friends) all
need the same inputs: adversarially shaped float arrays whose content
mixes smooth signal, spikes that force unpredictable codes, and
(optionally) non-finite values.  Drawing a seed and synthesizing with
NumPy keeps example generation fast and shrinkable — hypothesis shrinks
toward smaller shapes and seed 0, which is exactly the debugging order
you want for a kernel mismatch.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

__all__ = [
    "ADVERSARIAL_SHAPES",
    "adversarial_shapes",
    "error_bounds",
    "float_dtypes",
    "huffman_symbol_streams",
    "wavefront_arrays",
]

#: Curated shapes that stress the grouped wavefront dispatch: prime-length
#: axes (maximally uneven hyperplane sizes), 1-wide slabs (degenerate
#: leading/trailing axes), shapes where every hyperplane is a single
#: point, and the scalar 1-D kernel.
ADVERSARIAL_SHAPES: tuple[tuple[int, ...], ...] = (
    (7, 11),
    (5, 7, 3),
    (13, 2),
    (1, 17),
    (9, 1, 4),
    (1, 1, 23),
    (6, 1, 1),
    (2, 2, 2),
    (37,),
    (1,),
)


def adversarial_shapes(max_points: int = 512) -> st.SearchStrategy:
    """Curated edge-case shapes plus randomly drawn small shapes."""
    curated = st.sampled_from(
        [s for s in ADVERSARIAL_SHAPES if int(np.prod(s)) <= max_points]
    )
    drawn = (
        st.integers(min_value=1, max_value=3)
        .flatmap(
            lambda nd: st.lists(
                st.integers(min_value=1, max_value=13),
                min_size=nd,
                max_size=nd,
            )
        )
        .map(tuple)
        .filter(lambda s: int(np.prod(s)) <= max_points)
    )
    return st.one_of(curated, drawn)


def float_dtypes() -> st.SearchStrategy:
    return st.sampled_from([np.float32, np.float64])


def error_bounds() -> st.SearchStrategy:
    """Absolute bounds spanning loose to ulp-stressing tight."""
    return st.sampled_from([1e-1, 1e-2, 1e-3, 1e-5])


@st.composite
def huffman_symbol_streams(draw, max_symbols: int = 3000):
    """Adversarial Huffman inputs: ``(symbols, alphabet_size, block_size)``.

    The distributions target the decode-table variants' edge cases:
    single-symbol alphabets (1-bit codes, maximal symbols-per-lookup),
    near-uniform draws (all codewords the same mid-length), heavily
    skewed geometric draws (short codes for the head, deep codes for
    the tail — the quantization-code shape) and a sprinkle of isolated
    rare symbols (codeword lengths far apart inside one table).
    """
    n = draw(st.integers(min_value=1, max_value=max_symbols))
    block_size = draw(st.sampled_from([1, 7, 64, 500, 4096]))
    kind = draw(
        st.sampled_from(["single", "uniform", "skewed", "sparse_tail"])
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if kind == "single":
        alphabet = draw(st.integers(min_value=1, max_value=40))
        symbols = np.full(n, alphabet - 1, dtype=np.int64)
    elif kind == "uniform":
        alphabet = draw(st.sampled_from([2, 17, 256, 1000]))
        symbols = rng.integers(0, alphabet, n).astype(np.int64)
    elif kind == "skewed":
        alphabet = draw(st.sampled_from([8, 64, 1024]))
        symbols = np.minimum(
            rng.geometric(draw(st.sampled_from([0.2, 0.6, 0.95])), n) - 1,
            alphabet - 1,
        ).astype(np.int64)
    else:  # sparse_tail: one dominant symbol plus a few rare outliers
        alphabet = draw(st.sampled_from([100, 5000]))
        symbols = np.zeros(n, dtype=np.int64)
        k = min(n - 1, draw(st.integers(min_value=0, max_value=8)))
        if k:
            symbols[rng.choice(n, size=k, replace=False)] = rng.integers(
                1, alphabet, k
            )
    return symbols, alphabet, block_size


@st.composite
def wavefront_arrays(
    draw,
    max_points: int = 512,
    allow_nonfinite: bool = True,
):
    """An adversarial float array plus the knobs the kernels take.

    Returns ``(data, eb, layers, interval_bits)``.  The array mixes a
    smooth cumulative-sum field with occasional large spikes (forcing
    unpredictable codes) and — when ``allow_nonfinite`` — occasional
    NaN/Inf contamination, so every branch of the kernels is reachable.
    """
    shape = draw(adversarial_shapes(max_points))
    dtype = draw(float_dtypes())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    spikes = draw(st.booleans())
    nonfinite = allow_nonfinite and draw(
        st.sampled_from([None, np.nan, np.inf, -np.inf])
    )
    eb = draw(error_bounds())
    layers = draw(st.sampled_from([1, 1, 1, 2]))  # n=1 is the hot path
    interval_bits = draw(st.sampled_from([4, 8]))
    rng = np.random.default_rng(seed)
    data = np.cumsum(
        rng.normal(0.0, 0.25, int(np.prod(shape)))
    ).reshape(shape)
    if spikes and data.size > 1:
        k = max(1, data.size // 16)
        idx = rng.choice(data.size, size=k, replace=False)
        data.reshape(-1)[idx] += rng.choice([-1.0, 1.0], size=k) * 1e4
    if nonfinite is not None and data.size > 2:
        data.reshape(-1)[rng.integers(0, data.size)] = nonfinite
    return data.astype(dtype), eb, layers, interval_bits
