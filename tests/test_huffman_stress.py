"""Stress tests for the Huffman codec's deep-alphabet and long-code paths.

The default experiments mostly use m=8 (256 codes); these tests force
the m=16 regime (65536 codes) and code lengths beyond the 13-bit primary
decode table, exercising the two-level lookup and the length limiter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress, decompress
from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCodec, huffman_code_lengths


class TestDeepAlphabet:
    def test_two_level_decode_exercised(self, rng):
        """Zipf-ish source over 40k symbols: long codes must pass through
        the secondary tables."""
        alphabet = 40_000
        ranks = np.arange(1, alphabet + 1)
        probs = 1.0 / ranks
        probs /= probs.sum()
        symbols = rng.choice(alphabet, size=30_000, p=probs)
        codec = HuffmanCodec.from_symbols(symbols, alphabet)
        assert codec.max_len > 13  # secondary tables actually in play
        stream = codec.encode(symbols, block_size=512)
        np.testing.assert_array_equal(codec.decode(stream), symbols)
        np.testing.assert_array_equal(codec.decode_scalar(stream), symbols)

    def test_m16_compressor_path(self, rng):
        """End-to-end with 65535 intervals (the paper's largest, Fig. 4b)."""
        data = np.cumsum(rng.standard_normal(4000)).reshape(50, 80)
        blob = compress(data, mode="rel", bound=1e-7, interval_bits=16)
        out = decompress(blob)
        eb = 1e-7 * float(data.max() - data.min())
        assert np.abs(out - data).max() <= eb

    def test_length_limited_deep_tree(self):
        """Fibonacci frequencies over a large alphabet would want >32-bit
        codes; the halving limiter must keep them decodable."""
        fib = [1, 1]
        while len(fib) < 60:
            fib.append(fib[-1] + fib[-2])
        freqs = np.array(fib, dtype=np.int64)
        lengths = huffman_code_lengths(freqs, max_code_length=24)
        assert lengths.max() <= 24
        codec = HuffmanCodec(lengths)
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 60, 5000)
        stream = codec.encode(symbols)
        np.testing.assert_array_equal(codec.decode(stream), symbols)

    def test_table_roundtrip_with_long_codes(self, rng):
        probs = 0.5 ** np.arange(1, 26)
        probs = np.append(probs, 1 - probs.sum())
        symbols = rng.choice(26, size=20_000, p=probs)
        codec = HuffmanCodec.from_symbols(symbols, 26)
        w = BitWriter()
        codec.write_table(w)
        back = HuffmanCodec.read_table(BitReader(w.getvalue()))
        stream = codec.encode(symbols)
        np.testing.assert_array_equal(back.decode(stream), symbols)


class TestAdversarialTables:
    def test_kraft_violation_rejected(self):
        # three codes of length 1 cannot form a prefix code
        with pytest.raises(ValueError, match="Kraft"):
            HuffmanCodec(np.array([1, 1, 1]))

    def test_oversize_length_rejected(self):
        with pytest.raises(ValueError, match="decoder limit"):
            HuffmanCodec(np.array([40, 1]))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec(np.array([-1, 1]))

    def test_giant_alphabet_rejected(self):
        w = BitWriter()
        w.write(1 << 30, 32)  # absurd alphabet size
        with pytest.raises(ValueError, match="alphabet"):
            HuffmanCodec.read_table(BitReader(w.getvalue()))

    def test_valid_boundary_alphabet_ok(self):
        codec = HuffmanCodec(np.array([1, 1]))
        assert codec.max_len == 1
