"""End-to-end tests of the SZ-1.4 compressor API.

The headline invariant: for every finite input and every positive bound,
``max |x - decompress(compress(x))| <= eb`` — the paper's error-control
guarantee (Metric 1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SZ14Compressor,
    compress,
    compress_with_stats,
    decompress,
)
from repro.core.stream import read_container


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(300,), (24, 37), (8, 10, 12)])
    def test_abs_bound_guarantee(self, dtype, shape, rng):
        data = (rng.standard_normal(shape) * 7).astype(dtype)
        eb = 0.01
        out = decompress(compress(data, mode="abs", bound=eb))
        assert out.shape == data.shape and out.dtype == data.dtype
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_rel_bound_guarantee(self, smooth2d):
        rel = 1e-4
        out = decompress(compress(smooth2d, mode="rel", bound=rel))
        rng_ = float(smooth2d.max() - smooth2d.min())
        assert np.abs(out - smooth2d).max() <= rel * rng_

    def test_both_bounds_tighter_wins(self, smooth2d):
        # The combined pair has no mode=/bound= spelling; the legacy
        # keywords still work (under a DeprecationWarning), and the
        # warning-free spelling is an explicit ErrorBound.
        rng_ = float(smooth2d.max() - smooth2d.min())
        with pytest.warns(DeprecationWarning):
            blob = compress(smooth2d, abs_bound=1.0, rel_bound=1e-5)
        out = decompress(blob)
        assert np.abs(out - smooth2d).max() <= 1e-5 * rng_
        from repro.api import SZConfig
        from repro.core import ErrorBound

        spec = ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-5)
        assert blob == compress(smooth2d, config=SZConfig(spec))

    def test_spiky_data(self, spiky2d):
        eb = 1e-4 * float(spiky2d.max() - spiky2d.min())
        blob, stats = compress_with_stats(spiky2d, mode="abs", bound=eb)
        out = decompress(blob)
        assert np.abs(out - spiky2d).max() <= eb
        assert stats.n_unpredictable >= 0

    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_layers(self, layers, smooth2d):
        blob = compress(smooth2d, mode="rel", bound=1e-3, layers=layers)
        out = decompress(blob)
        rng_ = float(smooth2d.max() - smooth2d.min())
        assert np.abs(out - smooth2d).max() <= 1e-3 * rng_

    @pytest.mark.parametrize("m", [4, 8, 12, 16])
    def test_interval_bits(self, m, smooth2d):
        blob = compress(smooth2d, mode="rel", bound=1e-3, interval_bits=m)
        out = decompress(blob)
        rng_ = float(smooth2d.max() - smooth2d.min())
        assert np.abs(out - smooth2d).max() <= 1e-3 * rng_

    def test_constant_array(self):
        data = np.full((40, 50), 3.25, dtype=np.float32)
        blob, stats = compress_with_stats(data, mode="rel", bound=1e-4)
        assert len(blob) < 120
        out = decompress(blob)
        np.testing.assert_array_equal(out, data)
        assert stats.compression_factor > 60

    def test_nan_inf_roundtrip(self):
        data = np.ones((10, 10), dtype=np.float64)
        data[3, 4] = np.nan
        data[7, 2] = np.inf
        out = decompress(compress(data, mode="abs", bound=1e-3))
        assert np.isnan(out[3, 4]) and np.isinf(out[7, 2])

    def test_1d_roundtrip(self, rng):
        data = np.cumsum(rng.standard_normal(2000)).astype(np.float32)
        eb = 1e-3 * float(data.max() - data.min())
        out = decompress(compress(data, mode="abs", bound=eb))
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_4d_roundtrip(self, rng):
        data = rng.standard_normal((4, 5, 6, 7))
        out = decompress(compress(data, mode="abs", bound=0.01))
        assert np.abs(out - data).max() <= 0.01

    @given(
        st.sampled_from([np.float32, np.float64]),
        st.sampled_from([1e-2, 1e-4, 1e-6]),
        st.integers(1, 2**31),
    )
    @settings(max_examples=12)
    def test_bound_property(self, dtype, rel, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(3, 20, size=rng.integers(1, 4)))
        data = (np.cumsum(rng.standard_normal(int(np.prod(shape)))) ).reshape(shape).astype(dtype)
        value_range = float(data.max() - data.min())
        if value_range == 0:
            return
        out = decompress(compress(data, mode="rel", bound=rel))
        assert (
            np.abs(out.astype(np.float64) - data.astype(np.float64)).max()
            <= rel * value_range
        )


class TestStats:
    def test_cf_bitrate_identity(self, smooth2d):
        """Paper: BR(F) * CF(F) == 32 for single precision (Eq. 5/6)."""
        _, stats = compress_with_stats(smooth2d, mode="rel", bound=1e-3)
        assert stats.bit_rate * stats.compression_factor == pytest.approx(32.0)

    def test_hit_rate_and_histogram(self, smooth2d):
        _, stats = compress_with_stats(smooth2d, mode="rel", bound=1e-3)
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.code_histogram.sum() == smooth2d.size
        assert stats.code_histogram[0] == stats.n_unpredictable

    def test_smooth_beats_noise(self, rng, smooth2d):
        noise = rng.standard_normal(smooth2d.shape).astype(np.float32)
        _, s_smooth = compress_with_stats(smooth2d, mode="rel", bound=1e-3)
        _, s_noise = compress_with_stats(noise, mode="rel", bound=1e-3)
        assert s_smooth.compression_factor > s_noise.compression_factor

    def test_looser_bound_higher_cf(self, smooth2d):
        _, loose = compress_with_stats(smooth2d, mode="rel", bound=1e-2)
        _, tight = compress_with_stats(smooth2d, mode="rel", bound=1e-6)
        assert loose.compression_factor > tight.compression_factor

    def test_adaptive_raises_m_on_hard_data(self, rng):
        data = rng.standard_normal((64, 64)).astype(np.float32)
        _, stats = compress_with_stats(
            data, mode="rel", bound=1e-5, interval_bits=2, adaptive=True, theta=0.9
        )
        assert stats.interval_bits > 2
        assert stats.adaptive_attempts > 1


class TestValidation:
    def test_no_bound_raises(self, smooth2d):
        with pytest.raises(ValueError):
            compress(smooth2d)

    def test_nonpositive_bounds_raise(self, smooth2d):
        with pytest.raises(ValueError):
            compress(smooth2d, mode="abs", bound=0.0)
        with pytest.raises(ValueError):
            compress(smooth2d, mode="rel", bound=-1e-3)

    def test_int_dtype_raises(self):
        with pytest.raises(TypeError):
            compress(np.arange(10), mode="abs", bound=0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compress(np.zeros((0, 3), dtype=np.float32), mode="abs", bound=0.1)

    def test_rel_bound_on_constant_is_handled(self):
        data = np.full(100, 5.0, dtype=np.float64)
        out = decompress(compress(data, mode="rel", bound=1e-4))
        np.testing.assert_array_equal(out, data)

    def test_garbage_blob_raises(self):
        with pytest.raises(ValueError):
            decompress(b"this is not a container at all")

    def test_truncated_blob_raises(self, smooth2d):
        blob = compress(smooth2d, mode="rel", bound=1e-3)
        with pytest.raises(ValueError):
            decompress(blob[: len(blob) // 2])

    def test_header_fields(self, smooth2d):
        blob = compress(smooth2d, mode="rel", bound=1e-3, layers=2, interval_bits=10)
        header, codec, stream, payload, _, _ = read_container(blob)
        assert header.shape == smooth2d.shape
        assert header.layers == 2
        assert header.interval_bits == 10
        assert header.dtype == np.float32
        assert header.value_range == pytest.approx(
            float(smooth2d.max() - smooth2d.min())
        )


class TestFacade:
    def test_defaults_and_overrides(self, smooth2d):
        sz = SZ14Compressor(mode="rel", bound=1e-3, layers=1)
        blob = sz.compress(smooth2d)
        out = sz.decompress(blob)
        rng_ = float(smooth2d.max() - smooth2d.min())
        assert np.abs(out - smooth2d).max() <= 1e-3 * rng_
        blob2, stats2 = sz.compress_with_stats(smooth2d, mode="rel", bound=1e-2)
        assert stats2.eb_abs == pytest.approx(1e-2 * rng_)

    def test_intervals_property(self):
        assert SZ14Compressor(interval_bits=8).intervals == 255

    def test_name(self):
        assert SZ14Compressor().name == "SZ-1.4"


class TestPlanCache:
    def test_lru_bounded(self):
        """The wavefront-plan cache must stay bounded (and keep the most
        recently used shapes) across many distinct tile shapes."""
        from repro.core import compressor as comp

        comp._PLAN_CACHE.clear()
        for n in range(comp._PLAN_CACHE_MAX + 20):
            comp._get_plan((4 + n, 3), 1)
            assert len(comp._PLAN_CACHE) <= comp._PLAN_CACHE_MAX
        # the most recent shape survived, the oldest was evicted
        # (cache keys carry the interior dtype since the stale-plan fix)
        f8 = np.dtype(np.float64).str
        assert ((4 + comp._PLAN_CACHE_MAX + 19, 3), 1, f8) in comp._PLAN_CACHE
        assert ((4, 3), 1, f8) not in comp._PLAN_CACHE

    def test_lru_recency(self):
        from repro.core import compressor as comp

        comp._PLAN_CACHE.clear()
        comp._get_plan((5, 5), 1)
        for n in range(comp._PLAN_CACHE_MAX - 1):
            comp._get_plan((100 + n, 2), 1)
        comp._get_plan((5, 5), 1)  # refresh: now most-recent
        comp._get_plan((999, 2), 1)  # evicts the LRU, not (5, 5)
        assert ((5, 5), 1, np.dtype(np.float64).str) in comp._PLAN_CACHE
        comp._PLAN_CACHE.clear()

    def test_cached_plan_reused(self):
        from repro.core import compressor as comp

        comp._PLAN_CACHE.clear()
        a = comp._get_plan((7, 9), 1)
        b = comp._get_plan((7, 9), 1)
        assert a is b
        comp._PLAN_CACHE.clear()
