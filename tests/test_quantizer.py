"""Tests for error-controlled quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.quantizer import (
    UNPREDICTABLE,
    interval_radius,
    num_intervals,
    quantize,
    reconstruct,
)


class TestIntervalArithmetic:
    def test_radius(self):
        assert interval_radius(8) == 128
        assert interval_radius(2) == 2
        assert interval_radius(16) == 32768

    def test_num_intervals_paper_values(self):
        # Paper Fig. 4 uses 15, 63, 255, 511, 2047, 4095, 16383, 65535.
        assert num_intervals(4) == 15
        assert num_intervals(6) == 63
        assert num_intervals(8) == 255
        assert num_intervals(12) == 4095
        assert num_intervals(16) == 65535

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            interval_radius(1)
        with pytest.raises(ValueError):
            interval_radius(17)


class TestQuantize:
    def test_perfect_prediction_center_code(self):
        values = np.array([1.0, 2.0, 3.0])
        codes, recon, ok = quantize(values, values.copy(), 0.01, 128, np.dtype(np.float64))
        np.testing.assert_array_equal(codes, [128, 128, 128])
        assert ok.all()
        np.testing.assert_allclose(recon, values)

    def test_error_bound_guarantee(self, rng):
        values = rng.standard_normal(1000) * 10
        preds = values + rng.uniform(-0.5, 0.5, 1000)
        eb = 0.01
        codes, recon, ok = quantize(values, preds, eb, 128, np.dtype(np.float64))
        assert ok.all()  # offsets up to 25 intervals, radius 128 covers it
        assert np.abs(values - recon).max() <= eb

    def test_miss_when_offset_exceeds_radius(self):
        values = np.array([100.0])
        preds = np.array([0.0])
        codes, _, ok = quantize(values, preds, 0.1, 4, np.dtype(np.float64))
        assert codes[0] == UNPREDICTABLE
        assert not ok[0]

    def test_code_range(self, rng):
        values = rng.uniform(-1, 1, 500)
        preds = rng.uniform(-1, 1, 500)
        radius = 16
        codes, _, ok = quantize(values, preds, 0.05, radius, np.dtype(np.float64))
        assert codes.min() >= 0
        assert codes.max() <= 2 * radius - 1
        assert (codes[ok] >= 1).all()

    def test_nan_and_inf_are_unpredictable(self):
        values = np.array([np.nan, np.inf, -np.inf, 1.0])
        preds = np.zeros(4)
        codes, _, ok = quantize(values, preds, 1.0, 128, np.dtype(np.float64))
        np.testing.assert_array_equal(ok, [False, False, False, True])
        assert (codes[:3] == UNPREDICTABLE).all()

    def test_float32_rounding_respected(self):
        # A value whose float32 ulp (64 at 1e9) dwarfs the bound: the f64
        # quantization would pass, but rounding recon through float32
        # breaks the bound, so the point must be marked unpredictable.
        values = np.array([1.0e9 + 17.0], dtype=np.float64)
        preds = np.array([1.0e9])
        eb = 1e-3
        codes, recon, ok = quantize(values, preds, eb, 32768, np.dtype(np.float32))
        assert not ok[0]

    def test_reconstruct_inverts_quantize(self, rng):
        values = rng.standard_normal(300)
        preds = values + rng.uniform(-0.2, 0.2, 300)
        eb = 0.01
        codes, recon, ok = quantize(values, preds, eb, 128, np.dtype(np.float64))
        recon2 = reconstruct(preds, codes, eb, 128, np.dtype(np.float64))
        np.testing.assert_array_equal(recon[ok], recon2[ok])
        assert np.isnan(recon2[~ok]).all()

    @given(
        st.floats(-1e6, 1e6),
        st.floats(-1e6, 1e6),
        st.floats(1e-9, 1e3),
        st.sampled_from([2, 8, 16, 128, 32768]),
    )
    def test_bound_property(self, value, pred, eb, radius):
        values = np.array([value])
        preds = np.array([pred])
        codes, recon, ok = quantize(values, preds, eb, radius, np.dtype(np.float64))
        if ok[0]:
            assert abs(value - recon[0]) <= eb
            assert 1 <= codes[0] <= 2 * radius - 1
        else:
            assert codes[0] == UNPREDICTABLE

    def test_interval_uniformity(self):
        """Adjacent codes reconstruct exactly 2*eb apart (uniform intervals,
        the paper's contrast with vector quantization)."""
        eb = 0.25
        preds = np.zeros(9)
        codes = np.arange(124, 133)
        recon = reconstruct(preds, codes, eb, 128, np.dtype(np.float64))
        np.testing.assert_allclose(np.diff(recon), 2 * eb)
