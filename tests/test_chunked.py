"""Tests for the tiled container v2 subsystem (repro.chunked)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.chunked import (
    ByteAccountant,
    TiledReader,
    TiledWriter,
    TileGrid,
    compress_file_tiled,
    compress_tiled,
    container_info_any,
    decompress_any,
    decompress_region,
    decompress_tiled,
    default_tile_shape,
    is_tiled,
    region_of_interest_cost,
    tiled_container_info,
)
from repro.core import compress


def _field(shape, dtype=np.float32, seed=7):
    rng = np.random.default_rng(seed)
    base = np.sin(np.arange(np.prod(shape)).reshape(shape) / 11.0)
    return (base + 0.05 * rng.standard_normal(shape)).astype(dtype)


class TestTileGrid:
    def test_uneven_cover(self):
        grid = TileGrid((10, 7), (4, 3))
        assert grid.grid == (3, 3) and grid.n_tiles == 9
        seen = np.zeros((10, 7), dtype=int)
        for i in range(grid.n_tiles):
            seen[grid.tile_slices(i)] += 1
        assert (seen == 1).all()  # exact partition, no overlap, no gap

    def test_tile_clipped_to_shape(self):
        grid = TileGrid((5,), (16,))
        assert grid.tile_shape == (5,) and grid.n_tiles == 1

    def test_intersecting_tiles(self):
        grid = TileGrid((10, 10), (4, 4))
        sl, _ = grid.normalize_region((slice(4, 5), slice(0, 9)))
        assert grid.tiles_intersecting(sl) == [3, 4, 5]

    def test_empty_region(self):
        grid = TileGrid((10,), (4,))
        sl, _ = grid.normalize_region((slice(3, 3),))
        assert grid.tiles_intersecting(sl) == []

    def test_step_rejected(self):
        grid = TileGrid((10,), (4,))
        with pytest.raises(ValueError, match="step"):
            grid.normalize_region((slice(0, 8, 2),))

    def test_int_squeezes(self):
        grid = TileGrid((6, 8), (2, 2))
        sl, squeeze = grid.normalize_region((3,))
        assert sl == (slice(3, 4), slice(0, 8)) and squeeze == (0,)

    def test_out_of_bounds_int(self):
        grid = TileGrid((6,), (2,))
        with pytest.raises(IndexError):
            grid.normalize_region((6,))


class TestRoundtrip:
    @pytest.mark.parametrize(
        "shape,tile",
        [
            ((100,), (7,)),          # 1-d, uneven
            ((48, 64), (16, 16)),    # 2-d, even
            ((45, 61), (16, 13)),    # 2-d, uneven both axes
            ((9, 20, 17), (4, 7, 5)),  # 3-d, uneven
        ],
    )
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_abs_bound_every_element(self, shape, tile, dtype):
        data = _field(shape, dtype)
        blob = compress_tiled(data, tile_shape=tile, mode="abs", bound=1e-3)
        out = decompress_tiled(blob)
        assert out.shape == data.shape and out.dtype == data.dtype
        assert np.abs(out - data).max() <= 1e-3

    @pytest.mark.parametrize(
        "shape,tile", [((100,), (9,)), ((45, 61), (16, 13)), ((9, 20, 17), (4, 7, 5))]
    )
    def test_rel_bound_every_element(self, shape, tile):
        data = _field(shape)
        blob = compress_tiled(data, tile_shape=tile, mode="rel", bound=1e-3)
        out = decompress_tiled(blob)
        eb = 1e-3 * float(data.max() - data.min())
        # per-tile ranges <= global range, so the array-level relative
        # bound holds for every element
        assert np.abs(out - data).max() <= eb

    def test_int_tile_shape_and_default(self):
        data = _field((40, 40))
        blob = compress_tiled(data, tile_shape=16, mode="abs", bound=1e-3)
        assert tiled_container_info(blob)["tile_shape"] == (16, 16)
        blob2 = compress_tiled(data, mode="abs", bound=1e-3)
        assert tiled_container_info(blob2)["n_tiles"] == 1  # 40x40 < 64k

    def test_default_tile_shape(self):
        assert default_tile_shape((1000, 1000)) == (256, 256)
        assert default_tile_shape((10, 2000, 2000)) == (10, 40, 40)

    def test_constant_tiles(self):
        data = np.full((20, 20), 3.25, dtype=np.float32)
        blob = compress_tiled(data, tile_shape=8, mode="rel", bound=1e-4)
        assert np.array_equal(decompress_tiled(blob), data)

    def test_workers_byte_identical(self):
        data = _field((40, 52))
        serial = compress_tiled(data, tile_shape=(16, 16), mode="rel", bound=1e-3)
        fanned = compress_tiled(
            data, tile_shape=(16, 16), mode="rel", bound=1e-3, workers=3
        )
        assert serial == fanned

    def test_compress_kwargs_forwarded(self):
        data = _field((30, 30))
        blob = compress_tiled(
            data, tile_shape=15, mode="abs", bound=1e-2, layers=2, interval_bits=10
        )
        out = decompress_tiled(blob)
        assert np.abs(out - data).max() <= 1e-2

    def test_bound_required(self):
        with pytest.raises(ValueError, match="bound"):
            compress_tiled(_field((8, 8)), tile_shape=4)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            compress_tiled(np.float32(1.0), mode="abs", bound=0.1)


class TestRegion:
    def test_matches_whole_array_decompression(self):
        data = _field((33, 47))
        blob = compress_tiled(data, tile_shape=(8, 12), mode="abs", bound=1e-3)
        full = decompress_tiled(blob)
        region = decompress_region(blob, (slice(5, 22), slice(30, 47)))
        assert np.array_equal(region, full[5:22, 30:47])

    def test_untouched_tiles_never_read(self):
        data = _field((64, 64))
        blob = compress_tiled(data, tile_shape=(16, 16), mode="abs", bound=1e-3)
        acc = ByteAccountant()
        decompress_region(blob, (slice(0, 10), slice(0, 10)), accountant=acc)
        with TiledReader(blob) as reader:
            sl, _ = reader.grid.normalize_region((slice(0, 10), slice(0, 10)))
            needed = set(reader.grid.tiles_intersecting(sl))
            assert needed == {0}
            for i, entry in enumerate(reader.entries):
                touched = acc.touched(entry.offset, entry.length)
                assert touched == (i in needed), f"tile {i}"
        # the audit also bounds total I/O: payload read ~1 tile, not 16
        assert acc.total_bytes < len(blob) / 2

    def test_region_bytes_scale_with_roi(self):
        data = _field((64, 64))
        blob = compress_tiled(data, tile_shape=(16, 16), mode="abs", bound=1e-3)
        cost = region_of_interest_cost(blob, (slice(0, 16), slice(0, 16)))
        assert cost["tiles_read"] == 1 and cost["tiles_total"] == 16
        assert cost["read_fraction"] < 0.5

    def test_int_axis_drops(self):
        data = _field((12, 9, 7))
        blob = compress_tiled(data, tile_shape=(4, 4, 4), mode="abs", bound=1e-3)
        full = decompress_tiled(blob)
        out = decompress_region(blob, (3, slice(1, 6)))
        assert out.shape == (5, 7)
        assert np.array_equal(out, full[3, 1:6])

    def test_negative_int(self):
        data = _field((10, 6))
        blob = compress_tiled(data, tile_shape=(4, 4), mode="abs", bound=1e-3)
        out = decompress_region(blob, (-1,))
        assert np.array_equal(out, decompress_tiled(blob)[-1])

    def test_partial_spec_pads_full_axes(self):
        data = _field((10, 6))
        blob = compress_tiled(data, tile_shape=(4, 4), mode="abs", bound=1e-3)
        out = decompress_region(blob, slice(2, 5))
        assert np.array_equal(out, decompress_tiled(blob)[2:5])

    def test_reader_getitem(self):
        data = _field((20, 20))
        blob = compress_tiled(data, tile_shape=8, mode="abs", bound=1e-3)
        with TiledReader(blob) as reader:
            got = reader[2:9, 11:20]
        assert np.array_equal(got, decompress_tiled(blob)[2:9, 11:20])


class TestStreaming:
    def test_file_roundtrip_slab_by_slab(self, tmp_path):
        data = _field((37, 22, 18), np.float64)
        path = tmp_path / "stream.szt"
        with TiledWriter(
            path, data.shape, (8, 8, 8), dtype=data.dtype, mode="abs", bound=1e-3
        ) as writer:
            for row in range(writer.n_slabs):
                start, stop = writer.slab_extent(row)
                writer.write_slab(data[start:stop])
        got = np.empty_like(data)
        with TiledReader(path) as reader:
            for (start, stop), slab in reader.iter_slabs():
                got[start:stop] = slab
        assert np.abs(got - data).max() <= 1e-3

    def test_generator_source(self, tmp_path):
        data = _field((50, 16))
        path = tmp_path / "gen.szt"

        def slabs():
            for start in range(0, 50, 8):
                yield data[start : min(start + 8, 50)]

        with TiledWriter(
            path, data.shape, (8, 16), dtype=data.dtype, mode="rel", bound=1e-3
        ) as writer:
            writer.write_from(slabs())
        out = decompress_tiled(str(path))
        eb = 1e-3 * float(data.max() - data.min())
        assert np.abs(out - data).max() <= eb

    def test_streamed_equals_one_shot(self, tmp_path):
        """The streaming writer and compress_tiled emit identical bytes."""
        data = _field((30, 21))
        one_shot = compress_tiled(data, tile_shape=(8, 8), mode="abs", bound=1e-3)
        sink = io.BytesIO()
        with TiledWriter(
            sink, data.shape, (8, 8), dtype=data.dtype, mode="abs", bound=1e-3
        ) as writer:
            writer.write_array(data)
        assert sink.getvalue() == one_shot

    def test_compress_file_tiled_memory_mapped(self, tmp_path):
        data = _field((41, 33))
        src = tmp_path / "big.npy"
        np.save(src, data)
        out = tmp_path / "big.szt"
        summary = compress_file_tiled(
            src, out, tile_shape=(8, 8), mode="rel", bound=1e-3
        )
        assert summary["n_tiles"] == 30
        restored = decompress_tiled(str(out))
        eb = 1e-3 * float(data.max() - data.min())
        assert np.abs(restored - data).max() <= eb

    def test_unsupported_dtype_rejected_before_open(self, tmp_path):
        path = tmp_path / "ints.szt"
        with pytest.raises(TypeError, match="float32/float64"):
            TiledWriter(path, (4, 4), (2, 2), dtype=np.int32, mode="abs", bound=0.1)
        assert not path.exists()  # no stray truncated output file

    def test_wrong_slab_shape_rejected(self):
        writer = TiledWriter(
            io.BytesIO(), (10, 10), (4, 10), mode="abs", bound=1e-3
        )
        with pytest.raises(ValueError, match="slab"):
            writer.write_slab(np.zeros((3, 10), dtype=np.float32))

    def test_incomplete_close_rejected(self):
        writer = TiledWriter(io.BytesIO(), (10, 10), (4, 10), mode="abs", bound=1e-3)
        writer.write_slab(np.zeros((4, 10), dtype=np.float32))
        with pytest.raises(ValueError, match="incomplete"):
            writer.close()

    def test_out_of_order_tiles_rejected(self):
        writer = TiledWriter(io.BytesIO(), (8, 8), (4, 4), mode="abs", bound=1e-3)
        with pytest.raises(ValueError, match="shape"):
            # tile 0 must be (4, 4); a trailing-edge shape is out of order
            writer.write_tiles([np.zeros((2, 4), dtype=np.float32)])


class TestDispatchAndInfo:
    def test_is_tiled(self):
        data = _field((16, 16))
        assert is_tiled(compress_tiled(data, tile_shape=8, mode="abs", bound=1e-3))
        assert not is_tiled(compress(data, mode="abs", bound=1e-3))

    def test_decompress_any(self):
        data = _field((16, 16))
        v1 = compress(data, mode="abs", bound=1e-3)
        v2 = compress_tiled(data, tile_shape=8, mode="abs", bound=1e-3)
        assert np.abs(decompress_any(v1) - data).max() <= 1e-3
        assert np.abs(decompress_any(v2) - data).max() <= 1e-3

    def test_container_info_any(self):
        data = _field((16, 16))
        info1 = container_info_any(compress(data, mode="abs", bound=1e-3))
        assert info1["format"] == "v1" and info1["shape"] == (16, 16)
        info2 = container_info_any(
            compress_tiled(data, tile_shape=8, mode="abs", bound=1e-3)
        )
        assert info2["format"] == "tiled-v2"
        assert info2["n_tiles"] == 4
        assert len(info2["tile_compression_factors"]) == 4
        assert all(0 <= h <= 1 for h in info2["tile_hit_rates"])

    def test_info_accounts_all_bytes(self):
        data = _field((20, 20))
        blob = compress_tiled(data, tile_shape=8, mode="abs", bound=1e-3)
        info = tiled_container_info(blob)
        header_bytes = (
            len(blob) - info["payload_bytes"] - info["index_bytes"]
        )
        assert header_bytes == 8 + 16 * 2 + 16
        assert info["compressed_bytes"] == len(blob)

    def test_decompressed_tile_must_match_grid(self):
        """A tile that decodes to the wrong shape is flagged as corrupt,
        even when its CRC is intact (valid v1 payload, wrong geometry)."""
        import zlib

        from repro.chunked.format import (
            TiledHeader,
            TileEntry,
            build_index,
            build_tail,
            write_header,
        )

        tile_blob = compress(_field((8, 8)), mode="abs", bound=1e-3)  # wrong shape
        head = write_header(
            TiledHeader(np.dtype(np.float32), (4, 4), (4, 4), 1e-3, None)
        )
        entry = TileEntry(
            offset=len(head),
            length=len(tile_blob),
            crc32=zlib.crc32(tile_blob) & 0xFFFFFFFF,
            n_values=16,
            n_unpredictable=0,
            mode_count=0,
            nonzero_bins=0,
        )
        index = build_index([entry])
        blob = (
            head
            + tile_blob
            + index
            + build_tail(
                len(head) + len(tile_blob),
                len(index),
                zlib.crc32(index) & 0xFFFFFFFF,
            )
        )
        with pytest.raises(ValueError, match="decodes to"):
            decompress_tiled(blob)
