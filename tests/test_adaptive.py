"""Tests for the adaptive interval-count scheme (paper Section IV-B)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import (
    estimate_hit_rate,
    suggest_interval_bits,
)


class TestEstimateHitRate:
    def test_smooth_data_high_rate(self, smooth2d):
        rate = estimate_hit_rate(smooth2d, eb=1e-2, interval_bits=8)
        assert rate > 0.95

    def test_rate_collapses_at_tight_bounds(self, smooth2d):
        """Fig. 4: the hitting rate drops sharply once the bound is too
        tight for the interval count."""
        loose = estimate_hit_rate(smooth2d, eb=1e-2, interval_bits=4)
        tight = estimate_hit_rate(smooth2d, eb=1e-7, interval_bits=4)
        assert loose > 0.8
        assert tight < 0.5 * loose

    def test_more_intervals_cover_tighter_bounds(self, smooth2d):
        eb = 1e-5
        small = estimate_hit_rate(smooth2d, eb=eb, interval_bits=4)
        large = estimate_hit_rate(smooth2d, eb=eb, interval_bits=12)
        assert large >= small

    def test_monotone_in_interval_bits(self, spiky2d):
        eb = 1e-4 * float(spiky2d.max() - spiky2d.min())
        rates = [
            estimate_hit_rate(spiky2d, eb, m) for m in (2, 4, 8, 12, 16)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_bad_bound_raises(self, smooth2d):
        with pytest.raises(ValueError):
            estimate_hit_rate(smooth2d, 0.0, 8)

    def test_subsampling_kicks_in(self, rng):
        big = rng.standard_normal((600, 600))
        rate = estimate_hit_rate(big, 0.1, 8, sample_limit=1024)
        assert 0.0 <= rate <= 1.0


class TestSuggestLayers:
    def test_default_data_prefers_one_layer(self, smooth2d):
        from repro.core.adaptive import suggest_layers

        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        assert suggest_layers(smooth2d, eb) == 1

    def test_oversmooth_data_can_prefer_more(self):
        """On grid-oversampled fields at the right bound, n=2 wins even in
        the loop (the PHIS regime of our Table II reproduction)."""
        from repro.core.adaptive import suggest_layers
        from repro.datasets.climate import phis_like

        data = phis_like((96, 192), seed=5)
        eb = 1e-4 * float(data.max() - data.min())
        n = suggest_layers(data, eb, sample_limit=data.size)
        assert n >= 2

    def test_bad_bound(self, smooth2d):
        from repro.core.adaptive import suggest_layers

        with pytest.raises(ValueError):
            suggest_layers(smooth2d, 0.0)


class TestSuggestIntervalBits:
    def test_easy_data_small_m(self, smooth2d):
        m = suggest_interval_bits(smooth2d, eb=1e-2)
        assert m <= 8

    def test_hard_data_larger_m(self, rng):
        noise = rng.standard_normal((128, 128))
        eb = 1e-6 * float(noise.max() - noise.min())
        m_hard = suggest_interval_bits(noise, eb)
        m_easy = suggest_interval_bits(noise, 1e-1)
        assert m_hard > m_easy

    def test_falls_back_to_largest(self, rng):
        white = rng.standard_normal(4096)
        m = suggest_interval_bits(white, 1e-12, candidates=(2, 4))
        assert m == 4
