"""Tests for container introspection (repro.core.container_info)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress, container_info


class TestContainerInfo:
    def test_basic_fields(self, smooth2d):
        blob = compress(smooth2d, mode="rel", bound=1e-3, layers=2, interval_bits=10)
        info = container_info(blob)
        assert info["shape"] == smooth2d.shape
        assert info["dtype"] == "float32"
        assert info["layers"] == 2
        assert info["interval_bits"] == 10
        assert info["entropy_coder"] == "huffman"
        assert not info["lossless_post"]
        assert info["compressed_bytes"] == len(blob)
        assert info["eb_abs"] == pytest.approx(
            1e-3 * float(smooth2d.max() - smooth2d.min())
        )

    def test_variant_flags(self, smooth2d):
        small = smooth2d[:16, :16]
        blob = compress(
            small, mode="rel", bound=1e-2, entropy_coder="arithmetic",
            lossless_post=True,
        )
        info = container_info(blob)
        assert info["entropy_coder"] == "arithmetic"
        # post-wrap applies only if it shrinks; flag must agree with blob
        assert info["lossless_post"] == (blob[:4] == b"SZPP")

    def test_constant(self):
        blob = compress(np.full((8, 8), 2.5, dtype=np.float64), mode="abs", bound=0.1)
        info = container_info(blob)
        assert info["constant"] is True
        assert info["dtype"] == "float64"

    def test_unpredictable_count(self, spiky2d):
        eb = 1e-5 * float(spiky2d.max() - spiky2d.min())
        blob = compress(spiky2d, mode="abs", bound=eb, interval_bits=4)
        info = container_info(blob)
        assert info["n_unpredictable"] > 0
