"""Tests for the experiment harness utilities (Table, runner wrappers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    Table,
    run_fpzip,
    run_gzip,
    run_isabela,
    run_sz11,
    run_sz14,
    run_zfp_accuracy,
    run_zfp_rate,
)


class TestTable:
    def test_columns_and_formatting(self):
        t = Table("t")
        t.add(x=1.23456, y="abc", z=None)
        t.add(x=1e-7, y="d", z=3)
        assert t.column("x") == [1.23456, 1e-7]
        s = str(t)
        assert "1.235" in s and "1.000e-07" in s and "-" in s

    def test_notes_rendered(self):
        t = Table("t")
        t.add(a=1)
        t.note("important caveat")
        assert "important caveat" in str(t)

    def test_empty_table(self):
        assert "(no rows)" in str(Table("empty"))

    def test_heterogeneous_rows(self):
        t = Table("t")
        t.add(a=1)
        t.add(b=2)
        s = str(t)
        assert "a" in s and "b" in s


class TestRunners:
    @pytest.fixture(scope="class")
    def field(self):
        rng = np.random.default_rng(7)
        return np.cumsum(rng.standard_normal(48 * 48)).reshape(48, 48).astype(np.float32)

    def test_sz14_result_schema(self, field):
        res = run_sz14(field, rel_bound=1e-3)
        assert res.name == "SZ-1.4"
        assert res.cf > 1 and res.bit_rate < 32
        assert res.max_rel <= 1e-3
        assert res.comp_mb_s > 0 and res.decomp_mb_s > 0
        assert not res.failed

    def test_cf_bitrate_consistency(self, field):
        res = run_sz14(field, rel_bound=1e-3)
        assert res.cf * res.bit_rate == pytest.approx(32.0)

    def test_zfp_modes(self, field):
        acc = run_zfp_accuracy(field, rel_bound=1e-3)
        assert acc.max_rel <= 1e-3
        rate = run_zfp_rate(field, 8)
        assert rate.bit_rate == pytest.approx(8, abs=0.6)

    def test_zfp_accuracy_with_abs_bound(self, field):
        res = run_zfp_accuracy(field, abs_bound=0.05)
        assert res.max_abs <= 0.05

    def test_sz11(self, field):
        res = run_sz11(field, rel_bound=1e-3)
        assert res.max_rel <= 1e-3

    def test_isabela_failure_path(self, rng):
        noise = rng.standard_normal(4096).astype(np.float32)
        res = run_isabela(noise, rel_bound=1e-7)
        assert res.failed and res.reason
        assert np.isnan(res.cf)

    def test_lossless_runners_exact(self, field):
        for runner in (run_fpzip, run_gzip):
            res = runner(field)
            assert res.max_abs == 0.0
            assert res.psnr == np.inf
            assert res.rho == pytest.approx(1.0)

    def test_lossless_runners_ignore_bounds(self, field):
        a = run_fpzip(field, mode="rel", bound=1e-3)
        b = run_fpzip(field)
        assert a.cf == b.cf
