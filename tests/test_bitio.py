"""Unit and property tests for repro.encoding.bitio."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bytes_to_bits,
    pack_varlen,
    read_bits_at,
    unpack_varlen,
)


class TestBitWriterReader:
    def test_single_byte_roundtrip(self):
        w = BitWriter()
        w.write(0b10110011, 8)
        assert w.getvalue() == bytes([0b10110011])

    def test_msb_first_ordering(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(0, 1)
        w.write(1, 1)
        # 101 padded with zeros -> 1010_0000
        assert w.getvalue() == bytes([0b10100000])

    def test_cross_byte_fields(self):
        w = BitWriter()
        w.write(0x3FF, 10)
        w.write(0x0, 3)
        w.write(0x5, 3)
        r = BitReader(w.getvalue())
        assert r.read(10) == 0x3FF
        assert r.read(3) == 0
        assert r.read(3) == 0x5

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0
        assert w.getvalue() == b""

    def test_value_too_wide_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_negative_value_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 3)

    def test_negative_width_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(0, -1)

    def test_reader_eof(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_reader_seek(self):
        r = BitReader(bytes([0b10100000]))
        assert r.read(3) == 0b101
        r.seek(1)
        assert r.read(2) == 0b01

    def test_bit_length_tracks_partial_bytes(self):
        w = BitWriter()
        w.write(0b11, 2)
        assert w.bit_length == 2
        w.write(0b1111111, 7)
        assert w.bit_length == 9

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(1, 21)), max_size=50))
    def test_roundtrip_property(self, fields):
        w = BitWriter()
        expected = []
        for value, width in fields:
            value &= (1 << width) - 1
            w.write(value, width)
            expected.append((value, width))
        r = BitReader(w.getvalue())
        for value, width in expected:
            assert r.read(width) == value

    def test_write_bits_matches_write(self):
        w1, w2 = BitWriter(), BitWriter()
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1], dtype=np.uint8)
        w1.write_bits(bits)
        for b in bits:
            w2.write(int(b), 1)
        assert w1.getvalue() == w2.getvalue()

    def test_write_array_rejects_negatives_like_write(self):
        # A negative must raise for every width — including 64-bit
        # fields, where the unsigned cast would otherwise silently wrap
        # it to its two's-complement pattern.
        for width in (8, 63, 64):
            with pytest.raises(ValueError, match="does not fit"):
                BitWriter().write_array(
                    np.array([-1], dtype=np.int64),
                    np.array([width], dtype=np.int64),
                )
        # the full unsigned range still packs
        w = BitWriter()
        w.write_array(
            np.array([2**64 - 1], dtype=np.uint64),
            np.array([64], dtype=np.int64),
        )
        assert w.getvalue() == b"\xff" * 8


class TestPackVarlen:
    def test_empty(self):
        buf, nbits = pack_varlen(np.array([], dtype=np.uint64), np.array([], dtype=np.int64))
        assert nbits == 0
        assert buf.size == 0

    def test_matches_scalar_writer(self, rng):
        n = 300
        lengths = rng.integers(0, 33, n)
        values = rng.integers(0, 2**32, n, dtype=np.uint64)
        values &= (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
        buf, nbits = pack_varlen(values, lengths)
        w = BitWriter()
        for v, width in zip(values, lengths):
            w.write(int(v), int(width))
        assert nbits == w.bit_length
        assert buf.tobytes() == w.getvalue()

    def test_unpack_inverts_pack(self, rng):
        n = 500
        lengths = rng.integers(0, 64, n)
        values = rng.integers(0, 2**63, n, dtype=np.uint64)
        values &= (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
        buf, _ = pack_varlen(values, lengths)
        out = unpack_varlen(buf, lengths)
        np.testing.assert_array_equal(out, values)

    def test_unpack_with_bit_offset(self):
        values = np.array([0b101, 0b11], dtype=np.uint64)
        lengths = np.array([3, 2])
        buf, _ = pack_varlen(values, lengths)
        shifted = np.unpackbits(buf)[: 5]
        padded = np.concatenate([np.zeros(3, dtype=np.uint8), shifted])
        buf2 = np.packbits(padded)
        out = unpack_varlen(buf2, lengths, bit_offset=3)
        np.testing.assert_array_equal(out, values)

    def test_full_64bit_values(self):
        values = np.array([2**64 - 1, 2**63], dtype=np.uint64)
        lengths = np.array([64, 64])
        buf, nbits = pack_varlen(values, lengths)
        assert nbits == 128
        np.testing.assert_array_equal(unpack_varlen(buf, lengths), values)

    def test_zero_length_fields_contribute_nothing(self):
        values = np.array([7, 0, 5], dtype=np.uint64)
        lengths = np.array([3, 0, 3])
        buf, nbits = pack_varlen(values, lengths)
        assert nbits == 6
        out = unpack_varlen(buf, lengths)
        np.testing.assert_array_equal(out, [7, 0, 5])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pack_varlen(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.int64))

    def test_bad_lengths_raise(self):
        with pytest.raises(ValueError):
            pack_varlen(np.zeros(1, dtype=np.uint64), np.array([65]))
        with pytest.raises(ValueError):
            pack_varlen(np.zeros(1, dtype=np.uint64), np.array([-1]))

    def test_unpack_eof(self):
        with pytest.raises(EOFError):
            unpack_varlen(b"\x00", np.array([16]))

    @given(st.lists(st.integers(0, 24), min_size=1, max_size=80), st.integers(0, 2**31))
    def test_roundtrip_property(self, lens, seed):
        rng = np.random.default_rng(seed)
        lengths = np.array(lens, dtype=np.int64)
        values = rng.integers(0, 2**24, lengths.size, dtype=np.uint64)
        values &= (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
        buf, _ = pack_varlen(values, lengths)
        np.testing.assert_array_equal(unpack_varlen(buf, lengths), values)


class TestReadBitsAt:
    def test_reads_match_scalar_reader(self, rng):
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        positions = rng.integers(0, 64 * 8 - 57, 100)
        for nbits in (1, 7, 8, 13, 32, 57):
            got = read_bits_at(data, positions, nbits)
            r = BitReader(data.tobytes())
            for p, g in zip(positions, got):
                r.seek(int(p))
                assert r.read(nbits) == int(g)

    def test_reads_past_end_are_zero_padded(self):
        buf = np.array([0xFF], dtype=np.uint8)
        got = read_bits_at(buf, np.array([4]), 8)
        assert got[0] == 0xF0

    def test_position_beyond_buffer_raises(self):
        with pytest.raises(EOFError):
            read_bits_at(np.array([0xFF], dtype=np.uint8), np.array([100]), 4)

    def test_invalid_width_raises(self):
        buf = np.zeros(8, dtype=np.uint8)
        with pytest.raises(ValueError):
            read_bits_at(buf, np.array([0]), 58)
        with pytest.raises(ValueError):
            read_bits_at(buf, np.array([0]), 0)

    def test_negative_position_raises(self):
        with pytest.raises(ValueError):
            read_bits_at(np.zeros(4, dtype=np.uint8), np.array([-1]), 4)


class TestBitArrays:
    def test_bits_bytes_roundtrip(self, rng):
        bits = rng.integers(0, 2, 37, dtype=np.uint8)
        buf = bits_to_bytes(bits)
        back = bytes_to_bits(buf, 37)
        np.testing.assert_array_equal(back, bits)

    def test_bytes_to_bits_eof(self):
        with pytest.raises(EOFError):
            bytes_to_bits(b"\x00", 9)
