"""Tests for archives, quality reports, and axis-layout optimization."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.layout import (
    compress_sliced,
    decompress_sliced,
    suggest_batching,
)
from repro.metrics.report import evaluate
from repro.parallel.files import (
    archive_info,
    create_archive,
    extract,
    extract_all,
    read_manifest,
)


class TestArchive:
    @pytest.fixture()
    def bundle(self, rng):
        return {
            "pressure": rng.standard_normal((20, 30)).astype(np.float32),
            "temp": (300 + rng.standard_normal((20, 30))).astype(np.float32),
            "wind": np.cumsum(rng.standard_normal(600)).reshape(20, 30).astype(np.float64),
        }

    def test_roundtrip(self, bundle):
        archive = create_archive(arrays=bundle, mode="rel", bound=1e-4)
        out = extract_all(archive)
        assert set(out) == set(bundle)
        for name, arr in bundle.items():
            rng_ = float(arr.max() - arr.min())
            assert np.abs(out[name].astype(np.float64) - arr.astype(np.float64)).max() <= 1e-4 * rng_

    def test_manifest(self, bundle):
        archive = create_archive(arrays=bundle, mode="rel", bound=1e-3)
        entries = read_manifest(archive)
        assert [e.name for e in entries] == sorted(bundle)
        assert sum(e.length for e in entries) + entries[0].offset == len(archive)

    def test_single_extract(self, bundle):
        archive = create_archive(arrays=bundle, mode="rel", bound=1e-3)
        temp = extract(archive, "temp")
        assert temp.shape == (20, 30)
        with pytest.raises(KeyError):
            extract(archive, "missing")

    def test_directory_input_and_output_file(self, bundle, tmp_path):
        for name, arr in bundle.items():
            np.save(tmp_path / f"{name}.npy", arr)
        out_file = tmp_path / "bundle.szar"
        archive = create_archive(
            directory=tmp_path, out_path=out_file, mode="rel", bound=1e-3
        )
        assert out_file.read_bytes() == archive
        assert {e.name for e in read_manifest(archive)} == set(bundle)

    def test_parallel_workers_match_serial(self, bundle):
        serial = create_archive(arrays=bundle, mode="rel", bound=1e-3, n_workers=1)
        parallel = create_archive(arrays=bundle, mode="rel", bound=1e-3, n_workers=2)
        assert serial == parallel
        out = extract_all(parallel, n_workers=2)
        assert set(out) == set(bundle)

    def test_archive_info(self, bundle):
        archive = create_archive(arrays=bundle, mode="rel", bound=1e-3)
        rows = archive_info(archive)
        assert len(rows) == 3
        for row in rows:
            assert row["cf"] > 1.0
            assert row["shape"] == (20, 30)

    def test_validation(self):
        with pytest.raises(ValueError):
            create_archive()
        with pytest.raises(ValueError):
            read_manifest(b"NOPE" + b"\x00" * 20)

    def test_truncated_archive(self, bundle):
        archive = create_archive(arrays=bundle, mode="rel", bound=1e-3)
        with pytest.raises(ValueError):
            read_manifest(archive[: len(archive) - 50])

    def test_tiled_entries(self, bundle):
        archive = create_archive(
            arrays=bundle, mode="rel", bound=1e-3, tile_shape=(8, 8)
        )
        rows = archive_info(archive)
        assert all(row["format"] == "tiled-v2" for row in rows)
        assert all(row["n_tiles"] == 12 for row in rows)
        out = extract_all(archive)
        for name, arr in bundle.items():
            rng_ = float(arr.max() - arr.min())
            err = np.abs(
                out[name].astype(np.float64) - arr.astype(np.float64)
            ).max()
            assert err <= 1e-3 * rng_

    def test_tiled_entry_region(self, bundle):
        from repro.parallel.files import extract_region

        archive = create_archive(
            arrays=bundle, mode="rel", bound=1e-3, tile_shape=(8, 8)
        )
        whole = extract(archive, "temp")
        roi = extract_region(archive, "temp", (slice(4, 12), slice(20, 30)))
        assert np.array_equal(roi, whole[4:12, 20:30])
        # v1 entries fall back to decode-then-slice
        flat = create_archive(arrays=bundle, mode="rel", bound=1e-3)
        roi_v1 = extract_region(flat, "temp", (slice(4, 12), slice(20, 30)))
        assert roi_v1.shape == (8, 10)

    def test_tiled_parallel_extract(self, bundle):
        archive = create_archive(
            arrays=bundle, mode="rel", bound=1e-3, tile_shape=(8, 8)
        )
        out = extract_all(archive, n_workers=2)
        assert set(out) == set(bundle)


class TestQualityReport:
    def test_full_report(self, smooth2d):
        rep = evaluate(
            smooth2d,
            lambda d: repro.compress(d, mode="rel", bound=1e-4),
            repro.decompress,
        )
        assert rep.within(rel_bound=1e-4)
        assert rep.compression_factor > 1
        assert rep.bit_rate * rep.compression_factor == pytest.approx(32.0)
        assert rep.five_nines
        assert rep.comp_mb_s > 0 and rep.decomp_mb_s > 0

    def test_markdown_rendering(self, smooth2d):
        rep = evaluate(
            smooth2d,
            lambda d: repro.compress(d, mode="rel", bound=1e-3),
            repro.decompress,
        )
        md = rep.to_markdown()
        assert md.startswith("| metric | value |")
        assert "PSNR" in md and "bits/value" in md

    def test_within_checks_abs(self, smooth2d):
        rep = evaluate(
            smooth2d,
            lambda d: repro.compress(d, mode="abs", bound=0.01),
            repro.decompress,
        )
        assert rep.within(abs_bound=0.01)
        assert not rep.within(abs_bound=rep.max_abs_error / 10)


class TestLayout:
    @pytest.fixture()
    def independent_slices(self, rng):
        """Stack of mutually independent smooth frames (detector frames,
        ensemble members): the case where cross-slice prediction hurts."""
        from repro.datasets.fields import gaussian_random_field

        frames = [
            gaussian_random_field((64, 64), beta=4.0, seed=100 + i)
            for i in range(8)
        ]
        return np.stack(frames).astype(np.float32)

    @pytest.fixture()
    def coherent_volume(self, rng):
        """Smoothly varying 3-D volume: full-d prediction should win."""
        z, y, x = np.mgrid[0:6, 0:32, 0:40] / 8.0
        return (np.sin(x) * np.cos(y) * np.exp(-z)).astype(np.float32)

    def test_suggests_batching_for_independent_frames(self, independent_slices):
        eb = 1e-3 * float(independent_slices.max() - independent_slices.min())
        assert suggest_batching(independent_slices, eb)

    def test_keeps_full_d_for_coherent_volume(self, coherent_volume):
        eb = 1e-3 * float(coherent_volume.max() - coherent_volume.min())
        assert not suggest_batching(coherent_volume, eb)

    def test_sliced_roundtrip_bound(self, independent_slices):
        blob = compress_sliced(independent_slices, rel_bound=1e-3)
        out = decompress_sliced(blob)
        assert out.shape == independent_slices.shape
        rng_ = float(independent_slices.max() - independent_slices.min())
        err = np.abs(
            out.astype(np.float64) - independent_slices.astype(np.float64)
        ).max()
        assert err <= 1e-3 * rng_

    def test_slicing_beats_full_d_on_independent_frames(self, independent_slices):
        naive = repro.compress(independent_slices, mode="rel", bound=1e-3)
        sliced = compress_sliced(independent_slices, rel_bound=1e-3)
        assert len(sliced) < len(naive)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            compress_sliced(rng.standard_normal(10), abs_bound=0.1)
        with pytest.raises(ValueError):
            compress_sliced(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            decompress_sliced(b"XXXX" + b"\x00" * 10)
        with pytest.raises(ValueError):
            suggest_batching(rng.standard_normal((4, 5)), 0.0)

    def test_1d_never_batched(self, rng):
        assert not suggest_batching(rng.standard_normal(100), 0.1)
