"""The SZConfig/Codec core API: validation, round-trips, zero-copy.

Covers the canonical surface introduced by the API redesign:

* ``SZConfig`` — construction-time validation, ``to_dict``/``from_dict``
  and JSON round-trips, ``replace`` sweeping, unknown-key rejection;
* ``Codec`` — the numcodecs contract (``encode``/``decode(out=)``,
  ``get_config``/``from_config``, the ``get_codec`` registry) and the
  tiled/streaming/file access methods;
* zero-copy buffer-protocol handling on the decode path (memoryview in,
  caller-provided ``out`` buffer back out);
* the deprecation shims — legacy keyword calls warn *and* stay
  byte-identical to the new path, pinned against the golden fixtures.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import Codec, SZConfig, get_codec
from repro.core import ErrorBound, compress, compress_with_stats, decompress
from repro.core.compressor import compress_array
from repro.encoding.bitio import BitReader

GOLDEN = Path(__file__).parent / "fixtures" / "golden"


class TestSZConfigValidation:
    def test_minimal_construction(self):
        cfg = SZConfig(("rel", 1e-4))
        assert cfg.mode == "rel" and cfg.bound == 1e-4
        assert cfg.layers == 1 and cfg.entropy_coder == "huffman"

    def test_error_bound_coercions(self):
        spec = ErrorBound.from_args("abs", 0.5)
        assert SZConfig(spec).error_bound is spec
        assert SZConfig({"mode": "abs", "bound": 0.5}).error_bound == spec
        assert SZConfig(("abs", 0.5)).error_bound == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(error_bound=("nope", 1.0)),
            dict(error_bound=("abs", -1.0)),
            dict(error_bound=("pw_rel", 2.0)),
            dict(error_bound=("psnr", float("inf"))),
            dict(error_bound=42),
            dict(error_bound=("rel", 1e-4), layers=0),
            dict(error_bound=("rel", 1e-4), interval_bits=0),
            dict(error_bound=("rel", 1e-4), interval_bits=17),
            dict(error_bound=("rel", 1e-4), theta=0.0),
            dict(error_bound=("rel", 1e-4), theta=1.5),
            dict(error_bound=("rel", 1e-4), block_size=0),
            dict(error_bound=("rel", 1e-4), entropy_coder="zstd"),
            dict(error_bound=("rel", 1e-4), workers=0),
            dict(error_bound=("rel", 1e-4), tile_shape=(0, 4)),
            dict(error_bound=("rel", 1e-4), tile_shape=()),
            dict(error_bound=("rel", 1e-4), tile_shape=3.5),
        ],
    )
    def test_invalid_configs_raise_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            SZConfig(**kwargs)

    def test_from_kwargs_mutual_exclusion(self):
        with pytest.raises(ValueError):
            SZConfig.from_kwargs(mode="abs", bound=0.1, abs_bound=0.2)
        with pytest.raises(ValueError):
            SZConfig.from_kwargs()  # no bound at all

    def test_frozen(self):
        cfg = SZConfig(("rel", 1e-4))
        with pytest.raises(AttributeError):
            cfg.layers = 2

    def test_tile_shape_int_and_list_coerce(self):
        # An int stays an int ("cubic tiles", expanded per-array at
        # encode time); a list becomes a tuple.
        assert SZConfig(("rel", 1e-4), tile_shape=32).tile_shape == 32
        assert SZConfig(("rel", 1e-4), tile_shape=[8, 16]).tile_shape == (8, 16)

    def test_int_tile_shape_means_cubic_on_every_path(self, smooth2d):
        codec = Codec(mode="rel", bound=1e-3, tile_shape=16)
        blob = codec.encode_tiled(smooth2d)
        with codec.open_reader(blob) as reader:
            assert reader.tile_shape == (16, 16)
        sink = __import__("io").BytesIO()
        with codec.open_writer(sink, smooth2d.shape, dtype=smooth2d.dtype) as w:
            assert w.tile_shape == (16, 16)
            w.write_array(smooth2d)
        # and it survives serialization as an int
        assert SZConfig.from_json(codec.config.to_json()).tile_shape == 16


CONFIG_CASES = [
    SZConfig(("abs", 1e-3)),
    SZConfig(("rel", 1e-4), layers=2, interval_bits=10),
    SZConfig(("pw_rel", 1e-3), adaptive=True, theta=0.95),
    SZConfig(("psnr", 64.0), entropy_coder="arithmetic", block_size=512),
    SZConfig(ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-5)),
    SZConfig(("rel", 1e-3), tile_shape=(16, 24), workers=3,
             lossless_post=True),
]


class TestSZConfigRoundTrips:
    @pytest.mark.parametrize("cfg", CONFIG_CASES, ids=range(len(CONFIG_CASES)))
    def test_dict_round_trip(self, cfg):
        assert SZConfig.from_dict(cfg.to_dict()) == cfg

    @pytest.mark.parametrize("cfg", CONFIG_CASES, ids=range(len(CONFIG_CASES)))
    def test_json_round_trip(self, cfg):
        text = cfg.to_json()
        json.loads(text)  # valid JSON
        assert SZConfig.from_json(text) == cfg

    def test_combined_legacy_pair_survives_serialization(self):
        cfg = SZConfig(ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-5))
        spec = SZConfig.from_json(cfg.to_json()).error_bound
        assert spec.abs_bound == 1.0 and spec.rel_bound == 1e-5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            SZConfig.from_dict({"mode": "abs", "bound": 0.1, "blocksize": 2})

    def test_foreign_codec_id_rejected(self):
        with pytest.raises(ValueError, match="sz14-repro"):
            SZConfig.from_dict({"id": "zlib", "mode": "abs", "bound": 0.1})

    def test_tampered_values_revalidated(self):
        spec = SZConfig(("rel", 1e-4)).to_dict()
        spec["interval_bits"] = 99
        with pytest.raises(ValueError):
            SZConfig.from_dict(spec)


class TestReplace:
    def test_bound_sweep_keeps_mode(self):
        cfg = SZConfig(("rel", 1e-4), layers=2)
        swept = [cfg.replace(bound=b) for b in (1e-2, 1e-3, 1e-6)]
        assert [c.mode for c in swept] == ["rel"] * 3
        assert [c.bound for c in swept] == [1e-2, 1e-3, 1e-6]
        assert all(c.layers == 2 for c in swept)

    def test_mode_switch(self):
        cfg = SZConfig(("rel", 1e-4)).replace(mode="psnr", bound=60.0)
        assert cfg.mode == "psnr" and cfg.bound == 60.0

    def test_plain_field_replace(self):
        cfg = SZConfig(("rel", 1e-4)).replace(layers=3, workers=4)
        assert cfg.layers == 3 and cfg.workers == 4

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            SZConfig(("rel", 1e-4)).replace(bound=-1.0)
        with pytest.raises(ValueError):
            SZConfig(("rel", 1e-4)).replace(
                mode="abs", bound=1.0, error_bound=("abs", 1.0)
            )

    def test_replace_bound_on_combined_pair_rejected(self):
        # mode/bound cannot faithfully rebuild the abs+rel pair; a
        # silent drop of the abs cap would loosen the guarantee.
        cfg = SZConfig(ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-5))
        with pytest.raises(ValueError, match="combined abs\\+rel"):
            cfg.replace(bound=1e-4)
        # the explicit error_bound spelling still works
        swept = cfg.replace(
            error_bound=ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-4)
        )
        assert swept.error_bound.abs_bound == 1.0

    def test_original_unchanged(self):
        cfg = SZConfig(("rel", 1e-4))
        cfg.replace(bound=1.0)
        assert cfg.bound == 1e-4


@pytest.fixture()
def codec() -> Codec:
    return Codec(mode="rel", bound=1e-4)


class TestCodecContract:
    def test_round_trip(self, codec, smooth2d):
        out = codec.decode(codec.encode(smooth2d))
        eb = 1e-4 * float(smooth2d.max() - smooth2d.min())
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype
        assert np.abs(out - smooth2d).max() <= eb

    def test_encode_matches_module_function(self, codec, smooth2d):
        assert codec.encode(smooth2d) == compress(
            smooth2d, mode="rel", bound=1e-4
        )

    def test_get_config_round_trip(self, codec):
        cfg = codec.get_config()
        assert cfg["id"] == "sz14-repro"
        clone = Codec.from_config(cfg)
        assert clone == codec and clone.get_config() == cfg

    def test_get_codec_registry(self, codec):
        clone = get_codec({"id": "sz14-repro", "mode": "rel", "bound": 1e-4})
        assert clone == codec
        with pytest.raises(ValueError, match="unknown codec id"):
            get_codec({"id": "nope"})

    def test_config_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            Codec(SZConfig(("abs", 1.0)), mode="abs", bound=1.0)

    def test_repr_mentions_knobs(self, codec):
        assert "mode='rel'" in repr(codec) or 'mode="rel"' in repr(codec)

    def test_encode_with_stats(self, codec, smooth2d):
        blob, stats = codec.encode_with_stats(smooth2d)
        assert blob == codec.encode(smooth2d)
        assert stats.mode == "rel" and stats.compressed_bytes == len(blob)


class TestBufferProtocol:
    """encode/decode accept any buffer-protocol object, zero-copy."""

    def test_encode_from_memoryview_matches_ndarray(self, codec, smooth2d):
        assert codec.encode(memoryview(smooth2d)) == codec.encode(smooth2d)

    def test_decode_from_readonly_memoryview(self, codec, smooth2d):
        blob = codec.encode(smooth2d)
        mv = memoryview(blob)  # read-only
        np.testing.assert_array_equal(codec.decode(mv), codec.decode(blob))

    def test_decode_from_bytearray_and_ndarray_buffers(self, codec, smooth2d):
        blob = codec.encode(smooth2d)
        for buf in (bytearray(blob), np.frombuffer(blob, dtype=np.uint8)):
            np.testing.assert_array_equal(
                codec.decode(buf), codec.decode(blob)
            )

    def test_bitreader_does_not_copy_its_buffer(self):
        raw = bytearray(b"\xde\xad\xbe\xef" * 8)
        reader = BitReader(memoryview(raw))
        assert np.shares_memory(
            reader._buf, np.frombuffer(raw, dtype=np.uint8)
        )

    def test_decode_out_ndarray_is_filled_in_place(self, codec, smooth2d):
        blob = codec.encode(smooth2d)
        out = np.empty_like(smooth2d)
        ret = codec.decode(memoryview(blob), out=out)
        assert ret is out
        np.testing.assert_array_equal(out, codec.decode(blob))

    def test_decode_out_bytearray(self, codec, smooth2d):
        blob = codec.encode(smooth2d)
        buf = bytearray(smooth2d.nbytes)
        ret = codec.decode(blob, out=buf)
        np.testing.assert_array_equal(ret, codec.decode(blob))
        # the returned view aliases the caller's buffer
        assert np.shares_memory(ret, np.frombuffer(buf, dtype=ret.dtype))

    def test_decode_out_flat_view_of_same_size(self, codec, smooth2d):
        blob = codec.encode(smooth2d)
        out = np.empty(smooth2d.size, dtype=smooth2d.dtype)
        ret = codec.decode(blob, out=out)
        assert ret.shape == smooth2d.shape
        assert np.shares_memory(ret, out)

    def test_decode_out_mismatches_raise(self, codec, smooth2d):
        blob = codec.encode(smooth2d)
        with pytest.raises(ValueError, match="values"):
            codec.decode(blob, out=np.empty(3, dtype=smooth2d.dtype))
        with pytest.raises(ValueError, match="dtype"):
            codec.decode(blob, out=np.empty_like(smooth2d, dtype=np.float64))

    def test_decode_out_noncontiguous_wrong_shape_rejected(
        self, codec, smooth2d
    ):
        # Right size but non-contiguous and differently shaped: reshape
        # would silently copy, leaving the caller's buffer untouched.
        blob = codec.encode(smooth2d)
        h, w = smooth2d.shape
        # transposed-shape strided view: right size/dtype, but viewing
        # it in the decoded shape is impossible — reshape would copy
        strided = np.empty((w * 2, h * 2), dtype=smooth2d.dtype)[::2, ::2]
        assert strided.size == smooth2d.size
        assert strided.shape != smooth2d.shape
        with pytest.raises(ValueError, match="non-contiguous"):
            codec.decode(blob, out=strided)

    def test_decode_out_strided_flat_view_filled_in_place(
        self, codec, smooth2d
    ):
        # A uniformly-strided flat buffer reshapes as a *view*; decode
        # must fill the caller's memory, not a hidden copy.
        blob = codec.encode(smooth2d)
        backing = np.empty(smooth2d.size * 2, dtype=smooth2d.dtype)
        ret = codec.decode(blob, out=backing[::2])
        assert np.shares_memory(ret, backing)
        np.testing.assert_array_equal(ret, codec.decode(blob))

    def test_decode_out_noncontiguous_same_shape_ok(self, codec, smooth2d):
        # Same decoded shape needs no reshape — strided views are fine.
        blob = codec.encode(smooth2d)
        backing = np.empty(
            (smooth2d.shape[0] * 2, smooth2d.shape[1]), dtype=smooth2d.dtype
        )
        strided = backing[::2]
        ret = codec.decode(blob, out=strided)
        assert ret is strided
        np.testing.assert_array_equal(strided, codec.decode(blob))

    def test_constant_container_honors_out(self, codec):
        data = np.full((6, 7), 2.5, dtype=np.float32)
        blob = codec.encode_with_stats(data)[0]
        out = np.empty_like(data)
        assert codec.decode(blob, out=out) is out
        np.testing.assert_array_equal(out, data)


class TestCodecTiledAccess:
    def test_encode_tiled_uses_config_tile_shape(self, smooth2d):
        codec = Codec(mode="rel", bound=1e-3, tile_shape=(16, 24))
        blob = codec.encode_tiled(smooth2d)
        reader = codec.open_reader(blob)
        assert reader.tile_shape == (16, 24)
        np.testing.assert_array_equal(
            reader.read_all(), codec.decode_tiled(blob)
        )
        reader.close()

    def test_region_and_writer_file(self, tmp_path, smooth2d):
        codec = Codec(mode="rel", bound=1e-3, tile_shape=(16, 24))
        blob = codec.encode_tiled(smooth2d)
        region = codec.decode_region(blob, (slice(0, 10), slice(5, 20)))
        np.testing.assert_array_equal(
            region, codec.decode_tiled(blob)[0:10, 5:20]
        )
        path = tmp_path / "t.szt"
        with codec.open_writer(path, smooth2d.shape, dtype=smooth2d.dtype) as w:
            w.write_array(smooth2d)
        np.testing.assert_array_equal(
            codec.decode_tiled(path), codec.decode_tiled(blob)
        )

    def test_encode_file(self, tmp_path, smooth2d):
        codec = Codec(mode="rel", bound=1e-3, tile_shape=(16, 24))
        src = tmp_path / "a.npy"
        dst = tmp_path / "a.szt"
        np.save(src, smooth2d)
        summary = codec.encode_file(src, dst)
        assert summary["n_tiles"] == codec.open_reader(dst).n_tiles
        np.testing.assert_array_equal(
            codec.decode_tiled(dst), codec.decode_tiled(codec.encode_tiled(smooth2d))
        )


class TestDeprecationShims:
    """Legacy keyword spellings warn and stay byte-identical."""

    def test_compress_legacy_warns_and_matches(self, smooth2d):
        with pytest.warns(DeprecationWarning, match="abs_bound/rel_bound"):
            legacy = compress(smooth2d, rel_bound=1e-4)
        assert legacy == compress(smooth2d, mode="rel", bound=1e-4)
        assert legacy == Codec(mode="rel", bound=1e-4).encode(smooth2d)

    def test_compress_with_stats_legacy_warns(self, smooth2d):
        with pytest.warns(DeprecationWarning):
            blob, stats = compress_with_stats(smooth2d, abs_bound=1e-2)
        assert stats.mode == "abs"
        assert blob == compress(smooth2d, mode="abs", bound=1e-2)

    def test_sz14compressor_legacy_warns_and_matches(self, smooth2d):
        with pytest.warns(DeprecationWarning):
            sz = repro.SZ14Compressor(rel_bound=1e-3)
        new = repro.SZ14Compressor(mode="rel", bound=1e-3)
        assert sz.compress(smooth2d) == new.compress(smooth2d)

    def test_sz14compressor_from_config(self, smooth2d):
        cfg = SZConfig(("rel", 1e-3), layers=2)
        sz = repro.SZ14Compressor(config=cfg)
        assert sz.layers == 2
        assert sz.compress(smooth2d) == compress(smooth2d, config=cfg)

    def test_tiled_legacy_warns_and_matches(self, smooth2d):
        with pytest.warns(DeprecationWarning):
            legacy = repro.compress_tiled(
                smooth2d, tile_shape=(16, 24), rel_bound=1e-3
            )
        cfg = SZConfig(("rel", 1e-3))
        assert legacy == repro.compress_tiled(
            smooth2d, tile_shape=(16, 24), config=cfg
        )

    def test_config_conflicts_rejected(self, smooth2d):
        cfg = SZConfig(("rel", 1e-3))
        with pytest.raises(ValueError, match="mutually exclusive"):
            compress(smooth2d, mode="abs", bound=1.0, config=cfg)
        with pytest.raises(ValueError, match="mutually exclusive"):
            repro.TiledWriter(
                __import__("io").BytesIO(), smooth2d.shape,
                (16, 24), mode="abs", bound=1.0, config=cfg,
            )

    def test_config_plus_knob_kwargs_rejected(self, smooth2d):
        # A knob passed alongside config= must raise, not be silently
        # dropped — on every shim.
        cfg = SZConfig(("rel", 1e-3))
        with pytest.raises(ValueError, match="mutually exclusive"):
            compress(smooth2d, layers=3, config=cfg)
        with pytest.raises(ValueError, match="mutually exclusive"):
            compress_with_stats(smooth2d, interval_bits=12, config=cfg)
        with pytest.raises(ValueError, match="mutually exclusive"):
            repro.SZ14Compressor(layers=4, config=cfg)

    def test_golden_blobs_via_every_path(self):
        """Old shims, new shims and Codec.encode emit identical bytes."""
        field = np.load(GOLDEN / "field_f32.npy")
        golden = (GOLDEN / "v1_abs_1e-3.sz").read_bytes()
        with pytest.warns(DeprecationWarning):
            assert compress(field, abs_bound=1e-3) == golden
        assert compress(field, mode="abs", bound=1e-3) == golden
        cfg = SZConfig(("abs", 1e-3))
        assert compress_array(field, cfg)[0] == golden
        assert Codec(cfg).encode(field) == golden
        assert Codec(cfg).encode(memoryview(field)) == golden

    def test_golden_moded_blob_via_codec(self):
        wide = np.load(GOLDEN / "wide_f64.npy")
        golden = (GOLDEN / "v2_moded_pwrel_1e-3.sz").read_bytes()
        assert Codec(mode="pw_rel", bound=1e-3).encode(wide) == golden

    def test_golden_tiled_blob_via_codec(self):
        field = np.load(GOLDEN / "field_f32.npy")
        golden = (GOLDEN / "v2_tiled_rel_1e-3.szt").read_bytes()
        codec = Codec(mode="rel", bound=1e-3, tile_shape=(8, 12))
        assert codec.encode_tiled(field) == golden
        # and the tiled decode path accepts a read-only memoryview
        np.testing.assert_array_equal(
            codec.decode_tiled(memoryview(golden)),
            np.load(GOLDEN / "v2_tiled_rel_1e-3.decoded.npy"),
        )
