"""Every example script must run to completion as a subprocess."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # deliverable: at least three runnable examples
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
