"""Shared fixtures and hypothesis settings for the repro test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property tests snappy; the invariants are cheap to falsify.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
# CI runs the differential-identity suite derandomized so both Python
# versions exercise the exact same example sequence — a failure there
# reproduces locally with HYPOTHESIS_PROFILE=ci.
settings.register_profile(
    "ci",
    max_examples=50,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture()
def smooth2d(rng: np.random.Generator) -> np.ndarray:
    """A small smooth-but-not-trivial 2-D field (float32)."""
    y, x = np.mgrid[0:48, 0:64]
    base = np.sin(x / 7.0) * np.cos(y / 5.0) + 0.05 * rng.standard_normal((48, 64))
    return base.astype(np.float32)


@pytest.fixture()
def spiky2d(rng: np.random.Generator) -> np.ndarray:
    """Smooth field with sharp spikes — the regime the paper targets."""
    field = np.outer(np.linspace(-1, 1, 40), np.linspace(0, 2, 56))
    spikes = rng.random((40, 56)) < 0.02
    field = field + spikes * rng.standard_normal((40, 56)) * 50.0
    return field.astype(np.float64)
