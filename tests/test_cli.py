"""Tests for the repro-sz command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig6", "fig10", "table8"):
            assert name in out


class TestRun:
    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table3", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "ATM" in out

    def test_run_model_experiment(self, capsys):
        assert main(["run", "table7"]) == 0
        out = capsys.readouterr().out
        assert "1024" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestCompressDecompress:
    def test_roundtrip_via_files(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "field.npy"
        comp = tmp_path / "field.sz"
        dst = tmp_path / "restored.npy"
        np.save(src, smooth2d)
        assert main(["compress", str(src), str(comp), "--rel", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "CF" in out
        assert main(["decompress", str(comp), str(dst)]) == 0
        restored = np.load(dst)
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        assert np.abs(restored - smooth2d).max() <= eb

    def test_abs_bound_and_options(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.sz"
        np.save(src, smooth2d)
        assert main([
            "compress", str(src), str(comp),
            "--abs", "0.01", "--layers", "2", "--bits", "10", "--adaptive",
        ]) == 0
        dst = tmp_path / "r.npy"
        assert main(["decompress", str(comp), str(dst)]) == 0
        assert np.abs(np.load(dst) - smooth2d).max() <= 0.01

    def test_default_bound_applied(self, tmp_path, smooth2d):
        src = tmp_path / "g.npy"
        comp = tmp_path / "g.sz"
        np.save(src, smooth2d)
        assert main(["compress", str(src), str(comp)]) == 0  # default 1e-4
        dst = tmp_path / "h.npy"
        main(["decompress", str(comp), str(dst)])
        eb = 1e-4 * float(smooth2d.max() - smooth2d.min())
        assert np.abs(np.load(dst) - smooth2d).max() <= eb


class TestTiledCli:
    def test_tiled_roundtrip(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        dst = tmp_path / "r.npy"
        np.save(src, smooth2d)
        assert main([
            "compress", str(src), str(comp),
            "--rel", "1e-3", "--tile", "16,20", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "tiles" in out
        assert main(["decompress", str(comp), str(dst)]) == 0
        restored = np.load(dst)
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        assert np.abs(restored - smooth2d).max() <= eb

    def test_region_extraction_tiled(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        full = tmp_path / "full.npy"
        roi = tmp_path / "roi.npy"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--rel", "1e-3",
              "--tile", "16"])
        main(["decompress", str(comp), str(full)])
        assert main([
            "decompress", str(comp), str(roi), "--region", "5:14,60:",
        ]) == 0
        np.testing.assert_array_equal(
            np.load(roi), np.load(full)[5:14, 60:]
        )

    def test_region_extraction_v1_fallback(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.sz"
        roi = tmp_path / "roi.npy"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--rel", "1e-3"])
        assert main([
            "decompress", str(comp), str(roi), "--region", "5:14,60:",
        ]) == 0
        assert np.load(roi).shape == (9, 4)

    def test_bad_tile_spec(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        with pytest.raises(SystemExit, match="--tile"):
            main(["compress", str(src), str(tmp_path / "o.szt"),
                  "--rel", "1e-3", "--tile", "4x4"])

    def test_bad_region_spec(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--rel", "1e-3",
              "--tile", "16"])
        with pytest.raises(SystemExit, match="region"):
            main(["decompress", str(comp), str(tmp_path / "r.npy"),
                  "--region", "a:b"])

    def test_cubic_tile_single_int(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        np.save(src, smooth2d)
        assert main(["compress", str(src), str(comp), "--rel", "1e-3",
                     "--tile", "24"]) == 0
        capsys.readouterr()
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "(24, 24)" in out


class TestModeCli:
    def test_pw_rel_end_to_end(self, tmp_path, capsys, rng):
        data = (rng.standard_normal((30, 40)) *
                10.0 ** rng.integers(-5, 5, (30, 40))).astype(np.float64)
        src = tmp_path / "w.npy"
        comp = tmp_path / "w.sz"
        dst = tmp_path / "w_out.npy"
        np.save(src, data)
        assert main(["compress", str(src), str(comp),
                     "--mode", "pw_rel", "--bound", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "mode pw_rel" in out
        assert main(["decompress", str(comp), str(dst)]) == 0
        restored = np.load(dst)
        nz = data != 0
        rel_err = np.abs(restored[nz] - data[nz]) / np.abs(data[nz])
        assert rel_err.max() <= 1e-3

    def test_psnr_end_to_end(self, tmp_path, smooth2d):
        from repro.metrics import psnr

        src = tmp_path / "p.npy"
        comp = tmp_path / "p.sz"
        dst = tmp_path / "p_out.npy"
        np.save(src, smooth2d)
        assert main(["compress", str(src), str(comp),
                     "--mode", "psnr", "--bound", "66"]) == 0
        assert main(["decompress", str(comp), str(dst)]) == 0
        assert psnr(smooth2d, np.load(dst)) >= 66.0

    def test_info_reports_mode(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "m.npy"
        comp = tmp_path / "m.sz"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp),
              "--mode", "pw_rel", "--bound", "1e-3"])
        capsys.readouterr()
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "pw_rel" in out and "0.001" in out

    def test_info_reports_mode_tiled(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "mt.npy"
        comp = tmp_path / "mt.szt"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp),
              "--mode", "psnr", "--bound", "70", "--tile", "16"])
        capsys.readouterr()
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "tiled-v3" in out and "psnr" in out and "70" in out

    def test_tiled_pw_rel_region(self, tmp_path, smooth2d):
        src = tmp_path / "tr.npy"
        comp = tmp_path / "tr.szt"
        roi = tmp_path / "tr_roi.npy"
        full = tmp_path / "tr_full.npy"
        np.save(src, smooth2d)
        assert main(["compress", str(src), str(comp),
                     "--mode", "pw_rel", "--bound", "1e-3",
                     "--tile", "16"]) == 0
        main(["decompress", str(comp), str(full)])
        assert main(["decompress", str(comp), str(roi),
                     "--region", "5:14,60:"]) == 0
        np.testing.assert_array_equal(
            np.load(roi), np.load(full)[5:14, 60:]
        )

    def test_mode_without_bound_rejected(self, tmp_path, smooth2d):
        src = tmp_path / "x.npy"
        np.save(src, smooth2d)
        with pytest.raises(SystemExit, match="--bound"):
            main(["compress", str(src), str(tmp_path / "x.sz"),
                  "--mode", "psnr"])

    def test_mode_and_legacy_bound_rejected(self, tmp_path, smooth2d):
        src = tmp_path / "y.npy"
        np.save(src, smooth2d)
        with pytest.raises(SystemExit, match="exclusive"):
            main(["compress", str(src), str(tmp_path / "y.sz"),
                  "--mode", "abs", "--bound", "0.1", "--rel", "1e-3"])

    def test_bound_without_mode_rejected(self, tmp_path, smooth2d):
        src = tmp_path / "z.npy"
        np.save(src, smooth2d)
        with pytest.raises(SystemExit, match="--mode"):
            main(["compress", str(src), str(tmp_path / "z.sz"),
                  "--bound", "1e-3"])


class TestInfo:
    def test_info_prints_header(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.sz"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--rel", "1e-3"])
        capsys.readouterr()
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "float32" in out and "interval_bits" in out

    def test_info_tiled_container(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--rel", "1e-3",
              "--tile", "16"])
        capsys.readouterr()
        assert main(["info", str(comp)]) == 0
        out = capsys.readouterr().out
        assert "tiled-v2" in out
        assert "n_tiles" in out
        assert "tile CF" in out and "tile hit rate" in out

    def test_info_json_v1(self, tmp_path, capsys, smooth2d):
        import json as _json

        src = tmp_path / "f.npy"
        comp = tmp_path / "f.sz"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--mode", "abs",
              "--bound", "0.01"])
        capsys.readouterr()
        assert main(["info", "--json", str(comp)]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["file"] == str(comp)
        assert report["dtype"] == "float32" and report["mode"] == "abs"
        # the embedded config is a valid SZConfig.to_dict() payload
        from repro.api import SZConfig

        cfg = SZConfig.from_dict(report["config"])
        assert cfg.mode == "abs" and cfg.bound == 0.01

    def test_info_json_tiled(self, tmp_path, capsys, smooth2d):
        import json as _json

        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--mode", "pw_rel",
              "--bound", "1e-3", "--tile", "16"])
        capsys.readouterr()
        assert main(["info", "--json", str(comp)]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["format"] == "tiled-v3"
        assert report["config"]["mode"] == "pw_rel"
        assert report["config"]["bound"] == 1e-3
        assert report["config"]["tile_shape"] == [16, 16]
        assert isinstance(report["tile_bytes"], list)


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestAblation:
    def test_ablation_entropy(self, capsys):
        assert main(["ablation", "entropy", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Huffman" in out and "arithmetic" in out

    def test_ablation_tiles(self, capsys):
        assert main(["ablation", "tiles", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "whole array (v1)" in out and "roi_read" in out

    def test_ablation_modes(self, capsys):
        assert main(["ablation", "modes", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        for mode in ("abs", "rel", "pw_rel", "psnr"):
            assert mode in out
        assert "bound_held" in out and "False" not in out


class TestEstimateCli:
    def test_estimate_npy(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        assert main(["estimate", str(src), "--mode", "rel",
                     "--bound", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "predicted ratio" in out and "sampled" in out

    def test_estimate_json_matches_real_ratio(self, tmp_path, capsys, smooth2d):
        import json as _json

        src = tmp_path / "f.npy"
        comp = tmp_path / "f.sz"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--mode", "rel",
              "--bound", "1e-3"])
        capsys.readouterr()
        assert main(["estimate", str(src), "--mode", "rel", "--bound", "1e-3",
                     "--fraction", "0.3", "--json"]) == 0
        est = _json.loads(capsys.readouterr().out)
        actual = smooth2d.nbytes / comp.stat().st_size
        assert est["method"] == "sampled"
        assert abs(est["ratio"] / actual - 1.0) <= 0.15
        assert est["ratio_low"] <= est["ratio"] <= est["ratio_high"]

    def test_estimate_container_as_is(self, tmp_path, capsys, smooth2d):
        import json as _json

        src = tmp_path / "f.npy"
        comp = tmp_path / "f.szt"
        np.save(src, smooth2d)
        main(["compress", str(src), str(comp), "--mode", "rel",
              "--bound", "1e-3", "--tile", "16"])
        capsys.readouterr()
        assert main(["estimate", str(comp), "--json"]) == 0
        est = _json.loads(capsys.readouterr().out)
        assert est["method"] == "footer"
        assert est["ratio"] == pytest.approx(
            smooth2d.nbytes / comp.stat().st_size
        )

    def test_estimate_mode_requires_bound(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        with pytest.raises(SystemExit):
            main(["estimate", str(src), "--mode", "rel"])


class TestTuneCli:
    def test_tune_hits_target_ratio(self, tmp_path, capsys, smooth2d):
        import json as _json

        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        assert main(["tune", str(src), "--target-ratio", "6",
                     "--fraction", "0.3", "--verify", "--json"]) == 0
        rep = _json.loads(capsys.readouterr().out)
        assert rep["converged"] is True
        assert rep["actual_ratio"] is not None
        assert abs(rep["actual_ratio"] / 6.0 - 1.0) <= 0.10
        assert rep["n_trials"] == len(rep["trials"]) >= 1

    def test_tune_prints_trials(self, tmp_path, capsys, smooth2d):
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        assert main(["tune", str(src), "--target-ratio", "6",
                     "--fraction", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "trial" in out and "converged" in out

    def test_tune_requires_exactly_one_target(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        with pytest.raises(SystemExit):
            main(["tune", str(src)])
        with pytest.raises(SystemExit):
            main(["tune", str(src), "--target-ratio", "6",
                  "--target-psnr", "60"])


class TestConstantContainerInfo:
    def test_info_json_constant_keeps_config(self, tmp_path, capsys):
        """A constant field's container must still report the requested
        mode/bound so the tuner can seed a search from it."""
        import json as _json

        data = np.full((64, 64), 2.5, dtype=np.float32)
        src = tmp_path / "c.npy"
        comp = tmp_path / "c.sz"
        np.save(src, data)
        main(["compress", str(src), str(comp), "--mode", "rel",
              "--bound", "1e-3"])
        capsys.readouterr()
        assert main(["info", "--json", str(comp)]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["constant"] is True
        from repro.api import SZConfig

        cfg = SZConfig.from_dict(report["config"])
        assert cfg.mode == "rel" and cfg.bound == 1e-3

    def test_constant_roundtrip_still_exact(self, tmp_path, capsys):
        data = np.full((48, 32), -1.5, dtype=np.float64)
        src = tmp_path / "c.npy"
        comp = tmp_path / "c.sz"
        dst = tmp_path / "c_out.npy"
        np.save(src, data)
        main(["compress", str(src), str(comp), "--mode", "rel",
              "--bound", "1e-3"])
        assert main(["decompress", str(comp), str(dst)]) == 0
        np.testing.assert_array_equal(np.load(dst), data)
