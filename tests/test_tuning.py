"""Tests for repro.tuning: sampler, estimator, and auto-tuner.

The subsystem's contract has three legs, each pinned here:

* **determinism** — the same ``(source, fraction, seed)`` request always
  selects the same blocks and produces the identical estimate/tune
  trace;
* **accuracy** — predicted ratios track real compression within the
  documented envelope (the full corpus runs in
  ``python -m repro.tuning.validation``; a trimmed sweep runs here);
* **convergence** — the tuner lands within its tolerance of reachable
  targets, because the ratio-vs-bound curve it searches is monotone.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import Codec, SZConfig
from repro.chunked.tiled import compress_tiled
from repro.core.compressor import compress_array
from repro.datasets.fields import (
    gaussian_random_field,
    ridged_field,
    sparse_patches,
)
from repro.tuning import autotune, config_from_container, estimate
from repro.tuning.estimator import _assembly_plan, _grid_dims, _plane_count
from repro.tuning.sampler import draw_sample
from repro.tuning.validation import ENVELOPE

SHAPE = (24, 32, 32)


@pytest.fixture(scope="module")
def smooth3d() -> np.ndarray:
    return gaussian_random_field(SHAPE, beta=3.5, seed=7).astype(np.float32)


@pytest.fixture(scope="module")
def turbulent3d() -> np.ndarray:
    return ridged_field(SHAPE, beta=1.5, seed=8).astype(np.float32)


class TestSampler:
    def test_same_seed_same_blocks(self, smooth3d):
        a = draw_sample(smooth3d, fraction=0.1, seed=3)
        b = draw_sample(smooth3d, fraction=0.1, seed=3)
        assert a.block_indices == b.block_indices
        for x, y in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(x, y)

    def test_different_seed_different_blocks(self, smooth3d):
        a = draw_sample(smooth3d, fraction=0.1, seed=3)
        b = draw_sample(smooth3d, fraction=0.1, seed=4)
        assert a.block_indices != b.block_indices

    def test_at_least_two_blocks(self, smooth3d):
        s = draw_sample(smooth3d, fraction=1e-9, seed=0)
        assert len(s.blocks) == 2

    def test_fraction_validated(self, smooth3d):
        with pytest.raises(ValueError, match="fraction"):
            draw_sample(smooth3d, fraction=0.0, seed=0)
        with pytest.raises(ValueError, match="fraction"):
            draw_sample(smooth3d, fraction=1.5, seed=0)

    def test_npy_path_matches_array(self, tmp_path, smooth3d):
        path = tmp_path / "field.npy"
        np.save(path, smooth3d)
        a = draw_sample(smooth3d, fraction=0.1, seed=1)
        b = draw_sample(path, fraction=0.1, seed=1)
        assert b.source_kind == "npy"
        assert a.block_indices == b.block_indices
        for x, y in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(x, y)

    def test_container_sample_carries_features(self, smooth3d):
        blob = compress_tiled(smooth3d, mode="rel", bound=1e-3)
        s = draw_sample(blob, fraction=0.2, seed=0)
        assert s.source_kind == "container"
        assert s.tile_features is not None
        assert s.container_info is not None
        assert s.container_info["mode"] == "rel"
        # footer features cover every tile, not just the sampled ones
        assert s.tile_features["n_values"].size == s.n_blocks_total

    def test_scalar_source_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            draw_sample(np.float32(1.0), fraction=0.1, seed=0)


class TestAssemblyPlan:
    @given(st.integers(min_value=1, max_value=200))
    def test_plan_covers_exactly_k_blocks(self, k):
        shape = (16, 16, 16)
        plan = _assembly_plan(k, shape)
        assert sum(int(np.prod(g, dtype=np.int64)) for g in plan) == k

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=3),
    )
    def test_grid_dims_product(self, k, ndim):
        dims = _grid_dims(k, ndim)
        assert len(dims) == ndim
        assert int(np.prod(dims, dtype=np.int64)) == k

    def test_plan_beats_standalone_blocks(self):
        # The whole point: fewer hyperplane launches than one-per-block.
        shape = (16, 16, 16)
        for k in (3, 8, 27, 31):
            plan = _assembly_plan(k, shape)
            standalone = [(1, 1, 1)] * k
            assert _plane_count(plan, shape) < _plane_count(standalone, shape)


class TestEstimateAccuracy:
    @pytest.mark.parametrize("mode,bound", [
        ("abs", 1e-3), ("rel", 1e-4), ("pw_rel", 1e-3),
    ])
    def test_smooth_within_envelope(self, smooth3d, mode, bound):
        data = smooth3d
        if mode == "abs":
            bound = 1e-3 * float(np.ptp(data.astype(np.float64)))
        cfg = SZConfig.from_kwargs(mode=mode, bound=bound)
        blob, _ = compress_array(data, cfg)
        est = estimate(data, cfg, fraction=0.05, seed=0)
        actual = data.nbytes / len(blob)
        assert abs(est.ratio / actual - 1.0) <= ENVELOPE

    def test_turbulent_within_envelope(self, turbulent3d):
        cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
        blob, _ = compress_array(turbulent3d, cfg)
        est = estimate(turbulent3d, cfg, fraction=0.05, seed=0)
        assert abs(est.ratio / (turbulent3d.nbytes / len(blob)) - 1.0) <= ENVELOPE

    def test_sparse_within_envelope(self):
        data = sparse_patches(SHAPE, coverage=0.15, seed=9).astype(np.float32)
        cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
        blob, _ = compress_array(data, cfg)
        est = estimate(data, cfg, fraction=0.05, seed=0)
        assert abs(est.ratio / (data.nbytes / len(blob)) - 1.0) <= ENVELOPE

    def test_full_fraction_is_near_exact(self, smooth3d):
        """fraction=1.0 measures every value; only the block-boundary
        contamination and the table-alphabet proxy separate the model
        from the real container size."""
        cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
        blob, _ = compress_array(smooth3d, cfg)
        est = estimate(smooth3d, cfg, fraction=1.0, seed=0)
        assert abs(est.predicted_bytes / len(blob) - 1.0) <= 0.10


class TestEstimateProperties:
    def test_deterministic(self, smooth3d):
        cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
        a = estimate(smooth3d, cfg, fraction=0.1, seed=5)
        b = estimate(smooth3d, cfg, fraction=0.1, seed=5)
        da, db = a.to_dict(), b.to_dict()
        da.pop("seconds"), db.pop("seconds")
        assert da == db

    def test_ci_brackets_point_estimate(self, smooth3d):
        cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
        est = estimate(smooth3d, cfg, fraction=0.1, seed=0)
        assert est.ratio_low <= est.ratio <= est.ratio_high
        assert est.method == "sampled"
        assert est.n_blocks >= 2

    def test_max_error_bounded_by_eb(self, smooth3d):
        eb = 1e-3 * float(np.ptp(smooth3d.astype(np.float64)))
        cfg = SZConfig.from_kwargs(mode="abs", bound=eb)
        est = estimate(smooth3d, cfg, fraction=0.1, seed=0)
        assert est.max_abs_error is not None
        assert est.max_abs_error <= eb * (1 + 1e-12)

    def test_psnr_mode_reports_quality(self, smooth3d):
        cfg = SZConfig.from_kwargs(mode="psnr", bound=60.0)
        est = estimate(smooth3d, cfg, fraction=0.1, seed=0)
        assert est.psnr is not None and est.psnr > 0
        assert est.mode == "psnr"

    def test_constant_field_shortcut(self):
        data = np.full((32, 32, 32), 3.25, dtype=np.float32)
        cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
        est = estimate(data, cfg)
        assert est.method == "constant"
        assert est.ratio > 100.0

    def test_footer_method_is_exact(self, smooth3d):
        blob = compress_tiled(smooth3d, mode="rel", bound=1e-3)
        est = estimate(blob)
        assert est.method == "footer"
        assert est.ratio == pytest.approx(smooth3d.nbytes / len(blob))
        assert est.mode == "rel"

    def test_array_without_config_rejected(self, smooth3d):
        with pytest.raises(ValueError, match="config"):
            estimate(smooth3d)

    def test_codec_entry_point(self, smooth3d):
        codec = Codec(SZConfig.from_kwargs(mode="rel", bound=1e-4))
        est = codec.estimate(smooth3d, fraction=0.1, seed=0)
        assert est.method == "sampled"
        assert est.seed == 0


class TestMonotonicity:
    @given(
        st.tuples(
            st.floats(min_value=1e-5, max_value=1e-1),
            st.floats(min_value=1e-5, max_value=1e-1),
        )
    )
    def test_looser_bound_never_hurts_ratio(self, smooth3d, bounds):
        """The curve the tuner bisection relies on: ratio(bound) is
        non-decreasing in the bound (rel mode)."""
        lo, hi = sorted(bounds)
        cfg = SZConfig.from_kwargs(mode="rel", bound=lo)
        a = estimate(smooth3d, cfg, fraction=0.05, seed=0)
        b = estimate(smooth3d, cfg.replace(bound=hi), fraction=0.05, seed=0)
        assert b.ratio >= a.ratio * (1 - 1e-9)


class TestTuner:
    def test_converges_to_reachable_ratio(self, smooth3d):
        result = autotune(
            smooth3d, target_ratio=8.0, fraction=0.1, seed=0, verify=True
        )
        assert result.converged
        assert result.relative_miss <= result.rtol
        assert result.actual_ratio is not None
        # the acceptance criterion: land within 10% of the target for real
        assert abs(result.actual_ratio / 8.0 - 1.0) <= 0.10
        assert len(result.trials) >= 1
        assert result.config.error_bound.mode == "rel"

    def test_deterministic_trial_sequence(self, smooth3d):
        a = autotune(smooth3d, target_ratio=6.0, fraction=0.1, seed=0)
        b = autotune(smooth3d, target_ratio=6.0, fraction=0.1, seed=0)
        assert [t.config.bound for t in a.trials] == [
            t.config.bound for t in b.trials
        ]
        assert a.config.bound == b.config.bound

    def test_psnr_target(self, smooth3d):
        result = autotune(
            smooth3d,
            target_psnr=70.0,
            config=SZConfig.from_kwargs(mode="abs", bound=1e-3),
            fraction=0.1,
            seed=0,
        )
        assert result.converged
        assert result.predicted == pytest.approx(70.0, rel=result.rtol)

    def test_exactly_one_target_required(self, smooth3d):
        with pytest.raises(ValueError, match="exactly one"):
            autotune(smooth3d)
        with pytest.raises(ValueError, match="exactly one"):
            autotune(smooth3d, target_ratio=5.0, target_psnr=60.0)

    def test_container_seeds_search(self, smooth3d):
        blob = compress_tiled(smooth3d, mode="rel", bound=1e-3)
        cfg = config_from_container(blob)
        assert cfg.error_bound.mode == "rel"
        assert cfg.bound == pytest.approx(1e-3)
        result = autotune(blob, target_ratio=6.0, fraction=0.2, seed=0)
        assert result.config.error_bound.mode == "rel"

    def test_trial_log_serializes(self, smooth3d):
        result = autotune(smooth3d, target_ratio=6.0, fraction=0.1, seed=0)
        d = result.to_dict()
        assert d["n_trials"] == len(d["trials"])
        for t in d["trials"]:
            assert "bound" in t and "predicted" in t and "config_json" in t
