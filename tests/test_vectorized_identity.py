"""Byte-identity regression tests for the vectorized bit paths.

The entropy-coding hot paths (token-list ``BitWriter``, windowed
``pack_varlen``/``unpack_varlen``, batch Huffman table serialization,
vectorized ``EncodedStream`` framing) replaced scalar loops for speed.
Speed must be the *only* thing that changed: every property test here
pins the vectorized path to its retained scalar reference bit for bit.
The golden-blob fixtures (tests/test_golden_blobs.py) pin the same
contract end to end across PRs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import huffman_symbol_streams

import repro.encoding.huffman as hf
from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    ScalarBitWriter,
    _pack_varlen_bitplane,
    _unpack_varlen_bitplane,
    byte_windows64,
    pack_varlen,
    unpack_varlen,
)
from repro.encoding.huffman import EncodedStream, HuffmanCodec

# (value, width) field lists; widths cover the full scalar-writer range.
fields_strategy = st.lists(
    st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 64)),
    max_size=60,
)

# Mixed variable lengths in the windowed fast-path range.
varlen_strategy = st.lists(st.integers(0, 57), min_size=1, max_size=200)


def _random_values(lengths: np.ndarray, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Deliberately unmasked garbage in the high bits: pack_varlen must
    # store only the low `lengths[i]` bits.
    return rng.integers(0, 2**63, lengths.size, dtype=np.uint64)


class TestBitWriterIdentity:
    @given(fields_strategy)
    def test_token_writer_matches_scalar_reference(self, fields):
        fast, ref = BitWriter(), ScalarBitWriter()
        for value, width in fields:
            value &= (1 << width) - 1
            fast.write(value, width)
            ref.write(value, width)
        assert fast.bit_length == ref.bit_length
        assert fast.getvalue() == ref.getvalue()

    @given(st.lists(st.integers(0, 1), max_size=100))
    def test_write_bits_matches_scalar_reference(self, bits):
        fast, ref = BitWriter(), ScalarBitWriter()
        arr = np.array(bits, dtype=np.uint8)
        fast.write_bits(arr)
        ref.write_bits(arr)
        assert fast.getvalue() == ref.getvalue()

    @given(fields_strategy)
    def test_write_array_equals_per_field_writes(self, fields):
        values = np.array(
            [v & ((1 << w) - 1) for v, w in fields], dtype=np.uint64
        )
        lengths = np.array([w for _, w in fields], dtype=np.int64)
        bulk, scalar = BitWriter(), BitWriter()
        bulk.write_array(values, lengths)
        for v, w in zip(values, lengths):
            scalar.write(int(v), int(w))
        assert bulk.getvalue() == scalar.getvalue()

    def test_wide_field_split(self):
        # Fields wider than 64 bits still serialize MSB-first.
        fast, ref = BitWriter(), ScalarBitWriter()
        value = (0xDEADBEEFCAFEF00D << 36) | 0xABCDEF123
        fast.write(value, 100)
        ref.write(value, 100)
        assert fast.getvalue() == ref.getvalue()

    def test_write_array_snapshots_input(self):
        # Mutating the source array after the append must not change the
        # stream (write() consumes values eagerly; write_array must too).
        w = BitWriter()
        vals = np.array([0b101, 0b11], dtype=np.uint64)
        w.write_array(vals, np.array([3, 2]))
        vals[:] = 0
        ref = BitWriter()
        ref.write(0b101, 3)
        ref.write(0b11, 2)
        assert w.getvalue() == ref.getvalue()

    def test_write_array_rejects_overwide_values(self):
        import pytest

        w = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            w.write_array(np.array([4], dtype=np.uint64), np.array([2]))
        # zero-width fields are no-ops regardless of value (like write(v, 0))
        w.write_array(np.array([99], dtype=np.uint64), np.array([0]))
        assert w.bit_length == 0
        # 64-bit fields accept the full range
        w.write_array(
            np.array([2**64 - 1], dtype=np.uint64), np.array([64])
        )
        assert w.bit_length == 64


class TestPackVarlenIdentity:
    @given(varlen_strategy, st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_windowed_pack_matches_bitplane_reference(self, lens, seed):
        lengths = np.array(lens, dtype=np.int64)
        values = _random_values(lengths, seed)
        fast, n_fast = pack_varlen(values, lengths)
        ref, n_ref = _pack_varlen_bitplane(
            values.astype(np.uint64),
            lengths,
            int(lengths.sum()),
            max(int(lengths.max()), 1),
        )
        assert n_fast == n_ref
        assert fast.tobytes() == ref.tobytes()

    @given(varlen_strategy, st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_masked_hint_identical_for_clean_values(self, lens, seed):
        lengths = np.array(lens, dtype=np.int64)
        values = _random_values(lengths, seed)
        mask = np.where(
            lengths > 0,
            (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1),
            np.uint64(0),
        )
        clean = values & mask
        a, _ = pack_varlen(clean, lengths)
        b, _ = pack_varlen(clean, lengths, masked=True)
        assert a.tobytes() == b.tobytes()

    @given(varlen_strategy, st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_windowed_unpack_matches_reference_and_roundtrips(
        self, lens, seed
    ):
        lengths = np.array(lens, dtype=np.int64)
        values = _random_values(lengths, seed)
        mask = np.where(
            lengths > 0,
            (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1),
            np.uint64(0),
        )
        expected = values & mask
        buf, _ = pack_varlen(values, lengths)
        out = unpack_varlen(buf, lengths)
        np.testing.assert_array_equal(out, expected)
        if int(lengths.min()) != int(lengths.max()):
            ref = _unpack_varlen_bitplane(
                np.asarray(buf, dtype=np.uint8),
                lengths,
                0,
                int(lengths.sum()),
                int(lengths.max()),
            )
            np.testing.assert_array_equal(out, ref)

    def test_pack_against_scalar_writer_large(self):
        rng = np.random.default_rng(42)
        lengths = rng.integers(0, 58, 3000)
        values = rng.integers(0, 2**63, 3000, dtype=np.uint64)
        buf, nbits = pack_varlen(values, lengths)
        w = ScalarBitWriter()
        for v, width in zip(values, lengths):
            w.write(int(v) & ((1 << int(width)) - 1), int(width))
        assert nbits == w.bit_length
        assert buf.tobytes() == w.getvalue()


class TestByteWindows:
    def test_windows_cover_padded_reads(self):
        rng = np.random.default_rng(0)
        buf = rng.integers(0, 256, 33, dtype=np.uint8)
        win = byte_windows64(buf)
        assert win.size == buf.size + 1
        r = BitReader(buf.tobytes())
        for k in range(buf.size + 1):
            padded = np.concatenate([buf, np.zeros(8, dtype=np.uint8)])
            expect = int.from_bytes(padded[k : k + 8].tobytes(), "big")
            assert int(win[k]) == expect
        # spot-check against BitReader for in-range windows
        r.seek(8 * 3)
        assert (int(win[3]) >> 32) == r.read(32)


def _codec_from_freqs(freqs) -> HuffmanCodec:
    return HuffmanCodec.from_frequencies(np.asarray(freqs, dtype=np.int64))


freqs_strategy = st.lists(st.integers(0, 1000), min_size=1, max_size=300)


class TestHuffmanTableIdentity:
    @given(freqs_strategy)
    @settings(max_examples=60)
    def test_write_table_matches_scalar_reference(self, freqs):
        codec = _codec_from_freqs(freqs)
        fast, ref = BitWriter(), BitWriter()
        codec.write_table(fast)
        codec.write_table_scalar(ref)
        assert fast.getvalue() == ref.getvalue()

    @given(freqs_strategy)
    @settings(max_examples=60)
    def test_read_table_matches_scalar_reference(self, freqs):
        codec = _codec_from_freqs(freqs)
        w = BitWriter()
        codec.write_table(w)
        w.write(0x5A, 8)  # trailing payload noise the parser must ignore
        blob = w.getvalue()
        fast = HuffmanCodec.read_table(BitReader(blob))
        ref = HuffmanCodec.read_table_scalar(BitReader(blob))
        np.testing.assert_array_equal(fast.lengths, ref.lengths)
        np.testing.assert_array_equal(fast.lengths, codec.lengths)

    def test_long_zero_and_value_runs_chunk_correctly(self):
        # Zero runs > 2^16 - 1 and value runs > 2^12 - 1 exercise the
        # chunk-splitting grammar paths.  8192 length-13 codes saturate
        # the Kraft sum exactly (8192 * 2^-13 == 1), so the table is a
        # valid prefix code with a 8192-long value run and a 71808-long
        # zero run.
        lengths = np.zeros(80000, dtype=np.int64)
        lengths[:8192] = 13
        codec = HuffmanCodec(lengths)
        fast, ref = BitWriter(), BitWriter()
        codec.write_table(fast)
        codec.write_table_scalar(ref)
        assert fast.getvalue() == ref.getvalue()
        back = HuffmanCodec.read_table(BitReader(fast.getvalue()))
        np.testing.assert_array_equal(back.lengths, codec.lengths)


class TestEncodedStreamIdentity:
    def _reference_bytes(self, stream: EncodedStream) -> bytes:
        w = ScalarBitWriter()
        w.write(stream.n_symbols, 48)
        w.write(stream.block_size, 32)
        w.write(len(stream.payload), 48)
        for b in stream.block_bits:
            w.write(int(b), 40)
        return w.getvalue() + stream.payload.tobytes()

    @given(
        st.integers(1, 5000),
        st.integers(16, 512),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40)
    def test_framing_matches_scalar_reference(self, n, block, seed):
        rng = np.random.default_rng(seed)
        symbols = rng.integers(0, 17, n)
        codec = HuffmanCodec.from_symbols(symbols, 17)
        stream = codec.encode(symbols, block_size=block)
        blob = stream.to_bytes()
        assert blob == self._reference_bytes(stream)
        back = EncodedStream.from_bytes(blob)
        assert back.n_symbols == stream.n_symbols
        assert back.block_size == stream.block_size
        np.testing.assert_array_equal(back.block_bits, stream.block_bits)
        np.testing.assert_array_equal(back.payload, stream.payload)

    @given(
        st.integers(1, 4000),
        st.integers(8, 300),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40)
    def test_windowed_decode_matches_scalar_decoder(self, n, block, seed):
        rng = np.random.default_rng(seed)
        # Skewed distribution: long and short codewords both present.
        symbols = np.minimum(
            rng.geometric(0.3, n) - 1, 40
        ).astype(np.int64)
        codec = HuffmanCodec.from_symbols(symbols, 41)
        stream = codec.encode(symbols, block_size=block)
        np.testing.assert_array_equal(codec.decode(stream), symbols)
        np.testing.assert_array_equal(
            codec.decode_scalar(stream), symbols
        )

    def test_unmaterialized_window_fallback_decodes_identically(
        self, monkeypatch
    ):
        # Payloads above the materialization limit gather windows per
        # round; force that path and check it agrees with the fast one.
        rng = np.random.default_rng(7)
        symbols = np.minimum(rng.geometric(0.4, 20000) - 1, 30)
        codec = HuffmanCodec.from_symbols(symbols, 31)
        stream = codec.encode(symbols, block_size=256)
        fast = codec.decode(stream)
        monkeypatch.setattr(hf, "_WINDOW_MATERIALIZE_LIMIT", 0)
        slow = codec.decode(stream)
        np.testing.assert_array_equal(fast, slow)
        np.testing.assert_array_equal(slow, symbols)


# Decode-table variants, forced via the module thresholds.  The cache
# keys on the threshold values, so patched runs can never serve (or
# poison) a table built under different thresholds.
VARIANTS = {
    "multi": {},  # default for max_len <= _MULTI_TABLE_BITS
    "flat": {"_MULTI_TABLE_BITS": 0, "_FLAT_TABLE_BITS": 20},
    "two_level": {"_MULTI_TABLE_BITS": 0, "_FLAT_TABLE_BITS": 0},
}

_EXPECTED_TABLES = {
    "multi": hf._MultiTables,
    "flat": hf._TwoLevelTables,
    "two_level": hf._TwoLevelTables,
}


def _decode_with_variant(
    codec: HuffmanCodec, stream: EncodedStream, variant: str
) -> np.ndarray:
    with pytest.MonkeyPatch.context() as mp:
        for name, value in VARIANTS[variant].items():
            mp.setattr(hf, name, value)
        fresh = HuffmanCodec(codec.lengths)
        tables = fresh._build_decode_tables()
        assert isinstance(tables, _EXPECTED_TABLES[variant])
        if variant == "flat":
            assert tables.secondary.size == 0
        return fresh.decode(stream)


class TestDecodeVariantIdentity:
    """Every decode-table variant pitted against ``decode_scalar``."""

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_single_symbol_alphabet(self, variant):
        codec = HuffmanCodec(np.array([1], dtype=np.int64))
        symbols = np.zeros(777, dtype=np.int64)
        stream = codec.encode(symbols, block_size=100)
        np.testing.assert_array_equal(
            _decode_with_variant(codec, stream, variant), symbols
        )
        np.testing.assert_array_equal(codec.decode_scalar(stream), symbols)

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_skewed_frequencies(self, variant):
        rng = np.random.default_rng(11)
        symbols = np.minimum(rng.geometric(0.55, 6000) - 1, 200).astype(
            np.int64
        )
        codec = HuffmanCodec.from_symbols(symbols, 201)
        stream = codec.encode(symbols, block_size=192)
        got = _decode_with_variant(codec, stream, variant)
        np.testing.assert_array_equal(got, symbols)
        np.testing.assert_array_equal(codec.decode_scalar(stream), symbols)

    def test_max_depth_32_codes(self):
        # A depth-32 chain code: lengths 1..31 plus two 32s saturate the
        # Kraft sum exactly.  max_len = 32 always routes to the
        # two-level tables (the deep prefixes share one subtable).
        lengths = np.concatenate(
            [np.arange(1, 32, dtype=np.int64), [32, 32]]
        )
        codec = HuffmanCodec(lengths)
        assert codec.max_len == HuffmanCodec.MAX_DECODE_LEN
        rng = np.random.default_rng(5)
        # Mix shallow symbols with the deepest codewords.
        symbols = rng.choice(
            np.array([0, 1, 2, 30, 31, 32]), size=400
        ).astype(np.int64)
        stream = codec.encode(symbols, block_size=37)
        assert isinstance(codec._build_decode_tables(), hf._TwoLevelTables)
        np.testing.assert_array_equal(codec.decode(stream), symbols)
        np.testing.assert_array_equal(codec.decode_scalar(stream), symbols)

    @given(case=huffman_symbol_streams())
    @settings(max_examples=40, deadline=None)
    def test_variants_match_scalar_reference(self, case):
        symbols, alphabet, block_size = case
        codec = HuffmanCodec.from_symbols(symbols, alphabet)
        stream = codec.encode(symbols, block_size=block_size)
        ref = codec.decode_scalar(stream)
        np.testing.assert_array_equal(ref, symbols)
        for variant in sorted(VARIANTS):
            got = _decode_with_variant(codec, stream, variant)
            np.testing.assert_array_equal(got, ref)


class TestDecodeScalarSeekPath:
    def test_unaligned_block_boundaries_at_payload_end(self):
        # Satellite regression: decode_scalar re-seeks the reader to
        # each block's bit offset.  With 2- and 1-bit codewords and a
        # 3-symbol block, every block boundary (and the payload end)
        # lands mid-byte — the seek path must still produce the exact
        # symbol sequence, matching the vectorized decoder.
        symbols = np.array(
            [0, 1, 2, 0, 1, 2, 2, 1, 0, 0, 1, 2, 0], dtype=np.int64
        )
        codec = HuffmanCodec.from_frequencies(
            np.array([10, 3, 2], dtype=np.int64)
        )
        stream = codec.encode(symbols, block_size=3)
        assert int(stream.block_bits.sum(dtype=np.int64)) % 8 != 0
        assert all(int(b) % 8 != 0 for b in stream.block_bits)
        np.testing.assert_array_equal(codec.decode_scalar(stream), symbols)
        np.testing.assert_array_equal(codec.decode(stream), symbols)


class TestDecodeTableCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        with hf._TABLE_CACHE_LOCK:
            hf._TABLE_CACHE.clear()
        yield
        with hf._TABLE_CACHE_LOCK:
            hf._TABLE_CACHE.clear()

    def test_identical_length_tables_share_one_build(self):
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 50, 2000).astype(np.int64)
        a = HuffmanCodec.from_symbols(symbols, 50)
        b = HuffmanCodec(a.lengths.copy())
        assert a._build_decode_tables() is b._build_decode_tables()

    def test_different_length_tables_do_not_cross_talk(self):
        # Two codecs, two different length arrays: each stream must
        # decode through its own table even when decodes interleave.
        rng = np.random.default_rng(4)
        sym_a = rng.integers(0, 17, 1500).astype(np.int64)
        sym_b = np.minimum(rng.geometric(0.8, 1500) - 1, 250).astype(
            np.int64
        )
        a = HuffmanCodec.from_symbols(sym_a, 17)
        b = HuffmanCodec.from_symbols(sym_b, 251)
        assert not np.array_equal(a.lengths, b.lengths)
        stream_a = a.encode(sym_a, block_size=128)
        stream_b = b.encode(sym_b, block_size=128)
        np.testing.assert_array_equal(a.decode(stream_a), sym_a)
        np.testing.assert_array_equal(b.decode(stream_b), sym_b)
        np.testing.assert_array_equal(a.decode(stream_a), sym_a)
        assert a._build_decode_tables() is not b._build_decode_tables()

    def test_cache_telemetry_counters(self):
        from repro.obs import Collector

        rng = np.random.default_rng(6)
        symbols = rng.integers(0, 30, 800).astype(np.int64)
        with Collector() as col:
            first = HuffmanCodec.from_symbols(symbols, 30)
            stream = first.encode(symbols, block_size=64)
            first.decode(stream)
            again = HuffmanCodec(first.lengths.copy())
            again.decode(stream)
        assert col.counters["huffman/table_cache_misses"] == 1.0
        assert col.counters["huffman/table_cache_hits"] == 1.0
        assert col.counters["huffman/rounds"] >= 2.0
        assert "huffman/symbols_per_lookup" in col.observations

    def test_cache_eviction_keeps_decodes_correct(self, monkeypatch):
        monkeypatch.setattr(hf, "_TABLE_CACHE_SLOTS", 2)
        rng = np.random.default_rng(9)
        cases = []
        for alphabet in (3, 5, 9, 33):
            symbols = rng.integers(0, alphabet, 300).astype(np.int64)
            codec = HuffmanCodec.from_symbols(symbols, alphabet)
            cases.append((codec, codec.encode(symbols, block_size=64), symbols))
        for codec, stream, symbols in cases * 2:
            codec._decode_tables = None  # force a cache lookup each time
            np.testing.assert_array_equal(codec.decode(stream), symbols)
        assert len(hf._TABLE_CACHE) <= 2
