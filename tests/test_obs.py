"""Tests for repro.obs: span tracing, metrics, exports, cross-process merge.

The invariants pinned here are the ones the subsystem promises:

* spans nest correctly and carry attributes;
* the disabled path allocates nothing (shared null singletons);
* compressed bytes are identical with and without a collector;
* worker telemetry crosses the process pool and merges with per-worker
  lane attribution, deterministically (two runs, same tree shape);
* the run report validates against its schema and converts to a
  well-formed Chrome trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    SCHEMA,
    Collector,
    chrome_trace,
    metric_add,
    metric_hist,
    metric_observe,
    run_report,
    span,
    summarize_run_report,
    validate_run_report,
    write_run_report,
)
from repro.obs.tracer import _NULL_SPAN, active_collector, annotate
from repro.perf.timer import _NULL_STAGE, StageTimer, stage


class FakeClock:
    """Deterministic injected clock: advances a fixed step per read."""

    def __init__(self, start: float = 100.0, step: float = 0.5) -> None:
        self.t = start
        self.step = step

    def __call__(self) -> float:
        t = self.t
        self.t += self.step
        return t


def _field(shape=(24, 20, 20), seed=0):
    rng = np.random.default_rng(seed)
    smooth = np.sin(np.linspace(0, 20, int(np.prod(shape)))).reshape(shape)
    return (smooth + 0.01 * rng.standard_normal(shape)).astype(np.float32)


class TestSpans:
    def test_nesting_parents_and_attrs(self):
        with Collector() as col:
            with span("outer", kind="demo"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        assert [s.name for s in col.spans] == ["outer", "inner", "inner2"]
        assert [s.parent for s in col.spans] == [-1, 0, 0]
        assert col.spans[0].attrs == {"kind": "demo"}
        assert all(s.end >= s.start for s in col.spans)

    def test_annotate_attaches_to_innermost_open_span(self):
        with Collector() as col:
            with span("outer"):
                with span("inner"):
                    annotate(hit_rate=0.75)
            annotate(lost=True)  # no open span: dropped
        assert col.spans[1].attrs == {"hit_rate": 0.75}
        assert "lost" not in col.spans[0].attrs

    def test_injected_clock_times_spans(self):
        clock = FakeClock(start=10.0, step=1.0)
        col = Collector(clock=clock, wall_clock=lambda: 1234.5)
        assert col.anchor == 1234.5
        with col:
            with col.span("a"):
                pass
        # epoch read at construction (10.0); span start 11.0, end 12.0.
        assert col.spans[0].start == pytest.approx(1.0)
        assert col.spans[0].end == pytest.approx(2.0)

    def test_reentrant_activation_accumulates(self):
        col = Collector()
        with col:
            with span("first"):
                pass
        with col:
            with span("second"):
                pass
        assert [s.name for s in col.spans] == ["first", "second"]
        assert active_collector() is None

    def test_null_singleton_when_inactive(self):
        assert active_collector() is None
        assert span("anything") is _NULL_SPAN
        assert stage("anything") is _NULL_STAGE
        # module-level metric hooks are no-ops, not errors
        metric_add("x")
        metric_observe("x", 1.0)
        metric_hist("x", [1, 2])

    def test_mispaired_end_span_recovers(self):
        col = Collector()
        a = col.start_span("a")
        col.start_span("b")
        col.end_span(a)  # closes a with b still open: stack is repaired
        assert col._stack == []
        c = col.start_span("c")
        assert col.spans[c].parent == -1


class TestMetrics:
    def test_counters_observations_histograms(self):
        col = Collector()
        col.add("n")
        col.add("n", 2.5)
        col.observe("v", 3.0)
        col.observe("v", 1.0)
        col.hist("h", [1, 2])
        col.hist("h", [0, 1, 4])  # longer histogram zero-pads the old
        assert col.counters["n"] == 3.5
        assert col.observations["v"] == {
            "count": 2.0, "sum": 4.0, "min": 1.0, "max": 3.0,
        }
        assert col.histograms["h"] == [1, 3, 4]

    def test_module_helpers_route_to_active_collector(self):
        with Collector() as col:
            metric_add("c", 2)
            metric_observe("o", 7.0)
            metric_hist("h", [5])
        assert col.counters["c"] == 2
        assert col.observations["o"]["max"] == 7.0
        assert col.histograms["h"] == [5]


class TestCodecTelemetry:
    def test_compress_metrics_match_stats(self):
        from repro.core import compress_with_stats

        data = _field((40, 50))
        with Collector() as col:
            _, stats = compress_with_stats(data, mode="abs", bound=1e-3)
        assert col.counters["quantize/outliers"] == stats.n_unpredictable
        assert col.counters["quantize/values"] == stats.n_values
        assert col.counters["compress/calls"] == 1
        assert col.observations["compress/factor"]["max"] == pytest.approx(
            stats.compression_factor
        )
        names = [s.name for s in col.spans]
        assert names[0] == "compress"
        assert "quantize" in names and "entropy" in names
        assert col.spans[0].attrs["mode"] == "abs"
        assert col.spans[0].attrs["shape"] == (40, 50)

    def test_huffman_table_metrics(self):
        from repro.core import compress

        with Collector() as col:
            compress(_field((40, 50)), mode="abs", bound=1e-3)
        hist = col.histograms["huffman/code_lengths"]
        depth = col.observations["huffman/table_depth"]["max"]
        assert sum(hist) > 0
        # the deepest populated bin is the table depth
        assert len(hist) - 1 == int(depth)
        assert col.observations["huffman/table_symbols"]["max"] == sum(hist)

    def test_pw_rel_repair_and_decompress_counters(self):
        from repro.core import compress, decompress

        data = _field((30, 30))
        with Collector() as col:
            blob = compress(data, mode="pw_rel", bound=1e-3)
            decompress(blob)
        assert "pw_rel/repairs" in col.counters  # present even when 0
        assert col.counters["decompress/calls"] == 1
        assert "decompress" in [s.name for s in col.spans]

    def test_bytes_identical_with_and_without_collector(self):
        from repro.chunked.tiled import compress_tiled
        from repro.core import compress

        data = _field()
        for kwargs in (
            {"mode": "abs", "bound": 1e-3},
            {"mode": "pw_rel", "bound": 1e-3},
        ):
            plain = compress(data, **kwargs)
            with Collector():
                traced = compress(data, **kwargs)
            assert traced == plain
        plain = compress_tiled(data, tile_shape=(8, 10, 10), mode="abs",
                               bound=1e-3, workers=2)
        with Collector():
            traced = compress_tiled(data, tile_shape=(8, 10, 10), mode="abs",
                                    bound=1e-3, workers=2)
        assert traced == plain

    def test_codec_accepts_collector(self):
        from repro.api import Codec

        col = Collector()
        codec = Codec(config=None, collector=col, mode="abs", bound=1e-3)
        data = _field((20, 20))
        blob = codec.encode(data)
        codec.decode(blob)
        assert col.counters["compress/calls"] == 1
        assert col.counters["decompress/calls"] == 1
        # runtime state: excluded from identity and config round-trip
        assert codec == Codec(mode="abs", bound=1e-3)
        assert "collector" not in codec.get_config()

    def test_crc_verify_metrics(self):
        from repro.chunked.tiled import compress_tiled, decompress_tiled

        blob = compress_tiled(_field(), tile_shape=(8, 10, 10),
                              mode="abs", bound=1e-3)
        with Collector() as col:
            decompress_tiled(blob)
        assert col.counters["crc/verified"] == 12
        assert "crc/mismatch" not in col.counters


class TestRunReport:
    def _collected(self):
        with Collector() as col:
            with span("outer", kind="t"):
                with span("inner"):
                    metric_add("things", 2)
                    metric_observe("size", 5.0)
                    metric_hist("lens", [0, 3, 1])
        return col

    def test_schema_and_validation(self, tmp_path):
        col = self._collected()
        report = write_run_report(col, tmp_path / "run.json")
        assert report["schema"] == SCHEMA
        on_disk = json.loads((tmp_path / "run.json").read_text())
        validate_run_report(on_disk)
        assert on_disk == json.loads(json.dumps(report))
        assert [s["name"] for s in on_disk["spans"]] == ["outer", "inner"]

    def test_tampered_reports_rejected(self):
        good = run_report(self._collected())

        def broken(**patch):
            bad = json.loads(json.dumps(good))
            bad.update(patch)
            return bad

        with pytest.raises(ValueError, match="schema"):
            validate_run_report(broken(schema="other/9"))
        bad = broken()
        del bad["lanes"]
        with pytest.raises(ValueError, match="lanes"):
            validate_run_report(bad)
        bad = broken()
        bad["spans"][1]["parent"] = 99
        with pytest.raises(ValueError, match="parent"):
            validate_run_report(bad)
        bad = broken()
        bad["spans"][0]["parent"] = 0
        with pytest.raises(ValueError, match="own parent"):
            validate_run_report(bad)
        bad = broken()
        bad["spans"][0]["end"] = bad["spans"][0]["start"] - 1.0
        with pytest.raises(ValueError, match="ends before"):
            validate_run_report(bad)
        bad = broken()
        bad["counters"]["things"] = "two"
        with pytest.raises(ValueError, match="not numeric"):
            validate_run_report(bad)
        bad = broken()
        bad["histograms"]["lens"] = [1, "x"]
        with pytest.raises(ValueError, match="list of ints"):
            validate_run_report(bad)

    def test_chrome_trace_structure(self):
        col = self._collected()
        trace = chrome_trace(col)
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        assert [e["name"] for e in complete] == ["outer", "inner"]
        for e in complete:
            assert e["dur"] >= 0.0
            assert e["tid"] == 0
        # microsecond timestamps: inner starts at or after outer
        outer, inner = complete
        assert inner["ts"] >= outer["ts"]
        # loadable: the whole document is JSON-serializable
        json.dumps(trace)

    def test_summary_lists_spans_and_metrics(self):
        text = summarize_run_report(run_report(self._collected()))
        assert "outer" in text and "inner" in text
        assert "things" in text and "size" in text and "lens" in text


class TestCrossProcess:
    TILE_KW = dict(tile_shape=(8, 10, 10), mode="abs", bound=1e-3, workers=2)

    def _traced_run(self):
        from repro.chunked.tiled import compress_tiled

        with Collector() as col:
            compress_tiled(_field(), **self.TILE_KW)
        return col

    def test_tile_spans_attributed_to_workers(self):
        col = self._traced_run()
        tiles = [s for s in col.spans if s.name == "tile"]
        assert len(tiles) == 12  # 3 x 2 x 2 grid
        assert sorted(s.attrs["tile"] for s in tiles) == list(range(12))
        assert len(col.lane_pids) >= 2  # lane 0 (parent) + worker lane(s)
        for s in tiles:
            assert s.lane >= 1
            assert s.attrs["worker_pid"] == col.lane_pids[s.lane]
            assert "item" in s.attrs
        # every worker span is parented inside the merged tree
        children = [s for s in col.spans if s.name == "compress" and s.lane >= 1]
        assert len(children) == 12
        for s in children:
            assert col.spans[s.parent].name == "tile"

    def test_worker_metrics_reach_parent(self):
        col = self._traced_run()
        assert col.counters["tile/count"] == 12
        assert col.counters["quantize/values"] == 9600
        assert col.counters["quantize/outliers"] > 0
        assert col.observations["tile/compression_factor"]["count"] == 12
        assert sum(col.histograms["huffman/code_lengths"]) > 0

    def test_merge_determinism(self):
        def shape(col):
            return [
                (s.name, s.parent, s.attrs.get("tile"), s.attrs.get("item"))
                for s in col.spans
            ]

        a, b = self._traced_run(), self._traced_run()
        assert shape(a) == shape(b)  # lane/pid/timing aside, same tree

    def test_merge_payload_aligns_anchors_and_lanes(self):
        parent = Collector(clock=FakeClock(0.0, 0.0), wall_clock=lambda: 100.0)
        worker = Collector(clock=FakeClock(0.0, 0.0), wall_clock=lambda: 101.5)
        idx = worker.start_span("w")
        worker.spans[idx].start, worker.spans[idx].end = 1.0, 2.0
        worker._stack.clear()
        worker.add("c", 3)
        payload = worker.to_payload()
        with parent.span("root"):
            parent.merge_payload(payload, attrs={"item": 7})
        merged = parent.spans[1]
        assert merged.name == "w"
        assert merged.start == pytest.approx(2.5)  # 1.0 + (101.5 - 100.0)
        assert merged.end == pytest.approx(3.5)
        assert merged.lane == 1
        assert merged.attrs["item"] == 7
        assert parent.spans[merged.parent].name == "root"
        assert parent.counters["c"] == 3
        # same pid merges to the same lane
        parent.merge_payload(payload)
        assert parent.spans[-1].lane == 1

    def test_pool_map_merges_worker_stage_records(self):
        from repro.chunked.tiled import compress_tiled

        with StageTimer() as t:
            compress_tiled(_field(), **self.TILE_KW)
        # before the telemetry job wrapper, workers>1 lost these records
        assert "quantize" in t.records
        assert t.records["quantize"].calls == 12
        assert t.records["quantize"].nbytes > 0

    def test_single_worker_path_unchanged(self):
        from repro.chunked.tiled import compress_tiled

        kw = dict(self.TILE_KW, workers=1)
        with Collector() as col, StageTimer() as t:
            compress_tiled(_field(), **kw)
        assert "quantize" in t.records
        tiles = [s for s in col.spans if s.name == "tile"]
        assert len(tiles) == 12
        assert all(s.lane == 0 for s in tiles)  # in-process: parent lane


class TestWavefrontPoolSplit:
    """workers>1 hyperplane splitting: determinism + telemetry lanes.

    The wavefront pool (PR 8) reuses the same ``pool_map`` plumbing as
    the tiled writers, so worker stage records and spans must keep
    merging — with distinct stage names (``quantize_worker``), since the
    parent's ``quantize`` stage already wraps the whole dispatch.
    """

    SHAPE = (16, 15, 5)

    @pytest.fixture(autouse=True)
    def _split_small_arrays(self, monkeypatch):
        import repro.core.wavefront as wf

        monkeypatch.setattr(wf, "_SPLIT_MIN_POINTS", 1)

    def _compress(self, workers):
        from repro.api import SZConfig
        from repro.core.compressor import compress_array

        cfg = SZConfig.from_kwargs(mode="abs", bound=1e-3, workers=workers)
        return compress_array(_field(self.SHAPE, seed=2), cfg)[0]

    def test_deterministic_and_byte_identical_across_worker_counts(self):
        from repro.core import decompress

        blobs = {w: self._compress(w) for w in (1, 2, 4)}
        assert blobs[1] == blobs[2] == blobs[4]
        base = decompress(blobs[1])
        for w in (1, 2, 4):
            np.testing.assert_array_equal(
                base, decompress(blobs[w], workers=w)
            )
        # determinism: a second run of each reproduces the same bytes
        assert self._compress(2) == blobs[2]

    def test_worker_lane_spans_in_merged_payload(self):
        from repro.core import decompress

        with Collector() as col:
            blob = self._compress(2)
        workers = [s for s in col.spans if s.name == "quantize_worker"]
        assert len(workers) == 2
        assert len(col.lane_pids) >= 2  # lane 0 (parent) + worker lanes
        for s in workers:
            assert s.lane >= 1
            assert s.attrs["worker_pid"] == col.lane_pids[s.lane]
            assert "item" in s.attrs
            # grafted under the parent's quantize stage span
            assert col.spans[s.parent].name == "quantize"
        with Collector() as dcol:
            decompress(blob, workers=2)
        dworkers = [s for s in dcol.spans if s.name == "dequantize_worker"]
        assert len(dworkers) == 2
        assert all(s.lane >= 1 for s in dworkers)

    def test_worker_stage_records_merge(self):
        with StageTimer() as t:
            self._compress(2)
        assert "quantize" in t.records  # parent wraps the dispatch
        assert t.records["quantize_worker"].calls == 2
        assert t.records["quantize_worker"].nbytes > 0


class TestDisabledOverhead:
    def test_disabled_hooks_allocate_nothing(self):
        assert span("x") is span("y") is _NULL_SPAN
        assert stage("x") is stage("y", nbytes=5) is _NULL_STAGE

    def test_disabled_hook_is_cheap(self):
        # Generous absolute guard: 200k disabled stage() calls are two
        # context-variable reads each and must stay far under a second
        # even on a loaded CI runner.
        import time as _time

        t0 = _time.perf_counter()
        for _ in range(200_000):
            with stage("hot"):
                pass
        assert _time.perf_counter() - t0 < 2.0


class TestFooterSummary:
    def test_summary_from_entries_without_decompression(self):
        from repro.chunked.streams import TiledReader
        from repro.chunked.tiled import compress_tiled

        blob = compress_tiled(_field(), tile_shape=(8, 10, 10),
                              mode="abs", bound=1e-3)
        with TiledReader(blob) as reader:
            info = reader.info()
        summary = info["tile_summary"]
        assert summary["n_tiles"] == 12
        assert summary["n_values"] == 9600
        assert sum(summary["hit_rate_hist"]) == 12
        assert sum(summary["mode_share_hist"]) == 12
        assert 0.0 <= summary["hit_rate"]["min"] <= summary["hit_rate"]["max"] <= 1.0
        assert summary["n_unpredictable"] == info["n_unpredictable"]

    def test_empty_entries(self):
        from repro.chunked.format import footer_summary

        assert footer_summary([]) == {"n_tiles": 0}


class TestCLI:
    def test_compress_trace_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "a.npy"
        np.save(src, _field())
        out = tmp_path / "a.sz"
        trace = tmp_path / "run.json"
        rc = main([
            "compress", str(src), str(out), "--mode", "abs", "--bound",
            "1e-3", "--tile", "8,10,10", "--workers", "2",
            "--trace", str(trace),
        ])
        assert rc == 0
        report = json.loads(trace.read_text())
        validate_run_report(report)
        assert any(s["name"] == "tile" for s in report["spans"])
        assert report["counters"]["tile/count"] == 12
        assert len(report["lanes"]) >= 2

        chrome_out = tmp_path / "chrome.json"
        rc = main(["trace", str(trace), "--chrome", str(chrome_out)])
        assert rc == 0
        chrome = json.loads(chrome_out.read_text())
        assert {e["ph"] for e in chrome["traceEvents"]} == {"M", "X"}
        text = capsys.readouterr().out
        assert "tile" in text

        # trace on the container itself: footer summary, no decompression
        rc = main(["trace", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "hit-rate hist" in text

    def test_trace_rejects_garbage(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/9"}')
        with pytest.raises(SystemExit, match="not a run report"):
            main(["trace", str(bad)])

    def test_decompress_trace(self, tmp_path):
        from repro.cli import main

        src = tmp_path / "a.npy"
        np.save(src, _field((20, 20)))
        out = tmp_path / "a.sz"
        back = tmp_path / "b.npy"
        trace = tmp_path / "run.json"
        assert main(["compress", str(src), str(out), "--mode", "abs",
                     "--bound", "1e-3"]) == 0
        assert main(["decompress", str(out), str(back),
                     "--trace", str(trace)]) == 0
        report = json.loads(trace.read_text())
        validate_run_report(report)
        assert report["counters"]["decompress/calls"] == 1
