"""Cross-module integration: the full (compressor x dataset x bound)
matrix of error-bound guarantees, plus cross-compressor sanity relations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FPZIPLike, GzipLike, ISABELA, ISABELAFailure, SZ11
from repro.core import compress, decompress
from repro.datasets import load
from repro.metrics import max_rel_error, pearson

ALL_VARIABLES = [
    ("ATM", "FREQSH"),
    ("ATM", "SNOWHLND"),
    ("ATM", "CDNUMC"),
    ("ATM", "TS"),
    ("ATM", "PHIS"),
    ("APS", "frame0"),
    ("Hurricane", "U"),
    ("Hurricane", "W"),
    ("Hurricane", "P"),
    ("Hurricane", "QVAPOR"),
]


@pytest.fixture(scope="module")
def variables():
    out = {}
    for dataset, var in ALL_VARIABLES:
        out[(dataset, var)] = load(dataset, scale="tiny")[var]
    return out


class TestSZ14BoundMatrix:
    @pytest.mark.parametrize("key", ALL_VARIABLES, ids=lambda k: f"{k[0]}.{k[1]}")
    @pytest.mark.parametrize("rel", [1e-3, 1e-5])
    def test_bound_holds_everywhere(self, variables, key, rel):
        data = variables[key]
        blob = compress(data, mode="rel", bound=rel)
        out = decompress(blob)
        assert max_rel_error(data, out) <= rel
        assert out.dtype == data.dtype and out.shape == data.shape

    @pytest.mark.parametrize("key", ALL_VARIABLES[:4], ids=lambda k: k[1])
    def test_huge_range_data_still_bounded(self, variables, key):
        """SZ-1.4's selling point vs ZFP: the bound holds even on CDNUMC-like
        ranges."""
        data = variables[key]
        blob = compress(data, mode="rel", bound=1e-4)
        assert max_rel_error(data, decompress(blob)) <= 1e-4


class TestSZ11BoundMatrix:
    @pytest.mark.parametrize(
        "key", [("ATM", "FREQSH"), ("Hurricane", "U")], ids=lambda k: k[1]
    )
    def test_bound(self, variables, key):
        data = variables[key]
        sz = SZ11(rel_bound=1e-3)
        out = sz.decompress(sz.compress(data))
        assert max_rel_error(data, out) <= 1e-3


class TestISABELABoundMatrix:
    @pytest.mark.parametrize(
        "key", [("ATM", "FREQSH"), ("APS", "frame0")], ids=lambda k: k[1]
    )
    def test_bound_or_clean_failure(self, variables, key):
        data = variables[key]
        isa = ISABELA(rel_bound=1e-3)
        try:
            out = isa.decompress(isa.compress(data))
        except ISABELAFailure:
            return
        assert max_rel_error(data, out) <= 1e-3


class TestLosslessMatrix:
    @pytest.mark.parametrize("key", ALL_VARIABLES[:6], ids=lambda k: k[1])
    def test_fpzip_exact(self, variables, key):
        data = variables[key]
        f = FPZIPLike()
        np.testing.assert_array_equal(f.decompress(f.compress(data)), data)

    def test_gzip_exact(self, variables):
        data = variables[("ATM", "SNOWHLND")]
        g = GzipLike()
        np.testing.assert_array_equal(g.decompress(g.compress(data)), data)


class TestCrossCompressorRelations:
    def test_sz14_beats_sz11_on_all_2d(self, variables):
        """The paper's core claim, across every 2-D variable."""
        for key in [("ATM", "FREQSH"), ("ATM", "TS"), ("APS", "frame0")]:
            data = variables[key]
            sz14 = len(compress(data, mode="rel", bound=1e-4))
            sz11 = len(SZ11(rel_bound=1e-4).compress(data))
            assert sz14 < sz11, key

    def test_correlation_five_nines_at_1e4(self, variables):
        data = variables[("ATM", "FREQSH")]
        out = decompress(compress(data, mode="rel", bound=1e-4))
        assert pearson(data, out) >= 0.99999

    def test_seed_changes_data_not_format(self):
        a = load("ATM", scale="tiny", seed=1)["FREQSH"]
        b = load("ATM", scale="tiny", seed=2)["FREQSH"]
        assert not np.array_equal(a, b)
        for d in (a, b):
            out = decompress(compress(d, mode="rel", bound=1e-3))
            assert max_rel_error(d, out) <= 1e-3

    def test_deterministic_compression(self, variables):
        data = variables[("Hurricane", "U")]
        assert compress(data, mode="rel", bound=1e-3) == compress(data, mode="rel", bound=1e-3)
