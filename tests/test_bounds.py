"""Unit tests for the error-bound mode subsystem (repro.core.bounds)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ErrorBound, compress, decompress
from repro.core.bounds import (
    psnr_fallback_bound,
    psnr_to_abs_bound,
    pw_decode_side,
    pw_encode_side,
    pw_log_bound,
    pw_precondition,
)


class TestFromArgs:
    def test_legacy_abs(self):
        spec = ErrorBound.from_args(abs_bound=0.5)
        assert spec.mode == "abs" and spec.abs_bound == 0.5

    def test_legacy_rel_and_pair(self):
        assert ErrorBound.from_args(rel_bound=1e-3).mode == "rel"
        spec = ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-3)
        assert spec.abs_bound == 1.0 and spec.rel_bound == 1e-3

    def test_explicit_modes(self):
        assert ErrorBound.from_args("abs", 0.1).abs_bound == 0.1
        assert ErrorBound.from_args("rel", 1e-2).rel_bound == 1e-2
        assert ErrorBound.from_args("pw_rel", 1e-2).pw_bound == 1e-2
        assert ErrorBound.from_args("psnr", 60.0).psnr_target == 60.0

    def test_param_property(self):
        assert ErrorBound.from_args("psnr", 72.0).param == 72.0
        assert ErrorBound.from_args("pw_rel", 1e-3).param == 1e-3

    def test_missing_bound_raises(self):
        with pytest.raises(ValueError, match="requires bound"):
            ErrorBound.from_args("pw_rel")
        with pytest.raises(ValueError, match="abs_bound and/or rel_bound"):
            ErrorBound.from_args()

    def test_mode_and_legacy_exclusive(self):
        with pytest.raises(ValueError, match="exclusive"):
            ErrorBound.from_args("abs", 0.1, abs_bound=0.2)
        with pytest.raises(ValueError, match="explicit mode"):
            ErrorBound.from_args(bound=0.1)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown error-bound mode"):
            ErrorBound.from_args("nrmse", 0.1)

    @pytest.mark.parametrize("bad", [0.0, -1e-3, 1.0, 2.5])
    def test_pw_rel_range_enforced(self, bad):
        with pytest.raises(ValueError, match="pw_rel"):
            ErrorBound.from_args("pw_rel", bad)

    @pytest.mark.parametrize("bad", [0.0, -10.0, float("inf"), float("nan")])
    def test_psnr_target_validated(self, bad):
        with pytest.raises(ValueError, match="psnr"):
            ErrorBound.from_args("psnr", bad)

    def test_nonpositive_legacy_bounds_raise(self):
        with pytest.raises(ValueError):
            ErrorBound.from_args(abs_bound=0.0)
        with pytest.raises(ValueError):
            ErrorBound.from_args(rel_bound=-1.0)


class TestResolve:
    def test_abs_passthrough(self):
        assert ErrorBound.from_args(abs_bound=0.25).resolve(10.0) == 0.25

    def test_rel_scales_by_range(self):
        assert ErrorBound.from_args(rel_bound=1e-3).resolve(50.0) == 0.05

    def test_tighter_wins(self):
        spec = ErrorBound.from_args(abs_bound=1.0, rel_bound=1e-3)
        assert spec.resolve(10.0) == 0.01
        assert spec.resolve(1e6) == 1.0

    def test_rel_on_zero_range_raises_clearly(self):
        """The old ``_resolve_bound`` silently returned eb=0 here."""
        spec = ErrorBound.from_args(rel_bound=1e-4)
        with pytest.raises(ValueError, match="constant"):
            spec.resolve(0.0)

    def test_non_resolvable_modes_raise(self):
        with pytest.raises(ValueError, match="no direct absolute bound"):
            ErrorBound.from_args("pw_rel", 1e-3).resolve(1.0)


class TestResolveThroughCompressor:
    def test_rel_on_constant_plus_nan_raises_clearly(self):
        """Constant finite values + NaN: the constant fast path cannot
        serve (NaN must round-trip), so the resolver must explain itself
        instead of failing with eb=0 deeper in the pipeline."""
        data = np.array([5.0, 5.0, np.nan, 5.0])
        with pytest.raises(ValueError, match="constant"):
            compress(data, mode="rel", bound=1e-4)

    def test_constant_finite_field_still_fine(self):
        data = np.full(64, 5.0)
        np.testing.assert_array_equal(
            decompress(compress(data, mode="rel", bound=1e-4)), data
        )

    def test_abs_bound_on_constant_plus_nan_works(self):
        data = np.array([5.0, 5.0, np.nan, 5.0])
        out = decompress(compress(data, mode="abs", bound=1e-3))
        assert np.isnan(out[2]) and np.abs(out[[0, 1, 3]] - 5.0).max() <= 1e-3


class TestPwHelpers:
    def test_log_bound_margin(self):
        assert pw_log_bound(1e-3, np.float64) < np.log1p(1e-3)
        with pytest.raises(ValueError, match="machine epsilon"):
            pw_log_bound(1e-8, np.float32)

    def test_precondition_classifies(self):
        data = np.array(
            [1.0, -2.0, 0.0, -0.0, np.nan, np.inf, 1e-320], dtype=np.float64
        )
        logs, flags, signs = pw_precondition(data)
        assert flags.tolist() == [0, 0, 1, 1, 2, 2, 2]
        assert signs.tolist() == [False, True, False, True, False, False, False]
        assert logs.dtype == np.float64
        assert np.isfinite(logs).all()

    def test_side_channel_roundtrip(self):
        rng = np.random.default_rng(9)
        data = rng.standard_normal(257).astype(np.float32)
        data[::17] = 0.0
        data[3] = np.nan
        data[50] = -np.inf
        _, flags, signs = pw_precondition(data)
        payload = pw_encode_side(data, flags, signs)
        f2, s2, raws = pw_decode_side(payload, data.size, data.dtype)
        np.testing.assert_array_equal(f2, flags.ravel())
        np.testing.assert_array_equal(s2, signs.ravel())
        raw_src = data[flags == 2]
        np.testing.assert_array_equal(
            raws.view(np.uint32), raw_src.view(np.uint32)
        )

    def test_decode_side_rejects_bad_flag(self):
        with pytest.raises(ValueError, match="flag"):
            pw_decode_side(b"\xff" * 8, 4, np.float32)


class TestPsnrHelpers:
    def test_model_bound_looser_than_fallback(self):
        assert psnr_to_abs_bound(60.0, 10.0) > psnr_fallback_bound(60.0, 10.0)

    def test_fallback_guarantee_math(self):
        # rmse <= eb implies psnr >= target for the fallback bound
        eb = psnr_fallback_bound(80.0, 3.0)
        assert 20.0 * np.log10(3.0 / eb) >= 80.0
