"""Tests for the synthetic data-set generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    aps_like,
    atm_dataset,
    cdnumc_like,
    describe_datasets,
    freqsh_like,
    gaussian_random_field,
    hurricane_dataset,
    load,
    ridged_field,
    snowhlnd_like,
    sparse_patches,
)


class TestFields:
    def test_grf_normalized(self):
        f = gaussian_random_field((64, 64), beta=3.0, seed=1)
        assert abs(f.mean()) < 1e-10
        assert f.std() == pytest.approx(1.0)

    def test_grf_deterministic(self):
        a = gaussian_random_field((32, 32), 3.0, seed=5)
        b = gaussian_random_field((32, 32), 3.0, seed=5)
        np.testing.assert_array_equal(a, b)
        c = gaussian_random_field((32, 32), 3.0, seed=6)
        assert not np.array_equal(a, c)

    def test_beta_controls_smoothness(self):
        smooth = gaussian_random_field((128, 128), beta=4.0, seed=0)
        rough = gaussian_random_field((128, 128), beta=1.0, seed=0)
        grad_smooth = np.abs(np.diff(smooth, axis=0)).mean()
        grad_rough = np.abs(np.diff(rough, axis=0)).mean()
        assert grad_smooth < grad_rough

    def test_grf_3d(self):
        f = gaussian_random_field((16, 16, 16), 2.5, seed=0)
        assert f.shape == (16, 16, 16)

    def test_ridged_bounded(self):
        f = ridged_field((64, 64), sharpness=10.0, seed=0)
        assert f.min() >= -1.0 and f.max() <= 1.0

    def test_sparse_patches_coverage(self):
        f = sparse_patches((128, 128), coverage=0.2, seed=0)
        frac = (f > 0).mean()
        assert 0.15 < frac < 0.25
        assert (f == 0).mean() > 0.7

    def test_sparse_patches_bad_coverage(self):
        with pytest.raises(ValueError):
            sparse_patches((8, 8), coverage=1.5)


class TestClimate:
    def test_freqsh_range_and_dtype(self):
        f = freqsh_like((96, 192), seed=0)
        assert f.dtype == np.float32
        assert f.min() >= 0.0 and f.max() <= 1.0

    def test_snowhlnd_mostly_zero(self):
        f = snowhlnd_like((96, 192))
        assert (f == 0).mean() > 0.6
        assert f.max() > 0

    def test_cdnumc_huge_range(self):
        """Must span enough decades to defeat ZFP's alignment (paper:
        1e-3 .. 1e11)."""
        f = cdnumc_like((96, 192))
        assert f.min() > 0
        assert f.max() / f.min() > 1e10

    def test_atm_bundle(self):
        d = atm_dataset((48, 96), seed=0)
        assert set(d) >= {"FREQSH", "SNOWHLND", "CDNUMC", "TS", "PSL"}
        for v in d.values():
            assert v.shape == (48, 96)
            assert v.dtype == np.float32

    def test_freqsh_compresses_like_low_cf_variable(self):
        """FREQSH-like should land in a moderate CF band at 1e-4 (the
        paper's representative low-CF variable ~6.5)."""
        from repro.core import compress

        f = freqsh_like((384, 768), seed=0)
        cf = f.nbytes / len(compress(f, mode="rel", bound=1e-4))
        assert 3.0 < cf < 12.0

    def test_snowhlnd_compresses_like_high_cf_variable(self):
        from repro.core import compress

        f = snowhlnd_like((384, 768))
        cf = f.nbytes / len(compress(f, mode="rel", bound=1e-4))
        assert cf > 18.0


class TestXray:
    def test_shape_dtype_nonneg(self):
        f = aps_like((128, 128), seed=0)
        assert f.shape == (128, 128)
        assert f.dtype == np.float32
        assert f.min() >= 0

    def test_has_extreme_peaks(self):
        f = aps_like((256, 256), seed=0)
        assert f.max() > 50 * np.median(f)

    def test_deterministic(self):
        np.testing.assert_array_equal(aps_like((64, 64), 3), aps_like((64, 64), 3))


class TestHurricane:
    def test_bundle(self):
        d = hurricane_dataset((8, 40, 40), seed=0)
        assert set(d) == {"U", "V", "W", "P", "QVAPOR"}
        for v in d.values():
            assert v.shape == (8, 40, 40)
            assert v.dtype == np.float32

    def test_vortex_structure(self):
        d = hurricane_dataset((8, 64, 64), seed=0)
        p = d["P"].astype(np.float64)
        # pressure minimum near the eye (domain center)
        zmin, ymin, xmin = np.unravel_index(np.argmin(p), p.shape)
        assert abs(ymin - 32) < 10 and abs(xmin - 32) < 10
        # wind speed peaks away from the exact center
        speed = np.hypot(d["U"][0].astype(np.float64), d["V"][0].astype(np.float64))
        ypk, xpk = np.unravel_index(np.argmax(speed), speed.shape)
        assert 2 < np.hypot(ypk - 32, xpk - 32) < 24

    def test_moisture_nonnegative_decays_with_height(self):
        d = hurricane_dataset((12, 32, 32), seed=0)
        qv = d["QVAPOR"]
        assert qv.min() >= 0
        assert qv[0].mean() > qv[-1].mean()


class TestRegistry:
    def test_load_all(self):
        for name in DATASETS:
            data = load(name, scale="tiny")
            assert len(data) >= 2
            for v in data.values():
                assert v.dtype == np.float32

    def test_scales_monotone(self):
        for name, spec in DATASETS.items():
            tiny = int(np.prod(spec.shapes["tiny"]))
            small = int(np.prod(spec.shapes["small"]))
            paper = int(np.prod(spec.shapes["paper"]))
            assert tiny < small < paper

    def test_describe_rows(self):
        rows = describe_datasets()
        assert len(rows) == 3
        assert {r["Data"] for r in rows} == {"ATM", "APS", "Hurricane"}
        for r in rows:
            assert "Variables" in r and r["Variables"]
