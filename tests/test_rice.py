"""Tests for Golomb-Rice coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.rice import (
    optimal_rice_parameter,
    rice_decode,
    rice_encode,
    unzigzag,
    zigzag,
)


class TestZigzag:
    def test_known_values(self):
        np.testing.assert_array_equal(
            zigzag(np.array([0, -1, 1, -2, 2])), [0, 1, 2, 3, 4]
        )

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=50))
    def test_roundtrip(self, vals):
        arr = np.array(vals, dtype=np.int64)
        np.testing.assert_array_equal(unzigzag(zigzag(arr)), arr)


class TestRice:
    @pytest.mark.parametrize("k", [0, 1, 4, 8])
    def test_roundtrip_small(self, k, rng):
        values = rng.integers(0, 200, 100).astype(np.uint64)
        buf, nbits = rice_encode(values, k)
        out, consumed = rice_decode(buf, values.size, k)
        np.testing.assert_array_equal(out, values)
        assert consumed == nbits

    def test_k0_is_unary(self):
        buf, nbits = rice_encode(np.array([3], dtype=np.uint64), 0)
        assert nbits == 4  # 0001
        assert buf[0] == 0b00010000

    def test_geometric_source_near_optimal(self, rng):
        values = rng.geometric(0.25, 2000).astype(np.uint64) - 1
        k = optimal_rice_parameter(values)
        buf, nbits = rice_encode(values, k)
        p = 0.25
        entropy = (-(1 - p) * np.log2(1 - p) - p * np.log2(p)) / p
        assert nbits / values.size < entropy + 1.5

    def test_empty(self):
        buf, nbits = rice_encode(np.array([], dtype=np.uint64), 3)
        assert nbits == 0
        out, consumed = rice_decode(buf, 0, 3)
        assert out.size == 0 and consumed == 0

    def test_truncated_stream_raises(self):
        values = np.array([100, 100], dtype=np.uint64)
        buf, nbits = rice_encode(values, 2)
        with pytest.raises(EOFError):
            rice_decode(buf[: max(1, len(buf) // 4)], 2, 2)

    def test_bad_parameter_raises(self):
        with pytest.raises(ValueError):
            rice_encode(np.array([1], dtype=np.uint64), -1)
        with pytest.raises(ValueError):
            rice_encode(np.array([1], dtype=np.uint64), 58)

    def test_huge_quotient_guard(self):
        with pytest.raises(ValueError):
            rice_encode(np.array([2**40], dtype=np.uint64), 0)

    @given(st.integers(0, 12), st.integers(1, 2**31))
    def test_roundtrip_property(self, k, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 5000, int(rng.integers(1, 60))).astype(np.uint64)
        buf, nbits = rice_encode(values, k)
        out, consumed = rice_decode(buf, values.size, k)
        np.testing.assert_array_equal(out, values)
        assert consumed == nbits

    def test_bit_offset_decode(self):
        values = np.array([5, 9], dtype=np.uint64)
        buf, nbits = rice_encode(values, 2)
        bits = np.unpackbits(buf)[:nbits]
        shifted = np.packbits(np.concatenate([np.zeros(5, np.uint8), bits]))
        out, _ = rice_decode(shifted, 2, 2, bit_offset=5)
        np.testing.assert_array_equal(out, values)
