"""Tests for the point-wise relative bound extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pointwise import compress_pointwise, decompress_pointwise


def pointwise_rel_error(original, reconstructed):
    orig = np.asarray(original, dtype=np.float64)
    recon = np.asarray(reconstructed, dtype=np.float64)
    nz = orig != 0
    out = np.zeros(orig.shape)
    out[nz] = np.abs(recon[nz] - orig[nz]) / np.abs(orig[nz])
    out[~nz] = np.where(recon[~nz] == 0, 0.0, np.inf)
    return out


class TestPointwiseBound:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 1e-4])
    def test_bound_holds_across_decades(self, rel, rng):
        """The whole point: tiny values get tiny absolute errors."""
        data = (rng.standard_normal((60, 70)) *
                10.0 ** rng.integers(-8, 8, (60, 70)))
        blob = compress_pointwise(data, rel)
        out = decompress_pointwise(blob)
        assert pointwise_rel_error(data, out).max() <= rel * 1.0000001

    def test_range_based_bound_would_fail_here(self, rng):
        """Contrast with the paper's range-based mode: at the same budget a
        range-relative bound wipes out small values entirely."""
        from repro.core import compress, decompress

        data = np.concatenate([
            rng.uniform(1e-6, 1e-5, 500), rng.uniform(1e5, 1e6, 500)
        ])
        rel = 1e-3
        range_blob = compress(data, mode="rel", bound=rel)
        range_out = decompress(range_blob)
        pw_blob = compress_pointwise(data, rel)
        pw_out = decompress_pointwise(pw_blob)
        small = np.abs(data) < 1e-4
        assert pointwise_rel_error(data, pw_out)[small].max() <= rel
        assert pointwise_rel_error(data, range_out)[small].max() > rel

    def test_zeros_exact(self):
        data = np.array([0.0, 1.0, 0.0, -2.0, 0.0], dtype=np.float64)
        out = decompress_pointwise(compress_pointwise(data, 1e-3))
        np.testing.assert_array_equal(out == 0, data == 0)
        assert pointwise_rel_error(data, out).max() <= 1e-3

    def test_signs_preserved(self, rng):
        data = rng.standard_normal(2000)
        out = decompress_pointwise(compress_pointwise(data, 1e-2))
        np.testing.assert_array_equal(np.sign(out), np.sign(data))

    def test_2d_and_dtype(self, smooth2d):
        blob = compress_pointwise(smooth2d, 1e-3)
        out = decompress_pointwise(blob)
        assert out.dtype == smooth2d.dtype and out.shape == smooth2d.shape

    def test_compresses(self, rng):
        data = np.exp(np.cumsum(rng.standard_normal(20000)) * 0.01)
        blob = compress_pointwise(data, 1e-3)
        assert len(blob) < data.nbytes / 2

    def test_validation(self, rng):
        data = rng.standard_normal(10)
        with pytest.raises(ValueError):
            compress_pointwise(data, 0.0)
        with pytest.raises(ValueError):
            compress_pointwise(data, 1.5)
        with pytest.raises(ValueError):
            compress_pointwise(np.array([1.0, np.nan]), 1e-3)
        with pytest.raises(TypeError):
            compress_pointwise(np.arange(5), 1e-3)
        with pytest.raises(ValueError):
            decompress_pointwise(b"\x00" * 32)

    @given(st.integers(1, 2**31), st.sampled_from([1e-2, 1e-4]))
    @settings(max_examples=10)
    def test_bound_property(self, seed, rel):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** rng.integers(-6, 7)
        data = rng.standard_normal(200) * scale
        out = decompress_pointwise(compress_pointwise(data, rel))
        assert pointwise_rel_error(data, out).max() <= rel * 1.0000001
