"""Integration tests: every experiment runs and shows the paper's shape.

All runs use the 'tiny' scale; assertions target *qualitative* agreements
(who wins, where things collapse or flip) with generous margins, never
absolute values.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import Table


class TestRegistry:
    def test_all_fourteen_artifacts_registered(self):
        expected = {
            "table2", "table3", "table4", "table5", "table6", "table7",
            "table8", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
            "fig10",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table_renders(self):
        t = Table("demo")
        t.add(a=1, b="x")
        t.add(a=2.5, b=None)
        s = str(t)
        assert "demo" in s and "2.5" in s and "-" in s


class TestTable2:
    def test_layer_inversion(self):
        t = run_experiment("table2", scale="tiny")
        orig = [float(v.rstrip("%")) for v in t.column("R_PH_orig")]
        dec = [float(v.rstrip("%")) for v in t.column("R_PH_decomp")]
        # original-value prediction peaks at n >= 2
        assert max(orig[1:]) > orig[0]
        # decompressed-value prediction peaks at n = 1
        assert dec[0] == max(dec)
        # and layer 2 on decompressed values is clearly worse than layer 1
        assert dec[1] < 0.8 * dec[0]


class TestTable3:
    def test_inventory(self):
        t = run_experiment("table3", scale="tiny")
        assert len(t.rows) == 3


class TestFig3:
    def test_peak_at_center_and_looser_is_peakier(self):
        t = run_experiment("fig3", scale="tiny")
        rows = {r["eb_rel"]: r for r in t.rows}
        p_loose = float(rows["1e-03"]["peak_share"].rstrip("%"))
        p_tight = float(rows["1e-04"]["peak_share"].rstrip("%"))
        assert p_loose > p_tight
        for r in t.rows:
            center = float(r["c128"].rstrip("%"))
            assert center == pytest.approx(
                float(r["peak_share"].rstrip("%")), abs=0.5
            )


class TestFig4:
    def test_collapse_and_interval_ordering(self):
        t = run_experiment("fig4", scale="tiny")
        for r in t.rows:
            rates = [
                float(r[k].rstrip("%")) for k in r if k.startswith("eb ")
            ]
            # plateau at loose bounds, collapse at tight ones
            assert rates[0] > 80.0
            assert rates[-1] < rates[0]
        # more intervals should never hurt at the tightest bound (per panel)
        for panel in ("ATM", "Hurricane"):
            sub = [r for r in t.rows if r["panel"] == panel]
            tight = [float(r["eb 1e-08"].rstrip("%")) for r in sub]
            assert tight[-1] >= tight[0] - 1.0


class TestFig6:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment(
            "fig6", scale="tiny", bounds=(1e-3, 1e-4), datasets=("ATM", "Hurricane")
        )

    def test_sz14_wins_every_column(self, table):
        for panel in ("ATM", "Hurricane"):
            sub = [r for r in table.rows if r["panel"] == panel]
            for col in ("eb 1e-03", "eb 1e-04"):
                sz = next(r[col] for r in sub if r["compressor"] == "SZ-1.4")
                others = [
                    r[col] for r in sub
                    if r["compressor"] != "SZ-1.4" and r[col] is not None
                ]
                assert sz == max([sz] + others), (panel, col)

    def test_lossless_baselines_low(self, table):
        for r in table.rows:
            if r["compressor"] in ("FPZIP-like", "GZIP-like"):
                assert r["eb 1e-03"] < 3.0


class TestTable5:
    def test_sz_exact_zfp_conservative(self):
        t = run_experiment("table5", scale="tiny")
        for r in t.rows:
            user = float(r["user_eb"])
            sz = float(r["sz14_max_rel"])
            zf = float(r["zfp_max_rel"])
            assert 0.5 * user < sz <= user * 1.001
            assert zf < 0.6 * user


class TestFig7:
    def test_sz_wins_at_moderate_matched_errors(self):
        t = run_experiment("fig7", scale="tiny")
        # the paper's headline rows: matched errors around 1e-3..1e-4
        moderate = [
            r for r in t.rows if float(r["matched_max_rel"]) > 5e-5
        ]
        assert moderate
        assert all(r["sz14_cf"] > r["zfp_cf"] for r in moderate)


class TestFig8:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment(
            "fig8", scale="tiny", datasets=("ATM",),
            zfp_rates=(2, 4, 8), eb_sweep=(1e-2, 1e-3, 1e-4, 1e-5),
        )

    def test_monotone_rate_distortion(self, table):
        for comp in ("SZ-1.4", "ZFP-like"):
            pts = sorted(
                (r["bit_rate"], r["psnr_db"])
                for r in table.rows
                if r["compressor"] == comp
            )
            psnrs = [p for _, p in pts]
            assert all(b >= a - 1.0 for a, b in zip(psnrs, psnrs[1:]))

    def test_sz14_dominates_mid_rates(self, table):
        from repro.experiments.fig8 import psnr_at_rate

        sz = psnr_at_rate(table, "ATM", "SZ-1.4", 8.0)
        zf = psnr_at_rate(table, "ATM", "ZFP-like", 8.0)
        assert sz > zf


class TestTable4:
    def test_five_nines_from_second_row(self):
        t = run_experiment("table4", scale="tiny")
        for panel in ("ATM", "Hurricane"):
            sub = [r for r in t.rows if r["panel"] == panel]
            assert all(r["five_nines_all"] for r in sub[1:])


class TestTable6:
    def test_speed_positive_and_trend(self):
        t = run_experiment("table6", scale="tiny", datasets=("ATM",))
        speeds = t.column("sz14_comp")
        assert all(s > 0 for s in speeds)
        # throughput at the loosest bound beats the tightest bound
        assert speeds[0] > speeds[-1] * 0.8


class TestTables78:
    def test_table7_efficiencies(self):
        t = run_experiment("table7")
        eff = [float(v.rstrip("%")) for v in t.column("efficiency")]
        procs = t.column("processes")
        by = dict(zip(procs, eff))
        assert by[128] > 99.0
        assert 88.0 < by[1024] < 93.0

    def test_table8_matches_paper_endpoint(self):
        t = run_experiment("table8")
        last = t.rows[-1]
        assert last["processes"] == 1024
        assert 170 < last["decomp_speed_gb_s"] < 200  # paper: 187


class TestFig9:
    def test_autocorrelation_flip(self):
        t = run_experiment("fig9", scale="tiny")
        acf = {
            (r["variable"], r["compressor"]): float(r["max_|acf|"])
            for r in t.rows
        }
        # low-CF variable: SZ error less correlated than ZFP's
        assert acf[("FREQSH", "SZ-1.4")] < acf[("FREQSH", "ZFP-like")]
        # high-CF variable: the ordering flips (paper's future-work caveat)
        assert acf[("SNOWHLND", "SZ-1.4")] > acf[("SNOWHLND", "ZFP-like")]


class TestFig10:
    def test_crossover(self):
        t = run_experiment("fig10")
        comp = [r for r in t.rows if r["mode"] == "write/comp"]
        pays = {r["processes"]: r["compression_pays"] for r in comp}
        assert not pays[1]
        assert pays[32] and pays[1024]

    def test_io_share_grows(self):
        t = run_experiment("fig10")
        comp = [r for r in t.rows if r["mode"] == "write/comp"]
        first = float(comp[0]["initial_io_share"].rstrip("%"))
        last = float(comp[-1]["initial_io_share"].rstrip("%"))
        assert last > first
