"""Tests for the perf subsystem: StageTimer, bench schema, CI gate."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.perf import StageTimer, active_timer, stage
from repro.perf.bench import (
    SCALES,
    SCHEMA,
    bench_report,
    calibrate,
    synth_field,
    validate_report,
)
from repro.perf.gate import (
    compare_reports,
    missing_required_stages,
    stage_coverage_notes,
)


class TestStageTimer:
    def test_records_time_bytes_calls(self):
        with StageTimer() as t:
            with stage("work", nbytes=1000):
                pass
            with stage("work", nbytes=500):
                pass
        rec = t.records["work"]
        assert rec.calls == 2
        assert rec.nbytes == 1500
        assert rec.seconds >= 0.0

    def test_nesting_builds_slash_paths(self):
        with StageTimer() as t:
            with stage("outer"):
                with stage("inner"):
                    pass
                with stage("inner"):
                    pass
        assert set(t.records) == {"outer", "outer/inner"}
        assert t.records["outer/inner"].calls == 2
        assert t.records["outer"].calls == 1

    def test_nested_time_within_parent(self):
        with StageTimer() as t:
            with stage("outer"):
                with stage("inner", nbytes=1):
                    x = float(np.sum(np.arange(1000.0)))
        assert x > 0
        assert t.records["outer/inner"].seconds <= t.records["outer"].seconds

    def test_noop_without_active_timer(self):
        assert active_timer() is None
        with stage("nobody-listens", nbytes=10):
            pass  # must not raise nor record anywhere

    def test_activation_restores_previous(self):
        with StageTimer() as outer_timer:
            assert active_timer() is outer_timer
            with StageTimer() as inner_timer:
                assert active_timer() is inner_timer
                with stage("s"):
                    pass
            assert active_timer() is outer_timer
        assert active_timer() is None
        assert "s" in inner_timer.records
        assert "s" not in outer_timer.records

    def test_mb_per_s(self):
        with StageTimer() as t:
            with t.stage("s", nbytes=10_000_000):
                pass
        d = t.as_dict()["s"]
        assert d["bytes"] == 10_000_000
        assert d["mb_per_s"] >= 0.0

    def test_merge_accumulates(self):
        a, b = StageTimer(), StageTimer()
        with a:
            with stage("s", nbytes=10):
                pass
        with b:
            with stage("s", nbytes=20):
                pass
            with stage("only-b"):
                pass
        a.merge(b)
        assert a.records["s"].calls == 2
        assert a.records["s"].nbytes == 30
        assert "only-b" in a.records

    def test_median_stages(self):
        timers = []
        for nb in (10, 20, 30):
            t = StageTimer()
            with t:
                with stage("s", nbytes=nb):
                    pass
            timers.append(t)
        med = StageTimer.median_stages(timers)
        assert med["s"]["bytes"] == 20
        assert med["s"]["calls"] == 1

    def test_exception_still_records(self):
        with StageTimer() as t:
            with pytest.raises(RuntimeError):
                with stage("boom"):
                    raise RuntimeError("x")
        assert t.records["boom"].calls == 1
        assert t._stack == []


class TestPipelineInstrumentation:
    def test_compress_decompress_emit_stages(self):
        from repro.core import compress, decompress

        field = synth_field(SCALES["tiny"][2], "float32", seed=1)
        with StageTimer() as ct:
            blob = compress(field, mode="rel", bound=1e-3)
        with StageTimer() as dt:
            decompress(blob)
        for key in ("quantize", "entropy", "entropy/huffman_encode",
                    "unpredictable", "container_write"):
            assert key in ct.records, f"missing compress stage {key}"
        for key in ("container_read", "entropy", "entropy/huffman_decode",
                    "dequantize", "unpredictable"):
            assert key in dt.records, f"missing decompress stage {key}"


def _tiny_report(**kw):
    kw.setdefault("scale", "tiny")
    kw.setdefault("repeats", 1)
    kw.setdefault("only", ("1d-f32-abs", "2d-f32-rel"))
    return bench_report(**kw)


def _strip_volatile(report: dict) -> dict:
    out = json.loads(json.dumps(report))  # deep copy via round-trip
    out.pop("created_unix")
    out.pop("calibration_seconds")
    def scrub(stages):
        for rec in stages.values():
            rec.pop("seconds")
            rec.pop("mb_per_s")
    for case in out["cases"]:
        for side in ("compress", "decompress"):
            case[side].pop("seconds")
            case[side].pop("mb_per_s")
            scrub(case[side]["stages"])
    return out


class TestBenchReport:
    def test_schema_and_json_roundtrip(self):
        report = _tiny_report()
        validate_report(report)
        assert report["schema"] == SCHEMA
        back = json.loads(json.dumps(report))
        validate_report(back)
        assert back["cases"][0]["name"] == report["cases"][0]["name"]

    def test_required_keys_enforced(self):
        report = _tiny_report()
        broken = copy.deepcopy(report)
        del broken["calibration_seconds"]
        with pytest.raises(ValueError, match="calibration_seconds"):
            validate_report(broken)
        broken = copy.deepcopy(report)
        del broken["cases"][0]["compress"]["stages"]
        with pytest.raises(ValueError, match="stages"):
            validate_report(broken)
        with pytest.raises(ValueError, match="schema"):
            validate_report({"schema": "other/9"})

    def test_determinism_modulo_timings(self):
        a = _strip_volatile(_tiny_report())
        b = _strip_volatile(_tiny_report())
        assert a == b

    def test_case_shape_matches_scale(self):
        report = _tiny_report(only=("3d-f64-rel",))
        case = report["cases"][0]
        assert case["shape"] == list(SCALES["tiny"][3])
        assert case["dtype"] == "float64"
        assert case["mode"] == "rel"
        assert case["compressed_bytes"] < case["n_bytes"]

    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError, match="scale"):
            bench_report(scale="galactic")
        with pytest.raises(ValueError, match="mode"):
            bench_report(scale="tiny", modes=("warp",))
        with pytest.raises(ValueError, match="repeats"):
            bench_report(scale="tiny", repeats=0)

    def test_calibration_positive(self):
        assert calibrate(repeats=1) > 0.0

    def test_synth_field_deterministic(self):
        a = synth_field((8, 9), "float32", seed=2)
        b = synth_field((8, 9), "float32", seed=2)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.float32


class TestPerfGate:
    @pytest.fixture(scope="class")
    def baseline(self):
        return _tiny_report()

    def test_identical_reports_pass(self, baseline):
        assert compare_reports(baseline, copy.deepcopy(baseline)) == []

    def test_slow_stage_fails(self, baseline):
        fresh = copy.deepcopy(baseline)
        case = fresh["cases"][0]
        case["compress"]["seconds"] *= 10.0
        for rec in case["compress"]["stages"].values():
            rec["seconds"] *= 10.0
        regressions = compare_reports(
            baseline, fresh, tolerance=1.5, floor_seconds=0.0
        )
        metrics = {r["metric"] for r in regressions}
        assert "compress" in metrics
        assert all(r["slowdown"] > 1.5 for r in regressions)

    def test_within_tolerance_passes(self, baseline):
        fresh = copy.deepcopy(baseline)
        for case in fresh["cases"]:
            case["compress"]["seconds"] *= 1.2
            case["decompress"]["seconds"] *= 1.2
        assert compare_reports(baseline, fresh, tolerance=1.5) == []

    def test_missing_case_fails(self, baseline):
        fresh = copy.deepcopy(baseline)
        fresh["cases"] = fresh["cases"][1:]
        regressions = compare_reports(baseline, fresh)
        assert any(r["metric"] == "missing" for r in regressions)

    def test_missing_stage_fails(self, baseline):
        # Removing instrumentation must not pass vacuously.
        fresh = copy.deepcopy(baseline)
        case = fresh["cases"][0]
        case["compress"]["stages"].pop("quantize")
        regressions = compare_reports(baseline, fresh, floor_seconds=0.0)
        assert any(
            "quantize (stage missing)" in r["metric"] for r in regressions
        )

    def test_calibration_normalizes_slow_machine(self, baseline):
        # Everything (workload and calibration) 3x slower: same machine
        # speed ratio, so nothing really regressed.
        fresh = copy.deepcopy(baseline)
        fresh["calibration_seconds"] *= 3.0
        for case in fresh["cases"]:
            for side in ("compress", "decompress"):
                case[side]["seconds"] *= 3.0
                for rec in case[side]["stages"].values():
                    rec["seconds"] *= 3.0
        assert compare_reports(baseline, fresh, tolerance=1.5) == []
        # ... but with normalization off the same reports fail.
        assert compare_reports(
            baseline, fresh, tolerance=1.5, normalize=False,
            floor_seconds=0.0,
        ) != []

    def test_noise_floor_skips_tiny_stages(self, baseline):
        fresh = copy.deepcopy(baseline)
        for case in fresh["cases"]:
            for side in ("compress", "decompress"):
                case[side]["seconds"] *= 100.0
                for rec in case[side]["stages"].values():
                    rec["seconds"] *= 100.0
        assert compare_reports(baseline, fresh, floor_seconds=1e9) == []

    def test_committed_baseline_is_valid(self):
        from pathlib import Path

        path = (
            Path(__file__).parent.parent
            / "benchmarks" / "baselines" / "bench_baseline.json"
        )
        with open(path) as fh:
            report = json.load(fh)
        validate_report(report)
        # The CI gate pins these stages on the fresh report; the
        # committed baseline must carry them too or a refresh would
        # immediately lose the coverage the pin exists to protect.
        assert missing_required_stages(
            report,
            [
                "3d-f32-rel:decompress:entropy/huffman_decode",
                "3d-f32-rel:compress:entropy/huffman_encode",
            ],
        ) == []


class TestRequiredStages:
    @pytest.fixture(scope="class")
    def report(self):
        return _tiny_report()

    def test_present_stage_passes(self, report):
        case = report["cases"][0]["name"]
        stage = next(iter(report["cases"][0]["decompress"]["stages"]))
        spec = f"{case}:decompress:{stage}"
        assert missing_required_stages(report, [spec]) == []

    def test_absent_stage_or_case_is_reported(self, report):
        case = report["cases"][0]["name"]
        specs = [
            f"{case}:decompress:no/such/stage",
            "9d-f32-new:compress:quantize",
        ]
        assert missing_required_stages(report, specs) == specs

    def test_bad_spec_raises(self, report):
        with pytest.raises(ValueError, match="require-stage"):
            missing_required_stages(report, ["just-a-case-name"])
        with pytest.raises(ValueError, match="require-stage"):
            missing_required_stages(report, ["case:sideways:stage"])

    def test_cli_fails_on_missing_required_stage(self, report, tmp_path):
        from repro.perf.gate import main as gate_main

        base = tmp_path / "base.json"
        base.write_text(json.dumps(report))
        case = report["cases"][0]["name"]
        ok = gate_main(
            [
                str(base),
                str(base),
                "--require-stage",
                f"{case}:decompress:"
                + next(iter(report["cases"][0]["decompress"]["stages"])),
            ]
        )
        assert ok == 0
        bad = gate_main(
            [str(base), str(base), "--require-stage", f"{case}:decompress:gone"]
        )
        assert bad == 1


class TestStageCoverageNotes:
    @pytest.fixture(scope="class")
    def baseline(self):
        return _tiny_report()

    def test_clean_reports_produce_no_notes(self, baseline):
        assert stage_coverage_notes(baseline, copy.deepcopy(baseline)) == []

    def test_empty_fresh_stages_noted(self, baseline):
        fresh = copy.deepcopy(baseline)
        fresh["cases"][0]["compress"]["stages"] = {}
        notes = stage_coverage_notes(baseline, fresh)
        assert len(notes) == 1
        assert "instrumentation may have been lost" in notes[0]
        assert fresh["cases"][0]["name"] in notes[0]

    def test_empty_baseline_stages_noted(self, baseline):
        sparse = copy.deepcopy(baseline)
        sparse["cases"][0]["decompress"]["stages"] = {}
        notes = stage_coverage_notes(sparse, copy.deepcopy(baseline))
        assert len(notes) == 1
        assert "re-baseline" in notes[0]

    def test_empty_on_both_sides_noted(self, baseline):
        sparse = copy.deepcopy(baseline)
        sparse["cases"][0]["compress"]["stages"] = {}
        notes = stage_coverage_notes(sparse, copy.deepcopy(sparse))
        assert len(notes) == 1
        assert "only end-to-end seconds were compared" in notes[0]

    def test_extra_fresh_case_noted(self, baseline):
        fresh = copy.deepcopy(baseline)
        extra = copy.deepcopy(fresh["cases"][0])
        extra["name"] = "9d-f32-new"
        fresh["cases"].append(extra)
        notes = stage_coverage_notes(baseline, fresh)
        assert notes == ["9d-f32-new: not in baseline — uncovered by the gate"]

    def test_notes_do_not_fail_the_gate(self, baseline):
        # Notes are advisory: an empty stages map alone is not a
        # regression (compare_reports handles per-stage loss itself).
        fresh = copy.deepcopy(baseline)
        for case in fresh["cases"]:
            case["compress"]["stages"] = {}
            case["decompress"]["stages"] = {}
        sparse = copy.deepcopy(fresh)
        assert compare_reports(sparse, fresh) == []
        assert stage_coverage_notes(sparse, fresh) != []


class TestBenchObsMetrics:
    def test_cases_carry_deterministic_obs_metrics(self):
        a = _tiny_report(only=("1d-f32-abs",))
        b = _tiny_report(only=("1d-f32-abs",))
        obs = a["cases"][0]["obs"]
        assert obs["counters"]["compress/calls"] >= 1
        assert obs["counters"]["quantize/values"] > 0
        assert "compress/factor" in obs["observations"]
        assert sum(obs["histograms"]["huffman/code_lengths"]) > 0
        # seeded field -> identical telemetry across runs
        assert obs == b["cases"][0]["obs"]
