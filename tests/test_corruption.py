"""Corrupted/truncated containers must fail with a clean ``ValueError``.

Covers both generations: truncation of a v1 ('SZRP') container at every
byte boundary, truncation of a tiled v2 ('SZRT') container at every
section boundary, tile CRC mismatches, and the header fields an attacker
(or a bad disk) can inflate into giant allocations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chunked import (
    TiledReader,
    compress_tiled,
    decompress_region,
    decompress_tiled,
)
from repro.chunked.format import TAIL_BYTES
from repro.core import compress, decompress


def _field(shape, seed=3):
    rng = np.random.default_rng(seed)
    return (
        np.sin(np.arange(np.prod(shape)).reshape(shape) / 9.0)
        + 0.05 * rng.standard_normal(shape)
    ).astype(np.float32)


class TestV1Truncation:
    def test_every_prefix_fails_cleanly(self):
        """Cutting a v1 container at *any* byte must raise ValueError or
        still decode to the recorded shape — never IndexError, KeyError,
        struct noise, or a giant allocation."""
        data = _field((12, 12))
        blob = compress(data, mode="rel", bound=1e-3)
        for cut in range(len(blob)):
            try:
                out = decompress(blob[:cut])
            except ValueError:
                continue
            assert out.shape == data.shape, f"cut at {cut}"

    def test_corrupt_unpred_count_rejected(self):
        """Regression: an inflated unpredictable count must be rejected
        before any allocation sized by it (was a MemoryError)."""
        data = _field((10, 14))
        blob = bytearray(compress(data, mode="rel", bound=1e-3))
        # unpred_count is the 48-bit field right before the Huffman
        # table; corrupt the header region until the reader objects.
        # Directly: unpred_count starts after magic(4)+ver..flags(5 bytes
        # of fields)... easier to just flip its high byte via known
        # layout: 4+1+1+1+1+1+1 = 10 bytes, then 2*6 shape, 8+8 floats.
        pos = 10 + 12 + 16  # first byte of unpred_count
        blob[pos] ^= 0xFF
        with pytest.raises(ValueError, match="unpredictable"):
            decompress(bytes(blob))

    def test_short_unpred_payload_rejected(self):
        """A payload too short for the recorded unpredictable count must
        raise ValueError, not leak a raw EOFError from the bit reader."""
        from repro.core.stream import Header, write_container
        from repro.encoding.huffman import HuffmanCodec

        codes = np.full(16, 1, dtype=np.int64)
        codec = HuffmanCodec.from_symbols(codes, 4)
        stream = codec.encode(codes)
        header = Header(np.dtype(np.float32), (4, 4), 2, 1, 1e-3, 1.0, 4)
        blob = write_container(header, codec, stream, b"")  # 0 payload bytes
        with pytest.raises(ValueError, match="corrupt"):
            decompress(blob)

    def test_corrupt_dtype_code_rejected(self):
        data = _field((8, 8))
        blob = bytearray(compress(data, mode="rel", bound=1e-3))
        blob[5] = 0x7F  # dtype code byte
        with pytest.raises(ValueError, match="dtype"):
            decompress(bytes(blob))

    def test_zero_extent_rejected(self):
        data = _field((8, 8))
        blob = bytearray(compress(data, mode="rel", bound=1e-3))
        # zero out the first shape field (48 bits starting at byte 10)
        for i in range(10, 16):
            blob[i] = 0
        with pytest.raises(ValueError):
            decompress(bytes(blob))


class TestV2Truncation:
    @pytest.fixture()
    def container(self):
        data = _field((24, 20))
        return data, compress_tiled(data, tile_shape=(8, 8), mode="rel", bound=1e-3)

    def test_every_prefix_fails_cleanly(self, container):
        """Truncating a v2 container at any byte — header, any tile
        payload, index, or tail — must raise a clean ValueError."""
        _, blob = container
        for cut in range(len(blob)):
            with pytest.raises(ValueError):
                decompress_tiled(blob[:cut])

    def test_section_boundaries(self, container):
        """Exact cuts at each section boundary (header end, each tile
        end, index start/end, tail) fail cleanly."""
        _, blob = container
        with TiledReader(blob) as reader:
            cuts = {reader.header.header_bytes}
            for entry in reader.entries:
                cuts.add(entry.offset)
                cuts.add(entry.offset + entry.length)
            cuts.add(len(blob) - TAIL_BYTES)
            cuts.add(len(blob) - 1)
        for cut in sorted(cuts):
            with pytest.raises(ValueError):
                decompress_tiled(blob[:cut])

    def test_tile_crc_mismatch(self, container):
        _, blob = container
        with TiledReader(blob) as reader:
            entry = reader.entries[2]
        corrupt = bytearray(blob)
        corrupt[entry.offset + entry.length // 2] ^= 0x40
        with pytest.raises(ValueError, match="CRC"):
            decompress_tiled(bytes(corrupt))
        # a region read not touching tile 2 still succeeds
        with TiledReader(bytes(corrupt)) as reader:
            sl, _ = reader.grid.normalize_region((slice(0, 8), slice(0, 8)))
            assert 2 not in reader.grid.tiles_intersecting(sl)
        out = decompress_region(bytes(corrupt), (slice(0, 8), slice(0, 8)))
        assert out.shape == (8, 8)

    def test_index_crc_mismatch(self, container):
        _, blob = container
        corrupt = bytearray(blob)
        corrupt[len(blob) - TAIL_BYTES - 5] ^= 0x01  # inside the index
        with pytest.raises(ValueError, match="index CRC"):
            decompress_tiled(bytes(corrupt))

    def test_bad_end_magic(self, container):
        _, blob = container
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decompress_tiled(bytes(corrupt))

    def test_bad_leading_magic(self, container):
        _, blob = container
        corrupt = b"XXXX" + blob[4:]
        with pytest.raises(ValueError, match="magic"):
            decompress_tiled(corrupt)

    def test_bad_version(self, container):
        _, blob = container
        corrupt = bytearray(blob)
        corrupt[4] = 99
        with pytest.raises(ValueError, match="version"):
            decompress_tiled(bytes(corrupt))

    def test_index_offset_past_end(self, container):
        _, blob = container
        corrupt = bytearray(blob)
        # inflate the tail's index offset
        corrupt[len(blob) - TAIL_BYTES] = 0x7F
        with pytest.raises(ValueError):
            decompress_tiled(bytes(corrupt))

    def test_truncated_file_source(self, container, tmp_path):
        _, blob = container
        path = tmp_path / "cut.szt"
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            decompress_tiled(str(path))

    def test_empty_and_tiny_blobs(self):
        for blob in (b"", b"SZRT", b"SZRT" + b"\x00" * 10):
            with pytest.raises(ValueError):
                decompress_tiled(blob)
