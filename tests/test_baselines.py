"""Tests for SZ-1.1, FPZIP-like, GZIP-like, ISABELA and NUMARCK baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    FPZIPLike,
    GzipLike,
    ISABELA,
    ISABELAFailure,
    NumarckLike,
    SZ11,
)


class TestSZ11:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bound_guarantee(self, dtype, rng):
        data = np.cumsum(rng.standard_normal(3000)).reshape(50, 60).astype(dtype)
        eb = 1e-3 * float(data.max() - data.min())
        sz = SZ11(abs_bound=eb)
        out = sz.decompress(sz.compress(data))
        assert out.shape == data.shape and out.dtype == data.dtype
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_rel_bound(self, smooth2d):
        sz = SZ11(rel_bound=1e-3)
        out = sz.decompress(sz.compress(smooth2d))
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        assert np.abs(out.astype(np.float64) - smooth2d.astype(np.float64)).max() <= eb

    def test_smooth_1d_compresses_well(self, rng):
        data = np.sin(np.linspace(0, 30, 8000)).astype(np.float32)
        sz = SZ11(rel_bound=1e-3)
        blob = sz.compress(data)
        assert data.nbytes / len(blob) > 3

    def test_worse_than_sz14_on_2d(self, smooth2d):
        """The headline claim (Fig. 6): multidimensional prediction beats
        1-D curve fitting on 2-D data."""
        from repro.core import compress as sz14_compress

        sz11_blob = SZ11(rel_bound=1e-4).compress(smooth2d)
        sz14_blob = sz14_compress(smooth2d, mode="rel", bound=1e-4)
        assert len(sz14_blob) < len(sz11_blob)

    def test_nan_handled(self):
        data = np.ones((10, 10))
        data[4, 4] = np.nan
        sz = SZ11(abs_bound=1e-3)
        out = sz.decompress(sz.compress(data))
        assert np.isnan(out[4, 4])

    def test_no_bound_raises(self, smooth2d):
        with pytest.raises(ValueError):
            SZ11().compress(smooth2d)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            SZ11(abs_bound=1).decompress(b"\x00" * 32)

    @given(st.integers(1, 2**31))
    @settings(max_examples=8)
    def test_bound_property(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(400) * 10
        eb = 0.05
        sz = SZ11(abs_bound=eb)
        out = sz.decompress(sz.compress(data))
        assert np.abs(out - data).max() <= eb


class TestFPZIP:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(500,), (30, 40), (8, 9, 10)])
    def test_lossless(self, dtype, shape, rng):
        data = rng.standard_normal(shape).astype(dtype)
        f = FPZIPLike()
        out = f.decompress(f.compress(data))
        assert out.dtype == data.dtype
        np.testing.assert_array_equal(out, data)

    def test_special_values_lossless(self):
        data = np.array(
            [[0.0, -0.0, np.inf], [-np.inf, np.nan, 1e-300]], dtype=np.float64
        )
        f = FPZIPLike()
        out = f.decompress(f.compress(data))
        np.testing.assert_array_equal(
            out.view(np.uint64), data.view(np.uint64)
        )

    def test_smooth_data_compresses(self, smooth2d):
        f = FPZIPLike()
        blob = f.compress(smooth2d)
        assert len(blob) < smooth2d.nbytes

    def test_precision_mode_is_lossy_but_close(self, smooth2d):
        f = FPZIPLike(precision=12)
        out = f.decompress(f.compress(smooth2d))
        assert not np.array_equal(out, smooth2d)
        assert np.abs(out - smooth2d).max() < 0.05 * float(np.abs(smooth2d).max())

    def test_precision_mode_smaller(self, smooth2d):
        lossless = len(FPZIPLike().compress(smooth2d))
        lossy = len(FPZIPLike(precision=10).compress(smooth2d))
        assert lossy < lossless

    @given(st.integers(1, 2**31))
    @settings(max_examples=10)
    def test_lossless_property(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(2, 15, size=rng.integers(1, 4)))
        data = (rng.standard_normal(shape) * 10.0 ** rng.integers(-10, 10)).astype(
            np.float32 if seed % 2 else np.float64
        )
        f = FPZIPLike()
        out = f.decompress(f.compress(data))
        np.testing.assert_array_equal(out, data)


class TestGzipLike:
    def test_lossless(self, smooth2d):
        g = GzipLike()
        out = g.decompress(g.compress(smooth2d))
        np.testing.assert_array_equal(out, smooth2d)
        assert out.dtype == smooth2d.dtype

    def test_low_cf_on_float_data(self, rng):
        """Paper: GZIP achieves only ~1.1-1.3 on scientific float data."""
        data = (np.cumsum(rng.standard_normal(20000)) * 0.1).astype(np.float32)
        g = GzipLike()
        cf = data.nbytes / len(g.compress(data))
        assert 0.9 < cf < 3.0

    def test_high_cf_on_constant(self):
        data = np.zeros((100, 100), dtype=np.float32)
        g = GzipLike()
        assert data.nbytes / len(g.compress(data)) > 50

    def test_f64(self, rng):
        data = rng.standard_normal((20, 20))
        g = GzipLike()
        np.testing.assert_array_equal(g.decompress(g.compress(data)), data)


class TestISABELA:
    def test_bound_guarantee(self, rng):
        data = np.cumsum(rng.standard_normal(5000)).astype(np.float64)
        eb = 1e-3 * float(data.max() - data.min())
        isa = ISABELA(abs_bound=eb)
        out = isa.decompress(isa.compress(data))
        assert np.abs(out - data).max() <= eb

    def test_2d_window_linearization(self, smooth2d):
        isa = ISABELA(rel_bound=1e-3)
        out = isa.decompress(isa.compress(smooth2d))
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        assert out.shape == smooth2d.shape
        assert np.abs(out.astype(np.float64) - smooth2d.astype(np.float64)).max() <= eb

    def test_partial_tail_window(self, rng):
        data = np.cumsum(rng.standard_normal(1024 + 300))
        isa = ISABELA(abs_bound=0.5)
        out = isa.decompress(isa.compress(data))
        assert np.abs(out - data).max() <= 0.5

    def test_fails_at_tight_bounds_on_rough_data(self, rng):
        """The paper plots ISABELA 'only until it fails'."""
        data = rng.standard_normal(8192).astype(np.float32)
        isa = ISABELA(rel_bound=1e-7)
        with pytest.raises(ISABELAFailure):
            isa.compress(data)

    def test_cf_capped_by_permutation_index(self, rng):
        """log2(window) bits/value of index => CF well under 32/10."""
        data = np.sin(np.linspace(0, 10, 16384)).astype(np.float32)
        isa = ISABELA(rel_bound=1e-3)
        cf = data.nbytes / len(isa.compress(data))
        assert cf < 3.5

    def test_window_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ISABELA(abs_bound=0.1, window=1000)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ISABELA(abs_bound=0.1).compress(np.array([1.0, np.nan]))

    def test_small_input(self, rng):
        data = rng.standard_normal(37)
        isa = ISABELA(abs_bound=0.5)
        out = isa.decompress(isa.compress(data))
        assert np.abs(out - data).max() <= 0.5


class TestBSplineBasis:
    def test_partition_of_unity(self):
        from repro.baselines.isabela import bspline_basis

        x = np.linspace(0, 1, 200)
        basis = bspline_basis(x, 12)
        np.testing.assert_allclose(basis.sum(axis=1), 1.0, atol=1e-12)

    def test_matches_scipy(self):
        from scipy.interpolate import BSpline

        from repro.baselines.isabela import bspline_basis

        n_coeffs, degree = 10, 3
        n_knots = n_coeffs + degree + 1
        interior = n_knots - 2 * (degree + 1)
        knots = np.concatenate(
            [np.zeros(degree + 1), np.linspace(0, 1, interior + 2)[1:-1],
             np.ones(degree + 1)]
        )
        x = np.linspace(0, 1 - 1e-9, 50)
        ours = bspline_basis(x, n_coeffs)
        for j in range(n_coeffs):
            c = np.zeros(n_coeffs)
            c[j] = 1.0
            ref = BSpline(knots, c, degree)(x)
            np.testing.assert_allclose(ours[:, j], ref, atol=1e-10)

    def test_too_few_coeffs_raises(self):
        from repro.baselines.isabela import bspline_basis

        with pytest.raises(ValueError):
            bspline_basis(np.linspace(0, 1, 10), 3)


class TestNumarck:
    def test_roundtrip_shape_dtype(self, smooth2d):
        nmk = NumarckLike(bits=8)
        out = nmk.decompress(nmk.compress(smooth2d))
        assert out.shape == smooth2d.shape and out.dtype == smooth2d.dtype

    def test_error_not_bounded(self, rng):
        """The paper's core criticism of vector quantization: outliers in
        wide tail bins can exceed any requested bound."""
        data = rng.standard_normal(10000)
        data[::100] *= 1000  # heavy tail
        nmk = NumarckLike(bits=4)
        out = nmk.decompress(nmk.compress(data))
        err = np.abs(out - data)
        assert err.max() > 1.0  # far beyond typical bin width

    def test_delta_mode_with_previous_snapshot(self, rng):
        prev = np.cumsum(rng.standard_normal(5000))
        nxt = prev + 0.01 * rng.standard_normal(5000)
        nmk = NumarckLike(bits=8)
        blob = nmk.compress(nxt, previous=prev)
        out = nmk.decompress(blob, previous=prev)
        # deltas are near-Gaussian: 256 bins quantize them tightly
        assert np.abs(out - nxt).max() < 0.05

    def test_cf_close_to_word_over_bits(self, rng):
        data = rng.standard_normal(8192).astype(np.float32)
        nmk = NumarckLike(bits=8)
        cf = data.nbytes / len(nmk.compress(data))
        assert 2.5 < cf <= 4.2  # ~32/8 minus codebook overhead

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            NumarckLike(bits=1)

    def test_shape_mismatch(self, rng):
        nmk = NumarckLike()
        with pytest.raises(ValueError):
            nmk.compress(rng.standard_normal(10), previous=rng.standard_normal(9))
