"""Tests for binary-representation analysis of unpredictable values."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.unpredictable import (
    decode_unpredictable,
    encode_unpredictable,
    truncate_to_bound,
)


def roundtrip(values, eb):
    payload, recon = encode_unpredictable(values, eb)
    out = decode_unpredictable(payload, values.size, eb, values.dtype)
    return payload, recon, out


class TestTruncateToBound:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bound_respected(self, dtype, rng):
        values = (rng.standard_normal(2000) * 10.0 ** rng.integers(-6, 7, 2000)).astype(dtype)
        eb = 1e-3
        out = truncate_to_bound(values, eb)
        assert np.abs(out.astype(np.float64) - values.astype(np.float64)).max() <= eb

    def test_small_values_become_zero(self):
        values = np.array([1e-8, -1e-8, 0.0], dtype=np.float64)
        out = truncate_to_bound(values, 1e-3)
        np.testing.assert_array_equal(out, [0.0, 0.0, 0.0])

    def test_nan_inf_passthrough(self):
        values = np.array([np.nan, np.inf, -np.inf], dtype=np.float64)
        out = truncate_to_bound(values, 1e-3)
        assert np.isnan(out[0]) and out[1] == np.inf and out[2] == -np.inf

    def test_sign_preserved(self):
        values = np.array([-123.456, 123.456], dtype=np.float64)
        out = truncate_to_bound(values, 1e-6)
        assert out[0] < 0 < out[1]

    def test_tiny_bound_keeps_full_mantissa(self):
        values = np.array([np.pi], dtype=np.float64)
        out = truncate_to_bound(values, 1e-300)
        assert out[0] == values[0]

    def test_subnormal_values(self):
        values = np.array([5e-324, 1e-310], dtype=np.float64)
        eb = 1e-320
        out = truncate_to_bound(values, eb)
        assert np.abs(out - values).max() <= eb

    def test_nonpositive_bound_raises(self):
        with pytest.raises(ValueError):
            truncate_to_bound(np.array([1.0]), 0.0)

    def test_unsupported_dtype_raises(self):
        with pytest.raises((ValueError, TypeError)):
            truncate_to_bound(np.array([1], dtype=np.int32), 0.1)


class TestEncodeDecode:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_decode_equals_inline_recon(self, dtype, rng):
        values = (rng.standard_normal(500) * 100).astype(dtype)
        payload, recon, out = roundtrip(values, 1e-2)
        np.testing.assert_array_equal(out, recon)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bound_after_roundtrip(self, dtype, rng):
        values = (rng.standard_normal(300) * 1e4).astype(dtype)
        eb = 0.5
        _, _, out = roundtrip(values, eb)
        assert np.abs(out.astype(np.float64) - values.astype(np.float64)).max() <= eb

    def test_mixed_flags(self):
        values = np.array([np.nan, 0.0, 1234.5, np.inf, 1e-9, -7.25], dtype=np.float64)
        eb = 1e-3
        payload, recon, out = roundtrip(values, eb)
        np.testing.assert_array_equal(
            np.isnan(out), np.isnan(values)
        )
        finite = np.isfinite(values)
        assert np.abs(out[finite] - values[finite]).max() <= eb

    def test_empty(self):
        payload, recon = encode_unpredictable(np.zeros(0, dtype=np.float32), 0.1)
        assert payload == b""
        out = decode_unpredictable(payload, 0, 0.1, np.dtype(np.float32))
        assert out.size == 0

    def test_payload_smaller_than_raw(self, rng):
        """The whole point of binary-representation analysis: fewer bits
        than full IEEE storage at loose bounds."""
        values = rng.standard_normal(4000).astype(np.float64)
        payload, _ = encode_unpredictable(values, 1e-2)
        assert len(payload) < values.nbytes * 0.6

    def test_payload_grows_with_tighter_bound(self, rng):
        values = rng.standard_normal(1000).astype(np.float64)
        loose, _ = encode_unpredictable(values, 1e-1)
        tight, _ = encode_unpredictable(values, 1e-9)
        assert len(tight) > len(loose)

    @given(st.integers(1, 2**31), st.sampled_from([1e-1, 1e-4, 1e-8]))
    def test_roundtrip_property(self, seed, eb):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** rng.integers(-4, 5)
        values = (rng.standard_normal(50) * scale).astype(
            np.float32 if seed % 2 else np.float64
        )
        payload, recon, out = roundtrip(values, eb)
        np.testing.assert_array_equal(out, recon)
        assert (
            np.abs(out.astype(np.float64) - values.astype(np.float64)).max()
            <= eb
        )

    def test_negative_zero(self):
        values = np.array([-0.0], dtype=np.float64)
        _, _, out = roundtrip(values, 1e-6)
        assert out[0] == 0.0
