"""SZ105 fixture: entry points that accept a config object."""


def compress_stream(data, tile_shape=None, workers=1, out=None, *, config=None):
    return data, tile_shape, workers, out, config


def compress_stream_annotated(
    data, a=None, b=None, c=None, d=None, e=None, settings: "SZConfig" = None
):
    return data, a, b, c, d, e, settings


def _private_helper(a, b, c, d, e, f, g):
    # Private helpers may take wide positional lists.
    return a + b + c + d + e + f + g
