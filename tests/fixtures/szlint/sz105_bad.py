"""SZ105 fixture: public entry point growing a keyword list."""


def compress_stream(
    data,
    abs_bound=None,
    rel_bound=None,
    layers=1,
    interval_bits=8,
    block_size=4096,
    entropy_coder="huffman",
):
    return data
