"""SZ102 fixture: nondeterminism in an encode/decode module."""

import random
import time

import numpy as np


def encode_block(values: np.ndarray) -> int:
    seed = time.time()
    jitter = random.random()
    total = values.sum()
    for item in {1, 2, 3}:
        total += item
    return int(total + seed + jitter + id(values))


def build_group_tables(plane_sizes: np.ndarray) -> np.ndarray:
    # Grouped-index table builder: the accumulator dtype decides where
    # every hyperplane's slice starts, so intp would drift per-platform.
    starts = np.cumsum(plane_sizes)
    total = np.add.reduce(plane_sizes)
    widths = np.multiply.accumulate(plane_sizes)
    return starts[starts + widths < total]
