"""SZ102 fixture: nondeterminism in an encode/decode module."""

import random
import time

import numpy as np


def encode_block(values: np.ndarray) -> int:
    seed = time.time()
    jitter = random.random()
    total = values.sum()
    for item in {1, 2, 3}:
        total += item
    return int(total + seed + jitter + id(values))
