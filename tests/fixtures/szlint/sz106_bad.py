"""SZ106 fixture: string dispatch on the entropy coder outside encoding/."""


def emit(codes, entropy_coder):
    if entropy_coder == "arithmetic":
        return codes[::-1]
    if entropy_coder in ("huffman", "range"):
        return codes
    return None
