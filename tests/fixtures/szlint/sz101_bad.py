"""SZ101 fixture: writer/reader format drift.

The writer packs a 6-byte offset but the reader slices only 4 bytes,
and the reader consumes a 2-byte count the writer never produces.
"""


def write_entry(fh, offset: int, length: int) -> None:
    fh.write(offset.to_bytes(6, "big"))
    fh.write(length.to_bytes(4, "big"))


def read_entry(buf: bytes) -> tuple[int, int]:
    offset = int.from_bytes(buf[0:4], "big")
    length = int.from_bytes(buf[4:8], "big")
    count = int.from_bytes(buf[8:10], "big")
    return offset, length + count
