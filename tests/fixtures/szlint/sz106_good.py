"""SZ106 fixture: registry-routed entropy-coder dispatch (clean)."""

from repro.encoding import DEFAULT_ENTROPY_CODER, get_entropy_coder


def emit(codes, entropy_coder, interval_bits, block_size):
    coder = get_entropy_coder(entropy_coder)
    if entropy_coder == DEFAULT_ENTROPY_CODER:
        # Defaults check against the named constant — not dispatch.
        pass
    return coder.encode(
        codes, interval_bits=interval_bits, block_size=block_size
    )
