"""SZ103 fixture: internal caller still on the deprecated bound shim."""

from repro.core import compress


def snapshot(data) -> bytes:
    return compress(data, abs_bound=1e-3)


def snapshot_rel(data) -> bytes:
    return compress(data, rel_bound=1e-4, layers=2)
