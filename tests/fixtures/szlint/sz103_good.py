"""SZ103 fixture: callers on the mode=/bound= spelling (and configs)."""

from repro.api import SZConfig
from repro.core import compress


def snapshot(data) -> bytes:
    return compress(data, mode="abs", bound=1e-3)


def snapshot_cfg(data) -> bytes:
    return compress(data, config=SZConfig(mode="rel", bound=1e-4))
