"""SZ102 fixture: deterministic encode-path idioms that must stay legal."""

import time

import numpy as np


def encode_block(values: np.ndarray, keys: set) -> int:
    t0 = time.perf_counter()  # diagnostics-only clock is fine
    total = int(values.sum(dtype=np.int64))
    total += sum(range(4))  # builtin sum over Python ints is deterministic
    for key in sorted(keys):
        total += key
    _ = time.perf_counter() - t0
    return total


def build_group_tables(plane_sizes: np.ndarray, bits: np.ndarray) -> np.ndarray:
    starts = np.cumsum(plane_sizes, dtype=np.int64)
    total = np.add.reduce(plane_sizes, dtype=np.int64)
    # Dtype-preserving ufuncs never widen, so no accumulator to pin.
    flags = np.bitwise_or.reduceat(bits, starts[:-1])
    peaks = np.maximum.accumulate(plane_sizes)
    return starts[(starts < total) & (peaks > 0)] + flags.size
