"""SZ102 fixture: deterministic encode-path idioms that must stay legal."""

import time

import numpy as np


def encode_block(values: np.ndarray, keys: set) -> int:
    t0 = time.perf_counter()  # diagnostics-only clock is fine
    total = int(values.sum(dtype=np.int64))
    total += sum(range(4))  # builtin sum over Python ints is deterministic
    for key in sorted(keys):
        total += key
    _ = time.perf_counter() - t0
    return total
