"""SZ101 fixture: every pack width has a byte-compatible unpack partner."""


def write_entry(fh, offset: int, length: int, count: int) -> None:
    fh.write(offset.to_bytes(6, "big"))
    fh.write(length.to_bytes(4, "big"))
    fh.write(count.to_bytes(2, "big"))


def read_entry(buf: bytes) -> tuple[int, int, int]:
    offset = int.from_bytes(buf[0:6], "big")
    length = int.from_bytes(buf[6:10], "big")
    count = int.from_bytes(buf[10:12], "big")
    return offset, length, count


def read_entry_at(buf: bytes, pos: int) -> int:
    # Symbolic slice bounds: width is still derivable (pos+6 - pos = 6).
    return int.from_bytes(buf[pos : pos + 6], "big")
