"""SZ104 fixture: zero-copy decode-path idioms."""

import numpy as np


def decode_payload(view: memoryview) -> np.ndarray:
    return np.frombuffer(view, dtype=np.uint8)


def encode_payload(arr: np.ndarray) -> bytes:
    # Copies on the *encode* path are out of scope for SZ104.
    return arr.tobytes()
