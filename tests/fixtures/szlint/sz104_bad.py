"""SZ104 fixture: avoidable copies on the decode path."""

import numpy as np


def decode_payload(arr: np.ndarray) -> bytes:
    return arr.tobytes()


class TileReader:
    def fetch(self, view: memoryview) -> np.ndarray:
        return np.frombuffer(bytes(view), dtype=np.uint8)
