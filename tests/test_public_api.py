"""Public-API snapshot: accidental symbol removal/addition must fail.

The ``__all__`` of ``repro`` (and of the canonical ``repro.api``
package) is a compatibility contract.  These snapshots pin it exactly:
removing a symbol breaks downstream imports, and adding one silently
grows the surface the project must support forever — both deserve a
deliberate test edit, not a drive-by.
"""

from __future__ import annotations

import repro
import repro.api

REPRO_ALL = [
    "Codec",
    "Collector",
    "CompressionStats",
    "ErrorBound",
    "SZ14Compressor",
    "SZConfig",
    "TiledReader",
    "TiledWriter",
    "autotune",
    "compress",
    "compress_tiled",
    "compress_with_stats",
    "container_info",
    "decompress",
    "decompress_region",
    "decompress_tiled",
    "estimate",
    "get_codec",
    "register_codec",
    "verify_bound",
    "__version__",
]

API_ALL = ["Codec", "SZConfig", "get_codec", "register_codec"]


class TestSnapshots:
    def test_repro_all_snapshot(self):
        assert list(repro.__all__) == REPRO_ALL

    def test_repro_api_all_snapshot(self):
        assert list(repro.api.__all__) == API_ALL

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name

    def test_readme_documented_mode_api_is_exported(self):
        # README documents repro.ErrorBound / repro.verify_bound; they
        # must stay importable from the top level.
        assert repro.ErrorBound.from_args("rel", 1e-4).mode == "rel"
        assert callable(repro.verify_bound)

    def test_every_public_symbol_has_a_docstring(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"
