"""Tests for error, correlation and rate metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    autocorrelation,
    bit_rate,
    compression_factor,
    five_nines,
    max_abs_error,
    max_rel_error,
    nrmse,
    pearson,
    psnr,
    rmse,
    throughput_mb_s,
)
from repro.metrics.correlation import nines
from repro.metrics.rates import check_identity


class TestErrors:
    def test_exact_reconstruction(self):
        a = np.arange(10.0)
        assert max_abs_error(a, a) == 0.0
        assert rmse(a, a) == 0.0
        assert psnr(a, a) == np.inf

    def test_known_values(self):
        a = np.array([0.0, 1.0, 2.0, 3.0])
        b = a + np.array([0.1, -0.1, 0.1, -0.1])
        assert max_abs_error(a, b) == pytest.approx(0.1)
        assert rmse(a, b) == pytest.approx(0.1)
        assert nrmse(a, b) == pytest.approx(0.1 / 3.0)
        assert max_rel_error(a, b) == pytest.approx(0.1 / 3.0)

    def test_psnr_formula(self):
        a = np.linspace(0, 1, 1000)
        b = a + 1e-3
        # rmse = 1e-3, range = 1 -> psnr = 60 dB
        assert psnr(a, b) == pytest.approx(60.0, abs=0.1)

    def test_nan_pairs_ignored(self):
        a = np.array([1.0, np.nan, 3.0])
        b = np.array([1.0, np.nan, 3.5])
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_constant_input(self):
        a = np.full(10, 7.0)
        assert nrmse(a, a) == 0.0
        assert max_rel_error(a, a + 0.1) == 0.0  # zero range convention


class TestCorrelation:
    def test_perfect(self):
        a = np.random.default_rng(0).standard_normal(1000)
        assert pearson(a, a) == pytest.approx(1.0)

    def test_anti(self):
        a = np.random.default_rng(0).standard_normal(1000)
        assert pearson(a, -a) == pytest.approx(-1.0)

    def test_five_nines_threshold(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(20000)
        assert five_nines(a, a + 1e-5 * rng.standard_normal(20000))
        assert not five_nines(a, a + 0.5 * rng.standard_normal(20000))

    def test_nines_helper(self):
        assert nines(0.99999) == 5
        assert nines(0.9991) == 3
        assert nines(0.5) == 0
        assert nines(1.0) == 16

    def test_autocorrelation_white_noise(self):
        x = np.random.default_rng(0).standard_normal(20000)
        acf = autocorrelation(x, 50)
        assert acf.shape == (50,)
        assert np.abs(acf).max() < 0.05

    def test_autocorrelation_sine(self):
        t = np.arange(4000)
        x = np.sin(2 * np.pi * t / 100)
        acf = autocorrelation(x, 100)
        assert acf[99] > 0.9  # period 100 -> high correlation at lag 100
        assert acf[49] < -0.9  # anti-phase at half period

    def test_short_series(self):
        assert autocorrelation(np.array([1.0]), 10).shape == (10,)


class TestRates:
    def test_cf_and_bitrate(self):
        assert compression_factor(1000, 250) == 4.0
        assert bit_rate(250, 250) == 8.0

    def test_identity(self):
        # CF * BR == 32 for f32 data
        assert check_identity(4000, 500, 1000, 32)

    def test_throughput(self):
        assert throughput_mb_s(10_000_000, 2.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compression_factor(10, 0)
        with pytest.raises(ValueError):
            bit_rate(10, 0)
        with pytest.raises(ValueError):
            throughput_mb_s(10, 0)


class TestTileRatioStats:
    def test_dispersion(self):
        from repro.metrics import tile_ratio_stats

        stats = tile_ratio_stats([100, 200, 400], [100, 100, 100], 4)
        assert stats["n_tiles"] == 3
        assert stats["cf_min"] == 1.0 and stats["cf_max"] == 4.0
        assert stats["cf_mean"] == pytest.approx((4 + 2 + 1) / 3)
        assert stats["cf_var"] == pytest.approx(np.var([4.0, 2.0, 1.0]))
        assert stats["cf_cv"] == pytest.approx(
            stats["cf_std"] / stats["cf_mean"]
        )

    def test_uniform_tiles_zero_variance(self):
        from repro.metrics import tile_ratio_stats

        stats = tile_ratio_stats([128] * 5, [64] * 5, 8)
        assert stats["cf_var"] == 0.0 and stats["cf_mean"] == 4.0

    def test_validation(self):
        from repro.metrics import tile_ratio_stats

        with pytest.raises(ValueError):
            tile_ratio_stats([], [], 4)
        with pytest.raises(ValueError):
            tile_ratio_stats([1, 2], [1], 4)
