"""Bound-guarantee property harness: every mode, machine-checked.

The acceptance contract of the error-bound mode subsystem
(``repro.core.bounds``): for every round-trip

* ``abs``    — ``|x_i - x'_i| <= b`` for all finite points,
* ``rel``    — ``|x_i - x'_i| <= b * (max - min)``,
* ``pw_rel`` — ``|x_i - x'_i| <= b * |x_i|`` for all finite non-zero
  points, zeros exact, signs preserved,
* ``psnr``   — ``psnr(x, x') >= target`` dB,

and NaN/Inf round-trip exactly in every mode.  A seeded randomized
matrix covers {float32, float64} x {1-d, 2-d, 3-d} x all four modes x
bounds {1e-2, 1e-4, 1e-6}, over several field shapes (smooth, wide
dynamic range, spiky) and the degenerate inputs: zeros, negatives,
NaN/Inf, and constant fields.  Every assertion routes through
``metrics.verify_bound`` so the checker itself is exercised.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, decompress
from repro.metrics import psnr, verify_bound

DTYPES = [np.float32, np.float64]
BOUNDS = [1e-2, 1e-4, 1e-6]
MODES = ["abs", "rel", "pw_rel", "psnr"]


def _mode_bound(mode: str, bound: float, data: np.ndarray) -> float:
    """Translate the matrix bound into each mode's parameter.

    ``abs`` scales by the value range so all modes face a comparable
    accuracy request; ``psnr`` targets the dB a just-met range-relative
    bound of ``bound`` would produce (1e-2 -> 40 dB ... 1e-6 -> 120 dB).
    """
    if mode == "abs":
        finite = data[np.isfinite(data)]
        rng = float(finite.max() - finite.min()) if finite.size else 1.0
        return bound * max(rng, 1e-30)
    if mode == "psnr":
        return float(20.0 * np.log10(1.0 / bound))
    return bound


def _field(dtype, ndim: int, seed: int, kind: str) -> np.ndarray:
    rng = np.random.default_rng(seed)
    shape = {1: (400,), 2: (24, 30), 3: (8, 10, 12)}[ndim]
    if kind == "smooth":
        base = np.cumsum(rng.standard_normal(int(np.prod(shape))))
        data = base.reshape(shape) * 0.1 + 5.0
    elif kind == "wide":
        data = rng.standard_normal(shape) * 10.0 ** rng.integers(
            -6, 6, shape
        )
    else:  # spiky
        data = rng.standard_normal(shape)
        mask = rng.random(shape) < 0.05
        data = data + mask * rng.standard_normal(shape) * 100.0
    return data.astype(dtype)


def _roundtrip_and_verify(data, mode, bound):
    param = _mode_bound(mode, bound, data)
    out = decompress(compress(data, mode=mode, bound=param))
    assert out.shape == data.shape and out.dtype == data.dtype
    check = verify_bound(data, out, mode, param)
    assert check["ok"], (
        f"{mode} bound {param:g} violated: max {check['max_violation']:g} "
        f"at {check['n_violations']} points"
    )
    return out


class TestGuaranteeMatrix:
    """The full {dtype} x {ndim} x {mode} x {bound} matrix."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("bound", BOUNDS)
    def test_matrix(self, dtype, ndim, mode, bound):
        if mode == "pw_rel" and dtype == np.float32 and bound <= np.finfo(
            np.float32
        ).eps:
            pytest.skip("pw_rel bound below float32 machine epsilon")
        for kind in ("smooth", "wide"):
            data = _field(dtype, ndim, seed=hash((ndim, kind)) % 2**31, kind=kind)
            _roundtrip_and_verify(data, mode, bound)


class TestDegenerateInputs:
    @pytest.mark.parametrize("mode", MODES)
    def test_zeros_and_negatives(self, mode):
        data = np.array(
            [0.0, -0.0, 1.5, -1.5, 0.0, 1e-3, -1e-3, 2.0], dtype=np.float64
        )
        out = _roundtrip_and_verify(data, mode, 1e-4)
        if mode == "pw_rel":
            np.testing.assert_array_equal(out == 0, data == 0)
            np.testing.assert_array_equal(np.sign(out), np.sign(data))
            assert np.signbit(out[1])  # -0.0 survives

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_nan_inf_roundtrip_exact(self, mode, dtype):
        data = (np.arange(60, dtype=np.float64) * 0.25 + 1.0).astype(dtype)
        data[3] = np.nan
        data[17] = np.inf
        data[41] = -np.inf
        out = _roundtrip_and_verify(data.reshape(6, 10), mode, 1e-2)
        assert np.isnan(out[0, 3])
        assert out[1, 7] == np.inf
        assert out[4, 1] == -np.inf

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("value", [0.0, -7.25, 3.5e-20])
    def test_constant_fields_exact(self, mode, value):
        data = np.full((11, 13), value, dtype=np.float64)
        param = {"abs": 1e-4, "rel": 1e-4, "pw_rel": 1e-4, "psnr": 80.0}[mode]
        out = decompress(compress(data, mode=mode, bound=param))
        np.testing.assert_array_equal(out, data)

    def test_pw_rel_subnormals_exact(self):
        data = np.array(
            [1e-320, -3e-310, 1.0, 2.0, 5e-324], dtype=np.float64
        )
        out = _roundtrip_and_verify(data, "pw_rel", 1e-2)
        np.testing.assert_array_equal(out[[0, 1, 4]], data[[0, 1, 4]])

    def test_pw_rel_all_special(self):
        data = np.array([0.0, np.nan, np.inf, -0.0, -np.inf], dtype=np.float32)
        out = decompress(compress(data, mode="pw_rel", bound=1e-3))
        np.testing.assert_array_equal(np.isnan(out), np.isnan(data))
        finite_or_inf = ~np.isnan(data)
        np.testing.assert_array_equal(out[finite_or_inf], data[finite_or_inf])
        assert np.signbit(out[3])

    def test_pw_rel_mixed_sign_zeros(self):
        # Zero value range, but NOT bitwise-constant: must skip the
        # constant shortcut and preserve every zero's sign bit.
        data = np.array([0.0, -0.0, 0.0, -0.0], dtype=np.float64)
        out = decompress(compress(data, mode="pw_rel", bound=1e-3))
        np.testing.assert_array_equal(np.signbit(out), np.signbit(data))

    def test_constant_field_keeps_mode_tag(self):
        from repro.core import container_info

        blob = compress(np.full((5, 5), 2.5), mode="pw_rel", bound=1e-3)
        info = container_info(blob)
        assert info["constant"] and info["mode"] == "pw_rel"
        blob = compress(np.full((5, 5), 2.5), mode="psnr", bound=60.0)
        assert container_info(blob)["mode"] == "psnr"

    def test_psnr_zero_range_with_nan_raises_clearly(self):
        data = np.array([5.0, np.nan, 5.0])
        with pytest.raises(ValueError, match="psnr target"):
            compress(data, mode="psnr", bound=60.0)

    def test_pw_rel_single_magnitude_mixed_signs(self):
        # Constant log field but non-constant data: the body quantizes a
        # zero-range float64 field; signs come back from the sign plane.
        data = np.array([5.0, -5.0, 5.0, 5.0, -5.0, 0.0], dtype=np.float32)
        out = _roundtrip_and_verify(data, "pw_rel", 1e-3)
        np.testing.assert_array_equal(np.sign(out), np.sign(data))


class TestPsnrMeetsTarget:
    @pytest.mark.parametrize("target", [30.0, 60.0, 90.0, 120.0])
    def test_target_met_on_noise(self, target, rng):
        data = rng.standard_normal((50, 60)).astype(np.float64)
        out = decompress(compress(data, mode="psnr", bound=target))
        assert psnr(data, out) >= target

    def test_spiky_field(self, spiky2d):
        out = decompress(compress(spiky2d, mode="psnr", bound=70.0))
        assert psnr(spiky2d, out) >= 70.0


class TestRandomizedProperty:
    @given(
        st.sampled_from(DTYPES),
        st.sampled_from(MODES),
        st.sampled_from(BOUNDS),
        st.integers(1, 2**31),
    )
    @settings(max_examples=20)
    def test_random_fields(self, dtype, mode, bound, seed):
        if mode == "pw_rel" and dtype == np.float32 and bound <= np.finfo(
            np.float32
        ).eps:
            bound = 1e-4
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 4))
        shape = tuple(rng.integers(3, 14, size=ndim))
        data = (
            rng.standard_normal(shape)
            * 10.0 ** rng.integers(-4, 4, shape)
        ).astype(dtype)
        # sprinkle structured trouble: zeros and non-finite values
        flat = data.reshape(-1)
        if flat.size >= 4:
            flat[0] = 0.0
            flat[1] = np.nan
            flat[2] = np.inf
            flat[3] = -flat[3]
        if np.unique(flat[np.isfinite(flat)]).size < 2:
            return  # constant-after-edits fields are covered elsewhere
        _roundtrip_and_verify(data, mode, bound)


class TestVerifyBoundChecker:
    """The checker itself must flag violations, not just bless output."""

    def test_flags_abs_violation(self):
        a = np.zeros(5)
        b = np.zeros(5)
        b[2] = 0.5
        check = verify_bound(a, b, "abs", 0.1)
        assert not check["ok"]
        assert check["max_violation"] == pytest.approx(0.4)
        assert check["n_violations"] == 1

    def test_flags_pw_rel_zero_corruption(self):
        a = np.array([0.0, 1.0])
        b = np.array([1e-9, 1.0])
        assert not verify_bound(a, b, "pw_rel", 1e-2)["ok"]

    def test_flags_lost_nan(self):
        a = np.array([np.nan, 1.0])
        b = np.array([0.0, 1.0])
        check = verify_bound(a, b, "abs", 1.0)
        assert not check["ok"] and check["max_violation"] == np.inf

    def test_flags_psnr_shortfall(self):
        a = np.linspace(0, 1, 100)
        b = a + 0.1
        check = verify_bound(a, b, "psnr", 60.0)
        assert not check["ok"] and check["max_violation"] > 0

    def test_accepts_exact(self):
        a = np.linspace(-1, 1, 50)
        for mode, bound in [
            ("abs", 1e-9), ("rel", 1e-9), ("pw_rel", 1e-9), ("psnr", 500.0)
        ]:
            assert verify_bound(a, a.copy(), mode, bound)["ok"]

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            verify_bound(np.ones(3), np.ones(3), "nrmse", 0.1)
