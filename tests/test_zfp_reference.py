"""Scalar reference for the ZFP-like embedded plane codec.

``_encode_planes`` / ``_decode_planes`` are heavily vectorized index
algebra; this module re-implements the per-block bit-plane group-testing
scheme with plain Python loops and checks both directions against it on
randomized coefficient sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.zfp import _decode_planes, _encode_planes


def reference_encode_block(u_block, plane_cut, nplanes, S):
    """Bit string (list of 0/1) for one block, plus final significance n."""
    bits = []
    n = 0
    for p in range(nplanes - 1, plane_cut - 1, -1):
        plane = [(int(u_block[i]) >> p) & 1 for i in range(S)]
        # refinement: prefix of already-significant coefficients
        bits.extend(plane[:n])
        # group-tested tail
        i = n
        while i < S:
            any_set = any(plane[j] for j in range(i, S))
            bits.append(1 if any_set else 0)
            if not any_set:
                break
            while plane[i] == 0:
                bits.append(0)
                i += 1
            bits.append(1)
            i += 1
            n = i
    return bits


class TestAgainstScalarReference:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("S", [4, 16, 64])
    def test_encoder_matches_reference(self, seed, S):
        rng = np.random.default_rng(seed)
        B = 7
        nplanes = 12
        # random magnitudes spanning the plane range, some zero blocks
        u = rng.integers(0, 1 << nplanes, (B, S), dtype=np.uint64)
        u[0] = 0
        plane_cut = rng.integers(0, nplanes // 2, B)
        payload, block_bits = _encode_planes(u, plane_cut, nplanes, S, None)
        all_bits = np.unpackbits(payload)
        start = 0
        for b in range(B):
            ref = reference_encode_block(u[b], int(plane_cut[b]), nplanes, S)
            got = all_bits[start : start + int(block_bits[b])].tolist()
            assert got == ref, f"block {b} diverges from scalar reference"
            start += int(block_bits[b])

    @pytest.mark.parametrize("seed", range(4))
    def test_decoder_inverts_encoder(self, seed):
        rng = np.random.default_rng(100 + seed)
        B, S, nplanes = 23, 16, 20
        u = rng.integers(0, 1 << nplanes, (B, S), dtype=np.uint64)
        plane_cut = rng.integers(0, 4, B)
        payload, block_bits = _encode_planes(u, plane_cut, nplanes, S, None)
        got = _decode_planes(payload, block_bits, plane_cut, nplanes, S, B)
        # decoding reproduces every plane above each block's cutoff exactly
        for b in range(B):
            mask = ~np.uint64((1 << int(plane_cut[b])) - 1)
            np.testing.assert_array_equal(got[b] & mask, u[b] & mask)

    def test_budget_truncation_prefix_property(self, rng):
        """Rate-mode truncation must agree with the untruncated stream on
        the bits it keeps (embedded coding property)."""
        B, S, nplanes = 5, 16, 16
        u = rng.integers(0, 1 << nplanes, (B, S), dtype=np.uint64)
        cut = np.zeros(B, dtype=np.int64)
        full_payload, full_bits = _encode_planes(u, cut, nplanes, S, None)
        budget = np.full(B, 40, dtype=np.int64)
        trunc_payload, trunc_bits = _encode_planes(u, cut, nplanes, S, budget)
        np.testing.assert_array_equal(trunc_bits, budget)
        full = np.unpackbits(full_payload)
        trunc = np.unpackbits(trunc_payload)
        fstart = tstart = 0
        for b in range(B):
            keep = min(40, int(full_bits[b]))
            np.testing.assert_array_equal(
                trunc[tstart : tstart + keep], full[fstart : fstart + keep]
            )
            fstart += int(full_bits[b])
            tstart += 40

    @given(st.integers(0, 2**31), st.sampled_from([4, 16]))
    @settings(max_examples=15)
    def test_roundtrip_property(self, seed, S):
        rng = np.random.default_rng(seed)
        B = int(rng.integers(1, 12))
        nplanes = 10
        u = rng.integers(0, 1 << nplanes, (B, S), dtype=np.uint64)
        plane_cut = np.zeros(B, dtype=np.int64)
        payload, block_bits = _encode_planes(u, plane_cut, nplanes, S, None)
        got = _decode_planes(payload, block_bits, plane_cut, nplanes, S, B)
        np.testing.assert_array_equal(got, u)
