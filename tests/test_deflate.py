"""Tests for the LZ77 matcher and DEFLATE-like codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.deflate import deflate_compress, deflate_decompress
from repro.encoding.lz77 import (
    MAX_MATCH,
    MIN_MATCH,
    lz77_parse,
    lz77_reconstruct,
)


class TestLZ77:
    def test_roundtrip_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 20
        toks = lz77_parse(data)
        assert lz77_reconstruct(*toks) == data

    def test_finds_repeats(self):
        data = b"abcdefgh" * 64
        literals, lengths, distances = lz77_parse(data)
        assert (lengths > 0).any()
        # vast majority of the tokens must be matches on pure repetition
        assert lengths.sum() > len(data) * 0.9

    def test_incompressible_random(self, rng):
        data = rng.integers(0, 256, 2000, dtype=np.uint8).tobytes()
        toks = lz77_parse(data)
        assert lz77_reconstruct(*toks) == data

    def test_overlapping_match_run(self):
        # run of one byte forces distance < length copies
        data = b"\x00" * 500
        literals, lengths, distances = lz77_parse(data)
        assert lz77_reconstruct(literals, lengths, distances) == data
        match = lengths > 0
        assert match.any() and distances[match].min() < lengths[match].max()

    def test_empty_and_tiny(self):
        for data in (b"", b"a", b"ab", b"abc"):
            toks = lz77_parse(data)
            assert lz77_reconstruct(*toks) == data

    def test_max_match_cap(self):
        data = b"x" * 4000
        _, lengths, _ = lz77_parse(data)
        assert lengths.max() <= MAX_MATCH

    def test_min_match_respected(self):
        data = b"abcXabcYabcZ"  # 3-byte repeats: below MIN_MATCH
        _, lengths, _ = lz77_parse(data)
        assert not (lengths > 0).any() or lengths[lengths > 0].min() >= MIN_MATCH

    def test_greedy_vs_lazy_both_roundtrip(self):
        data = b"abcde" * 50 + b"abcdefghij" * 30
        for lazy in (False, True):
            toks = lz77_parse(data, lazy=lazy)
            assert lz77_reconstruct(*toks) == data

    def test_invalid_distance_raises(self):
        with pytest.raises(ValueError):
            lz77_reconstruct(
                np.array([0]), np.array([5]), np.array([10])
            )

    @given(st.binary(max_size=600))
    def test_roundtrip_property(self, data):
        toks = lz77_parse(data)
        assert lz77_reconstruct(*toks) == data


class TestDeflate:
    def test_roundtrip_text(self):
        data = b"scientific data compression " * 100
        blob = deflate_compress(data)
        assert deflate_decompress(blob) == data
        assert len(blob) < len(data) / 3

    def test_roundtrip_float_bytes(self, smooth2d):
        data = smooth2d.tobytes()
        blob = deflate_compress(data)
        assert deflate_decompress(blob) == data

    def test_empty(self):
        assert deflate_decompress(deflate_compress(b"")) == b""

    def test_single_byte(self):
        assert deflate_decompress(deflate_compress(b"Q")) == b"Q"

    def test_all_byte_values(self):
        data = bytes(range(256)) * 4
        assert deflate_decompress(deflate_compress(data)) == data

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            deflate_decompress(b"\x00" * 32)

    def test_highly_compressible(self):
        data = b"\x00" * 10000
        blob = deflate_compress(data)
        assert len(blob) < 200
        assert deflate_decompress(blob) == data

    @given(st.binary(max_size=400))
    def test_roundtrip_property(self, data):
        assert deflate_decompress(deflate_compress(data)) == data
