"""Tests for out-of-paper extensions: arithmetic coding, lossless post-pass.

These are the paper's "future work" directions (better entropy coding,
additional lossless stage), implemented as opt-in flags.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, compress_with_stats, decompress
from repro.core.lossless_post import is_wrapped, unwrap, wrap
from repro.encoding.arithmetic import decode_symbols, encode_symbols


class TestArithmeticCoder:
    def test_roundtrip_basic(self, rng):
        symbols = rng.integers(0, 256, 2000)
        data = encode_symbols(symbols, max_bits=9)
        np.testing.assert_array_equal(decode_symbols(data, 2000, 9), symbols)

    def test_roundtrip_skewed(self, rng):
        symbols = np.where(rng.random(3000) < 0.9, 128, rng.integers(0, 256, 3000))
        data = encode_symbols(symbols, max_bits=9)
        np.testing.assert_array_equal(decode_symbols(data, 3000, 9), symbols)

    def test_beats_fixed_width_on_skewed_source(self, rng):
        """Adaptive contexts should land well under the 8-bit raw cost."""
        symbols = np.abs(np.rint(3 * rng.standard_normal(5000))).astype(np.int64)
        data = encode_symbols(symbols, max_bits=9)
        assert len(data) * 8 < 0.6 * symbols.size * 8

    def test_empty_and_single(self):
        assert decode_symbols(encode_symbols(np.array([], dtype=np.int64)), 0).size == 0
        np.testing.assert_array_equal(
            decode_symbols(encode_symbols(np.array([42])), 1), [42]
        )

    def test_zeros(self):
        symbols = np.zeros(500, dtype=np.int64)
        data = encode_symbols(symbols, max_bits=4)
        assert len(data) < 100  # ~one adaptive bit per symbol, then less
        np.testing.assert_array_equal(decode_symbols(data, 500, 4), symbols)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_symbols(np.array([-1]))

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            encode_symbols(np.array([256]), max_bits=8)

    @given(st.integers(1, 2**31), st.integers(1, 12))
    @settings(max_examples=10)
    def test_roundtrip_property(self, seed, max_bits):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 300))
        symbols = rng.integers(0, 1 << max_bits, n)
        data = encode_symbols(symbols, max_bits=max_bits + 1)
        np.testing.assert_array_equal(
            decode_symbols(data, n, max_bits + 1), symbols
        )


class TestLosslessPost:
    def test_wrap_unwrap(self):
        blob = b"some container bytes " * 50
        wrapped = wrap(blob)
        assert is_wrapped(wrapped)
        assert unwrap(wrapped) == blob

    def test_plain_passthrough(self):
        blob = b"SZRP" + b"\x01" * 100
        assert unwrap(blob) == blob

    def test_incompressible_kept_plain(self, rng):
        blob = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
        assert wrap(blob) == blob  # wrapping would grow it


class TestCompressorIntegration:
    def test_arithmetic_coder_roundtrip(self, smooth2d):
        small = smooth2d[:24, :32]
        blob = compress(small, mode="rel", bound=1e-3, entropy_coder="arithmetic")
        out = decompress(blob)
        eb = 1e-3 * float(small.max() - small.min())
        assert np.abs(out - small).max() <= eb

    def test_arithmetic_competitive_with_huffman(self, smooth2d):
        small = smooth2d[:32, :40]
        h = len(compress(small, mode="rel", bound=1e-3))
        a = len(compress(small, mode="rel", bound=1e-3, entropy_coder="arithmetic"))
        # no Huffman table in the container and sub-bit codes: the range
        # coder should be in the same ballpark or better on skewed codes
        assert a < 1.3 * h

    def test_unknown_coder_rejected(self, smooth2d):
        with pytest.raises(ValueError):
            compress(smooth2d, mode="rel", bound=1e-3, entropy_coder="zstd")

    def test_lossless_post_roundtrip(self, smooth2d):
        blob, stats = compress_with_stats(
            smooth2d, mode="rel", bound=1e-3, lossless_post=True
        )
        out = decompress(blob)
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        assert np.abs(out - smooth2d).max() <= eb

    def test_lossless_post_never_larger(self, smooth2d):
        plain = len(compress(smooth2d, mode="rel", bound=1e-3))
        post = len(compress(smooth2d, mode="rel", bound=1e-3, lossless_post=True))
        assert post <= plain

    def test_combined_options(self, smooth2d):
        small = smooth2d[:20, :20]
        blob = compress(
            small, mode="rel", bound=1e-2, entropy_coder="arithmetic",
            lossless_post=True, layers=2,
        )
        out = decompress(blob)
        eb = 1e-2 * float(small.max() - small.min())
        assert np.abs(out - small).max() <= eb
