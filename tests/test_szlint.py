"""Tests for the szlint codec-invariant lint pack (``tools/szlint``).

Each rule is exercised against a bad/good fixture pair under
``tests/fixtures/szlint/`` (with ``force_scope`` so the snippets do not
need to live under the real ``src/repro`` scope paths), and the live
``src/`` tree is asserted clean — the property the CI ``analysis`` job
enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.szlint import Diagnostic, lint_paths  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "szlint"

RULES = ("SZ101", "SZ102", "SZ103", "SZ104", "SZ105", "SZ106")


def _lint(path: Path, **kwargs):
    return lint_paths([path], force_scope=True, **kwargs)


def _rules_hit(result) -> set[str]:
    return {d.rule for d in result.diagnostics}


# ---------------------------------------------------------------------------
# Per-rule fixture behaviour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_flags_only_its_rule(rule: str) -> None:
    result = _lint(FIXTURES / f"{rule.lower()}_bad.py")
    assert not result.ok
    assert _rules_hit(result) == {rule}


@pytest.mark.parametrize("rule", RULES)
def test_good_fixture_is_clean(rule: str) -> None:
    result = _lint(FIXTURES / f"{rule.lower()}_good.py")
    assert result.ok, [d.format() for d in result.diagnostics]
    assert result.files_checked == 1


def test_sz101_reports_both_drift_directions() -> None:
    result = _lint(FIXTURES / "sz101_bad.py")
    messages = [d.message for d in result.diagnostics]
    assert any("pack width 6" in m for m in messages)
    assert any("unpack width 2" in m for m in messages)
    # Diagnostics point at the offending pack/unpack lines.
    lines = {d.line for d in result.diagnostics}
    assert lines == {9, 16}


def test_sz102_covers_each_nondeterminism_class() -> None:
    result = _lint(FIXTURES / "sz102_bad.py")
    messages = " | ".join(d.message for d in result.diagnostics)
    for fragment in ("random", "wall-clock", "reduction", "set", "id()"):
        assert fragment in messages, fragment
    # Ufunc-method spellings are their own diagnostic class.
    assert "`add.reduce` ufunc reduction" in messages
    assert "`multiply.accumulate` ufunc reduction" in messages


def test_sz103_names_the_shim_callee() -> None:
    result = _lint(FIXTURES / "sz103_bad.py")
    assert len(result.diagnostics) == 2
    assert all("`compress`" in d.message for d in result.diagnostics)


def test_sz104_flags_tobytes_and_bytes_calls() -> None:
    result = _lint(FIXTURES / "sz104_bad.py")
    messages = " | ".join(d.message for d in result.diagnostics)
    assert ".tobytes()" in messages
    assert "bytes(...)" in messages


def test_sz105_counts_parameters() -> None:
    result = _lint(FIXTURES / "sz105_bad.py")
    (diag,) = result.diagnostics
    assert "compress_stream" in diag.message
    assert "7 named parameters" in diag.message


def test_sz106_flags_eq_and_membership_dispatch() -> None:
    result = _lint(FIXTURES / "sz106_bad.py")
    assert len(result.diagnostics) == 2
    assert all("entropy_coder" in d.message for d in result.diagnostics)
    assert all("get_entropy_coder" in d.message for d in result.diagnostics)


def test_sz106_exempts_the_encoding_package(tmp_path: Path) -> None:
    pkg = tmp_path / "repro" / "encoding"
    pkg.mkdir(parents=True)
    snippet = pkg / "custom.py"
    snippet.write_text('def pick(entropy_coder):\n'
                       '    return entropy_coder == "huffman"\n')
    # Without force_scope the registry package is exempt...
    assert lint_paths([snippet], select=["SZ106"]).ok
    # ...and the same code one level up is not.
    outside = tmp_path / "repro" / "custom.py"
    outside.write_text(snippet.read_text())
    result = lint_paths([outside], select=["SZ106"])
    assert not result.ok


# ---------------------------------------------------------------------------
# Engine behaviour: selection, suppression, errors
# ---------------------------------------------------------------------------


def test_select_restricts_rules() -> None:
    result = lint_paths(
        [FIXTURES / "sz102_bad.py"], force_scope=True, select=["SZ104"]
    )
    assert result.ok


def test_ignore_comment_suppresses_one_rule(tmp_path: Path) -> None:
    snippet = tmp_path / "decode_mod.py"
    snippet.write_text(
        "def decode(arr):\n"
        "    return arr.tobytes()  # szlint: ignore[SZ104]\n"
    )
    assert lint_paths([snippet], force_scope=True).ok


def test_bare_ignore_comment_suppresses_all_rules(tmp_path: Path) -> None:
    snippet = tmp_path / "decode_mod.py"
    snippet.write_text(
        "import time\n"
        "def decode(arr):\n"
        "    t = time.time()  # szlint: ignore\n"
        "    return arr.tobytes(), t  # szlint: ignore\n"
    )
    result = lint_paths([snippet], force_scope=True)
    assert result.ok, [d.format() for d in result.diagnostics]


def test_ignore_comment_for_other_rule_does_not_suppress(tmp_path: Path) -> None:
    snippet = tmp_path / "decode_mod.py"
    snippet.write_text(
        "def decode(arr):\n"
        "    return arr.tobytes()  # szlint: ignore[SZ102]\n"
    )
    result = lint_paths([snippet], force_scope=True)
    assert _rules_hit(result) == {"SZ104"}


def test_syntax_error_is_reported_not_raised(tmp_path: Path) -> None:
    snippet = tmp_path / "broken.py"
    snippet.write_text("def broken(:\n")
    result = lint_paths([snippet])
    assert not result.ok
    assert result.errors and "broken.py" in result.errors[0]


def test_diagnostic_format_is_clickable() -> None:
    diag = Diagnostic(path="src/x.py", line=12, rule="SZ104", message="msg")
    assert diag.format() == "src/x.py:12: SZ104 msg"


# ---------------------------------------------------------------------------
# The live tree must be clean — the invariant CI enforces
# ---------------------------------------------------------------------------


def test_live_src_tree_is_clean() -> None:
    result = lint_paths([REPO_ROOT / "src"])
    assert result.files_checked > 50
    assert result.ok, "\n".join(d.format() for d in result.diagnostics)
    assert not result.errors


# ---------------------------------------------------------------------------
# CLI contract: exit codes, text and --json output
# ---------------------------------------------------------------------------


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.szlint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_cli_clean_tree_exits_zero() -> None:
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_findings_exit_one_with_rule_and_location() -> None:
    bad = str(FIXTURES / "sz104_bad.py")
    proc = _run_cli(bad, "--force-scope")
    assert proc.returncode == 1
    assert "SZ104" in proc.stdout
    assert "sz104_bad.py:7:" in proc.stdout


def test_cli_json_output() -> None:
    bad = str(FIXTURES / "sz101_bad.py")
    proc = _run_cli(bad, "--force-scope", "--json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["count"] == len(payload["diagnostics"]) == 2
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert rules == {"SZ101"}
    assert all(
        {"path", "line", "rule", "message"} <= set(d) for d in payload["diagnostics"]
    )


def test_cli_missing_path_exits_two() -> None:
    proc = _run_cli("no/such/path")
    assert proc.returncode == 2


def test_cli_select_filter() -> None:
    bad = str(FIXTURES / "sz102_bad.py")
    proc = _run_cli(bad, "--force-scope", "--select", "SZ103")
    assert proc.returncode == 0
