"""Golden-blob regression tests: containers must stay decodable forever.

The fixtures under ``tests/fixtures/golden/`` were produced by earlier
revisions of the library (the untagged v1 / tiled-v2 blobs predate the
error-bound mode subsystem entirely) and are checked in alongside their
source arrays and expected decoded output.  They pin three contracts:

* **decode stability** — every archived container decodes to exactly the
  archived values, bit for bit, across PRs;
* **legacy byte-identity** — re-compressing the archived source with the
  legacy ``abs``/``rel`` parameters reproduces the archived container
  byte for byte (the mode subsystem must not perturb untagged output);
* **mode defaulting** — blobs without a mode tag decode (and report)
  as mode ``abs``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.chunked import (
    compress_tiled,
    container_info_any,
    decompress_tiled,
    tiled_container_info,
)
from repro.core import compress, container_info, decompress
from repro.metrics import verify_bound

GOLDEN = Path(__file__).parent / "fixtures" / "golden"


def _blob(name: str) -> bytes:
    return (GOLDEN / name).read_bytes()


def _decoded(name: str) -> np.ndarray:
    return np.load(GOLDEN / f"{name}.decoded.npy")


class TestV1Golden:
    def test_abs_decodes_bit_exact(self):
        out = decompress(_blob("v1_abs_1e-3.sz"))
        np.testing.assert_array_equal(out, _decoded("v1_abs_1e-3"))

    def test_rel_decodes_bit_exact(self):
        out = decompress(_blob("v1_rel_1e-4.sz"))
        np.testing.assert_array_equal(out, _decoded("v1_rel_1e-4"))

    def test_abs_recompress_byte_identical(self):
        field = np.load(GOLDEN / "field_f32.npy")
        # The deprecated legacy spelling must keep producing the exact
        # archived bytes (shim byte-identity), as must the mode spelling.
        with pytest.warns(DeprecationWarning):
            legacy = compress(field, abs_bound=1e-3)
        assert legacy == _blob("v1_abs_1e-3.sz")
        assert compress(field, mode="abs", bound=1e-3) == _blob("v1_abs_1e-3.sz")

    def test_rel_recompress_byte_identical(self):
        field = np.load(GOLDEN / "field_f32.npy")
        with pytest.warns(DeprecationWarning):
            legacy = compress(field, rel_bound=1e-4, layers=2, interval_bits=10)
        assert legacy == _blob("v1_rel_1e-4.sz")
        blob = compress(field, mode="rel", bound=1e-4, layers=2, interval_bits=10)
        assert blob == _blob("v1_rel_1e-4.sz")

    def test_untagged_blob_reports_mode_abs(self):
        info = container_info(_blob("v1_rel_1e-4.sz"))
        assert info["mode"] == "abs"
        info = container_info_any(_blob("v1_abs_1e-3.sz"))
        assert info["format"] == "v1" and info["mode"] == "abs"

    def test_bounds_still_hold(self):
        field = np.load(GOLDEN / "field_f32.npy")
        out = decompress(_blob("v1_abs_1e-3.sz"))
        assert verify_bound(field, out, "abs", 1e-3)["ok"]
        out = decompress(_blob("v1_rel_1e-4.sz"))
        assert verify_bound(field, out, "rel", 1e-4)["ok"]


class TestTiledV2Golden:
    def test_decodes_bit_exact(self):
        out = decompress_tiled(_blob("v2_tiled_rel_1e-3.szt"))
        np.testing.assert_array_equal(out, _decoded("v2_tiled_rel_1e-3"))

    def test_recompress_byte_identical(self):
        field = np.load(GOLDEN / "field_f32.npy")
        with pytest.warns(DeprecationWarning):
            legacy = compress_tiled(field, tile_shape=(8, 12), rel_bound=1e-3)
        assert legacy == _blob("v2_tiled_rel_1e-3.szt")
        blob = compress_tiled(field, tile_shape=(8, 12), mode="rel", bound=1e-3)
        assert blob == _blob("v2_tiled_rel_1e-3.szt")

    def test_legacy_v2_reports_rel_mode_from_bounds(self):
        info = tiled_container_info(_blob("v2_tiled_rel_1e-3.szt"))
        assert info["format"] == "tiled-v2"
        assert info["mode"] == "rel" and info["rel_bound"] == 1e-3


class TestModedGolden:
    """The mode-tagged headers introduced with the bounds subsystem."""

    def test_pw_rel_decodes_bit_exact(self):
        out = decompress(_blob("v2_moded_pwrel_1e-3.sz"))
        np.testing.assert_array_equal(out, _decoded("v2_moded_pwrel_1e-3"))

    def test_pw_rel_recompress_byte_identical(self):
        wide = np.load(GOLDEN / "wide_f64.npy")
        blob = compress(wide, mode="pw_rel", bound=1e-3)
        assert blob == _blob("v2_moded_pwrel_1e-3.sz")

    def test_pw_rel_guarantee_and_info(self):
        wide = np.load(GOLDEN / "wide_f64.npy")
        out = decompress(_blob("v2_moded_pwrel_1e-3.sz"))
        assert verify_bound(wide, out, "pw_rel", 1e-3)["ok"]
        info = container_info(_blob("v2_moded_pwrel_1e-3.sz"))
        assert info["mode"] == "pw_rel" and info["mode_param"] == 1e-3
        assert container_info_any(_blob("v2_moded_pwrel_1e-3.sz"))[
            "format"
        ] == "v1-moded"

    def test_psnr_decodes_bit_exact(self):
        out = decompress(_blob("v2_moded_psnr_64.sz"))
        np.testing.assert_array_equal(out, _decoded("v2_moded_psnr_64"))
        info = container_info(_blob("v2_moded_psnr_64.sz"))
        assert info["mode"] == "psnr" and info["mode_param"] == 64.0

    def test_psnr_guarantee(self):
        field = np.load(GOLDEN / "field_f32.npy")
        out = decompress(_blob("v2_moded_psnr_64.sz"))
        assert verify_bound(field, out, "psnr", 64.0)["ok"]

    def test_tiled_v3_decodes_bit_exact(self):
        out = decompress_tiled(_blob("v3_tiled_pwrel_1e-3.szt"))
        np.testing.assert_array_equal(out, _decoded("v3_tiled_pwrel_1e-3"))
        info = tiled_container_info(_blob("v3_tiled_pwrel_1e-3.szt"))
        assert info["format"] == "tiled-v3"
        assert info["mode"] == "pw_rel" and info["mode_param"] == 1e-3

    def test_tiled_v3_recompress_byte_identical(self):
        wide = np.load(GOLDEN / "wide_f64.npy")
        blob = compress_tiled(wide, tile_shape=(8, 10), mode="pw_rel", bound=1e-3)
        assert blob == _blob("v3_tiled_pwrel_1e-3.szt")


class TestGroupedDispatchEdgeGolden:
    """Shapes that stress the grouped wavefront dispatch.

    These fixtures were generated before the grouped-index-table kernel
    landed; they pin the shapes where batching is most likely to go
    wrong: prime-length axes (uneven hyperplane sizes), a shape where
    every hyperplane is a single point, the scalar 1-D kernel, and a
    1-wide slab (degenerate leading axis).
    """

    CASES = [
        ("edge_prime_f32", "edge_prime_f32.npy", {"mode": "rel", "bound": 1e-4}),
        ("edge_singleton_f32", "edge_singleton_f32.npy", {"mode": "abs", "bound": 1e-3}),
        ("edge_1d_f64", "edge_1d_f64.npy", {"mode": "abs", "bound": 1e-6}),
        ("edge_slab_f32", "edge_slab_f32.npy", {"mode": "abs", "bound": 1e-3}),
    ]

    @pytest.mark.parametrize("name,src,kw", CASES, ids=[c[0] for c in CASES])
    def test_decodes_bit_exact(self, name, src, kw):
        out = decompress(_blob(f"{name}.sz"))
        expected = _decoded(name)
        assert out.dtype == expected.dtype and out.shape == expected.shape
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("name,src,kw", CASES, ids=[c[0] for c in CASES])
    def test_recompress_byte_identical(self, name, src, kw):
        arr = np.load(GOLDEN / src)
        assert compress(arr, **kw) == _blob(f"{name}.sz")

    @pytest.mark.parametrize("name,src,kw", CASES, ids=[c[0] for c in CASES])
    def test_bound_still_holds(self, name, src, kw):
        arr = np.load(GOLDEN / src)
        out = decompress(_blob(f"{name}.sz"))
        assert verify_bound(arr, out, kw["mode"], kw["bound"])["ok"]


class TestModedCorruption:
    """Mode-tagged containers keep the clean ValueError failure contract."""

    def test_truncated_moded_blob_raises(self):
        blob = _blob("v2_moded_pwrel_1e-3.sz")
        for cut in (len(blob) // 3, len(blob) - 3):
            with pytest.raises(ValueError):
                decompress(blob[:cut])

    def test_bad_mode_code_raises(self):
        blob = bytearray(_blob("v2_moded_psnr_64.sz"))
        # mode code sits right after the 48-bit unpred_count; flip it to
        # an undefined value. Header: magic(4)+ver(1)+dtype(1)+ndim(1)+
        # m(1)+layers(1)+flags(1) is 11 bytes? — locate dynamically: the
        # mode byte of this fixture is the value 3 ('psnr') at offset
        # 9 + 6*ndim + 8 + 8 + 6 with ndim == 2.
        offset = 10 + 6 * 2 + 8 + 8 + 6
        assert blob[offset] == 3  # container layout moved — update offset
        blob[offset] = 0xEE
        with pytest.raises(ValueError, match="mode"):
            decompress(bytes(blob))
