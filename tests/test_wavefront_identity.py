"""Differential identity harness: every wavefront fast path vs the
scalar reference.

The wavefront engine carries several layered optimizations — grouped
gather tables, the float32 interior, wavefront-order storage, and the
multi-process hyperplane split.  Each one is only admissible because it
is *bit-identical* to the paper's sequential algorithm, and this suite
is the mechanical enforcement of that contract: hypothesis drives the
kernels across dtypes × dims × adversarial shapes (prime-length axes,
1-wide slabs, singleton hyperplanes, NaN/Inf contamination, spike-forced
unpredictables) and asserts code-for-code and byte-for-byte equality
against :mod:`repro.core.reference`, for every fast-path configuration:

* gather tables on vs rebuilt per plane (``with_tables=False``);
* float32 interior vs the forced float64 fallback;
* serial vs pool-split (``workers ∈ {1, 2, 4}``);
* the public ``compress``/``decompress`` pipeline across modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

import repro.core.wavefront as wf
from repro.core import compress, decompress
from repro.core.compressor import _PLAN_CACHE
from repro.core.quantizer import UNPREDICTABLE, interval_radius
from repro.core.reference import reference_compress, reference_decompress
from repro.core.unpredictable import truncate_to_bound
from repro.core.wavefront import (
    WavefrontPlan,
    wavefront_compress,
    wavefront_decompress,
)

from strategies import ADVERSARIAL_SHAPES, wavefront_arrays


def _codes_to_raster(codes_wf, plan, shape):
    out = np.zeros(int(np.prod(shape)), dtype=np.int64)
    out[plan.order] = codes_wf
    return out.reshape(shape)


def _plan_variants(shape, layers, dtype):
    """Every plan configuration a kernel run can legitimately see."""
    return [
        WavefrontPlan(shape, layers, dtype),  # native interior
        WavefrontPlan(shape, layers, dtype, with_tables=False),
        WavefrontPlan(shape, layers),  # float64 fallback interior
    ]


def _assert_matches_reference(data, eb, layers, interval_bits, plan):
    radius = interval_radius(interval_bits)
    ref_codes, ref_dec = reference_compress(data, eb, layers, radius)
    res = wavefront_compress(data, eb, plan, radius)
    np.testing.assert_array_equal(
        _codes_to_raster(res.codes, plan, data.shape), ref_codes
    )
    np.testing.assert_array_equal(res.decompressed, ref_dec)
    # Unpredictable originals: the reference reports raster positions;
    # the engine stores wavefront order of the same set of points.
    miss_raster = ref_codes == UNPREDICTABLE
    assert res.unpredictable.size == int(miss_raster.sum(dtype=np.int64))
    np.testing.assert_array_equal(
        np.sort(res.unpredictable), np.sort(data[miss_raster])
    )
    # Decompress replay must land on the reference reconstruction too.
    unpred_recon = truncate_to_bound(res.unpredictable, eb)
    out = wavefront_decompress(
        res.codes, unpred_recon, plan, eb, radius, data.dtype
    )
    np.testing.assert_array_equal(out, ref_dec)


class TestKernelIdentity:
    """Hypothesis-driven kernel equivalence across every serial fast path."""

    @given(case=wavefront_arrays())
    def test_tables_and_interior_variants_match_reference(self, case):
        data, eb, layers, interval_bits = case
        for plan in _plan_variants(data.shape, layers, data.dtype):
            _assert_matches_reference(data, eb, layers, interval_bits, plan)

    @given(case=wavefront_arrays(allow_nonfinite=False))
    def test_decompress_matches_scalar_reference(self, case):
        data, eb, layers, interval_bits = case
        radius = interval_radius(interval_bits)
        ref_codes, ref_dec = reference_compress(data, eb, layers, radius)
        unpred_raster = truncate_to_bound(
            data[ref_codes == UNPREDICTABLE], eb
        )
        ref_out = reference_decompress(
            ref_codes, unpred_raster, eb, layers, radius, data.dtype
        )
        for plan in _plan_variants(data.shape, layers, data.dtype):
            codes_wf = ref_codes.reshape(-1).take(plan.order)
            # Wavefront order of the unpredictable values.
            miss_wf = codes_wf == UNPREDICTABLE
            uidx = np.cumsum(
                (ref_codes == UNPREDICTABLE).reshape(-1), dtype=np.int64
            ) - 1
            unpred_wf = unpred_raster[uidx[plan.order][miss_wf]]
            out = wavefront_decompress(
                codes_wf, unpred_wf, plan, eb, radius, data.dtype
            )
            np.testing.assert_array_equal(out, ref_out)


@pytest.fixture
def force_pool_split(monkeypatch):
    """Open the pool gate regardless of array size."""
    monkeypatch.setattr(wf, "_SPLIT_MIN_POINTS", 1)


class TestPoolIdentity:
    """The multi-process split must be byte-identical to serial."""

    SHAPES = [(24, 26), (7, 11, 5), (1, 40), (9, 1, 4)]

    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_compress_matches_serial(
        self, force_pool_split, shape, workers
    ):
        rng = np.random.default_rng(11)
        data = np.cumsum(
            rng.normal(0, 0.2, int(np.prod(shape)))
        ).reshape(shape).astype(np.float32)
        data.reshape(-1)[:: max(1, data.size // 7)] += 1e3
        eb, radius = 1e-3, interval_radius(8)
        plan = WavefrontPlan(shape, 1, np.float32)
        serial = wf._wavefront_compress(data, eb, plan, radius)
        pooled = wavefront_compress(data, eb, plan, radius, workers=workers)
        np.testing.assert_array_equal(serial.codes, pooled.codes)
        np.testing.assert_array_equal(
            serial.unpredictable, pooled.unpredictable
        )
        np.testing.assert_array_equal(
            serial.decompressed, pooled.decompressed
        )
        assert serial.hit_rate == pooled.hit_rate
        unpred_recon = truncate_to_bound(serial.unpredictable, eb)
        serial_out = wf._wavefront_decompress(
            serial.codes, unpred_recon, plan, eb, radius, np.float32
        )
        pooled_out = wavefront_decompress(
            serial.codes, unpred_recon, plan, eb, radius, np.float32,
            workers=workers,
        )
        np.testing.assert_array_equal(serial_out, pooled_out)

    def test_pool_decompress_validates_unpred_count(self, force_pool_split):
        data = np.linspace(0, 1, 600, dtype=np.float64).reshape(20, 30)
        eb, radius = 1e-3, interval_radius(8)
        plan = WavefrontPlan(data.shape, 1, np.float64)
        res = wf._wavefront_compress(data, eb, plan, radius)
        bad = res.codes.copy()
        bad[::5] = UNPREDICTABLE  # misses without stored values
        with pytest.raises(ValueError, match="count mismatch"):
            wavefront_decompress(
                bad, np.zeros(0, dtype=np.float64), plan, eb, radius,
                np.float64, workers=2,
            )


class TestPipelineIdentity:
    """Public-API blobs must not depend on which fast path executed."""

    MODES = [
        ("abs", 1e-3),
        ("rel", 1e-4),
        ("pw_rel", 1e-3),
        ("psnr", 60.0),
    ]

    @staticmethod
    def _field(dtype):
        rng = np.random.default_rng(5)
        base = np.cumsum(rng.normal(0, 0.1, 7 * 11 * 5)).reshape(7, 11, 5)
        return (np.abs(base) + 0.5).astype(dtype)  # positive: pw_rel-safe

    @pytest.mark.parametrize("mode,bound", MODES, ids=[m for m, _ in MODES])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=str)
    def test_tables_off_is_byte_identical(
        self, monkeypatch, mode, bound, dtype
    ):
        data = self._field(dtype)
        _PLAN_CACHE.clear()
        blob_fast = compress(data, mode=mode, bound=bound)
        out_fast = decompress(blob_fast)
        monkeypatch.setattr(wf, "_TABLE_BYTES_MAX", 0)
        _PLAN_CACHE.clear()
        blob_slow = compress(data, mode=mode, bound=bound)
        assert blob_fast == blob_slow
        np.testing.assert_array_equal(out_fast, decompress(blob_slow))
        _PLAN_CACHE.clear()

    @pytest.mark.parametrize("mode,bound", MODES, ids=[m for m, _ in MODES])
    def test_pool_split_pipeline_is_byte_identical(
        self, force_pool_split, mode, bound
    ):
        from repro.api import SZConfig
        from repro.core.compressor import compress_array

        data = self._field(np.float32)
        cfg = SZConfig.from_kwargs(mode=mode, bound=bound)
        blob_serial, _ = compress_array(data, cfg)
        blob_pool, _ = compress_array(data, cfg.replace(workers=2))
        assert blob_serial == blob_pool
        np.testing.assert_array_equal(
            decompress(blob_serial), decompress(blob_pool, workers=2)
        )


class TestStalePlanRegression:
    """Satellite: the plan cache must key on dtype, not just shape.

    Before the fix, a float64 run would cache a float64-interior plan
    that a subsequent float32 run on the same shape silently reused —
    correct output (the interior falls back), but the float32 fast path
    never engaged.  Now each dtype gets its own plan and the interior
    dtype always matches the data.
    """

    def test_dtype_swap_on_one_shape_gets_fresh_plan(self):
        from repro.core.compressor import _get_plan

        _PLAN_CACHE.clear()
        shape = (6, 7)
        p64 = _get_plan(shape, 1, np.float64)
        p32 = _get_plan(shape, 1, np.float32)
        assert p64 is not p32
        assert p64.interior_dtype == np.float64
        assert p32.interior_dtype == np.float32
        assert _get_plan(shape, 1, np.float32) is p32  # cached, not rebuilt
        _PLAN_CACHE.clear()

    def test_dtype_swap_outputs_stay_correct_and_fast_path_engages(self):
        rng = np.random.default_rng(3)
        data64 = np.cumsum(rng.normal(0, 0.1, 12 * 9)).reshape(12, 9)
        data32 = data64.astype(np.float32)
        _PLAN_CACHE.clear()
        blob64 = compress(data64, mode="abs", bound=1e-3)
        blob32 = compress(data32, mode="abs", bound=1e-3)
        np.testing.assert_array_equal(
            decompress(blob64), decompress(bytes(blob64))
        )
        ref_codes, ref_dec = reference_compress(
            data32, 1e-3, 1, interval_radius(8)
        )
        np.testing.assert_array_equal(decompress(blob32), ref_dec)
        _PLAN_CACHE.clear()


class TestAdversarialShapesCurated:
    """Deterministic sweep of the curated shapes (no hypothesis), so a
    failure names the exact shape in the test id."""

    @pytest.mark.parametrize("shape", ADVERSARIAL_SHAPES, ids=str)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=str)
    def test_shape_matches_reference(self, shape, dtype):
        rng = np.random.default_rng(sum(shape))
        data = np.cumsum(
            rng.normal(0, 0.3, int(np.prod(shape)))
        ).reshape(shape).astype(dtype)
        _assert_matches_reference(
            data, 1e-3, 1, 8, WavefrontPlan(shape, 1, dtype)
        )
