"""Cross-cutting invariants that tie modules together."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, compress_with_stats, decompress
from repro.core.compressor import _PLAN_CACHE, _get_plan
from repro.encoding.huffman import HuffmanCodec


class TestHuffmanAccounting:
    @given(st.integers(1, 2**31))
    @settings(max_examples=10)
    def test_expected_bits_is_exact(self, seed):
        """The cost model used for table construction must equal the real
        encoded size bit for bit."""
        rng = np.random.default_rng(seed)
        symbols = rng.integers(0, 50, int(rng.integers(1, 500)))
        freqs = np.bincount(symbols, minlength=50)
        codec = HuffmanCodec.from_frequencies(freqs)
        stream = codec.encode(symbols)
        assert codec.expected_bits(freqs) == stream.total_bits

    def test_compression_monotone_in_skew(self, rng):
        """More skewed code distributions must never encode larger."""
        n = 20_000
        sizes = []
        for spread in (1.0, 4.0, 16.0):
            symbols = np.clip(
                np.rint(128 + spread * rng.standard_normal(n)), 0, 255
            ).astype(np.int64)
            codec = HuffmanCodec.from_symbols(symbols, 256)
            sizes.append(codec.encode(symbols).total_bits)
        assert sizes[0] < sizes[1] < sizes[2]


class TestPlanCache:
    def test_cache_hit_and_eviction(self):
        _PLAN_CACHE.clear()
        p1 = _get_plan((10, 10), 1)
        assert _get_plan((10, 10), 1) is p1  # cache hit
        assert _get_plan((10, 10), 2) is not p1  # layers key matters
        for i in range(40):  # force eviction sweep
            _get_plan((5, 5 + i), 1)
        assert len(_PLAN_CACHE) <= 34
        # still correct after eviction
        out = decompress(compress(np.ones((10, 10)) * 3, mode="abs", bound=0.1))
        np.testing.assert_allclose(out, 3.0)


class TestAdaptiveCap:
    def test_m_capped_at_16(self, rng):
        noise = rng.standard_normal((48, 48)).astype(np.float32)
        _, stats = compress_with_stats(
            noise, mode="rel", bound=1e-9, interval_bits=14, adaptive=True, theta=0.999
        )
        assert stats.interval_bits <= 16
        assert stats.adaptive_attempts >= 2

    def test_adaptive_never_loosens_bound(self, rng):
        noise = rng.standard_normal((40, 40)).astype(np.float64)
        eb = 1e-8
        blob = compress(noise, mode="abs", bound=eb, interval_bits=2, adaptive=True)
        out = decompress(blob)
        assert np.abs(out - noise).max() <= eb


class TestDtypePreservation:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_exact_dtype_and_contiguity(self, dtype, rng):
        data = rng.standard_normal((17, 19)).astype(dtype)
        out = decompress(compress(data, mode="rel", bound=1e-3))
        assert out.dtype == dtype
        assert out.flags["C_CONTIGUOUS"]

    def test_fortran_order_input(self, rng):
        data = np.asfortranarray(rng.standard_normal((20, 30)))
        out = decompress(compress(data, mode="abs", bound=0.01))
        assert np.abs(out - data).max() <= 0.01

    def test_non_contiguous_view_input(self, rng):
        base = rng.standard_normal((40, 60))
        view = base[::2, ::3]
        out = decompress(compress(view, mode="abs", bound=0.01))
        assert out.shape == view.shape
        assert np.abs(out - view).max() <= 0.01


class TestErrorDistribution:
    def test_errors_bounded_not_biased(self, smooth2d):
        """Quantization errors should be roughly symmetric (no drift) —
        a consequence of round-to-nearest interval placement."""
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        out = decompress(compress(smooth2d, mode="abs", bound=eb))
        err = (out.astype(np.float64) - smooth2d.astype(np.float64)).ravel()
        assert np.abs(err).max() <= eb
        assert abs(err.mean()) < 0.2 * eb
