"""Tests for the arbitrary-alphabet canonical Huffman codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.huffman import (
    EncodedStream,
    HuffmanCodec,
    huffman_code_lengths,
)


def roundtrip(symbols, alphabet, block_size=64):
    codec = HuffmanCodec.from_symbols(symbols, alphabet)
    stream = codec.encode(symbols, block_size=block_size)
    return codec, stream, codec.decode(stream)


class TestCodeLengths:
    def test_uniform_four_symbols(self):
        lengths = huffman_code_lengths(np.array([5, 5, 5, 5]))
        np.testing.assert_array_equal(lengths, [2, 2, 2, 2])

    def test_skewed_gives_short_code_to_common(self):
        lengths = huffman_code_lengths(np.array([100, 1, 1]))
        assert lengths[0] == 1
        assert lengths[1] == 2 and lengths[2] == 2

    def test_absent_symbols_have_zero_length(self):
        lengths = huffman_code_lengths(np.array([3, 0, 2, 0]))
        assert lengths[1] == 0 and lengths[3] == 0
        assert lengths[0] > 0 and lengths[2] > 0

    def test_single_symbol_gets_one_bit(self):
        lengths = huffman_code_lengths(np.array([0, 9, 0]))
        np.testing.assert_array_equal(lengths, [0, 1, 0])

    def test_empty_alphabet(self):
        assert huffman_code_lengths(np.array([], dtype=np.int64)).size == 0

    def test_all_zero_freqs(self):
        np.testing.assert_array_equal(
            huffman_code_lengths(np.array([0, 0, 0])), [0, 0, 0]
        )

    def test_negative_freq_raises(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([1, -1]))

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force deep unconstrained trees.
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377])
        lengths = huffman_code_lengths(freqs, max_code_length=6)
        assert lengths.max() <= 6
        assert np.all(lengths[freqs > 0] > 0)

    def test_length_limit_too_small_raises(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.ones(100, dtype=np.int64), max_code_length=5)

    def test_kraft_inequality(self, rng):
        freqs = rng.integers(0, 1000, 300)
        lengths = huffman_code_lengths(freqs)
        present = lengths[lengths > 0]
        assert np.sum(2.0 ** (-present.astype(float))) <= 1.0 + 1e-12

    def test_optimality_against_entropy(self, rng):
        freqs = rng.integers(1, 500, 64).astype(np.int64)
        lengths = huffman_code_lengths(freqs)
        p = freqs / freqs.sum()
        entropy = -np.sum(p * np.log2(p))
        avg_len = np.sum(p * lengths)
        assert entropy <= avg_len < entropy + 1.0  # Huffman is within 1 bit


class TestCanonicalCodes:
    def test_prefix_free(self, rng):
        freqs = rng.integers(0, 100, 40)
        codec = HuffmanCodec.from_frequencies(freqs)
        present = np.flatnonzero(codec.lengths)
        words = [
            format(int(codec.codes[s]), f"0{int(codec.lengths[s])}b")
            for s in present
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_canonical_ordering(self):
        codec = HuffmanCodec.from_frequencies(np.array([10, 10, 10, 10]))
        # equal lengths -> codes are consecutive in symbol order
        np.testing.assert_array_equal(codec.codes, [0, 1, 2, 3])


class TestEncodedStreamSerialization:
    def test_roundtrip(self, rng):
        symbols = rng.integers(0, 20, 500)
        codec = HuffmanCodec.from_symbols(symbols, 20)
        stream = codec.encode(symbols, block_size=128)
        blob = stream.to_bytes()
        back = EncodedStream.from_bytes(blob)
        assert back.n_symbols == stream.n_symbols
        assert back.block_size == stream.block_size
        np.testing.assert_array_equal(back.block_bits, stream.block_bits)
        np.testing.assert_array_equal(back.payload, stream.payload)
        np.testing.assert_array_equal(codec.decode(back), symbols)

    def test_empty_stream(self):
        codec = HuffmanCodec.from_frequencies(np.array([1, 1]))
        stream = codec.encode(np.array([], dtype=np.int64))
        back = EncodedStream.from_bytes(stream.to_bytes())
        assert codec.decode(back).size == 0


class TestRoundTrip:
    def test_basic(self, rng):
        symbols = rng.integers(0, 17, 1000)
        _, _, out = roundtrip(symbols, 17)
        np.testing.assert_array_equal(out, symbols)

    def test_single_distinct_symbol(self):
        symbols = np.full(100, 3, dtype=np.int64)
        _, _, out = roundtrip(symbols, 5)
        np.testing.assert_array_equal(out, symbols)

    def test_large_alphabet_beyond_256(self, rng):
        # The paper's motivation: m > 8 means more than 256 codes.
        symbols = rng.integers(0, 5000, 4000)
        _, _, out = roundtrip(symbols, 5000, block_size=256)
        np.testing.assert_array_equal(out, symbols)

    def test_highly_skewed_source(self, rng):
        symbols = np.where(rng.random(3000) < 0.95, 128, rng.integers(0, 257, 3000))
        _, _, out = roundtrip(symbols, 257)
        np.testing.assert_array_equal(out, symbols)

    def test_block_boundary_exact_multiple(self, rng):
        symbols = rng.integers(0, 9, 256)
        _, _, out = roundtrip(symbols, 9, block_size=64)
        np.testing.assert_array_equal(out, symbols)

    def test_single_symbol_stream(self):
        symbols = np.array([2])
        _, _, out = roundtrip(symbols, 4)
        np.testing.assert_array_equal(out, symbols)

    def test_scalar_decoder_agrees(self, rng):
        symbols = rng.integers(0, 300, 700)
        codec, stream, out = roundtrip(symbols, 300, block_size=100)
        np.testing.assert_array_equal(codec.decode_scalar(stream), symbols)
        np.testing.assert_array_equal(out, symbols)

    def test_out_of_alphabet_symbol_raises(self):
        codec = HuffmanCodec.from_frequencies(np.array([1, 1]))
        with pytest.raises(ValueError):
            codec.encode(np.array([5]))

    def test_symbol_without_codeword_raises(self):
        codec = HuffmanCodec.from_frequencies(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            codec.encode(np.array([1]))

    def test_corrupt_payload_detected(self, rng):
        symbols = rng.integers(0, 11, 400)
        codec = HuffmanCodec.from_symbols(symbols, 11)
        stream = codec.encode(symbols, block_size=100)
        payload = stream.payload.copy()
        payload[len(payload) // 2] ^= 0xFF
        bad = EncodedStream(
            stream.n_symbols, stream.block_size, stream.block_bits, payload
        )
        # A complete Huffman code decodes any bit pattern, so corruption is
        # either flagged (length mismatch) or yields different symbols.
        try:
            out = codec.decode(bad)
        except ValueError:
            return
        assert not np.array_equal(out, symbols)

    @given(
        st.integers(2, 600),
        st.integers(1, 2**31),
        st.integers(1, 97),
    )
    def test_roundtrip_property(self, alphabet, seed, block):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 400))
        symbols = rng.integers(0, alphabet, n)
        codec = HuffmanCodec.from_symbols(symbols, alphabet)
        stream = codec.encode(symbols, block_size=block)
        np.testing.assert_array_equal(codec.decode(stream), symbols)


class TestTableSerialization:
    def test_roundtrip_dense(self, rng):
        freqs = rng.integers(1, 50, 30)
        codec = HuffmanCodec.from_frequencies(freqs)
        w = BitWriter()
        codec.write_table(w)
        back = HuffmanCodec.read_table(BitReader(w.getvalue()))
        np.testing.assert_array_equal(back.lengths, codec.lengths)
        np.testing.assert_array_equal(back.codes, codec.codes)

    def test_roundtrip_sparse_large_alphabet(self, rng):
        freqs = np.zeros(70000, dtype=np.int64)
        hot = rng.choice(70000, 40, replace=False)
        freqs[hot] = rng.integers(1, 100, 40)
        codec = HuffmanCodec.from_frequencies(freqs)
        w = BitWriter()
        codec.write_table(w)
        # Sparse table must stay small: zero runs are RLE'd.
        assert len(w.getvalue()) < 200
        back = HuffmanCodec.read_table(BitReader(w.getvalue()))
        np.testing.assert_array_equal(back.lengths, codec.lengths)

    def test_roundtrip_runs_of_equal_lengths(self):
        freqs = np.ones(5000, dtype=np.int64)
        codec = HuffmanCodec.from_frequencies(freqs)
        w = BitWriter()
        codec.write_table(w)
        # 5000 mostly-equal lengths should compress far below 1 byte each.
        assert len(w.getvalue()) < 100
        back = HuffmanCodec.read_table(BitReader(w.getvalue()))
        np.testing.assert_array_equal(back.lengths, codec.lengths)

    def test_expected_bits(self):
        freqs = np.array([3, 1])
        codec = HuffmanCodec.from_frequencies(freqs)
        assert codec.expected_bits(freqs) == 4.0
