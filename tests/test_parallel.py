"""Tests for the parallel pool, cluster model and I/O model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress
from repro.parallel import (
    BluesClusterModel,
    ParallelIOModel,
    parallel_compress,
    parallel_decompress,
)
from repro.parallel.pool import chunk_array


def _square(x: int) -> int:
    return x * x


class TestChunking:
    def test_chunks_cover_array(self, smooth2d):
        chunks = chunk_array(smooth2d, 4)
        assert sum(c.shape[0] for c in chunks) == smooth2d.shape[0]
        np.testing.assert_array_equal(np.concatenate(chunks), smooth2d)

    def test_more_chunks_than_rows(self):
        data = np.zeros((3, 5), dtype=np.float32)
        assert len(chunk_array(data, 10)) == 3

    def test_bad_count(self):
        with pytest.raises(ValueError):
            chunk_array(np.zeros((4, 4), dtype=np.float32), 0)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError, match="0-d"):
            chunk_array(np.float32(1.0), 2)

    def test_effective_count_is_len(self):
        """len() of the result is the documented effective chunk count."""
        data = np.zeros((5, 3), dtype=np.float32)
        assert len(chunk_array(data, 8)) == 5
        assert len(chunk_array(data, 4)) == 4


class TestPoolMap:
    def test_order_preserved(self):
        from repro.parallel.pool import pool_map

        items = list(range(7))
        assert pool_map(_square, items, n_workers=1) == [i * i for i in items]
        assert pool_map(_square, items, n_workers=3) == [i * i for i in items]

    def test_empty_and_single(self):
        from repro.parallel.pool import pool_map

        assert pool_map(_square, [], n_workers=4) == []
        assert pool_map(_square, [3], n_workers=4) == [9]


class TestPool:
    def test_parallel_equals_serial(self, smooth2d):
        chunks = chunk_array(smooth2d, 4)
        serial = [compress(c, mode="rel", bound=1e-3) for c in chunks]
        parallel = parallel_compress(chunks, n_workers=2, mode="rel", bound=1e-3)
        assert [bytes(a) for a in serial] == [bytes(b) for b in parallel]

    def test_parallel_roundtrip(self, smooth2d):
        chunks = chunk_array(smooth2d, 3)
        blobs = parallel_compress(chunks, n_workers=2, mode="rel", bound=1e-3)
        outs = parallel_decompress(blobs, n_workers=2)
        recon = np.concatenate(outs)
        eb = 1e-3 * float(smooth2d.max() - smooth2d.min())
        # each chunk uses its own range, all ranges <= global range
        assert np.abs(recon - smooth2d).max() <= eb

    def test_single_worker_path(self, smooth2d):
        chunks = chunk_array(smooth2d, 2)
        blobs = parallel_compress(chunks, n_workers=1, mode="rel", bound=1e-3)
        outs = parallel_decompress(blobs, n_workers=1)
        assert len(outs) == 2


class TestClusterModel:
    def test_matches_paper_table7_shape(self):
        """Efficiency ~100% to 128 procs, ~90-96% beyond (Table VII)."""
        model = BluesClusterModel()
        rows = {r.processes: r for r in model.strong_scaling()}
        for p in (2, 8, 64, 128):
            assert rows[p].efficiency > 0.99, p
        assert 0.93 < rows[256].efficiency < 0.99
        assert 0.88 < rows[512].efficiency < 0.93
        assert 0.88 < rows[1024].efficiency < 0.93

    def test_paper_endpoint_speed(self):
        """Paper: 0.09 GB/s at 1 process -> ~81 GB/s at 1024."""
        model = BluesClusterModel()
        s1024 = model.speed(1024)
        assert 75 < s1024 < 90

    def test_placement(self):
        model = BluesClusterModel()
        assert model.placement(32) == (32, 1.0)
        assert model.placement(128) == (64, 2.0)
        assert model.placement(1024) == (64, 16.0)

    def test_validation(self):
        model = BluesClusterModel()
        with pytest.raises(ValueError):
            model.placement(0)
        with pytest.raises(ValueError):
            model.placement(64 * 16 + 1)

    def test_custom_single_speed(self):
        model = BluesClusterModel()
        assert model.speed(4, single_gb_s=1.0) == pytest.approx(
            4.0 * model._efficiency(1.0), rel=1e-6
        )


class TestIOModel:
    def test_crossover_around_32_processes(self):
        """Fig. 10: compression pays off from ~32 processes upward."""
        model = ParallelIOModel()
        sweep = {b.processes: b for b in model.sweep()}
        assert sweep[32].compression_pays_off
        assert sweep[1024].compression_pays_off
        assert not sweep[1].compression_pays_off

    def test_shares_sum_to_one(self):
        model = ParallelIOModel()
        for b in model.sweep():
            assert sum(b.shares) == pytest.approx(1.0)

    def test_io_share_grows_with_scale(self):
        """Relative time in I/O increases with process count (paper)."""
        model = ParallelIOModel()
        sweep = model.sweep()
        io_share_small = 1 - sweep[0].shares[0]
        io_share_large = 1 - sweep[-1].shares[0]
        assert io_share_large > io_share_small

    def test_fs_saturation(self):
        model = ParallelIOModel()
        assert model.io_bandwidth(1) == pytest.approx(0.35)
        assert model.io_bandwidth(1024) == pytest.approx(model.fs_peak_gb_s)
        assert model.io_bandwidth(1024) == model.io_bandwidth(64)
