"""Tests for the ZFP-like transform codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.zfp import (
    ZFPLike,
    _blockize,
    _from_negabinary,
    _fwd_lift,
    _inv_lift,
    _sequency_perm,
    _to_negabinary,
    _unblockize,
)


class TestLifting:
    def test_roundoff_bounded(self, rng):
        v = rng.integers(-(2**50), 2**50, (5000, 4))
        f = v.copy()
        _fwd_lift(f, 1)
        r = f.copy()
        _inv_lift(r, 1)
        assert np.abs(r - v).max() <= 2  # approximate inverse by design

    def test_dc_coefficient_is_average(self, rng):
        v = rng.integers(-(2**30), 2**30, (100, 4))
        f = v.copy()
        _fwd_lift(f, 1)
        avg = v.mean(axis=1)
        assert np.abs(f[:, 0] - avg).max() <= 2

    def test_constant_block_decorrelates_to_dc_only(self):
        v = np.full((1, 4), 12345, dtype=np.int64)
        f = v.copy()
        _fwd_lift(f, 1)
        assert f[0, 0] == 12345
        np.testing.assert_array_equal(f[0, 1:], 0)

    def test_linear_ramp_kills_high_frequencies(self):
        v = np.array([[0, 1000, 2000, 3000]], dtype=np.int64)
        f = v.copy()
        _fwd_lift(f, 1)
        # w (highest frequency) should be ~0 for a perfect ramp
        assert abs(int(f[0, 3])) <= 2


class TestNegabinary:
    @given(st.lists(st.integers(-(2**60), 2**60), min_size=1, max_size=50))
    def test_roundtrip(self, vals):
        q = np.array(vals, dtype=np.int64)
        np.testing.assert_array_equal(_from_negabinary(_to_negabinary(q)), q)

    def test_small_magnitudes_have_few_bits(self):
        u = _to_negabinary(np.array([0, 1, -1, 2, -2], dtype=np.int64))
        assert u[0] == 0
        assert all(int(x) < 16 for x in u)


class TestBlockize:
    @pytest.mark.parametrize("shape", [(8, 8), (7, 9), (5,), (6, 7, 9)])
    def test_roundtrip(self, shape, rng):
        data = rng.standard_normal(shape)
        blocks, nb = _blockize(data)
        assert blocks.shape[1] == 4 ** len(shape)
        back = _unblockize(blocks, nb, shape)
        np.testing.assert_array_equal(back, data)

    def test_partial_blocks_edge_replicated(self):
        data = np.arange(5, dtype=np.float64)
        blocks, nb = _blockize(data)
        assert nb == (2,)
        np.testing.assert_array_equal(blocks[1], [4, 4, 4, 4])


class TestSequency:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_permutation_valid(self, d):
        perm = _sequency_perm(d)
        assert np.array_equal(np.sort(perm), np.arange(4**d))

    def test_dc_first(self):
        for d in (1, 2, 3):
            assert _sequency_perm(d)[0] == 0


class TestAccuracyMode:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("tol", [1e-2, 1e-5])
    def test_bound_on_normal_data(self, dtype, tol, rng):
        data = np.cumsum(rng.standard_normal(2000)).reshape(40, 50).astype(dtype)
        z = ZFPLike(mode="accuracy", tolerance=tol)
        out = z.decompress(z.compress(data))
        err = np.abs(out.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= tol

    def test_overconservative_like_table5(self, smooth2d):
        """Realized max error is a small fraction of the tolerance."""
        tol = 1e-3
        z = ZFPLike(mode="accuracy", tolerance=tol)
        out = z.decompress(z.compress(smooth2d))
        err = np.abs(out.astype(np.float64) - smooth2d.astype(np.float64)).max()
        assert 0 < err <= 0.6 * tol

    def test_bound_violated_on_huge_range(self):
        """The paper's CDNUMC anecdote: value range 1e-3..1e11 breaks the
        fixed-point alignment and the bound is not respected."""
        data = np.ones((32, 32), dtype=np.float32)
        data[3, 3] = 1e11
        data[5, 5] = 1e-3
        data[10, 10] = 6.936168  # the paper's example value
        tol = 1e-4
        z = ZFPLike(mode="accuracy", tolerance=tol)
        out = z.decompress(z.compress(data))
        err = np.abs(out.astype(np.float64) - data.astype(np.float64)).max()
        assert err > tol

    def test_3d(self, rng):
        data = rng.standard_normal((12, 13, 14))
        z = ZFPLike(mode="accuracy", tolerance=1e-4)
        out = z.decompress(z.compress(data))
        assert np.abs(out - data).max() <= 1e-4

    def test_1d(self, rng):
        data = np.cumsum(rng.standard_normal(999)).astype(np.float32)
        z = ZFPLike(mode="accuracy", tolerance=1e-3)
        out = z.decompress(z.compress(data))
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= 1e-3

    def test_zero_array(self):
        data = np.zeros((16, 16), dtype=np.float32)
        z = ZFPLike(mode="accuracy", tolerance=1e-6)
        blob = z.compress(data)
        np.testing.assert_array_equal(z.decompress(blob), data)
        assert len(blob) < 150

    def test_tighter_tolerance_bigger_blob(self, smooth2d):
        loose = len(ZFPLike(mode="accuracy", tolerance=1e-2).compress(smooth2d))
        tight = len(ZFPLike(mode="accuracy", tolerance=1e-7).compress(smooth2d))
        assert tight > loose

    @given(st.integers(1, 2**31), st.sampled_from([1e-2, 1e-5, 1e-8]))
    @settings(max_examples=10)
    def test_bound_property(self, seed, tol):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(4, 24, size=rng.integers(1, 4)))
        data = np.cumsum(rng.standard_normal(int(np.prod(shape)))).reshape(shape)
        z = ZFPLike(mode="accuracy", tolerance=tol)
        out = z.decompress(z.compress(data))
        assert np.abs(out - data).max() <= tol


class TestRateMode:
    @pytest.mark.parametrize("rate", [1, 2, 4, 8, 16])
    def test_rate_respected(self, rate, smooth2d):
        z = ZFPLike(mode="rate", rate=rate)
        blob = z.compress(smooth2d)
        bpv = len(blob) * 8 / smooth2d.size
        assert bpv == pytest.approx(rate, abs=0.35)  # container overhead

    def test_quality_improves_with_rate(self, smooth2d):
        errs = []
        for rate in (2, 4, 8, 16):
            z = ZFPLike(mode="rate", rate=rate)
            out = z.decompress(z.compress(smooth2d))
            errs.append(np.abs(out.astype(np.float64) - smooth2d).max())
        assert errs[0] > errs[-1]
        assert all(a >= b * 0.5 for a, b in zip(errs, errs[1:]))

    def test_3d_rate(self, rng):
        data = rng.standard_normal((8, 12, 16)).astype(np.float32)
        z = ZFPLike(mode="rate", rate=6)
        blob = z.compress(data)
        out = z.decompress(blob)
        assert out.shape == data.shape
        assert len(blob) * 8 / data.size == pytest.approx(6, abs=0.5)


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ZFPLike(mode="nope")

    def test_missing_params(self):
        with pytest.raises(ValueError):
            ZFPLike(mode="accuracy")
        with pytest.raises(ValueError):
            ZFPLike(mode="rate")

    def test_nan_rejected(self):
        data = np.full((8, 8), np.nan)
        with pytest.raises(ValueError):
            ZFPLike(mode="accuracy", tolerance=1e-3).compress(data)

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            ZFPLike(mode="accuracy", tolerance=1e-3).compress(
                np.zeros((2, 2, 2, 2))
            )

    def test_int_rejected(self):
        with pytest.raises(TypeError):
            ZFPLike(mode="accuracy", tolerance=1e-3).compress(np.zeros(8, int))

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            ZFPLike(mode="rate", rate=8).decompress(b"\x00" * 64)
