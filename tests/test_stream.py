"""Container-format tests: header integrity, versioning, fuzzing."""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compress, decompress
from repro.core.stream import (
    FLAG_CONSTANT,
    Header,
    read_container,
    write_container,
)
from repro.encoding.huffman import HuffmanCodec


class TestHeaderRoundtrip:
    def test_constant_container(self):
        header = Header(
            np.dtype(np.float32), (10, 20), 8, 1, 0.5, 0.0, 0,
            flags=FLAG_CONSTANT,
        )
        blob = write_container(header, None, None, b"", constant_value=3.25)
        h2, codec, stream, payload, constant, arith = read_container(blob)
        assert h2.is_constant and constant == 3.25
        assert h2.shape == (10, 20)
        assert h2.dtype == np.float32

    def test_full_container_fields(self, rng):
        codes = rng.integers(0, 256, 500)
        codec = HuffmanCodec.from_symbols(codes, 256)
        stream = codec.encode(codes)
        header = Header(
            np.dtype(np.float64), (5, 10, 10), 8, 2, 1e-4, 7.5, 3
        )
        blob = write_container(header, codec, stream, b"unpred-bytes")
        h2, c2, s2, payload, _, _ = read_container(blob)
        assert h2.shape == (5, 10, 10)
        assert h2.dtype == np.float64
        assert h2.interval_bits == 8 and h2.layers == 2
        assert h2.eb_abs == 1e-4 and h2.value_range == 7.5
        assert h2.unpred_count == 3
        assert payload == b"unpred-bytes"
        np.testing.assert_array_equal(c2.decode(s2), codes)

    def test_eb_preserved_bitexact(self):
        """Error bounds must survive the container bit-for-bit: the
        decompressor's reconstruction arithmetic depends on them."""
        eb = 1.0000000000000002e-7  # not representable in fewer bits
        header = Header(np.dtype(np.float32), (4,), 8, 1, eb, 1.0, 0,
                        flags=FLAG_CONSTANT)
        blob = write_container(header, None, None, b"", 0.0)
        h2 = read_container(blob)[0]
        assert h2.eb_abs == eb


class TestVersioning:
    def test_wrong_magic(self):
        with pytest.raises(ValueError, match="magic"):
            read_container(b"XXXX" + b"\x00" * 64)

    def test_wrong_version(self, smooth2d):
        blob = bytearray(compress(smooth2d, mode="rel", bound=1e-3))
        blob[4] = 99  # version byte
        with pytest.raises(ValueError, match="version"):
            read_container(bytes(blob))

    def test_empty_blob(self):
        with pytest.raises(ValueError):
            read_container(b"")


class TestFuzzing:
    """Corrupted containers must fail cleanly (ValueError), never crash
    with index errors or produce silent garbage exceeding the recorded
    shape."""

    @given(st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_random_truncation(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((12, 12)).astype(np.float32)
        blob = compress(data, mode="rel", bound=1e-3)
        cut = int(rng.integers(1, len(blob)))
        try:
            out = decompress(blob[:cut])
        except (ValueError, EOFError):
            return
        assert out.shape == data.shape  # if it decodes, shape must hold

    @given(st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_random_byte_flip(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((10, 14)).astype(np.float32)
        blob = bytearray(compress(data, mode="rel", bound=1e-3))
        pos = int(rng.integers(0, len(blob)))
        blob[pos] ^= int(rng.integers(1, 256))
        try:
            out = decompress(bytes(blob))
        except (ValueError, EOFError, KeyError, OverflowError):
            return
        assert out.shape == data.shape

    def test_swapped_sections_detected(self, rng):
        data = rng.standard_normal(300).astype(np.float32)
        a = compress(data, mode="rel", bound=1e-3)
        b = compress(data * 2, mode="rel", bound=1e-2)
        # splice the tail of b onto the head of a
        chimera = a[: len(a) // 2] + b[len(b) // 2 :]
        # A clean reject is fine; anything decoded must keep the shape.
        with contextlib.suppress(ValueError, EOFError):
            out = decompress(chimera)
            assert out.shape == data.shape
