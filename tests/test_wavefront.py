"""Wavefront engine tests, including bit-exact equivalence with the
scalar raster-order reference implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantizer import UNPREDICTABLE, interval_radius
from repro.core.reference import reference_compress, reference_decompress
from repro.core.unpredictable import truncate_to_bound
from repro.core.wavefront import (
    WavefrontPlan,
    wavefront_compress,
    wavefront_decompress,
)


def wf_roundtrip(data, eb, n=1, m=8):
    radius = interval_radius(m)
    plan = WavefrontPlan(data.shape, n)
    res = wavefront_compress(data, eb, plan, radius)
    recon_unpred = truncate_to_bound(res.unpredictable, eb)
    out = wavefront_decompress(
        res.codes, recon_unpred, plan, eb, radius, data.dtype
    )
    return res, out


class TestPlan:
    def test_groups_cover_all_points(self):
        plan = WavefrontPlan((5, 7), 1)
        total = sum(e - s for s, e in plan.groups)
        assert total == 35
        assert np.unique(plan.order).size == 35

    def test_group_monotonicity(self):
        """Every stencil dependency lands in an earlier group."""
        plan = WavefrontPlan((6, 6), 2)
        coord_sum = np.add.outer(np.arange(6), np.arange(6)).ravel()
        seen_sum = coord_sum[plan.order]
        assert (np.diff(seen_sum) >= 0).all()

    def test_3d_plan(self):
        plan = WavefrontPlan((3, 4, 5), 1)
        total = sum(e - s for s, e in plan.groups)
        assert total == 60
        assert len(plan.groups) == 3 + 4 + 5 - 2

    def test_degenerate_shape_raises(self):
        with pytest.raises(ValueError):
            WavefrontPlan((0, 5), 1)


class TestEquivalenceWithReference:
    """The wavefront engine must match the paper's sequential algorithm
    point for point — codes, decompressed values, everything."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_2d(self, n, dtype, rng):
        data = (rng.standard_normal((12, 15)) * 5).astype(dtype)
        eb = 0.01
        radius = interval_radius(8)
        plan = WavefrontPlan(data.shape, n)
        res = wavefront_compress(data, eb, plan, radius)
        ref_codes, ref_dec = reference_compress(data, eb, n, radius)
        # Wavefront codes are stored in wavefront order; scatter to raster.
        codes_raster = np.zeros(data.size, dtype=np.int64)
        codes_raster[plan.order] = res.codes
        np.testing.assert_array_equal(
            codes_raster.reshape(data.shape), ref_codes
        )
        np.testing.assert_array_equal(res.decompressed, ref_dec)

    @pytest.mark.parametrize("n", [1, 2])
    def test_3d(self, n, rng):
        data = (rng.standard_normal((6, 7, 8)) * 3).astype(np.float32)
        eb = 0.02
        radius = interval_radius(8)
        plan = WavefrontPlan(data.shape, n)
        res = wavefront_compress(data, eb, plan, radius)
        ref_codes, ref_dec = reference_compress(data, eb, n, radius)
        codes_raster = np.zeros(data.size, dtype=np.int64)
        codes_raster[plan.order] = res.codes
        np.testing.assert_array_equal(
            codes_raster.reshape(data.shape), ref_codes
        )
        np.testing.assert_array_equal(res.decompressed, ref_dec)

    def test_1d(self, rng):
        data = (np.cumsum(rng.standard_normal(200)) * 2).astype(np.float64)
        eb = 0.05
        radius = interval_radius(8)
        plan = WavefrontPlan(data.shape, 1)
        res = wavefront_compress(data, eb, plan, radius)
        ref_codes, ref_dec = reference_compress(data, eb, 1, radius)
        np.testing.assert_array_equal(res.codes, ref_codes)
        np.testing.assert_array_equal(res.decompressed, ref_dec)

    def test_with_spikes_forcing_unpredictables(self, spiky2d):
        eb = 1e-4 * (spiky2d.max() - spiky2d.min())
        radius = interval_radius(4)  # few intervals -> many misses
        plan = WavefrontPlan(spiky2d.shape, 1)
        res = wavefront_compress(spiky2d, eb, plan, radius)
        assert res.unpredictable.size > 0
        ref_codes, ref_dec = reference_compress(spiky2d, eb, 1, radius)
        codes_raster = np.zeros(spiky2d.size, dtype=np.int64)
        codes_raster[plan.order] = res.codes
        np.testing.assert_array_equal(
            codes_raster.reshape(spiky2d.shape), ref_codes
        )
        np.testing.assert_array_equal(res.decompressed, ref_dec)

    def test_reference_decompress_agrees(self, rng):
        data = (rng.standard_normal((10, 11)) * 4).astype(np.float64)
        eb = 0.01
        radius = interval_radius(8)
        ref_codes, ref_dec = reference_compress(data, eb, 1, radius)
        miss = ref_codes == UNPREDICTABLE
        unpred_raster = truncate_to_bound(data[miss], eb)
        out = reference_decompress(
            ref_codes, unpred_raster, eb, 1, radius, data.dtype
        )
        np.testing.assert_array_equal(out, ref_dec)


class TestRoundTrip:
    @pytest.mark.parametrize("shape", [(64,), (23, 31), (7, 9, 11), (3, 4, 5, 6)])
    def test_bound_holds(self, shape, rng):
        data = (rng.standard_normal(shape) * 10).astype(np.float64)
        eb = 0.01
        res, out = wf_roundtrip(data, eb)
        assert np.abs(out - data).max() <= eb
        np.testing.assert_array_equal(out, res.decompressed)

    def test_decompress_equals_compressor_view(self, smooth2d):
        eb = 1e-3
        res, out = wf_roundtrip(smooth2d, eb)
        np.testing.assert_array_equal(out, res.decompressed)

    def test_hit_rate_reported(self, smooth2d):
        res, _ = wf_roundtrip(smooth2d, 1e-2)
        assert 0.9 < res.hit_rate <= 1.0

    def test_unpredictable_count_mismatch_detected(self, rng):
        data = rng.standard_normal((8, 8))
        radius = interval_radius(8)
        plan = WavefrontPlan(data.shape, 1)
        res = wavefront_compress(data, 1e-6, plan, radius)
        if res.unpredictable.size == 0:
            pytest.skip("no unpredictables generated")
        too_few = truncate_to_bound(res.unpredictable, 1e-6)[:-1]
        with pytest.raises(ValueError):
            wavefront_decompress(res.codes, too_few, plan, 1e-6, radius, data.dtype)

    @given(
        st.sampled_from([(5, 6), (16, 3), (4, 4, 4), (40,)]),
        st.integers(1, 2),
        st.sampled_from([1e-1, 1e-3, 1e-6]),
        st.integers(1, 2**31),
    )
    @settings(max_examples=15)
    def test_bound_property(self, shape, n, eb_rel, seed):
        rng = np.random.default_rng(seed)
        data = (rng.standard_normal(shape) * 100).astype(np.float32)
        eb = eb_rel * float(data.max() - data.min())
        res, out = wf_roundtrip(data, eb, n=n)
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_nan_inf_survive(self):
        data = np.ones((6, 6), dtype=np.float64)
        data[2, 3] = np.nan
        data[4, 1] = np.inf
        res, out = wf_roundtrip(data, 1e-3)
        assert np.isnan(out[2, 3])
        assert out[4, 1] == np.inf
        finite = np.isfinite(data)
        assert np.abs(out[finite] - data[finite]).max() <= 1e-3
