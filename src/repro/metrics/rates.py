"""Size and speed metrics (Metrics 4-5): CF, bit-rate, throughput."""

from __future__ import annotations

import numpy as np

__all__ = ["compression_factor", "bit_rate", "throughput_mb_s", "check_identity"]


def compression_factor(original_bytes: int, compressed_bytes: int) -> float:
    """``CF = |F_orig| / |F_comp|``, Eq. (5)."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return original_bytes / compressed_bytes


def bit_rate(compressed_bytes: int, n_values: int) -> float:
    """Amortized bits per value, Eq. (6)."""
    if n_values <= 0:
        raise ValueError("value count must be positive")
    return 8.0 * compressed_bytes / n_values


def throughput_mb_s(n_bytes: int, seconds: float) -> float:
    """Throughput in MB/s (Metric 5)."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return n_bytes / 1e6 / seconds


def check_identity(
    original_bytes: int, compressed_bytes: int, n_values: int, word_bits: int
) -> bool:
    """Paper identity ``BR * CF == word_bits`` (32 or 64)."""
    cf = compression_factor(original_bytes, compressed_bytes)
    br = bit_rate(compressed_bytes, n_values)
    return bool(np.isclose(br * cf, word_bits))
