"""Compression-quality metrics (paper Section II, Metrics 1-5)."""

from repro.metrics.correlation import (
    autocorrelation,
    five_nines,
    pearson,
)
from repro.metrics.errors import (
    max_abs_error,
    max_rel_error,
    nrmse,
    psnr,
    rmse,
    verify_bound,
)
from repro.metrics.rates import (
    bit_rate,
    compression_factor,
    throughput_mb_s,
)
from repro.metrics.report import QualityReport, evaluate, tile_ratio_stats

__all__ = [
    "QualityReport",
    "autocorrelation",
    "bit_rate",
    "compression_factor",
    "evaluate",
    "five_nines",
    "max_abs_error",
    "max_rel_error",
    "nrmse",
    "pearson",
    "psnr",
    "rmse",
    "throughput_mb_s",
    "tile_ratio_stats",
    "verify_bound",
]
