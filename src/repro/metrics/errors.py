"""Point-wise and average compression-error metrics (Metrics 1-2).

Implements the paper's Eqs. (1)-(3): RMSE, NRMSE and PSNR, plus the
point-wise maxima used for bound verification.  All comparisons happen in
float64 regardless of the input dtypes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_abs_error", "max_rel_error", "rmse", "nrmse", "psnr", "value_range"]


def _as64(original: np.ndarray, reconstructed: np.ndarray):
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def value_range(original: np.ndarray) -> float:
    """``R_X = x_max - x_min`` over finite values."""
    a = np.asarray(original, dtype=np.float64)
    finite = a[np.isfinite(a)]
    if finite.size == 0:
        return 0.0
    return float(finite.max() - finite.min())


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """``max_i |x_i - x~_i|`` over finite pairs (Metric 1)."""
    a, b = _as64(original, reconstructed)
    mask = np.isfinite(a) & np.isfinite(b)
    if not mask.any():
        return 0.0
    return float(np.abs(a[mask] - b[mask]).max())


def max_rel_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Value-range-based relative error max (Metric 1)."""
    r = value_range(original)
    if r == 0.0:
        return 0.0
    return max_abs_error(original, reconstructed) / r


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root mean squared error, Eq. (1)."""
    a, b = _as64(original, reconstructed)
    mask = np.isfinite(a) & np.isfinite(b)
    if not mask.any():
        return 0.0
    return float(np.sqrt(np.mean((a[mask] - b[mask]) ** 2)))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Normalized RMSE, Eq. (2)."""
    r = value_range(original)
    if r == 0.0:
        return 0.0
    return rmse(original, reconstructed) / r


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, Eq. (3).

    ``+inf`` for an exact reconstruction.
    """
    e = rmse(original, reconstructed)
    r = value_range(original)
    if e == 0.0:
        return float("inf")
    if r == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(r / e))
