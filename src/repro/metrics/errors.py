"""Point-wise and average compression-error metrics (Metrics 1-2).

Implements the paper's Eqs. (1)-(3): RMSE, NRMSE and PSNR, plus the
point-wise maxima used for bound verification.  All comparisons happen in
float64 regardless of the input dtypes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "max_abs_error",
    "max_rel_error",
    "rmse",
    "nrmse",
    "psnr",
    "value_range",
    "verify_bound",
]


def _as64(original: np.ndarray, reconstructed: np.ndarray):
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def value_range(original: np.ndarray) -> float:
    """``R_X = x_max - x_min`` over finite values."""
    a = np.asarray(original, dtype=np.float64)
    finite = a[np.isfinite(a)]
    if finite.size == 0:
        return 0.0
    return float(finite.max() - finite.min())


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """``max_i |x_i - x~_i|`` over finite pairs (Metric 1)."""
    a, b = _as64(original, reconstructed)
    mask = np.isfinite(a) & np.isfinite(b)
    if not mask.any():
        return 0.0
    return float(np.abs(a[mask] - b[mask]).max())


def max_rel_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Value-range-based relative error max (Metric 1)."""
    r = value_range(original)
    if r == 0.0:
        return 0.0
    return max_abs_error(original, reconstructed) / r


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root mean squared error, Eq. (1)."""
    a, b = _as64(original, reconstructed)
    mask = np.isfinite(a) & np.isfinite(b)
    if not mask.any():
        return 0.0
    return float(np.sqrt(np.mean((a[mask] - b[mask]) ** 2)))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Normalized RMSE, Eq. (2)."""
    r = value_range(original)
    if r == 0.0:
        return 0.0
    return rmse(original, reconstructed) / r


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, Eq. (3).

    ``+inf`` for an exact reconstruction.
    """
    e = rmse(original, reconstructed)
    r = value_range(original)
    if e == 0.0:
        return float("inf")
    if r == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(r / e))


def verify_bound(
    original: np.ndarray,
    reconstructed: np.ndarray,
    mode: str,
    bound: float,
) -> dict:
    """Machine-check an error-bound mode's guarantee on a round-trip.

    Returns a dict with ``ok`` plus the maximum and mean *violation*
    (how far beyond the allowance an error strays; 0.0 where the bound
    holds) and the count of violating points:

    * ``abs`` — allowance ``bound`` per point.
    * ``rel`` — allowance ``bound * (max - min)`` per point.
    * ``pw_rel`` — allowance ``bound * |x_i|`` per finite point; exact
      zeros must reconstruct as zeros.
    * ``psnr`` — scalar check ``psnr(x, x') >= bound`` dB; the violation
      is the dB shortfall.

    Non-finite originals must round-trip to non-finite values in every
    mode (they are outside the numeric guarantee but must not be
    silently replaced); each mismatch counts as an ``inf`` violation.
    """
    a, b = _as64(original, reconstructed)
    if mode == "psnr":
        actual = psnr(a, b)
        shortfall = 0.0 if actual >= bound else float(bound - actual)
        return {
            "mode": mode,
            "bound": float(bound),
            "ok": shortfall == 0.0,
            "max_violation": shortfall,
            "mean_violation": shortfall,
            "n_violations": 0 if shortfall == 0.0 else 1,
        }
    finite = np.isfinite(a)
    with np.errstate(invalid="ignore", over="ignore"):
        err = np.abs(a - b)
    if mode == "abs":
        allowance = np.full(a.shape, float(bound))
    elif mode == "rel":
        allowance = np.full(a.shape, float(bound) * value_range(a))
    elif mode == "pw_rel":
        allowance = float(bound) * np.abs(a)
    else:
        raise ValueError(f"unknown error-bound mode {mode!r}")
    excess = np.zeros(a.shape)
    excess[finite] = np.maximum(0.0, err[finite] - allowance[finite])
    # A finite original reconstructed as NaN/Inf yields a NaN/Inf error;
    # force those to inf so they cannot hide in the max/mean.
    excess[finite & ~np.isfinite(b)] = np.inf
    # Non-finite originals must round-trip: NaN -> NaN, +-Inf -> same Inf.
    mismatch = ~finite & ~((np.isnan(a) & np.isnan(b)) | (a == b))
    excess[mismatch] = np.inf
    n_viol = int((excess > 0).sum())
    return {
        "mode": mode,
        "bound": float(bound),
        "ok": n_viol == 0,
        "max_violation": float(excess.max()) if excess.size else 0.0,
        "mean_violation": float(excess.mean()) if excess.size else 0.0,
        "n_violations": n_viol,
    }
