"""One-call compression quality report (all of the paper's metrics).

Bundles Metrics 1-5 of Section II into a single dataclass with a
markdown renderer — the "APAX-profiler-style" summary a practitioner
checks before adopting a bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.metrics.correlation import autocorrelation, pearson
from repro.metrics.errors import (
    max_abs_error,
    max_rel_error,
    nrmse,
    psnr,
    rmse,
)
from repro.metrics.rates import bit_rate, compression_factor, throughput_mb_s

__all__ = ["QualityReport", "evaluate", "tile_ratio_stats"]


@dataclass(frozen=True)
class QualityReport:
    """Everything Section II asks of a (data, compressor, bound) triple."""

    n_values: int
    original_bytes: int
    compressed_bytes: int
    compression_factor: float
    bit_rate: float
    max_abs_error: float
    max_rel_error: float
    rmse: float
    nrmse: float
    psnr_db: float
    pearson_rho: float
    max_error_acf: float
    comp_mb_s: float
    decomp_mb_s: float

    @property
    def five_nines(self) -> bool:
        return self.pearson_rho >= 0.99999

    def within(self, abs_bound: float | None = None,
               rel_bound: float | None = None) -> bool:
        """Did the compressor respect the requested bound(s)?"""
        ok = True
        if abs_bound is not None:
            ok &= self.max_abs_error <= abs_bound * (1 + 1e-12)
        if rel_bound is not None:
            ok &= self.max_rel_error <= rel_bound * (1 + 1e-12)
        return bool(ok)

    def to_markdown(self) -> str:
        rows = [
            ("values", f"{self.n_values:,}"),
            ("size", f"{self.original_bytes:,} -> {self.compressed_bytes:,} B"),
            ("compression factor", f"{self.compression_factor:.2f}x"),
            ("bit rate", f"{self.bit_rate:.2f} bits/value"),
            ("max abs error", f"{self.max_abs_error:.3e}"),
            ("max rel error", f"{self.max_rel_error:.3e}"),
            ("RMSE / NRMSE", f"{self.rmse:.3e} / {self.nrmse:.3e}"),
            ("PSNR", f"{self.psnr_db:.1f} dB"),
            ("Pearson rho", f"{self.pearson_rho:.8f}"
                            f"{' (five nines)' if self.five_nines else ''}"),
            ("max |error acf|", f"{self.max_error_acf:.3e}"),
            ("throughput", f"{self.comp_mb_s:.1f} / {self.decomp_mb_s:.1f} MB/s"),
        ]
        width = max(len(k) for k, _ in rows)
        lines = ["| metric | value |", "|---|---|"]
        lines += [f"| {k.ljust(width)} | {v} |" for k, v in rows]
        return "\n".join(lines)


def tile_ratio_stats(
    tile_bytes, tile_values, itemsize: int = 4
) -> dict:
    """Per-tile compression-ratio dispersion of a tiled container.

    ``tile_bytes``/``tile_values`` are the per-tile compressed sizes and
    element counts (e.g. from the v2 footer index).  The variance of the
    per-tile ratios is the signal ratio-quality models key on: smooth
    fields compress uniformly (low variance) while localized features
    concentrate the budget in few tiles (high variance).
    """
    sizes = np.asarray(tile_bytes, dtype=np.float64)
    values = np.asarray(tile_values, dtype=np.float64)
    if sizes.size == 0 or sizes.size != values.size:
        raise ValueError("need matching, non-empty tile size/count lists")
    cfs = values * itemsize / np.maximum(1.0, sizes)
    mean = float(cfs.mean())
    return {
        "n_tiles": int(cfs.size),
        "cf_mean": mean,
        "cf_var": float(cfs.var()),
        "cf_std": float(cfs.std()),
        "cf_min": float(cfs.min()),
        "cf_max": float(cfs.max()),
        "cf_cv": float(cfs.std() / mean) if mean else 0.0,
    }


def evaluate(
    data: np.ndarray,
    compress_fn,
    decompress_fn,
    acf_lags: int = 100,
) -> QualityReport:
    """Run one compressor over ``data`` and collect every metric.

    ``compress_fn``/``decompress_fn`` are callables, e.g.
    ``lambda d: repro.compress(d, mode="rel", bound=1e-4)`` and
    ``repro.decompress``.
    """
    data = np.asarray(data)
    t0 = time.perf_counter()
    blob = compress_fn(data)
    t1 = time.perf_counter()
    out = decompress_fn(blob)
    t2 = time.perf_counter()
    err = data.astype(np.float64).ravel() - out.astype(np.float64).ravel()
    err = err[np.isfinite(err)]
    acf = autocorrelation(err, acf_lags) if err.size > 2 else np.zeros(1)
    return QualityReport(
        n_values=data.size,
        original_bytes=data.nbytes,
        compressed_bytes=len(blob),
        compression_factor=compression_factor(data.nbytes, len(blob)),
        bit_rate=bit_rate(len(blob), data.size),
        max_abs_error=max_abs_error(data, out),
        max_rel_error=max_rel_error(data, out),
        rmse=rmse(data, out),
        nrmse=nrmse(data, out),
        psnr_db=psnr(data, out),
        pearson_rho=pearson(data, out),
        max_error_acf=float(np.abs(acf).max()),
        comp_mb_s=throughput_mb_s(data.nbytes, t1 - t0),
        decomp_mb_s=throughput_mb_s(data.nbytes, t2 - t1),
    )
