"""Correlation metrics (Metric 3) and error autocorrelation (Fig. 9)."""

from __future__ import annotations

import numpy as np

__all__ = ["pearson", "five_nines", "autocorrelation"]

FIVE_NINES = 0.99999
"""The APAX-profiler threshold the paper cites: rho should be >= 0.99999."""


def pearson(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Pearson correlation coefficient rho, Eq. (4), over finite pairs."""
    a = np.asarray(original, dtype=np.float64).ravel()
    b = np.asarray(reconstructed, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError("shape mismatch")
    mask = np.isfinite(a) & np.isfinite(b)
    a, b = a[mask], b[mask]
    if a.size < 2:
        return 1.0
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def five_nines(original: np.ndarray, reconstructed: np.ndarray) -> bool:
    """True when rho reaches the 'five nines' bar."""
    return pearson(original, reconstructed) >= FIVE_NINES


def nines(rho: float) -> int:
    """Number of leading nines in rho (e.g. 0.9999982 -> 5); 0 if rho < 0.9."""
    if rho >= 1.0:
        return 16
    if rho < 0.9:
        return 0
    return int(np.floor(-np.log10(1.0 - rho)))


def autocorrelation(series: np.ndarray, max_lag: int = 100) -> np.ndarray:
    """First ``max_lag`` autocorrelation coefficients of a 1-D series.

    Used on the *compression error* ``x - x~`` linearized in raster order
    (paper Fig. 9).  Lag 0 is omitted, matching the figure which plots
    lags 1..100.
    """
    x = np.asarray(series, dtype=np.float64).ravel()
    x = x[np.isfinite(x)]
    n = x.size
    if n < 2:
        return np.zeros(max_lag)
    x = x - x.mean()
    denom = float(x @ x)
    if denom == 0.0:
        return np.zeros(max_lag)
    out = np.empty(min(max_lag, n - 1))
    for lag in range(1, out.size + 1):
        out[lag - 1] = float(x[:-lag] @ x[lag:]) / denom
    if out.size < max_lag:
        out = np.pad(out, (0, max_lag - out.size))
    return out
