"""Index arithmetic for ragged (variable-length per segment) arrays.

Every vectorized variable-length coder in this package reduces to the same
pattern: per-segment lengths are known, segments are concatenated flat, and
we need to map between (segment, position-in-segment) and flat offsets with
no Python-level loops.  These helpers centralize that index algebra.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_starts",
    "segment_ids",
    "intra_segment_positions",
    "ragged_take",
    "last_true_index",
    "count_true_per_segment",
]


def segment_starts(lengths: np.ndarray) -> np.ndarray:
    """Flat start offset of each segment (exclusive prefix sum of lengths)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    out = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out[1:])
    return out


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """Segment index of every flat element: ``[0,0,..,1,1,..,2,...]``."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


def intra_segment_positions(lengths: np.ndarray) -> np.ndarray:
    """Position of every flat element inside its own segment.

    ``lengths=[3,1,2]`` yields ``[0,1,2, 0, 0,1]``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum(dtype=np.int64))
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    return np.arange(total, dtype=np.int64) - np.repeat(
        segment_starts(lengths), lengths
    )


def ragged_take(
    flat: np.ndarray, lengths: np.ndarray, seg: np.ndarray, pos: np.ndarray
) -> np.ndarray:
    """Gather ``flat[start(seg) + pos]`` for per-segment flat storage."""
    starts = segment_starts(lengths)
    return flat[starts[seg] + pos]


def last_true_index(mask: np.ndarray, axis: int = -1) -> np.ndarray:
    """Index of the last True along ``axis``; -1 where the slice is all False.

    Used by the ZFP-like coder to find the final significant coefficient of
    a bit plane in every block at once.
    """
    mask = np.asarray(mask, dtype=bool)
    n = mask.shape[axis]
    idx = np.arange(1, n + 1, dtype=np.int64)
    shape = [1] * mask.ndim
    shape[axis] = n
    scored = np.where(mask, idx.reshape(shape), 0)
    return scored.max(axis=axis) - 1


def count_true_per_segment(mask: np.ndarray, seg: np.ndarray, nseg: int) -> np.ndarray:
    """Count True entries of ``mask`` grouped by segment id."""
    mask = np.asarray(mask, dtype=bool)
    return np.bincount(seg[mask], minlength=nseg).astype(np.int64)
