"""Entropy-coding and bit-level substrates used by every compressor in repro.

Modules
-------
bitio
    ``BitWriter``/``BitReader`` field accumulators plus vectorized
    variable-length bit packing built on NumPy (``ScalarBitWriter`` is
    the retained byte-at-a-time reference).
ragged
    Index arithmetic for ragged (variable-length per segment) arrays.
huffman
    Canonical Huffman coding for arbitrary alphabet sizes (the paper's
    tailored variable-length encoder, Section IV-A).
coders
    The :class:`EntropyCoder` protocol and the coder registry the
    compressor's entropy stage dispatches through
    (``get_entropy_coder`` / ``register_entropy_coder`` /
    ``available_coders``).
rice
    Golomb-Rice coding for non-negative integers.
lz77
    Hash-chain LZ77 matcher.
deflate
    DEFLATE-like lossless codec (LZ77 + two canonical Huffman alphabets)
    backing the GZIP baseline.
"""

from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    ScalarBitWriter,
    byte_windows64,
    gather_windows64,
    pack_varlen,
    read_bits_at,
    unpack_varlen,
)
from repro.encoding.coders import (
    DEFAULT_ENTROPY_CODER,
    EntropyCoder,
    EntropyPayload,
    available_coders,
    coder_for_flags,
    get_entropy_coder,
    register_entropy_coder,
)
from repro.encoding.huffman import HuffmanCodec

__all__ = [
    "BitReader",
    "BitWriter",
    "DEFAULT_ENTROPY_CODER",
    "EntropyCoder",
    "EntropyPayload",
    "HuffmanCodec",
    "ScalarBitWriter",
    "available_coders",
    "byte_windows64",
    "coder_for_flags",
    "gather_windows64",
    "get_entropy_coder",
    "pack_varlen",
    "read_bits_at",
    "register_entropy_coder",
    "unpack_varlen",
]
