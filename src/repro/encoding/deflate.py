"""DEFLATE-like lossless codec: LZ77 tokens + two canonical Huffman alphabets.

This is the engine behind the GZIP baseline.  The container is *our own*
(not zlib-interoperable — we implement the algorithm, not the RFC 1951 bit
layout), but the coding model is DEFLATE's: a literal/length alphabet of
286 symbols and a distance alphabet of 30 symbols, each with the standard
base+extra-bits value ranges, both entropy-coded with canonical Huffman.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitio import BitReader, BitWriter, pack_varlen
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lz77 import lz77_parse, lz77_reconstruct

__all__ = ["deflate_compress", "deflate_decompress"]

_MAGIC = 0x5244464C  # 'RDFL'


def _build_value_codes(
    bases_start: int, groups: list[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Build (base, extra_bits) tables from (count, extra_bits) groups."""
    bases, extras = [], []
    value = bases_start
    for count, extra in groups:
        for _ in range(count):
            bases.append(value)
            extras.append(extra)
            value += 1 << extra
    return np.array(bases, dtype=np.int64), np.array(extras, dtype=np.int64)


# DEFLATE length codes 257..284 cover lengths 3..257; code 285 is length 258.
_LEN_BASE, _LEN_EXTRA = _build_value_codes(
    3, [(8, 0), (4, 1), (4, 2), (4, 3), (4, 4), (4, 5)]
)
_LEN_BASE = np.append(_LEN_BASE, 258)
_LEN_EXTRA = np.append(_LEN_EXTRA, 0)

# DEFLATE distance codes 0..29 cover distances 1..32768.
_DIST_BASE, _DIST_EXTRA = _build_value_codes(
    1, [(4, 0), (2, 1), (2, 2), (2, 3), (2, 4), (2, 5), (2, 6), (2, 7),
        (2, 8), (2, 9), (2, 10), (2, 11), (2, 12), (2, 13)]
)

_NUM_LITLEN = 286
_NUM_DIST = 30


def _value_to_code(values: np.ndarray, bases: np.ndarray) -> np.ndarray:
    """Map raw lengths/distances to their code indices via the base table."""
    return np.searchsorted(bases, values, side="right") - 1


def deflate_compress(data: bytes, max_chain: int = 16, lazy: bool = True) -> bytes:
    """Losslessly compress ``data``; inverse of :func:`deflate_decompress`."""
    literals, lengths, distances = lz77_parse(data, max_chain=max_chain, lazy=lazy)
    ntok = literals.size
    is_match = lengths > 0

    litlen_syms = np.where(is_match, 0, literals)
    len_codes = np.zeros(ntok, dtype=np.int64)
    if is_match.any():
        len_codes[is_match] = _value_to_code(lengths[is_match], _LEN_BASE)
        litlen_syms = np.where(is_match, 257 + len_codes, litlen_syms)
    dist_codes = np.zeros(ntok, dtype=np.int64)
    if is_match.any():
        dist_codes[is_match] = _value_to_code(distances[is_match], _DIST_BASE)

    litlen_codec = HuffmanCodec.from_symbols(litlen_syms, _NUM_LITLEN, 15)
    dist_alphabet_syms = dist_codes[is_match]
    dist_codec = HuffmanCodec.from_symbols(
        dist_alphabet_syms if dist_alphabet_syms.size else np.zeros(0, dtype=np.int64),
        _NUM_DIST,
        15,
    )

    # Four interleaved fields per token: litlen codeword, length extra bits,
    # distance codeword, distance extra bits (zero width where absent).
    f_vals = np.zeros((ntok, 4), dtype=np.uint64)
    f_wids = np.zeros((ntok, 4), dtype=np.int64)
    f_vals[:, 0] = litlen_codec.codes[litlen_syms]
    f_wids[:, 0] = litlen_codec.lengths[litlen_syms]
    if is_match.any():
        f_vals[is_match, 1] = (lengths[is_match] - _LEN_BASE[len_codes[is_match]]).astype(np.uint64)
        f_wids[is_match, 1] = _LEN_EXTRA[len_codes[is_match]]
        f_vals[is_match, 2] = dist_codec.codes[dist_codes[is_match]]
        f_wids[is_match, 2] = dist_codec.lengths[dist_codes[is_match]]
        f_vals[is_match, 3] = (distances[is_match] - _DIST_BASE[dist_codes[is_match]]).astype(np.uint64)
        f_wids[is_match, 3] = _DIST_EXTRA[dist_codes[is_match]]
    payload, nbits = pack_varlen(f_vals.ravel(), f_wids.ravel())

    w = BitWriter()
    w.write(_MAGIC, 32)
    w.write(len(data), 48)
    w.write(ntok, 48)
    w.write(nbits, 48)
    litlen_codec.write_table(w)
    dist_codec.write_table(w)
    return w.getvalue() + payload.tobytes()


def deflate_decompress(blob: bytes) -> bytes:
    """Decompress a :func:`deflate_compress` stream."""
    r = BitReader(blob)
    if r.read(32) != _MAGIC:
        raise ValueError("not a repro-deflate stream")
    orig_size = r.read(48)
    ntok = r.read(48)
    nbits = r.read(48)
    litlen_codec = HuffmanCodec.read_table(r)
    dist_codec = HuffmanCodec.read_table(r)
    payload_start = (r.bitpos + 7) // 8
    reader = BitReader(blob[payload_start:])

    litlen_lookup = _decode_dict(litlen_codec)
    dist_lookup = _decode_dict(dist_codec)

    literals = np.zeros(ntok, dtype=np.int64)
    lengths = np.zeros(ntok, dtype=np.int64)
    distances = np.zeros(ntok, dtype=np.int64)
    for t in range(ntok):
        sym = _read_symbol(reader, litlen_lookup, litlen_codec.max_len)
        if sym < 257:
            literals[t] = sym
        else:
            code = sym - 257
            lengths[t] = _LEN_BASE[code] + reader.read(int(_LEN_EXTRA[code]))
            dcode = _read_symbol(reader, dist_lookup, dist_codec.max_len)
            distances[t] = _DIST_BASE[dcode] + reader.read(int(_DIST_EXTRA[dcode]))
    if reader.bitpos != nbits:
        raise ValueError("corrupt deflate stream: payload length mismatch")
    out = lz77_reconstruct(literals, lengths, distances)
    if len(out) != orig_size:
        raise ValueError("corrupt deflate stream: size mismatch")
    return out


def _decode_dict(codec: HuffmanCodec) -> dict[tuple[int, int], int]:
    return {
        (int(codec.lengths[s]), int(codec.codes[s])): int(s)
        for s in np.flatnonzero(codec.lengths)
    }


def _read_symbol(
    reader: BitReader, lookup: dict[tuple[int, int], int], max_len: int
) -> int:
    code, length = 0, 0
    while True:
        code = (code << 1) | reader.read(1)
        length += 1
        sym = lookup.get((length, code))
        if sym is not None:
            return sym
        if length > max_len:
            raise ValueError("corrupt deflate stream: invalid codeword")
