"""Adaptive binary arithmetic coding (range coder).

An optional alternative entropy stage for the quantization codes — the
paper's variable-length encoder is Huffman, whose per-symbol cost is an
integer number of bits; arithmetic coding removes that rounding loss,
which matters exactly in the high-hit-rate regime where one code carries
almost all the probability mass (Fig. 3a).  Exposed through
``entropy_coder="arithmetic"`` on the compressor as an explicitly
out-of-paper extension.

Design: classic 32-bit binary range coder with carry propagation and
per-context adaptive probabilities.  Integers are binarized as unary
bucket index (Elias-gamma-style: bit-length, then offset bits), each
unary position owning its own adaptive context; offset bits are coded
with a fixed 1/2 model.  Encoding and decoding are scalar Python —
arithmetic decoding is inherently sequential — so this stage suits
moderate sizes; Huffman remains the default.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArithmeticEncoder", "ArithmeticDecoder", "encode_symbols", "decode_symbols"]

_TOP = 1 << 24
_BOT = 1 << 16
_MASK = (1 << 32) - 1
_PROB_BITS = 12
_PROB_ONE = 1 << _PROB_BITS
_ADAPT = 5  # adaptation shift: smaller = faster adaptation


class _Context:
    __slots__ = ("p",)

    def __init__(self) -> None:
        self.p = _PROB_ONE // 2  # probability of bit == 1

    def update(self, bit: int) -> None:
        if bit:
            self.p += (_PROB_ONE - self.p) >> _ADAPT
        else:
            self.p -= self.p >> _ADAPT


class ArithmeticEncoder:
    """Carry-less 32-bit range encoder with adaptive binary contexts."""

    def __init__(self) -> None:
        self.low = 0
        self.range = _MASK
        self.out = bytearray()

    def _normalize(self) -> None:
        while True:
            if (self.low ^ (self.low + self.range)) < _TOP:
                pass  # top byte settled: shift it out
            elif self.range < _BOT:
                self.range = (-self.low) & (_BOT - 1)  # force carry-free
            else:
                break
            self.out.append((self.low >> 24) & 0xFF)
            self.low = (self.low << 8) & _MASK
            self.range = (self.range << 8) & _MASK

    def encode_bit(self, ctx: _Context, bit: int) -> None:
        split = (self.range >> _PROB_BITS) * ctx.p
        if bit:
            self.range = split
        else:
            self.low = (self.low + split + 1) & _MASK
            self.range -= split + 1
        ctx.update(bit)
        self._normalize()

    def encode_bit_raw(self, bit: int) -> None:
        split = self.range >> 1
        if bit:
            self.range = split
        else:
            self.low = (self.low + split + 1) & _MASK
            self.range -= split + 1
        self._normalize()

    def finish(self) -> bytes:
        for _ in range(4):
            self.out.append((self.low >> 24) & 0xFF)
            self.low = (self.low << 8) & _MASK
        return bytes(self.out)


class ArithmeticDecoder:
    """Decoder mirroring :class:`ArithmeticEncoder` bit for bit."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self.low = 0
        self.range = _MASK
        self.code = 0
        for _ in range(4):
            self.code = ((self.code << 8) | self._next_byte()) & _MASK

    def _next_byte(self) -> int:
        byte = self.data[self.pos] if self.pos < len(self.data) else 0
        self.pos += 1
        return byte

    def _normalize(self) -> None:
        while True:
            if (self.low ^ (self.low + self.range)) < _TOP:
                pass
            elif self.range < _BOT:
                self.range = (-self.low) & (_BOT - 1)
            else:
                break
            self.code = ((self.code << 8) | self._next_byte()) & _MASK
            self.low = (self.low << 8) & _MASK
            self.range = (self.range << 8) & _MASK

    def decode_bit(self, ctx: _Context) -> int:
        split = (self.range >> _PROB_BITS) * ctx.p
        offset = (self.code - self.low) & _MASK
        if offset <= split:
            bit = 1
            self.range = split
        else:
            bit = 0
            self.low = (self.low + split + 1) & _MASK
            self.range -= split + 1
        ctx.update(bit)
        self._normalize()
        return bit

    def decode_bit_raw(self) -> int:
        split = self.range >> 1
        offset = (self.code - self.low) & _MASK
        if offset <= split:
            bit = 1
            self.range = split
        else:
            bit = 0
            self.low = (self.low + split + 1) & _MASK
            self.range -= split + 1
        self._normalize()
        return bit


def encode_symbols(symbols: np.ndarray, max_bits: int = 32) -> bytes:
    """Encode non-negative ints: adaptive unary bit-length + raw offset."""
    symbols = np.asarray(symbols, dtype=np.int64)
    if symbols.size and symbols.min() < 0:
        raise ValueError("symbols must be non-negative")
    enc = ArithmeticEncoder()
    length_ctx = [_Context() for _ in range(max_bits + 1)]
    for s in symbols.tolist():
        nbits = int(s).bit_length()
        if nbits > max_bits:
            raise ValueError(f"symbol {s} exceeds max_bits={max_bits}")
        for level in range(nbits):
            enc.encode_bit(length_ctx[level], 1)
        if nbits < max_bits:
            enc.encode_bit(length_ctx[nbits], 0)
        for b in range(nbits - 2, -1, -1):  # below the implicit MSB
            enc.encode_bit_raw((s >> b) & 1)
    return enc.finish()


def decode_symbols(
    data: bytes | memoryview, count: int, max_bits: int = 32
) -> np.ndarray:
    """Inverse of :func:`encode_symbols`."""
    dec = ArithmeticDecoder(data)
    length_ctx = [_Context() for _ in range(max_bits + 1)]
    out = np.zeros(count, dtype=np.int64)
    for i in range(count):
        nbits = 0
        while nbits < max_bits and dec.decode_bit(length_ctx[nbits]):
            nbits += 1
        if nbits == 0:
            out[i] = 0
            continue
        value = 1
        for _ in range(nbits - 1):
            value = (value << 1) | dec.decode_bit_raw()
        out[i] = value
    return out
