"""LZ77 hash-chain matcher.

Backs the GZIP-like baseline (:mod:`repro.baselines.gzip_like`) via
:mod:`repro.encoding.deflate`.  The matcher follows zlib's structure —
4-byte hash, per-hash candidate chains, greedy parse with optional lazy
one-step lookahead — sized by ``max_chain``.  It is pure Python (the
paper's GZIP comparison concerns compression *factors*, not zlib's C
speed), with slice-compare match extension to keep the hot loop cheap.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lz77_parse",
    "lz77_reconstruct",
    "MIN_MATCH",
    "MAX_MATCH",
    "WINDOW_SIZE",
]

MIN_MATCH = 4
MAX_MATCH = 258
WINDOW_SIZE = 1 << 15  # 32 KiB, as in DEFLATE


def _hash4(data: np.ndarray) -> np.ndarray:
    """Vectorized 4-byte hash for every position (last 3 positions unused)."""
    n = data.size
    h = np.zeros(n, dtype=np.uint32)
    if n < MIN_MATCH:
        return h
    d = data.astype(np.uint32)
    raw = (
        d[: n - 3]
        | (d[1 : n - 2] << np.uint32(8))
        | (d[2 : n - 1] << np.uint32(16))
        | (d[3:n] << np.uint32(24))
    )
    h[: n - 3] = (raw * np.uint32(2654435761)) >> np.uint32(17)  # 15-bit hash
    return h


def lz77_parse(
    data: bytes | np.ndarray,
    max_chain: int = 16,
    lazy: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse ``data`` into LZ77 tokens.

    Returns three equal-length arrays ``(literals, lengths, distances)``:
    where ``lengths[i] == 0`` the token is the literal byte ``literals[i]``,
    otherwise a back-reference of ``lengths[i]`` bytes at ``distances[i]``.

    Parameters
    ----------
    data
        Input bytes.
    max_chain
        Number of previous candidate positions tried per match attempt.
    lazy
        Defer a match by one byte when the next position matches longer
        (zlib's lazy matching).
    """
    raw = bytes(data)
    n = len(raw)
    literals: list[int] = []
    lengths: list[int] = []
    distances: list[int] = []
    if n == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    hashes = _hash4(np.frombuffer(raw, dtype=np.uint8))
    hash_list = hashes.tolist()  # python ints: faster dict keys than np.uint32
    head: dict[int, int] = {}
    prev = [-1] * n
    last_hashable = n - MIN_MATCH  # last position with a valid 4-byte hash
    next_insert = 0  # all positions < next_insert are in the chains

    def insert_upto(pos: int) -> None:
        nonlocal next_insert
        stop = min(pos, last_hashable + 1)
        for j in range(next_insert, stop):
            h = hash_list[j]
            prev[j] = head.get(h, -1)
            head[h] = j
        next_insert = max(next_insert, pos)

    def find_match(pos: int) -> tuple[int, int]:
        """Longest match at ``pos``; returns (length, distance) or (0, 0)."""
        if pos > last_hashable:
            return 0, 0
        cand = head.get(hash_list[pos], -1)
        best_len = MIN_MATCH - 1
        best_dist = 0
        limit = min(MAX_MATCH, n - pos)
        chain = 0
        lo = pos - WINDOW_SIZE
        while cand >= lo and cand >= 0 and chain < max_chain:
            # Cheap reject: the byte one past the current best must match
            # for this candidate to beat it.
            if raw[cand + best_len] == raw[pos + best_len]:
                length = _extend(raw, cand, pos, limit)
                if length > best_len:
                    best_len, best_dist = length, pos - cand
                    if length >= limit:
                        break
            cand = prev[cand]
            chain += 1
        if best_dist == 0:
            return 0, 0
        return best_len, best_dist

    i = 0
    while i < n:
        insert_upto(i)
        length, dist = find_match(i)
        if lazy and length and i + 1 < n:
            insert_upto(i + 1)
            nlength, ndist = find_match(i + 1)
            if nlength > length:
                literals.append(raw[i])
                lengths.append(0)
                distances.append(0)
                i += 1
                length, dist = nlength, ndist
        if length:
            literals.append(0)
            lengths.append(length)
            distances.append(dist)
            i += length
        else:
            literals.append(raw[i])
            lengths.append(0)
            distances.append(0)
            i += 1
    return (
        np.array(literals, dtype=np.int64),
        np.array(lengths, dtype=np.int64),
        np.array(distances, dtype=np.int64),
    )


def _extend(raw: bytes, cand: int, pos: int, limit: int) -> int:
    """Length of the common prefix of raw[cand:] and raw[pos:], capped."""
    length = 0
    step = 32
    while length < limit:
        chunk = min(step, limit - length)
        if (
            raw[cand + length : cand + length + chunk]
            == raw[pos + length : pos + length + chunk]
        ):
            length += chunk
        else:
            while length < limit and raw[cand + length] == raw[pos + length]:
                length += 1
            break
    return length


def lz77_reconstruct(
    literals: np.ndarray, lengths: np.ndarray, distances: np.ndarray
) -> bytes:
    """Expand LZ77 tokens back to the original byte string."""
    out = bytearray()
    for lit, length, dist in zip(
        literals.tolist(), lengths.tolist(), distances.tolist()
    ):
        if length == 0:
            out.append(lit)
        else:
            if dist <= 0 or dist > len(out):
                raise ValueError(
                    f"invalid back-reference: distance {dist} at size {len(out)}"
                )
            start = len(out) - dist
            if dist >= length:
                out += out[start : start + length]
            else:  # overlapping copy replicates the window
                for k in range(length):
                    out.append(out[start + k])
    return bytes(out)
