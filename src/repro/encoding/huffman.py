"""Canonical Huffman coding for arbitrary alphabet sizes.

The paper (Section IV-A) points out that off-the-shelf Huffman coders work
byte-by-byte (256 symbols) while SZ-1.4 needs ``2^m`` quantization codes
with ``m`` possibly larger than 8, so it re-implements Huffman for any
alphabet size.  This module does the same for the reproduction:

* tree construction over any alphabet, with an iterative frequency-halving
  length limiter so codewords never exceed ``max_code_length``;
* canonical code assignment (codes derivable from lengths alone, so only
  the length table is serialized);
* a fully vectorized encoder built on :func:`repro.encoding.bitio.pack_varlen`;
* a *block-parallel* vectorized decoder: the symbol stream is chunked at
  encode time, per-chunk bit lengths are recorded, and decoding advances
  all chunks in lockstep — one table lookup round decodes one symbol per
  chunk.  A scalar reference decoder is kept for verification.

The two-level decode table (primary prefix table + per-prefix subtables)
keeps memory bounded even for 17+-bit codes on 65537-symbol alphabets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    byte_windows64,
    pack_varlen,
)
from repro.obs.tracer import active_collector
from repro.perf import stage

__all__ = ["HuffmanCodec", "EncodedStream", "huffman_code_lengths"]

_PRIMARY_BITS = 13
_DEFAULT_BLOCK = 4096
_WINDOW_MATERIALIZE_LIMIT = 64 << 20
"""Payloads up to this many bytes decode against a precomputed 8-byte
window array (8x payload RAM, ~3x faster rounds); larger ones gather
windows per round to keep peak memory bounded."""


def huffman_code_lengths(
    freqs: np.ndarray, max_code_length: int = 24
) -> np.ndarray:
    """Compute Huffman code lengths for the given symbol frequencies.

    Parameters
    ----------
    freqs
        Non-negative counts, one per symbol.  Symbols with zero frequency
        get length 0 (no codeword).
    max_code_length
        Upper bound on any codeword length.  When the unconstrained tree
        exceeds it, frequencies are iteratively halved (zlib-style) and the
        tree rebuilt; this converges because halving flattens the
        distribution toward uniform.

    Returns
    -------
    int64 array of code lengths (0 for absent symbols).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise ValueError("freqs must be one-dimensional")
    if freqs.size and freqs.min() < 0:
        raise ValueError("frequencies must be non-negative")
    present = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths
    if max_code_length < int(np.ceil(np.log2(present.size))):
        raise ValueError(
            f"max_code_length={max_code_length} cannot address "
            f"{present.size} symbols"
        )
    work = freqs[present].astype(np.int64)
    while True:
        depths = _tree_depths(work)
        if depths.max() <= max_code_length:
            break
        work = np.maximum(work >> 1, 1)
    lengths[present] = depths
    return lengths


def _tree_depths(freqs: np.ndarray) -> np.ndarray:
    """Depth of each leaf in a Huffman tree over ``freqs`` (all > 0)."""
    n = freqs.size
    # Heap items: (frequency, tie-break serial, node id).  Node ids < n are
    # leaves; internal nodes get ids >= n.  parent[] lets us read depths off
    # the forest afterwards without recursion.
    heap = [(int(f), i, i) for i, f in enumerate(freqs)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    depths = np.zeros(n, dtype=np.int64)
    # Depth of node = depth of parent + 1; compute top-down by id order
    # (parents always have larger ids than children).
    depth_all = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        depth_all[node] = depth_all[parent[node]] + 1
    depths[:] = depth_all[:n]
    return depths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given code lengths (0 = absent)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    present = np.flatnonzero(lengths)
    if present.size == 0:
        return codes
    max_len = int(lengths.max())
    bl_count = np.bincount(lengths[present], minlength=max_len + 1)
    next_code = np.zeros(max_len + 1, dtype=np.uint64)
    code = 0
    for length in range(1, max_len + 1):
        code = (code + int(bl_count[length - 1])) << 1
        next_code[length] = code
    # Symbols sorted by (length, symbol) receive consecutive codes within
    # each length class.
    order = present[np.lexsort((present, lengths[present]))]
    lens_sorted = lengths[order]
    # rank within each length class
    change = np.concatenate(([True], lens_sorted[1:] != lens_sorted[:-1]))
    class_start = np.maximum.accumulate(np.where(change, np.arange(order.size), 0))
    rank = np.arange(order.size) - class_start
    codes[order] = next_code[lens_sorted] + rank.astype(np.uint64)
    return codes


@dataclass(frozen=True)
class EncodedStream:
    """A Huffman-encoded symbol stream with block index for parallel decode."""

    n_symbols: int
    block_size: int
    block_bits: np.ndarray  # uint64, bits consumed by each block
    payload: np.ndarray  # uint8

    @property
    def total_bits(self) -> int:
        return int(self.block_bits.sum(dtype=np.uint64))

    def to_bytes(self) -> bytes:
        # Every field is a whole number of bytes (48 + 32 + 48 header bits,
        # 40 bits per block index entry), so the stream serializes as plain
        # big-endian byte runs — no bit packing needed.  Byte-identical to
        # the original BitWriter formulation (golden blobs pin this).
        head = (
            self.n_symbols.to_bytes(6, "big")
            + self.block_size.to_bytes(4, "big")
            + len(self.payload).to_bytes(6, "big")
        )
        index = (
            self.block_bits.astype(">u8").view(np.uint8).reshape(-1, 8)[:, 3:]
        )
        return head + index.tobytes() + self.payload.tobytes()

    @classmethod
    def from_bytes(cls, buf: bytes | memoryview) -> "EncodedStream":
        if len(buf) < 16:
            raise EOFError("truncated EncodedStream header")
        n_symbols = int.from_bytes(buf[0:6], "big")
        block_size = int.from_bytes(buf[6:10], "big")
        payload_len = int.from_bytes(buf[10:16], "big")
        nblocks = (
            0 if n_symbols == 0 else -(-n_symbols // block_size)
        )
        if len(buf) < 16 + 5 * nblocks:
            raise EOFError("truncated EncodedStream block index")
        index = np.frombuffer(
            buf, dtype=np.uint8, count=5 * nblocks, offset=16
        ).reshape(-1, 5)
        widened = np.zeros((nblocks, 8), dtype=np.uint8)
        widened[:, 3:] = index
        block_bits = widened.view(">u8").ravel().astype(np.uint64)
        header_bytes = 16 + 5 * nblocks
        payload = np.frombuffer(
            buf, dtype=np.uint8, count=payload_len, offset=header_bytes
        )
        return cls(n_symbols, block_size, block_bits, payload)


class HuffmanCodec:
    """Canonical Huffman codec over an arbitrary integer alphabet.

    Build with :meth:`from_frequencies` or :meth:`from_lengths`; the length
    table is the complete description of the code (canonical assignment).
    """

    #: hard cap on codeword length — bounds decode-table memory even for
    #: adversarial (corrupted) length tables
    MAX_DECODE_LEN = 32

    def __init__(self, lengths: np.ndarray) -> None:
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if self.lengths.ndim != 1:
            raise ValueError("length table must be one-dimensional")
        self.max_len = int(self.lengths.max()) if self.lengths.size else 0
        if self.max_len > self.MAX_DECODE_LEN:
            raise ValueError(
                f"code length {self.max_len} exceeds the "
                f"{self.MAX_DECODE_LEN}-bit decoder limit (corrupt table?)"
            )
        if self.lengths.size and self.lengths.min() < 0:
            raise ValueError("negative code length (corrupt table?)")
        present = self.lengths[self.lengths > 0]
        if present.size:
            kraft = float(
                np.sum(2.0 ** (-present.astype(np.float64)), dtype=np.float64)
            )
            if kraft > 1.0 + 1e-9:
                raise ValueError(
                    f"length table violates the Kraft inequality "
                    f"({kraft:.4f} > 1): not a prefix code"
                )
        self.codes = _canonical_codes(self.lengths)
        self._decode_tables: tuple | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_frequencies(
        cls, freqs: np.ndarray, max_code_length: int = 24
    ) -> "HuffmanCodec":
        return cls(huffman_code_lengths(freqs, max_code_length))

    @classmethod
    def from_symbols(
        cls, symbols: np.ndarray, alphabet_size: int, max_code_length: int = 24
    ) -> "HuffmanCodec":
        freqs = np.bincount(
            np.asarray(symbols).ravel(), minlength=alphabet_size
        )
        return cls.from_frequencies(freqs, max_code_length)

    @property
    def alphabet_size(self) -> int:
        return self.lengths.size

    # -- table (de)serialization ----------------------------------------

    def write_table(self, w: BitWriter) -> None:
        """Serialize the length table with run-length tokens.

        Token grammar (MSB-first)::

            '1'  + 6-bit len              one symbol of this length
            '01' + 16-bit n               run of n absent symbols (len 0)
            '00' + 6-bit len + 12-bit n   run of n symbols, same length

        Tokens are built as value/width arrays in one vectorized pass
        (each token is a single multi-field integer — concatenating the
        fields MSB-first is associative) and bulk-appended, so a 65537
        symbol table costs a handful of NumPy calls instead of a
        per-symbol Python loop.  Byte-identical to
        :meth:`write_table_scalar` (tested).
        """
        w.write(self.alphabet_size, 32)
        lengths = self.lengths
        if lengths.size == 0:
            return
        # Run-length boundaries, then split runs into grammar-capped chunks.
        edges = np.flatnonzero(
            np.concatenate(([True], lengths[1:] != lengths[:-1]))
        )
        run_vals = lengths[edges]
        run_lens = np.diff(np.concatenate((edges, [lengths.size])))
        caps = np.where(run_vals == 0, (1 << 16) - 1, (1 << 12) - 1)
        nchunks = -(-run_lens // caps)
        owner = np.repeat(np.arange(run_vals.size), nchunks)
        sizes = caps[owner].copy()
        last = np.cumsum(nchunks, dtype=np.int64) - 1
        sizes[last] = run_lens - (nchunks - 1) * caps
        vals = run_vals[owner]
        tok_vals = np.where(
            vals == 0,
            (0b01 << 16) | sizes,  # '01' + 16-bit zero-run count
            np.where(
                sizes == 1,
                (0b1 << 6) | vals,  # '1' + 6-bit length
                (vals << 12) | sizes,  # '00' + 6-bit length + 12-bit count
            ),
        )
        tok_bits = np.where(vals == 0, 18, np.where(sizes == 1, 7, 20))
        w.write_array(tok_vals.astype(np.uint64), tok_bits)

    def write_table_scalar(self, w: BitWriter) -> None:
        """Per-run scalar reference for :meth:`write_table` (cross-checked)."""
        w.write(self.alphabet_size, 32)
        lengths = self.lengths
        i = 0
        n = lengths.size
        while i < n:
            j = i
            while j < n and lengths[j] == lengths[i]:
                j += 1
            run = j - i
            val = int(lengths[i])
            if val == 0:
                while run > 0:
                    chunk = min(run, (1 << 16) - 1)
                    w.write(0b01, 2)
                    w.write(chunk, 16)
                    run -= chunk
            elif run == 1:
                w.write(0b1, 1)
                w.write(val, 6)
            else:
                while run > 0:
                    chunk = min(run, (1 << 12) - 1)
                    if chunk == 1:
                        w.write(0b1, 1)
                        w.write(val, 6)
                    else:
                        w.write(0b00, 2)
                        w.write(val, 6)
                        w.write(chunk, 12)
                    run -= chunk
            i = j

    MAX_ALPHABET = 1 << 24

    @classmethod
    def read_table(cls, r: BitReader) -> "HuffmanCodec":
        """Parse a length table (inverse of :meth:`write_table`).

        Reads whole 20-bit token windows from a precomputed 8-byte
        window array (:func:`repro.encoding.bitio.byte_windows64`)
        instead of three ``BitReader.read`` calls per token — the
        per-symbol loop this replaces dominated table parsing for
        16-bit alphabets.  Behaviour matches
        :meth:`read_table_scalar` exactly, corrupt inputs included
        (same bits are visible to both parsers).
        """
        alphabet = r.read(32)
        if alphabet > cls.MAX_ALPHABET:
            raise ValueError(
                f"alphabet size {alphabet} exceeds limit (corrupt table?)"
            )
        lengths = np.zeros(alphabet, dtype=np.int64)
        buf = r.data
        end_bits = buf.size * 8
        pos = r.bitpos
        # Window only the table region (a valid table is at most ~20 bits
        # per token), extending on demand, so parsing never materializes
        # 8x the whole container.
        win_base = pos >> 3
        win_len = min(buf.size - win_base, ((20 * (alphabet + 2)) >> 3) + 16)
        windows = byte_windows64(buf[win_base : win_base + win_len])
        i = 0
        while i < alphabet:
            if pos + 7 > end_bits:  # shortest token is 7 bits
                # Delegate the ragged tail to the scalar reader so EOF
                # behaviour (message and position) matches it exactly.
                r.seek(pos)
                return cls._read_table_tail(r, lengths, i, alphabet)
            rel = (pos >> 3) - win_base
            if rel + 8 > win_len and win_base + win_len < buf.size:
                win_len = min(buf.size - win_base, 2 * win_len + 16)
                windows = byte_windows64(buf[win_base : win_base + win_len])
            w = int(windows[rel]) >> (44 - (pos & 7))  # 20-bit window
            if w & 0x80000:  # '1' + 6-bit length
                lengths[i] = (w >> 13) & 0x3F
                i += 1
                pos += 7
            elif w & 0x40000:  # '01' + 16-bit zero-run
                if pos + 18 > end_bits:
                    r.seek(pos)
                    return cls._read_table_tail(r, lengths, i, alphabet)
                i += (w >> 2) & 0xFFFF
                pos += 18
            else:  # '00' + 6-bit length + 12-bit run
                if pos + 20 > end_bits:
                    r.seek(pos)
                    return cls._read_table_tail(r, lengths, i, alphabet)
                val = (w >> 12) & 0x3F
                run = w & 0xFFF
                lengths[i : i + run] = val
                i += run
                pos += 20
        r.seek(pos)
        if i != alphabet:
            raise ValueError("corrupt Huffman table: token overrun")
        return cls(lengths)

    @classmethod
    def _read_table_tail(
        cls, r: BitReader, lengths: np.ndarray, i: int, alphabet: int
    ) -> "HuffmanCodec":
        """Finish a table parse near the buffer end with scalar reads."""
        while i < alphabet:
            if r.read(1):
                lengths[i] = r.read(6)
                i += 1
            elif r.read(1):
                i += r.read(16)
            else:
                val = r.read(6)
                run = r.read(12)
                lengths[i : i + run] = val
                i += run
        if i != alphabet:
            raise ValueError("corrupt Huffman table: token overrun")
        return cls(lengths)

    @classmethod
    def read_table_scalar(cls, r: BitReader) -> "HuffmanCodec":
        """Per-token scalar reference for :meth:`read_table` (cross-checked)."""
        alphabet = r.read(32)
        if alphabet > cls.MAX_ALPHABET:
            raise ValueError(
                f"alphabet size {alphabet} exceeds limit (corrupt table?)"
            )
        lengths = np.zeros(alphabet, dtype=np.int64)
        return cls._read_table_tail(r, lengths, 0, alphabet)

    # -- encoding --------------------------------------------------------

    def encode(
        self,
        symbols: np.ndarray,
        block_size: int = _DEFAULT_BLOCK,
        validate: bool = True,
    ) -> EncodedStream:
        """Encode a symbol array into a blocked canonical-Huffman stream.

        ``validate=False`` skips the range/zero-frequency scans for
        callers that construct the codec from the very histogram of
        ``symbols`` (every appearing symbol then has a codeword by
        construction).
        """
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        collector = active_collector()
        if collector is not None and self.lengths.size:
            present = self.lengths[self.lengths > 0]
            if present.size:
                collector.hist(
                    "huffman/code_lengths",
                    np.bincount(present).tolist(),
                )
                collector.observe("huffman/table_depth", float(self.max_len))
                collector.observe("huffman/table_symbols", float(present.size))
        with stage("huffman_encode", nbytes=symbols.nbytes):
            if validate and symbols.size and (
                symbols.min() < 0 or symbols.max() >= self.alphabet_size
            ):
                raise ValueError("symbol out of alphabet range")
            lens = self.lengths[symbols]
            if validate and symbols.size and lens.min() == 0:
                raise ValueError(
                    "symbol with no codeword (zero frequency) seen"
                )
            vals = self.codes[symbols]
            # One vectorized pack over the whole stream; blocks are
            # bit-offset ranges within it (cursors may start mid-byte —
            # the windowed decoder copes).  Canonical codes fit their
            # lengths exactly, so the pack can skip its masking pass.
            payload, _ = pack_varlen(vals, lens, masked=True)
            nblocks = 0 if symbols.size == 0 else -(-symbols.size // block_size)
            if nblocks:
                block_bits = np.add.reduceat(
                    lens, np.arange(0, symbols.size, block_size),
                    dtype=np.int64,
                ).astype(np.uint64)
            else:
                block_bits = np.zeros(0, dtype=np.uint64)
            return EncodedStream(symbols.size, block_size, block_bits, payload)

    # -- decoding --------------------------------------------------------

    def _build_decode_tables(self) -> tuple:
        if self._decode_tables is not None:
            return self._decode_tables
        max_len = max(self.max_len, 1)
        primary_bits = min(_PRIMARY_BITS, max_len)
        primary = np.zeros(1 << primary_bits, dtype=np.int64)
        sub_prefixes: dict[int, int] = {}
        sub_chunks: list[np.ndarray] = []
        sub_depth = max_len - primary_bits
        present = np.flatnonzero(self.lengths)
        for sym in present:
            length = int(self.lengths[sym])
            code = int(self.codes[sym])
            if length <= primary_bits:
                # The codeword occupies all primary slots sharing its prefix.
                lo = code << (primary_bits - length)
                hi = lo + (1 << (primary_bits - length))
                primary[lo:hi] = (int(sym) << 6) | length
            else:
                prefix = code >> (length - primary_bits)
                if prefix not in sub_prefixes:
                    sub_prefixes[prefix] = len(sub_chunks)
                    sub_chunks.append(np.zeros(1 << sub_depth, dtype=np.int64))
                    primary[prefix] = -(sub_prefixes[prefix] + 1)
                table = sub_chunks[sub_prefixes[prefix]]
                rem_len = length - primary_bits
                rem = code & ((1 << rem_len) - 1)
                lo = rem << (sub_depth - rem_len)
                hi = lo + (1 << (sub_depth - rem_len))
                table[lo:hi] = (int(sym) << 6) | length
        secondary = (
            np.concatenate(sub_chunks)
            if sub_chunks
            else np.zeros(0, dtype=np.int64)
        )
        sub_base = np.arange(len(sub_chunks), dtype=np.int64) * (1 << sub_depth)
        self._decode_tables = (primary_bits, primary, secondary, sub_base, sub_depth)
        return self._decode_tables

    def decode(self, stream: EncodedStream) -> np.ndarray:
        """Block-parallel vectorized decode of an :class:`EncodedStream`."""
        with stage("huffman_decode", nbytes=int(stream.payload.nbytes)):
            return self._decode_impl(stream)

    def _decode_impl(self, stream: EncodedStream) -> np.ndarray:
        # Round ``r`` decodes symbol ``r`` of every still-active block.
        # Two standing optimizations over the textbook formulation:
        #
        # * the payload's 8-byte windows are materialized once
        #   (``byte_windows64``), so each round is a gather + shift
        #   instead of an 8-pass window rebuild;
        # * only the *last* block can be short, so the active set is
        #   always a prefix of the block arrays — no per-round
        #   ``flatnonzero``.
        n = stream.n_symbols
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            return out
        primary_bits, primary, secondary, sub_base, sub_depth = (
            self._build_decode_tables()
        )
        max_len = max(self.max_len, 1)
        nblocks = stream.block_bits.size
        cursors = np.zeros(nblocks, dtype=np.int64)
        np.cumsum(stream.block_bits[:-1].astype(np.int64), out=cursors[1:])
        end_bits = cursors + stream.block_bits.astype(np.int64)
        last_count = n - stream.block_size * (nblocks - 1)
        out_starts = np.arange(nblocks, dtype=np.int64) * stream.block_size
        payload = stream.payload
        # Materializing every 8-byte window costs 8x the payload in RAM —
        # a clear win for the common (tiled / mid-size) case, but a
        # multi-hundred-MB payload must fall back to gathering the
        # windows per round instead.
        materialize = payload.size <= _WINDOW_MATERIALIZE_LIMIT
        if materialize:
            windows = byte_windows64(payload)
        else:
            padded = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
        max_byte = payload.size  # clamp: corrupt cursors must not escape
        prim_shift = np.uint64(64 - primary_bits)
        rem_shift = np.uint64(64 - max_len)
        rem_mask = (1 << sub_depth) - 1
        for r in range(stream.block_size):
            na = nblocks if r < last_count else nblocks - 1
            if na == 0:
                break
            cur = cursors[:na]
            byte0 = np.minimum(cur >> 3, max_byte)
            skew = (cur & 7).astype(np.uint64)
            if materialize:
                window = windows[byte0] << skew
            else:
                window = np.zeros(na, dtype=np.uint64)
                for i in range(8):
                    window = (window << np.uint64(8)) | padded[
                        byte0 + i
                    ].astype(np.uint64)
                window <<= skew
            idx = (window >> prim_shift).astype(np.int64)
            entry = primary[idx]
            long_mask = entry < 0
            if long_mask.any():
                sub_idx = -entry[long_mask] - 1
                rem = (window[long_mask] >> rem_shift).astype(
                    np.int64
                ) & rem_mask
                entry[long_mask] = secondary[sub_base[sub_idx] + rem]
            if not entry.all():
                raise ValueError("corrupt Huffman stream: invalid codeword")
            out[out_starts[:na] + r] = entry >> 6
            cur += entry & 63
        if not np.array_equal(cursors, end_bits):
            raise ValueError("corrupt Huffman stream: block length mismatch")
        return out

    def decode_scalar(self, stream: EncodedStream) -> np.ndarray:
        """Bit-by-bit reference decoder (slow; used to validate ``decode``)."""
        lookup = {
            (int(self.lengths[s]), int(self.codes[s])): int(s)
            for s in np.flatnonzero(self.lengths)
        }
        n = stream.n_symbols
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            return out
        nblocks = stream.block_bits.size
        pos = 0
        reader = BitReader(stream.payload)
        bit_start = 0
        for b in range(nblocks):
            reader.seek(bit_start)
            remaining = min(stream.block_size, n - pos)
            for _ in range(remaining):
                code, length = 0, 0
                while True:
                    code = (code << 1) | reader.read(1)
                    length += 1
                    if (length, code) in lookup:
                        out[pos] = lookup[(length, code)]
                        pos += 1
                        break
                    if length > self.max_len:
                        raise ValueError("corrupt Huffman stream")
            bit_start += int(stream.block_bits[b])
        return out

    # -- diagnostics -----------------------------------------------------

    def expected_bits(self, freqs: np.ndarray) -> float:
        """Total encoded size (bits) of a source with the given counts."""
        freqs = np.asarray(freqs, dtype=np.float64)
        return float(np.sum(freqs * self.lengths, dtype=np.float64))
