"""Canonical Huffman coding for arbitrary alphabet sizes.

The paper (Section IV-A) points out that off-the-shelf Huffman coders work
byte-by-byte (256 symbols) while SZ-1.4 needs ``2^m`` quantization codes
with ``m`` possibly larger than 8, so it re-implements Huffman for any
alphabet size.  This module does the same for the reproduction:

* tree construction over any alphabet, with an iterative frequency-halving
  length limiter so codewords never exceed ``max_code_length``;
* canonical code assignment (codes derivable from lengths alone, so only
  the length table is serialized);
* a fully vectorized encoder built on :func:`repro.encoding.bitio.pack_varlen`;
* a *block-parallel* vectorized decoder: the symbol stream is chunked at
  encode time, per-chunk bit lengths are recorded, and decoding advances
  all chunks in lockstep — one table lookup round decodes one symbol per
  chunk.  A scalar reference decoder is kept for verification.

The two-level decode table (primary prefix table + per-prefix subtables)
keeps memory bounded even for 17+-bit codes on 65537-symbol alphabets.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    byte_windows64,
    gather_windows64,
    pack_varlen,
)
from repro.obs.tracer import active_collector
from repro.perf import stage

__all__ = ["HuffmanCodec", "EncodedStream", "huffman_code_lengths"]

_PRIMARY_BITS = 13
_DEFAULT_BLOCK = 4096
_WINDOW_MATERIALIZE_LIMIT = 64 << 20
"""Payloads up to this many bytes decode against a precomputed 8-byte
window array (8x payload RAM, ~3x faster rounds); larger ones gather
windows per round to keep peak memory bounded."""

_MULTI_TABLE_BITS = 20
"""Codes up to this long decode through a multi-symbol table: each
window lookup emits every whole codeword inside the table's
``width``-bit window (up to ``_MULTI_MAX_SYMS``), and chained lookups
reuse one gathered 64-bit window, collapsing the per-symbol round loop
by the symbols-per-round factor.  The bound caps table memory at
``2^20`` entries."""

_MULTI_BASE_BITS = 16
"""Minimum multi-table window width.  Short-code tables still index a
16-bit window so one lookup can pack several codewords."""

_MULTI_MAX_SYMS = 8
"""Cap on packed symbols per multi-table entry — bounds the table at
``2^width * (4 * k + k + 2)`` bytes (~42 MB worst case at k = 8,
width = 20)."""

_FLAT_TABLE_BITS = 22
"""Codes up to this long (but too long for the multi table) decode
through a single flat ``max_len``-wide table, eliminating the two-level
secondary gather branch.  Beyond it the 13-bit primary + subtable
layout keeps memory bounded."""

_SAFE_WINDOW_BITS = 57
"""Usable bits of a gathered 8-byte window: the byte-aligned gather is
shifted left by the cursor's bit skew (up to 7), zero-filling the low
bits, so only ``64 - 7`` leading bits are guaranteed real.  Chained
lookups must stay inside this budget."""

_STAGE_ELEMS = 1 << 20
"""Target element count (≈4 MB of int32) for the staged-emission
buffer of the fast decode rounds; bounds memory for huge block counts
while keeping flushes rare for typical ones."""


def huffman_code_lengths(
    freqs: np.ndarray, max_code_length: int = 24
) -> np.ndarray:
    """Compute Huffman code lengths for the given symbol frequencies.

    Parameters
    ----------
    freqs
        Non-negative counts, one per symbol.  Symbols with zero frequency
        get length 0 (no codeword).
    max_code_length
        Upper bound on any codeword length.  When the unconstrained tree
        exceeds it, frequencies are iteratively halved (zlib-style) and the
        tree rebuilt; this converges because halving flattens the
        distribution toward uniform.

    Returns
    -------
    int64 array of code lengths (0 for absent symbols).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise ValueError("freqs must be one-dimensional")
    if freqs.size and freqs.min() < 0:
        raise ValueError("frequencies must be non-negative")
    present = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths
    if max_code_length < int(np.ceil(np.log2(present.size))):
        raise ValueError(
            f"max_code_length={max_code_length} cannot address "
            f"{present.size} symbols"
        )
    work = freqs[present].astype(np.int64)
    while True:
        depths = _tree_depths(work)
        if depths.max() <= max_code_length:
            break
        work = np.maximum(work >> 1, 1)
    lengths[present] = depths
    return lengths


def _tree_depths(freqs: np.ndarray) -> np.ndarray:
    """Depth of each leaf in a Huffman tree over ``freqs`` (all > 0)."""
    n = freqs.size
    # Heap items: (frequency, tie-break serial, node id).  Node ids < n are
    # leaves; internal nodes get ids >= n.  parent[] lets us read depths off
    # the forest afterwards without recursion.
    heap = [(int(f), i, i) for i, f in enumerate(freqs)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    while len(heap) > 1:
        f1, _, a = heapq.heappop(heap)
        f2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1
    depths = np.zeros(n, dtype=np.int64)
    # Depth of node = depth of parent + 1; compute top-down by id order
    # (parents always have larger ids than children).
    depth_all = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        depth_all[node] = depth_all[parent[node]] + 1
    depths[:] = depth_all[:n]
    return depths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given code lengths (0 = absent)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    present = np.flatnonzero(lengths)
    if present.size == 0:
        return codes
    max_len = int(lengths.max())
    bl_count = np.bincount(lengths[present], minlength=max_len + 1)
    next_code = np.zeros(max_len + 1, dtype=np.uint64)
    code = 0
    for length in range(1, max_len + 1):
        code = (code + int(bl_count[length - 1])) << 1
        next_code[length] = code
    # Symbols sorted by (length, symbol) receive consecutive codes within
    # each length class.
    order = present[np.lexsort((present, lengths[present]))]
    lens_sorted = lengths[order]
    # rank within each length class
    change = np.concatenate(([True], lens_sorted[1:] != lens_sorted[:-1]))
    class_start = np.maximum.accumulate(np.where(change, np.arange(order.size), 0))
    rank = np.arange(order.size) - class_start
    codes[order] = next_code[lens_sorted] + rank.astype(np.uint64)
    return codes


@dataclass(frozen=True)
class _MultiTables:
    """Fused multi-symbol decode table (``max_len <= _MULTI_TABLE_BITS``).

    For every ``width``-bit window value one row of ``fused`` packs the
    whole decode step: column 0 holds ``(total_bits << 8) | count``
    (count = whole codewords in the window, total_bits = their summed
    lengths, both 0 for invalid windows) and columns ``1..k`` the
    decoded symbols.  Packing metadata and symbols into one
    row-contiguous array means each lookup touches a single cache line
    instead of gathering three separate tables — the dominant cost of a
    decode round.  ``chain`` successive lookups share one gathered
    64-bit window (each offset by the previous total) without touching
    the payload again.  ``cumbits`` (cumulative bits after each packed
    codeword) serves the clamped single-lookup rounds near block ends.
    """

    width: int
    k: int
    chain: int
    fused: np.ndarray  # int32 (2^width, 1 + k), [(totbits << 8) | count, syms...]
    cumbits: np.ndarray  # uint8 (2^width, k) cumulative bits consumed


@dataclass(frozen=True)
class _TwoLevelTables:
    """Primary prefix table + optional per-prefix subtables.

    With ``primary_bits == max_len`` the secondary is empty and every
    lookup resolves in the primary (the fused flat layout); otherwise
    negative primary entries index into ``secondary`` chunks.
    """

    primary_bits: int
    primary: np.ndarray  # int64 (2^primary_bits,), (sym << 6) | len
    secondary: np.ndarray  # int64, concatenated subtable chunks
    sub_base: np.ndarray  # int64, chunk start offsets into secondary
    sub_depth: int


_DecodeTables = _MultiTables | _TwoLevelTables


def _sorted_present(
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Present symbols and their lengths in canonical (length, symbol) order.

    Canonical codes in this order are consecutive within each length
    class and left-aligned codewords tile the decode-table index space
    contiguously from 0 — the property both flat builders rely on.
    """
    present = np.flatnonzero(lengths)
    order = present[np.lexsort((present, lengths[present]))]
    return order, lengths[order]


def _build_multi_tables(lengths: np.ndarray, max_len: int) -> _MultiTables:
    width = max(max_len, _MULTI_BASE_BITS)
    size = 1 << width
    sym1 = np.zeros(size, dtype=np.int32)
    len1 = np.zeros(size, dtype=np.uint8)
    order, lens_sorted = _sorted_present(lengths)
    if order.size:
        # Canonical tiling: symbol i (in canonical order) owns the
        # contiguous 2^(width - len) slots starting at code << (width -
        # len); any Kraft deficit leaves an invalid (length 0) tail.
        reps = (1 << (width - lens_sorted)).astype(np.int64)
        total = int(reps.sum(dtype=np.int64))
        sym1[:total] = np.repeat(order.astype(np.int32), reps)
        len1[:total] = np.repeat(lens_sorted.astype(np.uint8), reps)
    min_len = int(lens_sorted[0]) if order.size else 1
    k = max(1, min(_MULTI_MAX_SYMS, width // max(min_len, 1)))
    fused = np.zeros((size, 1 + k), dtype=np.int32)
    cumbits = np.zeros((size, k), dtype=np.uint8)
    fused[:, 1] = sym1
    cumbits[:, 0] = len1
    valid = len1 > 0
    counts = valid.astype(np.int64)
    cum = len1.astype(np.int64)
    idx = np.arange(size, dtype=np.int64)
    mask = size - 1
    for j in range(1, k):
        # After consuming ``cum`` bits the remaining window tail (zero
        # filled below bit 0) indexes the next codeword.  The prefix
        # property makes the zero fill safe: any entry whose length fits
        # the real bits decodes identically for every fill.
        nxt = (idx << cum) & mask
        ln = len1[nxt].astype(np.int64)
        ok = valid & (ln > 0) & (cum + ln <= width)
        fused[:, 1 + j] = np.where(ok, sym1[nxt], 0)
        cum = np.where(ok, cum + ln, cum)
        cumbits[:, j] = cum
        counts += ok.astype(np.int64)
        valid = ok
        if not ok.any():
            break
    # Metadata word: total bits consumed by a full lookup (cumbits of
    # the last packed codeword) and the codeword count; exactly 0 for
    # invalid windows (no codeword resolves), so a chained cursor
    # stalls there and the stall is detectable.
    totbits = cumbits[np.arange(size), np.maximum(counts, 1) - 1].astype(
        np.int64
    ) * (counts > 0)
    fused[:, 0] = ((totbits << 8) | counts).astype(np.int32)
    chain = max(1, _SAFE_WINDOW_BITS // width)
    return _MultiTables(width, k, chain, fused, cumbits)


def _build_two_level_tables(
    lengths: np.ndarray, codes: np.ndarray, max_len: int
) -> _TwoLevelTables:
    primary_bits = max_len if max_len <= _FLAT_TABLE_BITS else _PRIMARY_BITS
    primary = np.zeros(1 << primary_bits, dtype=np.int64)
    order, lens_sorted = _sorted_present(lengths)
    short = lens_sorted <= primary_bits
    if short.any():
        # Same canonical tiling as the multi table, entries packed as
        # (sym << 6) | len; only over-length codes need the loop below.
        reps = (1 << (primary_bits - lens_sorted[short])).astype(np.int64)
        entries = np.repeat((order[short] << 6) | lens_sorted[short], reps)
        primary[: entries.size] = entries
    sub_prefixes: dict[int, int] = {}
    sub_chunks: list[np.ndarray] = []
    sub_depth = max(max_len - primary_bits, 0)
    for sym in order[~short]:
        length = int(lengths[sym])
        code = int(codes[sym])
        prefix = code >> (length - primary_bits)
        if prefix not in sub_prefixes:
            sub_prefixes[prefix] = len(sub_chunks)
            sub_chunks.append(np.zeros(1 << sub_depth, dtype=np.int64))
            primary[prefix] = -(sub_prefixes[prefix] + 1)
        table = sub_chunks[sub_prefixes[prefix]]
        rem_len = length - primary_bits
        rem = code & ((1 << rem_len) - 1)
        lo = rem << (sub_depth - rem_len)
        hi = lo + (1 << (sub_depth - rem_len))
        table[lo:hi] = (int(sym) << 6) | length
    secondary = (
        np.concatenate(sub_chunks)
        if sub_chunks
        else np.zeros(0, dtype=np.int64)
    )
    sub_base = np.arange(len(sub_chunks), dtype=np.int64) * (1 << sub_depth)
    return _TwoLevelTables(primary_bits, primary, secondary, sub_base, sub_depth)


_TABLE_CACHE: OrderedDict[
    tuple[bytes, int, int, int, int, int], _DecodeTables
] = OrderedDict()
_TABLE_CACHE_LOCK = threading.Lock()
_TABLE_CACHE_SLOTS = 64
_TABLE_CACHE_BYTES = 128 << 20
"""Process-level decode-table LRU: tiled decompression parses one codec
per tile, and re-reading the same container (repeated region queries,
a second full decode) re-parses the same length tables — the tables
(the expensive part) are reusable.  Keyed by the canonical lengths
array plus the variant thresholds (so a monkeypatched threshold can
never serve a stale layout).  Evicts on slot count *and* total table
bytes: a wide multi table (width 20, k = 8) alone is ~42 MB, so slots
alone would not bound memory.  The slot count must comfortably exceed
a typical container's distinct-table count: cyclic tile order over an
LRU smaller than the working set evicts every entry just before its
next use (0% hit rate at N tables > N slots), so small tile tables
should be bounded by bytes, not slots."""


def _tables_nbytes(tables: _DecodeTables) -> int:
    if isinstance(tables, _MultiTables):
        arrays = (tables.fused, tables.cumbits)
    else:
        arrays = (tables.primary, tables.secondary, tables.sub_base)
    return sum(int(a.nbytes) for a in arrays)


def _decode_tables_for(
    lengths: np.ndarray, codes: np.ndarray, max_len: int
) -> _DecodeTables:
    key = (
        lengths.tobytes(),  # szlint: ignore[SZ104] — hashable cache key, one copy per table build
        _PRIMARY_BITS,
        _MULTI_TABLE_BITS,
        _MULTI_BASE_BITS,
        _MULTI_MAX_SYMS,
        _FLAT_TABLE_BITS,
    )
    with _TABLE_CACHE_LOCK:
        hit = _TABLE_CACHE.get(key)
        if hit is not None:
            _TABLE_CACHE.move_to_end(key)
    collector = active_collector()
    if hit is not None:
        if collector is not None:
            collector.add("huffman/table_cache_hits")
        return hit
    if collector is not None:
        collector.add("huffman/table_cache_misses")
    tables: _DecodeTables
    if max_len <= _MULTI_TABLE_BITS:
        tables = _build_multi_tables(lengths, max_len)
    else:
        tables = _build_two_level_tables(lengths, codes, max_len)
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE[key] = tables
        total = sum(_tables_nbytes(t) for t in _TABLE_CACHE.values())
        while len(_TABLE_CACHE) > 1 and (
            len(_TABLE_CACHE) > _TABLE_CACHE_SLOTS
            or total > _TABLE_CACHE_BYTES
        ):
            _, evicted = _TABLE_CACHE.popitem(last=False)
            total -= _tables_nbytes(evicted)
    return tables


@dataclass(frozen=True)
class EncodedStream:
    """A Huffman-encoded symbol stream with block index for parallel decode."""

    n_symbols: int
    block_size: int
    block_bits: np.ndarray  # uint64, bits consumed by each block
    payload: np.ndarray  # uint8

    @property
    def total_bits(self) -> int:
        return int(self.block_bits.sum(dtype=np.uint64))

    def to_bytes(self) -> bytes:
        # Every field is a whole number of bytes (48 + 32 + 48 header bits,
        # 40 bits per block index entry), so the stream serializes as plain
        # big-endian byte runs — no bit packing needed.  Byte-identical to
        # the original BitWriter formulation (golden blobs pin this).
        head = (
            self.n_symbols.to_bytes(6, "big")
            + self.block_size.to_bytes(4, "big")
            + len(self.payload).to_bytes(6, "big")
        )
        index = (
            self.block_bits.astype(">u8").view(np.uint8).reshape(-1, 8)[:, 3:]
        )
        return head + index.tobytes() + self.payload.tobytes()

    @classmethod
    def from_bytes(cls, buf: bytes | memoryview) -> "EncodedStream":
        if len(buf) < 16:
            raise EOFError("truncated EncodedStream header")
        n_symbols = int.from_bytes(buf[0:6], "big")
        block_size = int.from_bytes(buf[6:10], "big")
        payload_len = int.from_bytes(buf[10:16], "big")
        nblocks = (
            0 if n_symbols == 0 else -(-n_symbols // block_size)
        )
        if len(buf) < 16 + 5 * nblocks:
            raise EOFError("truncated EncodedStream block index")
        index = np.frombuffer(
            buf, dtype=np.uint8, count=5 * nblocks, offset=16
        ).reshape(-1, 5)
        widened = np.zeros((nblocks, 8), dtype=np.uint8)
        widened[:, 3:] = index
        block_bits = widened.view(">u8").ravel().astype(np.uint64)
        header_bytes = 16 + 5 * nblocks
        payload = np.frombuffer(
            buf, dtype=np.uint8, count=payload_len, offset=header_bytes
        )
        return cls(n_symbols, block_size, block_bits, payload)


class HuffmanCodec:
    """Canonical Huffman codec over an arbitrary integer alphabet.

    Build with :meth:`from_frequencies` or :meth:`from_lengths`; the length
    table is the complete description of the code (canonical assignment).
    """

    #: hard cap on codeword length — bounds decode-table memory even for
    #: adversarial (corrupted) length tables
    MAX_DECODE_LEN = 32

    def __init__(self, lengths: np.ndarray) -> None:
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if self.lengths.ndim != 1:
            raise ValueError("length table must be one-dimensional")
        self.max_len = int(self.lengths.max()) if self.lengths.size else 0
        if self.max_len > self.MAX_DECODE_LEN:
            raise ValueError(
                f"code length {self.max_len} exceeds the "
                f"{self.MAX_DECODE_LEN}-bit decoder limit (corrupt table?)"
            )
        if self.lengths.size and self.lengths.min() < 0:
            raise ValueError("negative code length (corrupt table?)")
        present = self.lengths[self.lengths > 0]
        if present.size:
            kraft = float(
                np.sum(2.0 ** (-present.astype(np.float64)), dtype=np.float64)
            )
            if kraft > 1.0 + 1e-9:
                raise ValueError(
                    f"length table violates the Kraft inequality "
                    f"({kraft:.4f} > 1): not a prefix code"
                )
        self.codes = _canonical_codes(self.lengths)
        self._decode_tables: _DecodeTables | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_frequencies(
        cls, freqs: np.ndarray, max_code_length: int = 24
    ) -> "HuffmanCodec":
        return cls(huffman_code_lengths(freqs, max_code_length))

    @classmethod
    def from_symbols(
        cls, symbols: np.ndarray, alphabet_size: int, max_code_length: int = 24
    ) -> "HuffmanCodec":
        freqs = np.bincount(
            np.asarray(symbols).ravel(), minlength=alphabet_size
        )
        return cls.from_frequencies(freqs, max_code_length)

    @property
    def alphabet_size(self) -> int:
        return self.lengths.size

    # -- table (de)serialization ----------------------------------------

    def write_table(self, w: BitWriter) -> None:
        """Serialize the length table with run-length tokens.

        Token grammar (MSB-first)::

            '1'  + 6-bit len              one symbol of this length
            '01' + 16-bit n               run of n absent symbols (len 0)
            '00' + 6-bit len + 12-bit n   run of n symbols, same length

        Tokens are built as value/width arrays in one vectorized pass
        (each token is a single multi-field integer — concatenating the
        fields MSB-first is associative) and bulk-appended, so a 65537
        symbol table costs a handful of NumPy calls instead of a
        per-symbol Python loop.  Byte-identical to
        :meth:`write_table_scalar` (tested).
        """
        w.write(self.alphabet_size, 32)
        lengths = self.lengths
        if lengths.size == 0:
            return
        # Run-length boundaries, then split runs into grammar-capped chunks.
        edges = np.flatnonzero(
            np.concatenate(([True], lengths[1:] != lengths[:-1]))
        )
        run_vals = lengths[edges]
        run_lens = np.diff(np.concatenate((edges, [lengths.size])))
        caps = np.where(run_vals == 0, (1 << 16) - 1, (1 << 12) - 1)
        nchunks = -(-run_lens // caps)
        owner = np.repeat(np.arange(run_vals.size), nchunks)
        sizes = caps[owner].copy()
        last = np.cumsum(nchunks, dtype=np.int64) - 1
        sizes[last] = run_lens - (nchunks - 1) * caps
        vals = run_vals[owner]
        tok_vals = np.where(
            vals == 0,
            (0b01 << 16) | sizes,  # '01' + 16-bit zero-run count
            np.where(
                sizes == 1,
                (0b1 << 6) | vals,  # '1' + 6-bit length
                (vals << 12) | sizes,  # '00' + 6-bit length + 12-bit count
            ),
        )
        tok_bits = np.where(vals == 0, 18, np.where(sizes == 1, 7, 20))
        w.write_array(tok_vals.astype(np.uint64), tok_bits)

    def write_table_scalar(self, w: BitWriter) -> None:
        """Per-run scalar reference for :meth:`write_table` (cross-checked)."""
        w.write(self.alphabet_size, 32)
        lengths = self.lengths
        i = 0
        n = lengths.size
        while i < n:
            j = i
            while j < n and lengths[j] == lengths[i]:
                j += 1
            run = j - i
            val = int(lengths[i])
            if val == 0:
                while run > 0:
                    chunk = min(run, (1 << 16) - 1)
                    w.write(0b01, 2)
                    w.write(chunk, 16)
                    run -= chunk
            elif run == 1:
                w.write(0b1, 1)
                w.write(val, 6)
            else:
                while run > 0:
                    chunk = min(run, (1 << 12) - 1)
                    if chunk == 1:
                        w.write(0b1, 1)
                        w.write(val, 6)
                    else:
                        w.write(0b00, 2)
                        w.write(val, 6)
                        w.write(chunk, 12)
                    run -= chunk
            i = j

    MAX_ALPHABET = 1 << 24

    @classmethod
    def read_table(cls, r: BitReader) -> "HuffmanCodec":
        """Parse a length table (inverse of :meth:`write_table`).

        Reads whole 20-bit token windows from a precomputed 8-byte
        window array (:func:`repro.encoding.bitio.byte_windows64`)
        instead of three ``BitReader.read`` calls per token — the
        per-symbol loop this replaces dominated table parsing for
        16-bit alphabets.  Behaviour matches
        :meth:`read_table_scalar` exactly, corrupt inputs included
        (same bits are visible to both parsers).
        """
        alphabet = r.read(32)
        if alphabet > cls.MAX_ALPHABET:
            raise ValueError(
                f"alphabet size {alphabet} exceeds limit (corrupt table?)"
            )
        lengths = np.zeros(alphabet, dtype=np.int64)
        buf = r.data
        end_bits = buf.size * 8
        pos = r.bitpos
        # Window only the table region (a valid table is at most ~20 bits
        # per token), extending on demand, so parsing never materializes
        # 8x the whole container.
        win_base = pos >> 3
        win_len = min(buf.size - win_base, ((20 * (alphabet + 2)) >> 3) + 16)
        windows = byte_windows64(buf[win_base : win_base + win_len])
        i = 0
        while i < alphabet:
            if pos + 7 > end_bits:  # shortest token is 7 bits
                # Delegate the ragged tail to the scalar reader so EOF
                # behaviour (message and position) matches it exactly.
                r.seek(pos)
                return cls._read_table_tail(r, lengths, i, alphabet)
            rel = (pos >> 3) - win_base
            if rel + 8 > win_len and win_base + win_len < buf.size:
                win_len = min(buf.size - win_base, 2 * win_len + 16)
                windows = byte_windows64(buf[win_base : win_base + win_len])
            w = int(windows[rel]) >> (44 - (pos & 7))  # 20-bit window
            if w & 0x80000:  # '1' + 6-bit length
                lengths[i] = (w >> 13) & 0x3F
                i += 1
                pos += 7
            elif w & 0x40000:  # '01' + 16-bit zero-run
                if pos + 18 > end_bits:
                    r.seek(pos)
                    return cls._read_table_tail(r, lengths, i, alphabet)
                i += (w >> 2) & 0xFFFF
                pos += 18
            else:  # '00' + 6-bit length + 12-bit run
                if pos + 20 > end_bits:
                    r.seek(pos)
                    return cls._read_table_tail(r, lengths, i, alphabet)
                val = (w >> 12) & 0x3F
                run = w & 0xFFF
                lengths[i : i + run] = val
                i += run
                pos += 20
        r.seek(pos)
        if i != alphabet:
            raise ValueError("corrupt Huffman table: token overrun")
        return cls(lengths)

    @classmethod
    def _read_table_tail(
        cls, r: BitReader, lengths: np.ndarray, i: int, alphabet: int
    ) -> "HuffmanCodec":
        """Finish a table parse near the buffer end with scalar reads."""
        while i < alphabet:
            if r.read(1):
                lengths[i] = r.read(6)
                i += 1
            elif r.read(1):
                i += r.read(16)
            else:
                val = r.read(6)
                run = r.read(12)
                lengths[i : i + run] = val
                i += run
        if i != alphabet:
            raise ValueError("corrupt Huffman table: token overrun")
        return cls(lengths)

    @classmethod
    def read_table_scalar(cls, r: BitReader) -> "HuffmanCodec":
        """Per-token scalar reference for :meth:`read_table` (cross-checked)."""
        alphabet = r.read(32)
        if alphabet > cls.MAX_ALPHABET:
            raise ValueError(
                f"alphabet size {alphabet} exceeds limit (corrupt table?)"
            )
        lengths = np.zeros(alphabet, dtype=np.int64)
        return cls._read_table_tail(r, lengths, 0, alphabet)

    # -- encoding --------------------------------------------------------

    def encode(
        self,
        symbols: np.ndarray,
        block_size: int = _DEFAULT_BLOCK,
        validate: bool = True,
    ) -> EncodedStream:
        """Encode a symbol array into a blocked canonical-Huffman stream.

        ``validate=False`` skips the range/zero-frequency scans for
        callers that construct the codec from the very histogram of
        ``symbols`` (every appearing symbol then has a codeword by
        construction).
        """
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        collector = active_collector()
        if collector is not None and self.lengths.size:
            present = self.lengths[self.lengths > 0]
            if present.size:
                collector.hist(
                    "huffman/code_lengths",
                    np.bincount(present).tolist(),
                )
                collector.observe("huffman/table_depth", float(self.max_len))
                collector.observe("huffman/table_symbols", float(present.size))
        with stage("huffman_encode", nbytes=symbols.nbytes):
            if validate and symbols.size and (
                symbols.min() < 0 or symbols.max() >= self.alphabet_size
            ):
                raise ValueError("symbol out of alphabet range")
            lens = self.lengths[symbols]
            if validate and symbols.size and lens.min() == 0:
                raise ValueError(
                    "symbol with no codeword (zero frequency) seen"
                )
            vals = self.codes[symbols]
            # One vectorized pack over the whole stream; blocks are
            # bit-offset ranges within it (cursors may start mid-byte —
            # the windowed decoder copes).  Canonical codes fit their
            # lengths exactly, so the pack can skip its masking pass.
            payload, _ = pack_varlen(vals, lens, masked=True)
            nblocks = 0 if symbols.size == 0 else -(-symbols.size // block_size)
            if nblocks:
                block_bits = np.add.reduceat(
                    lens, np.arange(0, symbols.size, block_size),
                    dtype=np.int64,
                ).astype(np.uint64)
            else:
                block_bits = np.zeros(0, dtype=np.uint64)
            return EncodedStream(symbols.size, block_size, block_bits, payload)

    # -- decoding --------------------------------------------------------

    def _build_decode_tables(self) -> _DecodeTables:
        if self._decode_tables is None:
            self._decode_tables = _decode_tables_for(
                self.lengths, self.codes, max(self.max_len, 1)
            )
        return self._decode_tables

    def decode(self, stream: EncodedStream) -> np.ndarray:
        """Block-parallel vectorized decode of an :class:`EncodedStream`."""
        with stage("huffman_decode", nbytes=int(stream.payload.nbytes)):
            return self._decode_impl(stream)

    def _decode_impl(self, stream: EncodedStream) -> np.ndarray:
        tables = self._build_decode_tables()
        if isinstance(tables, _MultiTables):
            out, rounds, lookups = self._decode_multi(stream, tables)
        else:
            out, rounds, lookups = self._decode_two_level(stream, tables)
        collector = active_collector()
        if collector is not None and lookups:
            collector.add("huffman/rounds", float(rounds))
            collector.observe(
                "huffman/symbols_per_lookup", stream.n_symbols / lookups
            )
        return out

    def _decode_multi(
        self, stream: EncodedStream, tables: _MultiTables
    ) -> tuple[np.ndarray, int, int]:
        # Each round gathers one 64-bit window per still-active block.
        # While every block has more than ``chain * k`` symbols left
        # (the *fast* rounds — almost all of them), the round runs
        # ``chain`` table lookups off that single window, each offset by
        # the previous lookup's total bit consumption: no clamping, no
        # compaction, and the raw gathers are staged into a flat buffer
        # instead of scattered — one bulk compaction per ~``stage_rows``
        # rounds replaces the per-round masked scatter that otherwise
        # dominates.  An invalid window inside a chain has ``totbits``
        # 0, so the cursor stalls on it and the stall is caught as a
        # zero round-consumption on the next round; its staged entries
        # have count 0 and emit nothing, and fast-round writes cannot
        # escape the block because ``rem > chain * k`` held on entry.
        #
        # Once any block is within ``chain * k`` symbols of its end the
        # round falls back to a single clamped lookup with immediate
        # emission (*careful* rounds), finishing blocks are compacted
        # out, and fast rounds resume for the survivors.
        n = stream.n_symbols
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            return out, 0, 0
        nblocks = stream.block_bits.size
        starts = np.zeros(nblocks, dtype=np.int64)
        np.cumsum(stream.block_bits[:-1].astype(np.int64), out=starts[1:])
        end_bits = starts + stream.block_bits.astype(np.int64)
        payload = stream.payload
        materialize = payload.size <= _WINDOW_MATERIALIZE_LIMIT
        if materialize:
            windows = byte_windows64(payload)
        else:
            padded = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
        max_byte = payload.size  # clamp: corrupt cursors must not escape
        k = tables.k
        chain = tables.chain
        cap = chain * k
        roww = 1 + k  # fused-table row: meta word + k symbol slots
        shift = np.uint64(64 - tables.width)
        # Fast rounds run in plain int64: the window view reinterprets
        # the uint64 bits (two's complement shifts produce the same bit
        # patterns), the arithmetic right shift's sign fill is masked
        # off, and no per-chain astype casts remain.
        shift_i = np.int64(64 - tables.width)
        mask_i = np.int64((1 << tables.width) - 1)
        # When the fused row width is a power of two the ``idx * roww``
        # flat-row offset folds into the shift/mask pair for free.
        if roww & (roww - 1) == 0:
            rsh = roww.bit_length() - 1
            shift_r = np.int64(64 - tables.width - rsh)
            mask_r = np.int64(((1 << tables.width) - 1) << rsh)
            fold = True
        else:
            shift_r, mask_r = shift_i, mask_i
            fold = False
        cols = np.arange(k, dtype=np.int64)
        row_cols = np.arange(roww, dtype=np.int64)
        fused_t, cumbits_t = tables.fused, tables.cumbits
        fused_flat = fused_t.reshape(-1)
        # Prefix-emission LUT over whole staged rows: row t skips the
        # meta slot and selects the first t of the k packed symbol slots
        # (fancy-indexing it by the staged counts is cheaper than a
        # broadcast compare at flush time).
        emit_lut = np.zeros((k + 1, roww), dtype=bool)
        for t in range(1, k + 1):
            emit_lut[t, 1 : 1 + t] = True
        cur = starts.copy()
        rem = np.full(nblocks, stream.block_size, dtype=np.int64)
        rem[-1] = n - stream.block_size * (nblocks - 1)
        opos = np.arange(nblocks, dtype=np.int64) * stream.block_size
        blk = np.arange(nblocks, dtype=np.int64)
        cursors = starts.copy()
        rounds = 0
        lookups = 0
        stage_buf: np.ndarray | None = None
        staged = 0
        base = np.zeros(0, dtype=np.int64)
        # Fast rounds track only a scalar lower bound on the smallest
        # per-block remainder (every round consumes at most ``cap``
        # symbols per block); true ``rem``/``opos`` are settled at flush
        # time from the staged counts.
        lb = int(rem.min())

        def _flush() -> None:
            # Bulk-compact the staged fast rounds.  The staged gathers
            # are round-major (contiguous per-round writes); one
            # transpose copy makes them block-major, so the masked
            # extraction preserves decode order per block and each
            # block's symbols land in one contiguous ``out`` run
            # starting at its position snapshot (``base``).
            nonlocal staged, lb, rem, opos
            if not staged:
                return
            assert stage_buf is not None
            gb = np.ascontiguousarray(
                stage_buf[:staged].transpose(1, 0, 2, 3)
            )  # (na, R, chain, roww)
            tk = gb[:, :, :, 0] & 0xFF  # per-lookup codeword counts
            na_ = tk.shape[0]
            emit = emit_lut[tk]  # (na, R, chain, roww)
            nz = np.flatnonzero(emit)
            vals = gb.reshape(-1)[nz]  # same linear layout as ``emit``
            cnts = tk.sum(axis=(1, 2), dtype=np.int64)
            offs = np.cumsum(cnts, dtype=np.int64)
            if na_ <= 256:
                s = 0
                for i in range(na_):
                    e = int(offs[i])
                    out[base[i] : base[i] + (e - s)] = vals[s:e]
                    s = e
            else:
                dest = np.repeat(base - (offs - cnts), cnts) + np.arange(
                    vals.size, dtype=np.int64
                )
                out[dest] = vals
            rem -= cnts
            opos += cnts
            lb = int(rem.min())
            staged = 0

        while cur.size:
            rounds += 1
            na = cur.size
            skew = (cur & 7).astype(np.uint64)
            if materialize:
                # mode="clip" is the corrupt-cursor clamp: the window
                # array has ``payload.size + 1`` entries, so clipping
                # lands on the same all-padding window as the explicit
                # ``np.minimum(..., max_byte)`` bound.
                window = np.take(windows, cur >> 3, mode="clip") << skew
            else:
                byte0 = np.minimum(cur >> 3, max_byte)
                window = gather_windows64(padded, byte0) << skew
            if lb > cap:
                lookups += na * chain
                if stage_buf is None:
                    stage_rows = max(
                        1,
                        min(1024, _STAGE_ELEMS // max(na * chain * roww, 1)),
                    )
                    stage_buf = np.empty(
                        (stage_rows, na, chain, roww), dtype=np.int32
                    )
                if staged == 0:
                    # Position snapshot for the batch: careful rounds
                    # may have advanced ``opos`` since the last flush.
                    base = opos.copy()
                grow = stage_buf[staged]
                win = window.view(np.int64)
                cum: np.ndarray | None = None
                for c in range(chain):
                    shifted = win if cum is None else win << cum
                    rowoff = (shifted >> shift_r) & mask_r
                    if not fold:
                        rowoff = rowoff * roww
                    # Flat 1-D gather of whole fused rows: one indexed
                    # load per (block, chain) instead of numpy's slower
                    # per-row 2-D gather path.
                    g = np.take(fused_flat, rowoff[:, None] + row_cols)
                    grow[:, c] = g
                    if cum is None:
                        cum = g[:, 0] >> 8
                    else:
                        cum += g[:, 0] >> 8
                assert cum is not None
                if not cum.all():
                    raise ValueError(
                        "corrupt Huffman stream: invalid codeword"
                    )
                staged += 1
                lb -= cap
                cur += cum
                if staged == stage_buf.shape[0]:
                    _flush()
            else:
                _flush()
                lookups += na
                idx = (window >> shift).astype(np.int64)
                g = fused_t[idx]
                take = np.minimum((g[:, 0] & 0xFF).astype(np.int64), rem)
                if not take.all():
                    raise ValueError(
                        "corrupt Huffman stream: invalid codeword"
                    )
                emit = cols < take[:, None]
                out[(opos[:, None] + cols)[emit]] = g[:, 1:][emit]
                cur += cumbits_t[idx, take - 1].astype(np.int64)
                rem -= take
                opos += take
                done = rem == 0
                if done.any():
                    cursors[blk[done]] = cur[done]
                    keep = ~done
                    cur, rem, opos, blk = (
                        cur[keep], rem[keep], opos[keep], blk[keep]
                    )
                    # Active-set width changed: drop the staging buffer so
                    # the next fast batch reallocates at the new width.
                    stage_buf = None
                lb = int(rem.min()) if rem.size else 0
        _flush()
        if not np.array_equal(cursors, end_bits):
            raise ValueError("corrupt Huffman stream: block length mismatch")
        return out, rounds, lookups

    def _decode_two_level(
        self, stream: EncodedStream, tables: _TwoLevelTables
    ) -> tuple[np.ndarray, int, int]:
        # Round ``r`` decodes symbol ``r`` of every still-active block.
        # Two standing optimizations over the textbook formulation:
        #
        # * the payload's 8-byte windows are materialized once
        #   (``byte_windows64``), so each round is a gather + shift
        #   instead of an 8-pass window rebuild;
        # * only the *last* block can be short, so the active set is
        #   always a prefix of the block arrays — no per-round
        #   ``flatnonzero``.
        #
        # With ``primary_bits == max_len`` (the fused flat layout, codes
        # up to ``_FLAT_TABLE_BITS``) the secondary is empty and the
        # ``long_mask`` branch below never fires.
        n = stream.n_symbols
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            return out, 0, 0
        primary_bits = tables.primary_bits
        primary, secondary = tables.primary, tables.secondary
        sub_base, sub_depth = tables.sub_base, tables.sub_depth
        max_len = max(self.max_len, 1)
        nblocks = stream.block_bits.size
        cursors = np.zeros(nblocks, dtype=np.int64)
        np.cumsum(stream.block_bits[:-1].astype(np.int64), out=cursors[1:])
        end_bits = cursors + stream.block_bits.astype(np.int64)
        last_count = n - stream.block_size * (nblocks - 1)
        out_starts = np.arange(nblocks, dtype=np.int64) * stream.block_size
        payload = stream.payload
        # Materializing every 8-byte window costs 8x the payload in RAM —
        # a clear win for the common (tiled / mid-size) case, but a
        # multi-hundred-MB payload must fall back to gathering the
        # windows per round instead.
        materialize = payload.size <= _WINDOW_MATERIALIZE_LIMIT
        if materialize:
            windows = byte_windows64(payload)
        else:
            padded = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
        max_byte = payload.size  # clamp: corrupt cursors must not escape
        prim_shift = np.uint64(64 - primary_bits)
        rem_shift = np.uint64(64 - max_len)
        rem_mask = (1 << sub_depth) - 1
        rounds = 0
        lookups = 0
        for r in range(stream.block_size):
            na = nblocks if r < last_count else nblocks - 1
            if na == 0:
                break
            rounds += 1
            lookups += na
            cur = cursors[:na]
            byte0 = np.minimum(cur >> 3, max_byte)
            skew = (cur & 7).astype(np.uint64)
            if materialize:
                window = windows[byte0] << skew
            else:
                window = gather_windows64(padded, byte0) << skew
            idx = (window >> prim_shift).astype(np.int64)
            entry = primary[idx]
            long_mask = entry < 0
            if long_mask.any():
                sub_idx = -entry[long_mask] - 1
                rem = (window[long_mask] >> rem_shift).astype(
                    np.int64
                ) & rem_mask
                entry[long_mask] = secondary[sub_base[sub_idx] + rem]
            if not entry.all():
                raise ValueError("corrupt Huffman stream: invalid codeword")
            out[out_starts[:na] + r] = entry >> 6
            cur += entry & 63
        if not np.array_equal(cursors, end_bits):
            raise ValueError("corrupt Huffman stream: block length mismatch")
        return out, rounds, lookups

    def decode_scalar(self, stream: EncodedStream) -> np.ndarray:
        """Bit-by-bit reference decoder (slow; used to validate ``decode``)."""
        lookup = {
            (int(self.lengths[s]), int(self.codes[s])): int(s)
            for s in np.flatnonzero(self.lengths)
        }
        n = stream.n_symbols
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            return out
        nblocks = stream.block_bits.size
        pos = 0
        reader = BitReader(stream.payload)
        bit_start = 0
        for b in range(nblocks):
            reader.seek(bit_start)
            remaining = min(stream.block_size, n - pos)
            for _ in range(remaining):
                code, length = 0, 0
                while True:
                    code = (code << 1) | reader.read(1)
                    length += 1
                    if (length, code) in lookup:
                        out[pos] = lookup[(length, code)]
                        pos += 1
                        break
                    if length > self.max_len:
                        raise ValueError("corrupt Huffman stream")
            bit_start += int(stream.block_bits[b])
        return out

    # -- diagnostics -----------------------------------------------------

    def expected_bits(self, freqs: np.ndarray) -> float:
        """Total encoded size (bits) of a source with the given counts."""
        freqs = np.asarray(freqs, dtype=np.float64)
        return float(np.sum(freqs * self.lengths, dtype=np.float64))
