"""Golomb-Rice coding for non-negative integers.

Used by the ISABELA baseline's error-repair stream and available as a
lightweight alternative to Huffman when the source is geometric.  Encoding
is vectorized (unary quotient + ``k``-bit remainder via
:func:`repro.encoding.bitio.pack_varlen`); decoding walks the bit array with
a NumPy-assisted scan.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitio import bytes_to_bits, pack_varlen

__all__ = ["rice_encode", "rice_decode", "optimal_rice_parameter", "zigzag", "unzigzag"]

_MAX_QUOTIENT = 1 << 20
"""Safety bound: a quotient beyond this indicates corruption or a bad k."""


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed integers to non-negative: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> np.uint64(1)).astype(np.int64)) ^ -(
        (values & np.uint64(1)).astype(np.int64)
    )


def optimal_rice_parameter(values: np.ndarray) -> int:
    """Pick ``k`` minimizing the encoded size (scanning a small k range)."""
    values = np.asarray(values, dtype=np.uint64)
    if values.size == 0:
        return 0
    mean = float(values.mean())
    guess = max(0, int(np.log2(mean + 1.0)))
    best_k, best_bits = 0, np.inf
    for k in range(max(0, guess - 2), guess + 3):
        bits = float(
            np.sum(
                (values >> np.uint64(k)) + np.uint64(k) + np.uint64(1),
                dtype=np.uint64,
            )
        )
        if bits < best_bits:
            best_k, best_bits = k, bits
    return best_k


def rice_encode(values: np.ndarray, k: int) -> tuple[np.ndarray, int]:
    """Encode non-negative ints with Rice parameter ``k``.

    Each value ``v`` becomes ``v >> k`` zero bits, a one bit, then the low
    ``k`` bits of ``v``.  Returns ``(byte buffer, total_bits)``.
    """
    if not 0 <= k <= 57:
        raise ValueError(f"rice parameter out of range: {k}")
    values = np.asarray(values, dtype=np.uint64)
    q = (values >> np.uint64(k)).astype(np.int64)
    if q.size and q.max() > _MAX_QUOTIENT:
        raise ValueError(
            f"quotient {int(q.max())} too large for k={k}; choose a larger k"
        )
    # unary(q) + '1' + k remainder bits packed as one field per value:
    # the field value is (1 << k) | remainder and its width is q + 1 + k.
    remainder = values & ((np.uint64(1) << np.uint64(k)) - np.uint64(1))
    field = (np.uint64(1) << np.uint64(k)) | remainder
    widths = q + 1 + k
    if widths.size and widths.max() > 64:
        # Rare huge-quotient values: fall back to per-value chunked packing.
        return _rice_encode_wide(values, k)
    return pack_varlen(field, widths)


def _rice_encode_wide(values: np.ndarray, k: int) -> tuple[np.ndarray, int]:
    """Slow path when some unary runs exceed the 64-bit packing field."""
    from repro.encoding.bitio import BitWriter

    w = BitWriter()
    for v in values:
        q = int(v) >> k
        for _ in range(q):
            w.write(0, 1)
        w.write(1, 1)
        w.write(int(v) & ((1 << k) - 1), k)
    return np.frombuffer(w.getvalue(), dtype=np.uint8), w.bit_length


def rice_decode(
    buf: bytes | np.ndarray, n: int, k: int, bit_offset: int = 0
) -> tuple[np.ndarray, int]:
    """Decode ``n`` Rice-coded values; returns ``(values, bits_consumed)``.

    The unary terminators are located with one vectorized pass over the bit
    array: every '1' bit that is not inside a remainder field terminates a
    quotient, and remainder fields occupy exactly ``k`` bits after each
    terminator, so terminators can be found iteratively in ``O(n)`` with
    NumPy slicing rather than per-bit Python work.
    """
    if not 0 <= k <= 57:
        raise ValueError(f"rice parameter out of range: {k}")
    bits = bytes_to_bits(buf)[bit_offset:]
    values = np.zeros(n, dtype=np.uint64)
    if n == 0:
        return values, 0
    ones = np.flatnonzero(bits == 1)
    pos = 0  # cursor within bits
    ones_idx = 0  # cursor within `ones`
    powers = (np.uint64(1) << np.arange(k, dtype=np.uint64))[::-1] if k else None
    for i in range(n):
        # Find the first set bit at or after pos: advance within `ones`.
        while ones_idx < ones.size and ones[ones_idx] < pos:
            ones_idx += 1
        if ones_idx >= ones.size:
            raise EOFError("rice stream exhausted before all values decoded")
        term = int(ones[ones_idx])
        q = term - pos
        if q > _MAX_QUOTIENT:
            raise ValueError("corrupt rice stream: unary run too long")
        rem_start = term + 1
        if rem_start + k > bits.size:
            raise EOFError("rice stream exhausted inside remainder")
        if k:
            rem = int(bits[rem_start : rem_start + k].astype(np.uint64) @ powers)
        else:
            rem = 0
        values[i] = (q << k) | rem
        pos = rem_start + k
        ones_idx += 1
    return values, pos
