"""Bit-level I/O primitives.

Two families live here:

* ``BitWriter`` / ``BitReader`` — scalar, append-one-field-at-a-time
  accumulators.  They are the *reference* implementation used for headers
  and for cross-checking the vectorized paths in the test suite.
* ``pack_varlen`` / ``unpack_varlen`` / ``read_bits_at`` — NumPy-vectorized
  bulk primitives.  All variable-length coders in :mod:`repro.encoding`
  (Huffman, Rice, DEFLATE) and the ZFP-like bit-plane coder are built on
  these.

Bit order is MSB-first within the stream: the first bit written becomes the
most significant bit of the first byte.  All vectorized routines agree with
the scalar ones bit-for-bit (tested).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BitWriter",
    "BitReader",
    "pack_varlen",
    "unpack_varlen",
    "read_bits_at",
    "bits_to_bytes",
    "bytes_to_bits",
]

_MAX_FIELD_BITS = 57
"""Widest field ``read_bits_at`` can extract (8-byte window minus 7-bit skew)."""


class BitWriter:
    """Accumulate an MSB-first bitstream one field at a time.

    Intended for small metadata (headers, Huffman table descriptions) and as
    a reference implementation; bulk data should use :func:`pack_varlen`.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._acc = 0
        self._nacc = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value`` (MSB first)."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return
        value = int(value)
        if value < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nacc += nbits
        while self._nacc >= 8:
            self._nacc -= 8
            self._chunks.append(
                np.uint8((self._acc >> self._nacc) & 0xFF).reshape(())
            )
            self._acc &= (1 << self._nacc) - 1

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 0/1 array as individual bits."""
        for b in np.asarray(bits, dtype=np.uint8):
            self.write(int(b), 1)

    @property
    def bit_length(self) -> int:
        return len(self._chunks) * 8 + self._nacc

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        out = bytearray(int(c) for c in self._chunks)
        if self._nacc:
            out.append((self._acc << (8 - self._nacc)) & 0xFF)
        return bytes(out)


class BitReader:
    """Scalar MSB-first reader over ``bytes`` / ``uint8`` buffers."""

    def __init__(self, buf: bytes | np.ndarray, bitpos: int = 0) -> None:
        self._buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self._pos = bitpos

    @property
    def bitpos(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return len(self._buf) * 8 - self._pos

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits and return them as an unsigned int."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return 0
        if self._pos + nbits > len(self._buf) * 8:
            raise EOFError(
                f"bitstream exhausted: need {nbits} bits at offset {self._pos}, "
                f"have {self.bits_remaining}"
            )
        out = 0
        pos = self._pos
        remaining = nbits
        while remaining:
            byte = int(self._buf[pos >> 3])
            offset = pos & 7
            avail = 8 - offset
            take = min(avail, remaining)
            chunk = (byte >> (avail - take)) & ((1 << take) - 1)
            out = (out << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return out

    def seek(self, bitpos: int) -> None:
        self._pos = bitpos


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 uint8 array into bytes (MSB-first), zero padded."""
    return np.packbits(np.asarray(bits, dtype=np.uint8))


def bytes_to_bits(buf: bytes | np.ndarray, nbits: int | None = None) -> np.ndarray:
    """Unpack bytes to a 0/1 uint8 array, truncated to ``nbits`` if given."""
    bits = np.unpackbits(np.frombuffer(bytes(buf), dtype=np.uint8))
    if nbits is not None:
        if nbits > bits.size:
            raise EOFError(f"need {nbits} bits, buffer holds {bits.size}")
        bits = bits[:nbits]
    return bits


def pack_varlen(values: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack ``values[i]`` into ``lengths[i]`` bits each, MSB-first, contiguous.

    Parameters
    ----------
    values
        Unsigned integers (any integer dtype, reinterpreted as uint64).
        Only the low ``lengths[i]`` bits of ``values[i]`` are stored.
    lengths
        Per-value bit widths in ``[0, 64]``.  Zero-length fields are legal
        and contribute no bits.

    Returns
    -------
    (buf, total_bits)
        ``buf`` is a uint8 byte array (zero padded to a byte boundary) and
        ``total_bits`` the exact number of meaningful bits.

    Notes
    -----
    Runs in ``O(max(lengths))`` vectorized passes — one pass per bit
    position — which is the cache-friendly formulation recommended for
    NumPy (vectorize the inner loop, keep the short loop outside).
    """
    values = np.asarray(values).astype(np.uint64, copy=False)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape:
        raise ValueError("values and lengths must have identical shapes")
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    min_len = int(lengths.min())
    max_len = int(lengths.max())
    if min_len < 0 or max_len > 64:
        raise ValueError("lengths must be within [0, 64]")
    total = int(lengths.sum())
    if max_len == 0:
        return np.zeros(0, dtype=np.uint8), 0
    if min_len == max_len:
        # Uniform width: one bit-matrix, no index juggling.
        shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
        bits = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        return np.packbits(bits.ravel()), total
    # Variable width: presort by descending length so pass ``b`` touches a
    # contiguous prefix (total work ~ sum(lengths), not max_len * n).
    order = np.argsort(-lengths, kind="stable")
    vals_p = values[order]
    lens_p = lengths[order]
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    starts_p = starts[order]
    hist = np.bincount(lengths, minlength=max_len + 1)
    active = lengths.size - np.cumsum(hist)  # active[b] = count(len > b)
    bits = np.zeros(total, dtype=np.uint8)
    for b in range(max_len):
        k = int(active[b])
        if k == 0:
            break
        shift = (lens_p[:k] - 1 - b).astype(np.uint64)
        bits[starts_p[:k] + b] = (
            (vals_p[:k] >> shift) & np.uint64(1)
        ).astype(np.uint8)
    return np.packbits(bits), total


def unpack_varlen(
    buf: bytes | np.ndarray, lengths: np.ndarray, bit_offset: int = 0
) -> np.ndarray:
    """Inverse of :func:`pack_varlen` given the per-value bit widths.

    Parameters
    ----------
    buf
        Byte buffer produced by :func:`pack_varlen` (possibly embedded in a
        larger stream, see ``bit_offset``).
    lengths
        The same per-value bit widths used when packing.
    bit_offset
        Bit position in ``buf`` where the packed region starts.

    Returns
    -------
    uint64 array of decoded values.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.uint64)
    min_len = int(lengths.min())
    max_len = int(lengths.max())
    if min_len < 0 or max_len > 64:
        raise ValueError("lengths must be within [0, 64]")
    total = int(lengths.sum())
    bits = bytes_to_bits(buf)
    if bit_offset + total > bits.size:
        raise EOFError(
            f"need {total} bits at offset {bit_offset}, buffer holds {bits.size}"
        )
    bits = bits[bit_offset : bit_offset + total]
    if max_len == 0:
        return np.zeros(lengths.shape, dtype=np.uint64)
    if min_len == max_len:
        mat = bits.reshape(-1, max_len).astype(np.uint64)
        shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
        return (mat << shifts).sum(axis=1, dtype=np.uint64)
    order = np.argsort(-lengths, kind="stable")
    lens_p = lengths[order]
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    starts_p = starts[order]
    hist = np.bincount(lengths, minlength=max_len + 1)
    active = lengths.size - np.cumsum(hist)
    vals_p = np.zeros(lengths.size, dtype=np.uint64)
    for b in range(max_len):
        k = int(active[b])
        if k == 0:
            break
        shift = (lens_p[:k] - 1 - b).astype(np.uint64)
        vals_p[:k] |= bits[starts_p[:k] + b].astype(np.uint64) << shift
    values = np.zeros(lengths.shape, dtype=np.uint64)
    values[order] = vals_p
    return values


def read_bits_at(
    buf: np.ndarray, bitpos: np.ndarray, nbits: int
) -> np.ndarray:
    """Gather ``nbits``-wide windows at arbitrary bit positions, vectorized.

    Central primitive of the block-parallel Huffman and ZFP-like decoders:
    each decoding "round" reads one window per still-active block.

    Parameters
    ----------
    buf
        uint8 byte buffer.  May be shorter than the furthest window; reads
        past the end behave as if the buffer were zero padded.
    bitpos
        int64 array of bit offsets (MSB-first addressing).
    nbits
        Window width, ``1 <= nbits <= 57``.

    Returns
    -------
    uint64 array: the windows, right-aligned.
    """
    if not 1 <= nbits <= _MAX_FIELD_BITS:
        raise ValueError(f"nbits must be in [1, {_MAX_FIELD_BITS}], got {nbits}")
    buf = np.asarray(buf, dtype=np.uint8)
    bitpos = np.asarray(bitpos, dtype=np.int64)
    if np.any(bitpos < 0):
        raise ValueError("bit positions must be non-negative")
    # Zero-pad so an 8-byte window starting at any in-range position is valid.
    padded = np.concatenate([buf, np.zeros(8, dtype=np.uint8)])
    byte0 = bitpos >> 3
    if byte0.size and int(byte0.max()) > buf.size:
        raise EOFError("bit position beyond end of buffer")
    window = np.zeros(bitpos.shape, dtype=np.uint64)
    for i in range(8):
        window = (window << np.uint64(8)) | padded[byte0 + i].astype(np.uint64)
    skew = (bitpos & 7).astype(np.uint64)
    shift = np.uint64(64 - nbits) - skew
    return (window >> shift) & np.uint64((1 << nbits) - 1)
