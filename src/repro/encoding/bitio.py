"""Bit-level I/O primitives.

Two families live here:

* ``BitWriter`` / ``BitReader`` — append-one-field-at-a-time accumulators
  for headers and table descriptions.  ``BitWriter`` buffers fields as a
  token list and materializes the stream with one vectorized
  :func:`pack_varlen` call in :meth:`BitWriter.getvalue`; the original
  byte-at-a-time implementation is kept as :class:`ScalarBitWriter`, the
  cross-checked reference.
* ``pack_varlen`` / ``unpack_varlen`` / ``read_bits_at`` — NumPy-vectorized
  bulk primitives.  All variable-length coders in :mod:`repro.encoding`
  (Huffman, Rice, DEFLATE) and the ZFP-like bit-plane coder are built on
  these.

Bit order is MSB-first within the stream: the first bit written becomes the
most significant bit of the first byte.  All vectorized routines agree with
the scalar ones bit-for-bit (tested); the fast paths (`_pack_via_windows`,
`_unpack_via_windows`) and the bit-plane reference paths produce
byte-identical streams, which the golden-blob fixtures pin end to end.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "BitWriter",
    "ScalarBitWriter",
    "BitReader",
    "pack_varlen",
    "unpack_varlen",
    "read_bits_at",
    "bits_to_bytes",
    "bytes_to_bits",
    "byte_windows64",
    "gather_windows64",
]

_MAX_FIELD_BITS = 57
"""Widest field ``read_bits_at`` can extract (8-byte window minus 7-bit skew)."""


class BitWriter:
    """Accumulate an MSB-first bitstream one field (or array) at a time.

    Fields are buffered as tokens and packed in a single vectorized pass
    on :meth:`getvalue`, so interleaving many small :meth:`write` calls
    with bulk :meth:`write_array` appends stays cheap.  Produces byte
    streams identical to :class:`ScalarBitWriter` (tested).
    """

    def __init__(self) -> None:
        # Parallel segment lists; scalar tokens are Python ints, bulk
        # appends are ndarray segments.  Flattened once in getvalue().
        self._vals: list[Any] = []
        self._lens: list[Any] = []
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value`` (MSB first)."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return
        value = int(value)
        if value < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._nbits += nbits
        while nbits > 64:  # pack_varlen fields cap at 64 bits; split MSB-first
            take = nbits - 64 if nbits <= 128 else 64
            self._vals.append(value >> (nbits - take))
            self._lens.append(take)
            value &= (1 << (nbits - take)) - 1
            nbits -= take
        self._vals.append(value)
        self._lens.append(nbits)

    def write_array(self, values: np.ndarray, lengths: np.ndarray) -> None:
        """Bulk-append ``values[i]`` as ``lengths[i]``-bit fields.

        Like repeated :meth:`write` calls: values are validated against
        their widths eagerly and snapshotted (the stream materializes in
        :meth:`getvalue`, so later mutation of the caller's array must
        not change what was appended).
        """
        raw = np.asarray(values).ravel()
        values = raw.astype(np.uint64, copy=True)
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        if values.shape != lengths.shape:
            raise ValueError("values and lengths must have identical shapes")
        if values.size == 0:
            return
        if int(lengths.min()) < 0 or int(lengths.max()) > 64:
            raise ValueError("lengths must be within [0, 64]")
        if raw.dtype.kind in "if" and float(raw.min()) < 0:
            # A negative would survive the unsigned cast as its two's-
            # complement wrap and dodge the width check below for 64-bit
            # fields; reject it like write() does.
            bad = int(np.flatnonzero(raw < 0)[0])
            raise ValueError(
                f"value {int(raw[bad])} does not fit in "
                f"{int(lengths[bad])} bits"
            )
        # Same contract as write(): a value wider than its field is an
        # error, not a silent truncation.  (Shift by 63 max — 64-bit
        # fields always fit; zero-width fields are no-ops like write(v, 0).)
        over = values >> np.minimum(lengths, 63).astype(np.uint64)
        over[(lengths == 64) | (lengths == 0)] = 0
        if over.any():
            bad = int(np.flatnonzero(over)[0])
            raise ValueError(
                f"value {int(values[bad])} does not fit in "
                f"{int(lengths[bad])} bits"
            )
        self._vals.append(values)
        self._lens.append(lengths)
        self._nbits += int(lengths.sum(dtype=np.int64))

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 0/1 array as individual bits."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        self.write_array(bits, np.ones(bits.size, dtype=np.int64))

    @property
    def bit_length(self) -> int:
        return self._nbits

    def _flatten(self) -> tuple[np.ndarray, np.ndarray]:
        vals: list[np.ndarray] = []
        lens: list[np.ndarray] = []
        scalar_v: list[int] = []
        scalar_l: list[int] = []
        for v, n in zip(self._vals, self._lens):
            if isinstance(v, np.ndarray):
                if scalar_v:
                    vals.append(np.array(scalar_v, dtype=np.uint64))
                    lens.append(np.array(scalar_l, dtype=np.int64))
                    scalar_v, scalar_l = [], []
                vals.append(v)
                lens.append(n)
            else:
                scalar_v.append(v)
                scalar_l.append(n)
        if scalar_v:
            vals.append(np.array(scalar_v, dtype=np.uint64))
            lens.append(np.array(scalar_l, dtype=np.int64))
        if not vals:
            return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
        return np.concatenate(vals), np.concatenate(lens)

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        values, lengths = self._flatten()
        buf, _ = pack_varlen(values, lengths)
        return buf.tobytes()


class ScalarBitWriter:
    """Byte-at-a-time reference writer (the original ``BitWriter``).

    Kept for cross-checking the token-list :class:`BitWriter` and the
    vectorized packers bit-for-bit in the test suite.
    """

    def __init__(self) -> None:
        self._chunks: list[int] = []
        self._acc = 0
        self._nacc = 0

    def write(self, value: int, nbits: int) -> None:
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return
        value = int(value)
        if value < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nacc += nbits
        while self._nacc >= 8:
            self._nacc -= 8
            self._chunks.append((self._acc >> self._nacc) & 0xFF)
            self._acc &= (1 << self._nacc) - 1

    def write_bits(self, bits: np.ndarray) -> None:
        for b in np.asarray(bits, dtype=np.uint8):
            self.write(int(b), 1)

    @property
    def bit_length(self) -> int:
        return len(self._chunks) * 8 + self._nacc

    def getvalue(self) -> bytes:
        out = bytearray(self._chunks)
        if self._nacc:
            out.append((self._acc << (8 - self._nacc)) & 0xFF)
        return bytes(out)


class BitReader:
    """Scalar MSB-first reader over ``bytes`` / ``uint8`` buffers."""

    def __init__(
        self,
        buf: bytes | bytearray | memoryview | np.ndarray,
        bitpos: int = 0,
    ) -> None:
        # Zero-copy view over any C-contiguous buffer (bytes, bytearray,
        # memoryview, mmap, ndarray); only a non-contiguous source pays
        # for a flattening copy.
        try:
            self._buf = np.frombuffer(buf, dtype=np.uint8)
        except (ValueError, TypeError, BufferError):
            # Intentional one-time copy: only non-contiguous sources land
            # here, and frombuffer needs a contiguous byte view.
            self._buf = np.frombuffer(bytes(buf), dtype=np.uint8)  # szlint: ignore[SZ104]
        self._pos = bitpos

    @property
    def bitpos(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return len(self._buf) * 8 - self._pos

    @property
    def data(self) -> np.ndarray:
        """The underlying byte buffer (for batch readers layered on top)."""
        return self._buf

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits and return them as an unsigned int."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if nbits == 0:
            return 0
        if self._pos + nbits > len(self._buf) * 8:
            raise EOFError(
                f"bitstream exhausted: need {nbits} bits at offset {self._pos}, "
                f"have {self.bits_remaining}"
            )
        out = 0
        pos = self._pos
        remaining = nbits
        while remaining:
            byte = int(self._buf[pos >> 3])
            offset = pos & 7
            avail = 8 - offset
            take = min(avail, remaining)
            chunk = (byte >> (avail - take)) & ((1 << take) - 1)
            out = (out << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return out

    def seek(self, bitpos: int) -> None:
        self._pos = bitpos


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 uint8 array into bytes (MSB-first), zero padded."""
    return np.packbits(np.asarray(bits, dtype=np.uint8))


def bytes_to_bits(buf: bytes | np.ndarray, nbits: int | None = None) -> np.ndarray:
    """Unpack bytes to a 0/1 uint8 array, truncated to ``nbits`` if given."""
    bits = np.unpackbits(np.frombuffer(bytes(buf), dtype=np.uint8))
    if nbits is not None:
        if nbits > bits.size:
            raise EOFError(f"need {nbits} bits, buffer holds {bits.size}")
        bits = bits[:nbits]
    return bits


def byte_windows64(buf: bytes | np.ndarray) -> np.ndarray:
    """Big-endian 8-byte windows at every byte offset of ``buf``.

    ``byte_windows64(buf)[k]`` holds bytes ``buf[k : k + 8]`` (zero padded
    past the end) as one uint64 — bit ``8 * k`` of the stream is the
    window's most significant bit.  One upfront pass turns every later
    "read n bits at position p" into a gather + shift, which is what the
    block-parallel Huffman decoder iterates on.
    """
    buf = np.asarray(buf, dtype=np.uint8) if not isinstance(buf, np.ndarray) \
        else buf
    if buf.dtype != np.uint8:
        buf = buf.astype(np.uint8)
    padded = np.concatenate([buf.ravel(), np.zeros(8, dtype=np.uint8)])
    windows = np.lib.stride_tricks.sliding_window_view(padded, 8)[: buf.size + 1]
    return windows.copy().view(">u8").ravel().astype(np.uint64)


def gather_windows64(padded: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Big-endian 8-byte windows at the given byte offsets of ``padded``.

    The streaming counterpart of :func:`byte_windows64` for payloads too
    large to window wholesale: ``padded`` must carry at least 8 trailing
    zero bytes (so every in-range start reads a full window), and each
    ``starts[i]`` yields the uint64 holding bytes
    ``padded[starts[i] : starts[i] + 8]``.  Eight gathers instead of one
    8x-RAM materialization — the Huffman decoder's fallback for
    multi-hundred-MB payloads.
    """
    windows = np.zeros(starts.size, dtype=np.uint64)
    for i in range(8):
        windows = (windows << np.uint64(8)) | padded[starts + i].astype(
            np.uint64
        )
    return windows


def pack_varlen(
    values: np.ndarray, lengths: np.ndarray, masked: bool = False
) -> tuple[np.ndarray, int]:
    """Pack ``values[i]`` into ``lengths[i]`` bits each, MSB-first, contiguous.

    Parameters
    ----------
    values
        Unsigned integers (any integer dtype, reinterpreted as uint64).
        Only the low ``lengths[i]`` bits of ``values[i]`` are stored.
    lengths
        Per-value bit widths in ``[0, 64]``.  Zero-length fields are legal
        and contribute no bits.
    masked
        Caller's promise that every value already fits its declared width
        (``values[i] >> lengths[i] == 0``), letting the fast path skip
        the masking pass.  Canonical Huffman codes satisfy this by
        construction.

    Returns
    -------
    (buf, total_bits)
        ``buf`` is a uint8 byte array (zero padded to a byte boundary) and
        ``total_bits`` the exact number of meaningful bits.

    Notes
    -----
    Three byte-identical strategies, picked by the length profile: a
    ``np.packbits`` bit matrix for uniform widths, an 8-byte-window
    OR-scatter for mixed widths up to 57 bits (O(1) vectorized passes),
    and the original one-pass-per-bit-position formulation
    (:func:`_pack_varlen_bitplane`, the reference) for the rare mixed
    streams containing 58–64-bit fields.
    """
    values = np.asarray(values).astype(np.uint64, copy=False)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape:
        raise ValueError("values and lengths must have identical shapes")
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    min_len = int(lengths.min())
    max_len = int(lengths.max())
    if min_len < 0 or max_len > 64:
        raise ValueError("lengths must be within [0, 64]")
    total = int(lengths.sum(dtype=np.int64))
    if max_len == 0:
        return np.zeros(0, dtype=np.uint8), 0
    if min_len == max_len:
        # Uniform width: one bit-matrix, no index juggling.
        shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
        bits = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        return np.packbits(bits.ravel()), total
    if max_len <= _MAX_FIELD_BITS:
        return _pack_via_windows(values.ravel(), lengths.ravel(), total, masked)
    return _pack_varlen_bitplane(values, lengths, total, max_len)


def _pack_via_windows(
    values: np.ndarray, lengths: np.ndarray, total: int, masked: bool = False
) -> tuple[np.ndarray, int]:
    """Mixed-width fast path: one 8-byte OR-window per (merged) field.

    Two stages, both byte-identical to the bit-plane reference:

    1. *Pairwise fold* (:func:`_fold_pairs`): adjacent fields that still
       fit a 57-bit window concatenate exactly, so a 4-bit-average
       Huffman stream shrinks 2-16x before any bit placement happens.
    2. *Window scatter*: a field of ``l <= 57`` bits starting at bit
       ``s`` lies entirely inside the 8-byte window at byte ``s >> 3``
       (worst case ``57 + 7 = 64`` bits), which in turn straddles at
       most two *aligned* uint64 words of the output.  Left-align each
       field in its window, split the window into its two aligned-word
       contributions, OR together contributions landing in the same
       word (``np.bitwise_or.reduceat`` — window starts are sorted), and
       scatter the per-word results conflict-free.
    """
    # Fold rounds and bit placement run entirely in uint64 (lengths
    # included) — mixing int64 shift operands would force a cast pass per
    # round.
    lens = lengths.astype(np.uint64)
    if masked:
        vals = values
    else:
        # Mask to the declared widths first: high garbage bits must not
        # leak into a neighbouring field once pairs are folded together.
        mask = (np.uint64(1) << lens) - np.uint64(1)  # l <= 57: no UB
        vals = values & mask
    for _ in range(4):  # n/16 fields is plenty; stop early when folding stalls
        if lens.size < 2:
            break
        folded = _fold_pairs(vals, lens)
        if folded is None:
            break
        vals, lens = folded
    starts = np.zeros(vals.size, dtype=np.uint64)
    np.cumsum(lens[:-1], out=starts[1:])
    skew = starts & np.uint64(7)
    # Shift amount 64 - l - skew is <= 63 whenever l > 0; l == 0 fields
    # are already zero so their (undefined) shift result never lands.
    shift = np.uint64(64) - lens - skew
    windows = vals << shift
    byte0 = starts >> np.uint64(3)
    # Split each 8-byte window (at byte offset b) into its two aligned
    # uint64 words: the high part lands in word b >> 3 shifted right by
    # the intra-word byte offset, the spill-over in the next word.
    word = byte0 >> np.uint64(3)
    s8 = (byte0 & np.uint64(7)) << np.uint64(3)
    hi = windows >> s8
    # (w << 1) << (63 - s8) == w << (64 - s8) without the undefined
    # 64-bit shift at s8 == 0 (where the spill-over must be zero).
    lo = np.where(
        s8 > 0,
        (windows << np.uint64(1)) << (np.uint64(63) - s8),
        np.uint64(0),
    )
    group_start = np.flatnonzero(
        np.concatenate(([True], word[1:] != word[:-1]))
    )
    words_u = word[group_start]
    nbytes = (total + 7) // 8
    out64 = np.zeros((nbytes >> 3) + 2, dtype=np.uint64)
    out64[words_u] = np.bitwise_or.reduceat(hi, group_start)
    out64[words_u + 1] |= np.bitwise_or.reduceat(lo, group_start)
    return out64.astype(">u8").view(np.uint8)[:nbytes], total


def _fold_pairs(
    vals: np.ndarray, lens: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Concatenate adjacent field pairs that still fit a 57-bit window.

    ``(v0 << l1) | v1`` with width ``l0 + l1`` is exactly the bit
    concatenation of the two fields, so folding leaves the packed stream
    unchanged while halving the number of fields downstream passes touch.
    Pairs wider than 57 bits pass through unfolded (two entries), which
    keeps folding productive even when rare long codes are scattered
    through an otherwise short-field stream.  Returns ``None`` when too
    few pairs fit for a fold round to pay for itself.
    """
    if lens.size & 1:
        # A zero-width sentinel merges as a no-op.
        vals = np.concatenate([vals, np.zeros(1, dtype=np.uint64)])
        lens = np.concatenate([lens, np.zeros(1, dtype=np.uint64)])
    v0, v1 = vals[0::2], vals[1::2]
    l0, l1 = lens[0::2], lens[1::2]
    sum01 = l0 + l1
    fit = sum01 <= np.uint64(_MAX_FIELD_BITS)
    if fit.all():
        return (v0 << l1) | v1, sum01
    if np.count_nonzero(fit) < fit.size // 2:
        return None
    # Ragged output: folded pairs take one slot, stragglers keep two.
    out_pos = np.zeros(fit.size, dtype=np.int64)
    np.cumsum(2 - fit[:-1], out=out_pos[1:])
    n_new = int(out_pos[-1]) + 2 - int(fit[-1])
    new_vals = np.zeros(n_new, dtype=np.uint64)
    new_lens = np.zeros(n_new, dtype=np.uint64)
    pos_f = out_pos[fit]
    new_vals[pos_f] = (v0[fit] << l1[fit]) | v1[fit]
    new_lens[pos_f] = sum01[fit]
    unfit = ~fit
    pos_u = out_pos[unfit]
    new_vals[pos_u] = v0[unfit]
    new_lens[pos_u] = l0[unfit]
    new_vals[pos_u + 1] = v1[unfit]
    new_lens[pos_u + 1] = l1[unfit]
    return new_vals, new_lens


def _pack_varlen_bitplane(
    values: np.ndarray,
    lengths: np.ndarray,
    total: int,
    max_len: int,
) -> tuple[np.ndarray, int]:
    """Reference mixed-width path: one vectorized pass per bit position.

    Presorts by descending length so pass ``b`` touches a contiguous
    prefix (total work ~ ``sum(lengths)``, not ``max_len * n``).  Kept
    as the cross-checked reference for :func:`_pack_via_windows` and the
    only path for mixed streams with 58–64-bit fields.
    """
    order = np.argsort(-lengths, kind="stable")
    vals_p = values[order]
    lens_p = lengths[order]
    starts = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)[:-1]))
    starts_p = starts[order]
    hist = np.bincount(lengths, minlength=max_len + 1)
    # active[b] = count(len > b)
    active = lengths.size - np.cumsum(hist, dtype=np.int64)
    bits = np.zeros(total, dtype=np.uint8)
    for b in range(max_len):
        k = int(active[b])
        if k == 0:
            break
        shift = (lens_p[:k] - 1 - b).astype(np.uint64)
        bits[starts_p[:k] + b] = (
            (vals_p[:k] >> shift) & np.uint64(1)
        ).astype(np.uint8)
    return np.packbits(bits), total


def unpack_varlen(
    buf: bytes | np.ndarray, lengths: np.ndarray, bit_offset: int = 0
) -> np.ndarray:
    """Inverse of :func:`pack_varlen` given the per-value bit widths.

    Parameters
    ----------
    buf
        Byte buffer produced by :func:`pack_varlen` (possibly embedded in a
        larger stream, see ``bit_offset``).
    lengths
        The same per-value bit widths used when packing.
    bit_offset
        Bit position in ``buf`` where the packed region starts.

    Returns
    -------
    uint64 array of decoded values.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.uint64)
    min_len = int(lengths.min())
    max_len = int(lengths.max())
    if min_len < 0 or max_len > 64:
        raise ValueError("lengths must be within [0, 64]")
    total = int(lengths.sum(dtype=np.int64))
    if max_len == 0:
        return np.zeros(lengths.shape, dtype=np.uint64)
    buf_arr = (
        buf if isinstance(buf, np.ndarray) else np.frombuffer(buf, np.uint8)
    )
    buf_arr = buf_arr.astype(np.uint8, copy=False).ravel()
    if bit_offset + total > buf_arr.size * 8:
        raise EOFError(
            f"need {total} bits at offset {bit_offset}, "
            f"buffer holds {buf_arr.size * 8}"
        )
    if min_len == max_len:
        bits = np.unpackbits(buf_arr)[bit_offset : bit_offset + total]
        mat = bits.reshape(-1, max_len).astype(np.uint64)
        shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
        return (mat << shifts).sum(axis=1, dtype=np.uint64)
    if max_len <= _MAX_FIELD_BITS:
        return _unpack_via_windows(buf_arr, lengths, bit_offset, total)
    return _unpack_varlen_bitplane(buf_arr, lengths, bit_offset, total, max_len)


def _unpack_via_windows(
    buf: np.ndarray, lengths: np.ndarray, bit_offset: int, total: int
) -> np.ndarray:
    """Mixed-width fast path: gather one 8-byte window per value."""
    lengths_flat = lengths.ravel()
    lengths_u = lengths_flat.astype(np.uint64)
    starts = np.full(lengths_flat.size, bit_offset, dtype=np.int64)
    np.cumsum(lengths_flat[:-1], out=starts[1:])
    starts[1:] += bit_offset
    byte0 = starts >> 3
    padded = np.concatenate([buf, np.zeros(8, dtype=np.uint8)])
    window = np.zeros(lengths_flat.size, dtype=np.uint64)
    for i in range(8):
        window = (window << np.uint64(8)) | padded[byte0 + i].astype(np.uint64)
    skew = (starts & 7).astype(np.uint64)
    mask = np.where(
        lengths_u > 0,
        (np.uint64(1) << lengths_u) - np.uint64(1),
        np.uint64(0),
    )
    values = (window >> (np.uint64(64) - lengths_u - skew)) & mask
    return values.reshape(lengths.shape)


def _unpack_varlen_bitplane(
    buf: np.ndarray,
    lengths: np.ndarray,
    bit_offset: int,
    total: int,
    max_len: int,
) -> np.ndarray:
    """Reference mixed-width unpack: one pass per bit position."""
    bits = np.unpackbits(buf)[bit_offset : bit_offset + total]
    order = np.argsort(-lengths, kind="stable")
    lens_p = lengths[order]
    starts = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)[:-1]))
    starts_p = starts[order]
    hist = np.bincount(lengths, minlength=max_len + 1)
    active = lengths.size - np.cumsum(hist, dtype=np.int64)
    vals_p = np.zeros(lengths.size, dtype=np.uint64)
    for b in range(max_len):
        k = int(active[b])
        if k == 0:
            break
        shift = (lens_p[:k] - 1 - b).astype(np.uint64)
        vals_p[:k] |= bits[starts_p[:k] + b].astype(np.uint64) << shift
    values = np.zeros(lengths.shape, dtype=np.uint64)
    values[order] = vals_p
    return values


def read_bits_at(
    buf: np.ndarray, bitpos: np.ndarray, nbits: int
) -> np.ndarray:
    """Gather ``nbits``-wide windows at arbitrary bit positions, vectorized.

    Central primitive of the block-parallel Huffman and ZFP-like decoders:
    each decoding "round" reads one window per still-active block.

    Parameters
    ----------
    buf
        uint8 byte buffer.  May be shorter than the furthest window; reads
        past the end behave as if the buffer were zero padded.
    bitpos
        int64 array of bit offsets (MSB-first addressing).
    nbits
        Window width, ``1 <= nbits <= 57``.

    Returns
    -------
    uint64 array: the windows, right-aligned.
    """
    if not 1 <= nbits <= _MAX_FIELD_BITS:
        raise ValueError(f"nbits must be in [1, {_MAX_FIELD_BITS}], got {nbits}")
    buf = np.asarray(buf, dtype=np.uint8)
    bitpos = np.asarray(bitpos, dtype=np.int64)
    if np.any(bitpos < 0):
        raise ValueError("bit positions must be non-negative")
    # Zero-pad so an 8-byte window starting at any in-range position is valid.
    padded = np.concatenate([buf, np.zeros(8, dtype=np.uint8)])
    byte0 = bitpos >> 3
    if byte0.size and int(byte0.max()) > buf.size:
        raise EOFError("bit position beyond end of buffer")
    window = np.zeros(bitpos.shape, dtype=np.uint64)
    for i in range(8):
        window = (window << np.uint64(8)) | padded[byte0 + i].astype(np.uint64)
    skew = (bitpos & 7).astype(np.uint64)
    shift = np.uint64(64 - nbits) - skew
    return (window >> shift) & np.uint64((1 << nbits) - 1)
