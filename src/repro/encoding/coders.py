"""The ``EntropyCoder`` protocol and process-level coder registry.

The compressor's entropy stage used to dispatch on string comparisons
(``entropy_coder == "arithmetic"``) scattered through
:mod:`repro.core.compressor`.  This module formalizes the stage: an
:class:`EntropyCoder` turns quantization codes into an
:class:`EntropyPayload` (and back), and a registry maps coder names —
the values ``SZConfig.entropy_coder`` accepts — to coder instances, so
third-party coders become registerable without touching core.

Container round-trip contract
-----------------------------
The container layer (:mod:`repro.core.stream`) persists a payload in
one of two layouts, selected by the header flag bits the coder
contributes via :meth:`EntropyCoder.flag`:

* ``codec`` + ``stream`` — the canonical-Huffman layout: the codec's
  length table round-trips through ``HuffmanCodec.write_table`` /
  ``read_table`` inside the (unaligned) container header, the blocked
  stream serializes via ``EncodedStream.to_bytes``.
* ``raw`` — an opaque byte payload the coder parses itself (the
  arithmetic layout).

Both layouts predate this registry; routing through it is byte-identical
(the golden-blob fixtures pin that).

Registering a coder
-------------------
>>> from repro.encoding import register_entropy_coder, available_coders
>>> class NullCoder:
...     coder_id = "null"
...     flag = 4  # unused container flag bit
...     def encode(self, codes, *, interval_bits, block_size, code_hist=None):
...         ...
...     def decode(self, payload, *, expected, interval_bits):
...         ...
>>> register_entropy_coder(NullCoder())  # doctest: +SKIP

After registration ``SZConfig(entropy_coder="null")`` validates (the
config checks :func:`available_coders`) and the compressor routes the
entropy stage through the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.encoding.huffman import EncodedStream, HuffmanCodec

__all__ = [
    "DEFAULT_ENTROPY_CODER",
    "EntropyCoder",
    "EntropyPayload",
    "available_coders",
    "coder_for_flags",
    "get_entropy_coder",
    "register_entropy_coder",
]

DEFAULT_ENTROPY_CODER = "huffman"
"""The coder every container without coder flag bits decodes through —
also the ``SZConfig.entropy_coder`` default."""


@dataclass(frozen=True)
class EntropyPayload:
    """What an :class:`EntropyCoder` hands the container layer.

    Exactly one layout is populated: ``codec`` + ``stream`` (structured
    Huffman layout) or ``raw`` (opaque).  ``flags`` carries the coder's
    container header flag bits so the decode side can find the coder
    again without a name field in the wire format.
    """

    coder_id: str
    flags: int
    codec: HuffmanCodec | None = None
    stream: EncodedStream | None = None
    raw: bytes | None = None


@runtime_checkable
class EntropyCoder(Protocol):
    """Entropy stage over quantization codes.

    ``encode``/``decode`` must be exact inverses for any in-range code
    array; the table (or model state) needed to invert must round-trip
    through the :class:`EntropyPayload` layout the coder populates.
    """

    @property
    def coder_id(self) -> str:
        """Registry name; the value ``SZConfig.entropy_coder`` takes."""
        ...

    @property
    def flag(self) -> int:
        """Container header flag bits identifying this coder's payload
        (0 = the default Huffman layout)."""
        ...

    def encode(
        self,
        codes: np.ndarray,
        *,
        interval_bits: int,
        block_size: int,
        code_hist: np.ndarray | None = None,
    ) -> EntropyPayload:
        """Encode quantization codes ``0 .. 2^interval_bits - 1``."""
        ...

    def decode(
        self, payload: EntropyPayload, *, expected: int, interval_bits: int
    ) -> np.ndarray:
        """Recover exactly ``expected`` codes from a payload."""
        ...


class HuffmanEntropyCoder:
    """The paper's coder (Section IV-A): blocked canonical Huffman."""

    coder_id = DEFAULT_ENTROPY_CODER
    flag = 0

    def encode(
        self,
        codes: np.ndarray,
        *,
        interval_bits: int,
        block_size: int,
        code_hist: np.ndarray | None = None,
    ) -> EntropyPayload:
        alphabet = 1 << interval_bits
        if code_hist is None:
            code_hist = np.bincount(codes, minlength=alphabet)
        codec = HuffmanCodec.from_frequencies(code_hist)
        # The codec was built from these very codes, so the range /
        # zero-frequency validation scans are redundant here.
        stream = codec.encode(codes, block_size=block_size, validate=False)
        return EntropyPayload(
            self.coder_id, self.flag, codec=codec, stream=stream
        )

    def decode(
        self, payload: EntropyPayload, *, expected: int, interval_bits: int
    ) -> np.ndarray:
        if payload.codec is None or payload.stream is None:
            raise ValueError("huffman payload lost its codec/stream pair")
        return payload.codec.decode(payload.stream)


class ArithmeticEntropyCoder:
    """Adaptive binary range coder (out-of-paper extension).

    Codes are re-centered before coding so the dominant code (the
    interval center) maps to the cheapest symbol: 0 = unpredictable,
    1 = exact hit, then outward (zigzag).
    """

    coder_id = "arithmetic"

    @property
    def flag(self) -> int:
        from repro.core.stream import FLAG_ARITHMETIC

        return int(FLAG_ARITHMETIC)

    def encode(
        self,
        codes: np.ndarray,
        *,
        interval_bits: int,
        block_size: int,
        code_hist: np.ndarray | None = None,
    ) -> EntropyPayload:
        from repro.core.quantizer import interval_radius
        from repro.encoding.arithmetic import encode_symbols
        from repro.encoding.rice import zigzag

        radius = interval_radius(interval_bits)
        mapped = np.where(
            codes == 0,
            0,
            zigzag(codes - radius).astype(np.int64) + 1,
        )
        raw = encode_symbols(mapped, max_bits=interval_bits + 2)
        return EntropyPayload(self.coder_id, self.flag, raw=raw)

    def decode(
        self, payload: EntropyPayload, *, expected: int, interval_bits: int
    ) -> np.ndarray:
        from repro.core.quantizer import interval_radius
        from repro.encoding.arithmetic import decode_symbols
        from repro.encoding.rice import unzigzag

        if payload.raw is None:
            raise ValueError("arithmetic payload lost its byte stream")
        mapped = decode_symbols(
            payload.raw, expected, max_bits=interval_bits + 2
        )
        radius = interval_radius(interval_bits)
        return np.where(
            mapped == 0,
            0,
            unzigzag((mapped - 1).astype(np.uint64)) + radius,
        )


_REGISTRY: dict[str, EntropyCoder] = {}


def register_entropy_coder(
    coder: EntropyCoder, *, replace: bool = False
) -> None:
    """Register ``coder`` under its ``coder_id``.

    Re-registering the same instance is a no-op; replacing a different
    instance under an existing name requires ``replace=True`` (guards
    against two extensions silently fighting over one name).
    """
    name = coder.coder_id
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not coder and not replace:
        raise ValueError(
            f"entropy coder {name!r} is already registered; "
            "pass replace=True to override it"
        )
    _REGISTRY[name] = coder


def get_entropy_coder(name: str) -> EntropyCoder:
    """Look up a registered coder by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown entropy coder {name!r}; "
            f"use one of {available_coders()}"
        ) from None


def available_coders() -> tuple[str, ...]:
    """Registered coder names, sorted — what ``SZConfig`` validates against."""
    return tuple(sorted(_REGISTRY))


def coder_for_flags(flags: int) -> EntropyCoder:
    """The coder whose flag bits are set in a container header.

    Falls back to the :data:`DEFAULT_ENTROPY_CODER` — a header with no
    coder flag bits is the (original) Huffman layout.
    """
    for coder in _REGISTRY.values():
        if coder.flag and flags & coder.flag:
            return coder
    return _REGISTRY[DEFAULT_ENTROPY_CODER]


register_entropy_coder(HuffmanEntropyCoder())
register_entropy_coder(ArithmeticEntropyCoder())
