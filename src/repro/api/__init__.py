"""Canonical public API: one config object, one codec object.

:class:`SZConfig` reifies every pipeline knob into a frozen, validated,
JSON-serializable value object; :class:`Codec` binds one to every access
pattern the library offers (buffer encode/decode in the numcodecs filter
contract, tiled containers, streaming writers/readers, file-to-file
compression).  The historical module-level functions
(:func:`repro.compress`, :func:`repro.compress_tiled`, ...) are thin
shims over these two classes.

>>> from repro.api import Codec, SZConfig
>>> cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4)
>>> codec = Codec(cfg)
"""

from repro.api.codec import Codec, get_codec, register_codec
from repro.api.config import SZConfig

__all__ = ["Codec", "SZConfig", "get_codec", "register_codec"]
