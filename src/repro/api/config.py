"""`SZConfig` — the one reified configuration object of the pipeline.

Every knob the compressor understands is declared here exactly once:
the error-bound request (a validated :class:`~repro.core.bounds.ErrorBound`),
the prediction/quantization parameters, the entropy-coder selection, the
optional lossless post-pass, and the tiled-container geometry.  All
public entry points (:func:`repro.compress`, the tiled writers, the CLI,
the benchmark runner and :class:`repro.api.Codec`) are thin shims over
an ``SZConfig`` — sweeping, serializing or inspecting a configuration
means handling one frozen value object instead of twelve keywords.

Validation happens at construction time: a bad mode, a non-positive
bound, an out-of-range ``interval_bits`` or an unknown entropy coder
raises immediately instead of deep inside the pipeline (or inside a
worker process of a tiled job).

>>> cfg = SZConfig.from_kwargs(mode="rel", bound=1e-4, layers=2)
>>> cfg.replace(bound=1e-3).error_bound.rel_bound
0.001
>>> SZConfig.from_json(cfg.to_json()) == cfg
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.adaptive import DEFAULT_THETA
from repro.core.bounds import ErrorBound
from repro.encoding.coders import DEFAULT_ENTROPY_CODER, available_coders

__all__ = ["SZConfig"]

_MAX_INTERVAL_BITS = 16  # adaptive retry ceiling; mirrors the compressor


def _coerce_error_bound(value: Any) -> ErrorBound:
    """Accept an ErrorBound, a ``(mode, bound)`` pair, or a spec dict."""
    if isinstance(value, ErrorBound):
        return value
    if isinstance(value, dict):
        return ErrorBound.from_dict(value)
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return ErrorBound.from_args(value[0], value[1])
    raise ValueError(
        "error_bound must be an ErrorBound, a (mode, bound) pair or a "
        f"spec dict, got {value!r}"
    )


def _coerce_tile_shape(value: Any) -> int | tuple[int, ...] | None:
    """Normalize a tile-shape request; an int stays an int.

    A bare int means cubic tiles of that extent along *every* axis of
    whatever array is eventually encoded (the codebase-wide ``--tile 64``
    convention), so it cannot be expanded to a tuple here — the
    dimensionality is not known until encode time.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if int(value) != value or value < 1:
            raise ValueError("tile_shape extents must be positive integers")
        return int(value)
    try:
        shape = tuple(int(t) for t in value)
    except TypeError:
        raise ValueError(
            f"tile_shape must be an int, a tuple of ints or None, "
            f"got {value!r}"
        ) from None
    if not shape or any(t < 1 for t in shape):
        raise ValueError("tile_shape extents must be positive")
    return shape


@dataclass(frozen=True)
class SZConfig:
    """Frozen, validated configuration of one SZ-1.4 compression setup.

    Parameters
    ----------
    error_bound
        The accuracy request: an :class:`~repro.core.bounds.ErrorBound`,
        a ``(mode, bound)`` pair such as ``("rel", 1e-4)``, or a spec
        dict (``{"mode": "rel", "bound": 1e-4}``).
    layers
        Prediction layers ``n`` (paper Section III; best value is
        data-dependent, see Table II).
    interval_bits
        ``m``: the quantizer uses ``2^m - 1`` intervals.
    adaptive, theta
        Retry with more intervals while the hitting rate is below
        ``theta`` (automates the paper's Section IV-B advice).
    block_size
        Huffman chunk size — the parallel-decode granularity.
    entropy_coder
        ``"huffman"`` (the paper's coder) or ``"arithmetic"``.
    lossless_post
        Pipe the finished container through the DEFLATE-like codec.
    tile_shape
        Default tile extents for the tiled container paths: a per-axis
        tuple, a bare int (cubic tiles along every axis of the array
        being encoded), or ``None`` for a near-isotropic ~64k-value
        tile picked at write time.
    workers
        Process-pool width for tiled compression.
    sample_fraction, sample_seed, sample_block
        Defaults for the :mod:`repro.tuning` estimator: the fraction of
        the data sampled per estimate, the deterministic sampling seed
        (a fixed seed makes estimates reproducible), and the target
        element count of one sample block (``None`` picks a
        near-isotropic ~4k-value block).  None of these affect the
        compressed bytes — they only steer ``Codec.estimate`` /
        ``repro-sz estimate`` / ``repro-sz tune``.
    """

    error_bound: ErrorBound
    layers: int = 1
    interval_bits: int = 8
    adaptive: bool = False
    theta: float = DEFAULT_THETA
    block_size: int = 4096
    entropy_coder: str = DEFAULT_ENTROPY_CODER
    lossless_post: bool = False
    tile_shape: int | tuple[int, ...] | None = field(default=None)
    workers: int = 1
    sample_fraction: float = 0.02
    sample_seed: int = 0
    sample_block: int | None = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__  # frozen dataclass: bypass for coercion
        set_(self, "error_bound", _coerce_error_bound(self.error_bound))
        set_(self, "tile_shape", _coerce_tile_shape(self.tile_shape))
        set_(self, "layers", int(self.layers))
        set_(self, "interval_bits", int(self.interval_bits))
        set_(self, "block_size", int(self.block_size))
        set_(self, "workers", int(self.workers))
        set_(self, "sample_fraction", float(self.sample_fraction))
        set_(self, "sample_seed", int(self.sample_seed))
        set_(
            self,
            "sample_block",
            None if self.sample_block is None else int(self.sample_block),
        )
        set_(self, "theta", float(self.theta))
        set_(self, "adaptive", bool(self.adaptive))
        set_(self, "lossless_post", bool(self.lossless_post))
        if self.layers < 1:
            raise ValueError(f"layers must be >= 1, got {self.layers}")
        if not 1 <= self.interval_bits <= _MAX_INTERVAL_BITS:
            raise ValueError(
                f"interval_bits must be in [1, {_MAX_INTERVAL_BITS}], "
                f"got {self.interval_bits}"
            )
        if not 0.0 < self.theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {self.theta}")
        if self.block_size < 1:
            raise ValueError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if self.entropy_coder not in available_coders():
            raise ValueError(
                f"unknown entropy coder {self.entropy_coder!r}; "
                f"use one of {available_coders()}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.sample_seed < 0:
            raise ValueError(
                f"sample_seed must be >= 0, got {self.sample_seed}"
            )
        if self.sample_block is not None and self.sample_block < 1:
            raise ValueError(
                f"sample_block must be >= 1 or None, got {self.sample_block}"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_kwargs(
        cls,
        mode: str | None = None,
        bound: float | None = None,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
        **knobs: Any,
    ) -> "SZConfig":
        """Normalize any public keyword spelling into an ``SZConfig``.

        Accepts either the ``mode=``/``bound=`` pair or the legacy
        ``abs_bound=``/``rel_bound=`` pair (mutually exclusive; with
        both legacy bounds the tighter effective one wins), plus any of
        the dataclass knobs.  This is the internal migration path — it
        does *not* emit the deprecation warning the public shims attach
        to the legacy pair.
        """
        spec = ErrorBound.from_args(mode, bound, abs_bound, rel_bound)
        return cls(error_bound=spec, **knobs)

    def replace(self, **changes: Any) -> "SZConfig":
        """A copy with ``changes`` applied — the sweep primitive.

        Besides the dataclass fields, the error bound can be swept
        directly: ``replace(bound=1e-3)`` keeps the current mode,
        ``replace(mode="psnr", bound=60.0)`` switches it.
        """
        if "mode" in changes or "bound" in changes:
            if "error_bound" in changes:
                raise ValueError(
                    "pass either error_bound or mode/bound to replace(), "
                    "not both"
                )
            if (
                self.error_bound.mode == "rel"
                and self.error_bound.abs_bound is not None
            ):
                # A single bound value cannot faithfully rebuild the
                # combined abs+rel pair; silently dropping the abs cap
                # would loosen the guarantee mid-sweep.
                raise ValueError(
                    "this config holds a combined abs+rel bound; pass a "
                    "full error_bound= (ErrorBound.from_args(abs_bound=..., "
                    "rel_bound=...)) instead of mode/bound"
                )
            mode = changes.pop("mode", self.error_bound.mode)
            bound = changes.pop("bound", None)
            if bound is None:
                bound = self.error_bound.param
            changes["error_bound"] = ErrorBound.from_args(mode, bound)
        return dataclasses.replace(self, **changes)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_dict`.

        The error bound is flattened into the top level (``mode`` +
        ``bound``, plus ``abs_bound`` for the combined legacy pair) so
        the result reads like the keyword surface it replaces.
        """
        out: dict[str, Any] = dict(self.error_bound.to_dict())
        out.update(
            layers=self.layers,
            interval_bits=self.interval_bits,
            adaptive=self.adaptive,
            theta=self.theta,
            block_size=self.block_size,
            entropy_coder=self.entropy_coder,
            lossless_post=self.lossless_post,
            tile_shape=(
                list(self.tile_shape)
                if isinstance(self.tile_shape, tuple)
                else self.tile_shape
            ),
            workers=self.workers,
            sample_fraction=self.sample_fraction,
            sample_seed=self.sample_seed,
            sample_block=self.sample_block,
        )
        return out

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "SZConfig":
        """Rebuild from :meth:`to_dict` output (full re-validation).

        Unknown keys raise — a typo'd knob must not silently vanish.
        A numcodecs-style ``id`` key is tolerated and checked.
        """
        if not isinstance(spec, dict):
            raise ValueError(f"config spec must be a dict, got {spec!r}")
        spec = dict(spec)
        codec_id = spec.pop("id", None)
        if codec_id is not None and codec_id != "sz14-repro":
            raise ValueError(f"config is for codec {codec_id!r}, not sz14-repro")
        bound_spec = {
            k: spec.pop(k)
            for k in ("mode", "bound", "abs_bound", "rel_bound")
            if k in spec
        }
        fields = {f.name for f in dataclasses.fields(cls)} - {"error_bound"}
        unknown = set(spec) - fields
        if unknown:
            raise ValueError(
                f"unknown config keys: {sorted(unknown)}; "
                f"valid keys are {sorted(fields)}"
            )
        return cls(error_bound=ErrorBound.from_dict(bound_spec), **spec)

    def to_json(self) -> str:
        """Canonical (sorted-key) JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SZConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- pipeline plumbing -------------------------------------------------

    @property
    def mode(self) -> str:
        """The error-bound mode (``abs``/``rel``/``pw_rel``/``psnr``)."""
        return self.error_bound.mode

    @property
    def bound(self) -> float:
        """The single error-bound parameter of :attr:`mode`."""
        return self.error_bound.param
