"""`Codec` — one object, every access pattern.

A :class:`Codec` binds an :class:`~repro.api.config.SZConfig` to the
whole pipeline: buffer-in/buffer-out ``encode``/``decode`` (the
numcodecs filter contract, so zarr/h5py-style chunk stacks can consume
it), tiled containers (``encode_tiled``/``decode_tiled``/
``decode_region``), streaming writers and readers
(``open_writer``/``open_reader``), and larger-than-RAM file compression
(``encode_file``).

``encode`` accepts any object exporting the buffer protocol — an
``ndarray``, a ``memoryview``, a typed ``array.array`` or an ``mmap``
view — without copying it; ``decode`` likewise reads straight out of the
caller's buffer and can place its output into a caller-provided ``out``
buffer (the zarr chunk-reuse pattern).

>>> import numpy as np
>>> from repro.api import Codec
>>> codec = Codec(mode="rel", bound=1e-4)
>>> data = np.linspace(0, 1, 256, dtype=np.float32).reshape(16, 16)
>>> out = codec.decode(codec.encode(data))
>>> bool(np.max(np.abs(out - data)) <= 1e-4 * (data.max() - data.min()))
True

When the ``numcodecs`` package is installed, the codec is registered
under ``codec_id = "sz14-repro"`` so ``numcodecs.get_codec({"id":
"sz14-repro", ...})`` (and therefore zarr metadata) resolves to it; the
local :func:`get_codec` works identically without the dependency.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.config import SZConfig

if TYPE_CHECKING:
    from repro.chunked.io import ByteAccountant
    from repro.chunked.streams import TiledReader, TiledWriter
    from repro.core.compressor import CompressionStats
    from repro.obs.tracer import Collector

    # The optional numcodecs base class is opaque to the type checker;
    # the adapter only relies on the methods it defines itself.
    _NumcodecsBase = object
    _numcodecs_register: Callable[..., Any] | None = None
else:
    try:  # pragma: no cover - exercised only when numcodecs is installed
        from numcodecs.abc import Codec as _NumcodecsBase
        from numcodecs.registry import register_codec as _numcodecs_register
    except ImportError:  # the adapter is self-contained; numcodecs is optional
        _NumcodecsBase = object
        _numcodecs_register = None

__all__ = ["Codec", "get_codec", "register_codec"]


def _as_float_array(buf: Any) -> np.ndarray:
    """View ``buf`` as an ndarray without copying.

    ``ndarray`` passes through; anything else goes through
    ``memoryview`` so a typed buffer (``memoryview`` of floats,
    ``array.array('f')``, a NumPy-backed ``mmap`` view) keeps its shape
    and dtype.  Raw byte buffers have no element type and are rejected
    by the compressor's dtype check downstream.
    """
    if isinstance(buf, np.ndarray):
        return buf
    return np.asarray(memoryview(buf))


class Codec(_NumcodecsBase):
    """numcodecs-compatible facade over the SZ-1.4 pipeline.

    Construct from an :class:`SZConfig` (or anything coercible to one)
    or directly from the keyword surface::

        Codec(SZConfig.from_kwargs(mode="abs", bound=1e-3))
        Codec(mode="abs", bound=1e-3, layers=2)
        Codec.from_config({"id": "sz14-repro", "mode": "abs", "bound": 1e-3})
    """

    codec_id = "sz14-repro"

    def __init__(
        self,
        config: SZConfig | dict[str, Any] | None = None,
        collector: "Collector | None" = None,
        **kwargs: Any,
    ) -> None:
        if config is not None and kwargs:
            raise ValueError("pass either a config object or keywords, not both")
        if config is None:
            config = SZConfig.from_kwargs(**kwargs)
        elif isinstance(config, dict):
            config = SZConfig.from_dict(config)
        elif not isinstance(config, SZConfig):
            raise ValueError(
                f"config must be an SZConfig or a dict, got {config!r}"
            )
        self.config = config
        #: optional :class:`repro.obs.Collector` activated around every
        #: encode/decode call — runtime state, excluded from equality
        #: and :meth:`get_config` (it is not part of the codec identity).
        self.collector = collector

    def _collecting(self) -> Any:
        """Context manager activating this codec's collector (if any).

        An ambient collector (one already activated by the caller) wins
        implicitly: activation nests, and the innermost active collector
        receives the telemetry.
        """
        return self.collector if self.collector is not None else nullcontext()

    # -- numcodecs contract ------------------------------------------------

    def encode(self, buf: Any) -> bytes:
        """Compress a float32/float64 buffer into container bytes."""
        from repro.core.compressor import compress_array

        with self._collecting():
            blob, _ = compress_array(_as_float_array(buf), self.config)
        return blob

    def encode_with_stats(self, buf: Any) -> tuple[bytes, CompressionStats]:
        """:meth:`encode` plus the :class:`CompressionStats` diagnostics."""
        from repro.core.compressor import compress_array

        with self._collecting():
            return compress_array(_as_float_array(buf), self.config)

    def decode(self, buf: Any, out: Any = None) -> np.ndarray:
        """Decompress container bytes (any buffer-protocol object).

        With ``out`` (a writable ndarray or buffer of matching size) the
        decoded values are placed there and the filled ndarray view is
        returned — no fresh output allocation for the caller to copy
        from, matching the numcodecs ``decode(buf, out=chunk)`` pattern.
        """
        from repro.core.compressor import decompress

        with self._collecting():
            return decompress(buf, out=out, workers=self.config.workers)

    def get_config(self) -> dict[str, Any]:
        """numcodecs-style config dict: ``{"id": codec_id, **knobs}``."""
        return {"id": self.codec_id, **self.config.to_dict()}

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> "Codec":
        """Rebuild a codec from :meth:`get_config` output."""
        return cls(SZConfig.from_dict(config))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Codec) and other.config == self.config

    def __hash__(self) -> int:
        return hash((self.codec_id, self.config.to_json()))

    def __repr__(self) -> str:
        knobs = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.config.to_dict().items())
        )
        return f"Codec({knobs})"

    # -- estimation --------------------------------------------------------

    def estimate(
        self,
        source: Any,
        *,
        fraction: float | None = None,
        seed: int | None = None,
        block_values: int | None = None,
    ) -> Any:
        """Predict what :meth:`encode` would achieve, from a small sample.

        Runs the real quantize+entropy model over a deterministic block
        sample of ``source`` (an array, ``.npy`` path, or container) and
        returns the :class:`repro.tuning.Estimate` — predicted ratio
        with a confidence interval, bit rate and expected quality —
        without compressing the whole input.  ``fraction``/``seed``/
        ``block_values`` override the codec config's sampling knobs
        (``sample_fraction``/``sample_seed``/``sample_block``).
        """
        from repro.tuning import estimate as _estimate

        with self._collecting():
            return _estimate(
                source,
                self.config,
                fraction=fraction,
                seed=seed,
                block_values=block_values,
            )

    # -- tiled / streaming access -----------------------------------------

    def encode_tiled(
        self,
        data: np.ndarray,
        tile_shape: int | tuple[int, ...] | None = None,
        out: Any = None,
    ) -> bytes | None:
        """Compress into a tiled (block-indexed) container.

        ``tile_shape`` falls back to ``config.tile_shape``; with ``out``
        (a path or binary handle) the container is written there.
        """
        from repro.chunked.tiled import compress_tiled

        with self._collecting():
            return compress_tiled(
                data,
                tile_shape=tile_shape if tile_shape is not None
                else self.config.tile_shape,
                out=out,
                config=self.config,
            )

    def decode_tiled(self, src: Any) -> np.ndarray:
        """Decompress a tiled container (bytes, path or handle)."""
        from repro.chunked.tiled import decompress_tiled

        with self._collecting():
            return decompress_tiled(src)

    def decode_region(
        self, src: Any, region: Any, accountant: ByteAccountant | None = None
    ) -> np.ndarray:
        """Decode only the tiles of ``src`` intersecting ``region``."""
        from repro.chunked.tiled import decompress_region

        with self._collecting():
            return decompress_region(src, region, accountant=accountant)

    def open_writer(
        self,
        dest: Any,
        shape: tuple[int, ...],
        dtype: Any = np.float32,
        tile_shape: int | tuple[int, ...] | None = None,
    ) -> "TiledWriter":
        """Streaming tile writer bound to this codec's configuration."""
        from repro.chunked.streams import TiledWriter

        return TiledWriter(
            dest,
            shape,
            tile_shape if tile_shape is not None else self.config.tile_shape,
            dtype=dtype,
            config=self.config,
        )

    def open_reader(
        self, src: Any, accountant: ByteAccountant | None = None
    ) -> "TiledReader":
        """Random-access reader over a tiled container."""
        from repro.chunked.streams import TiledReader

        return TiledReader(src, accountant=accountant)

    def encode_file(
        self,
        npy_path: Any,
        out: Any,
        tile_shape: int | tuple[int, ...] | None = None,
    ) -> dict[str, Any]:
        """Compress an ``.npy`` file slab by slab (larger-than-RAM safe)."""
        from repro.chunked.tiled import compress_file_tiled

        with self._collecting():
            return compress_file_tiled(
                npy_path,
                out,
                tile_shape=tile_shape if tile_shape is not None
                else self.config.tile_shape,
                config=self.config,
            )


_REGISTRY: dict[str, type[Codec]] = {}


def register_codec(cls: type[Codec], codec_id: str | None = None) -> None:
    """Register a codec class for :func:`get_codec` lookup.

    When numcodecs is installed the class is registered there too, so
    zarr's own ``get_codec`` resolves the same id.
    """
    _REGISTRY[codec_id or cls.codec_id] = cls
    if _numcodecs_register is not None:  # pragma: no cover - optional dep
        _numcodecs_register(cls, codec_id)


def get_codec(config: dict[str, Any]) -> "Codec":
    """numcodecs-style factory: ``get_codec({"id": "sz14-repro", ...})``."""
    if not isinstance(config, dict):
        raise ValueError(f"codec config must be a dict, got {config!r}")
    codec_id = config.get("id")
    if codec_id not in _REGISTRY:
        raise ValueError(
            f"unknown codec id {codec_id!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[codec_id].from_config(config)


register_codec(Codec)
