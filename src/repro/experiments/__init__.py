"""Experiment runners: one module per table/figure of the paper (§V-§VI).

Use :func:`repro.experiments.registry.run_experiment` or the ``repro-sz``
CLI.  Every runner returns a :class:`repro.experiments.common.Table`
whose rows mirror the paper's rows/series.
"""

from repro.experiments.common import Table
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "Table", "run_experiment"]
