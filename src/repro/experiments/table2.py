"""Table II: prediction hitting rate per layer, original vs decompressed.

The paper's pivotal observation: predicting from *original* values favors
2 layers (R_PH 37.5% on ATM), but compression must predict from
*preceding decompressed* values, whose in-loop error feedback punishes
larger stencils (bigger coefficient mass amplifies the noise) — 1 layer
wins (19.2% vs 6.5%).  Hence the compressor's default n=1.

"Hitting" here is the paper's definition: ``|x - f(x)| <= eb`` — the
center interval only, not the full quantization range.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import predict_from_original
from repro.core.wavefront import WavefrontPlan, wavefront_compress
from repro.datasets import load
from repro.experiments.common import Table

__all__ = ["run"]


def hitting_rate_original(data: np.ndarray, n: int, eb: float) -> float:
    pred = predict_from_original(data, n)
    hits = np.abs(data.astype(np.float64) - pred) <= eb
    return float(hits.mean())


def hitting_rate_decompressed(data: np.ndarray, n: int, eb: float) -> float:
    # radius=1 keeps only the center interval: a "hit" means the
    # prediction itself lands within eb, exactly the paper's definition.
    plan = WavefrontPlan(data.shape, n)
    result = wavefront_compress(data, eb, plan, radius=1)
    return result.hit_rate


# The interesting regime sits where the 1-layer truncation error
# straddles eb; it tightens as the grid gets finer (smoother at grid
# scale), so the default bound tracks the scale.
_DEFAULT_BOUNDS = {"tiny": 1e-3, "small": 3e-5, "paper": 1e-5}


def run(scale: str = "small", rel_bound: float | None = None, seed: int = 0) -> Table:
    # PHIS-like: smooth at grid scale, the regime of the paper's
    # oversampled 1800x3600 ATM fields where the inversion shows.
    if rel_bound is None:
        rel_bound = _DEFAULT_BOUNDS.get(scale, 3e-5)
    data = load("ATM", scale=scale, seed=seed)["PHIS"]
    eb = rel_bound * float(data.max() - data.min())
    table = Table(
        "Table II: prediction hitting rate by layer (ATM-like PHIS, "
        f"eb_rel={rel_bound:g})"
    )
    for n in (1, 2, 3, 4):
        table.add(
            layer=f"{n}-Layer",
            R_PH_orig=f"{100 * hitting_rate_original(data, n, eb):.1f}%",
            R_PH_decomp=f"{100 * hitting_rate_decompressed(data, n, eb):.1f}%",
        )
    table.note(
        "paper (ATM): orig 21.5/37.5/25.8/14.5%, decomp 19.2/6.5/9.8/5.9% — "
        "expect orig to peak at n>=2 while decomp peaks at n=1"
    )
    return table
