"""Table V: maximum compression errors (normalized) — SZ-1.4 vs ZFP.

SZ-1.4 realizes max error exactly at the user bound (its quantization
intervals are sized by it); ZFP is over-conservative, realizing a small
fraction of the bound (paper: e.g. user 1e-3 -> ZFP 4.3e-4 on ATM).
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments.common import Table, run_sz14, run_zfp_accuracy

__all__ = ["run", "zfp_realized_errors"]

USER_BOUNDS = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6)
PANELS = {"ATM": "FREQSH", "Hurricane": "U"}


def zfp_realized_errors(scale: str = "small", seed: int = 0) -> dict:
    """{(dataset, user_eb): zfp max rel error} — feeds Fig. 7 / Table IV."""
    out = {}
    for dataset, variable in PANELS.items():
        data = load(dataset, scale=scale, seed=seed)[variable]
        for eb in USER_BOUNDS:
            res = run_zfp_accuracy(data, rel_bound=eb)
            out[(dataset, eb)] = res.max_rel
    return out


def run(scale: str = "small", seed: int = 0) -> Table:
    table = Table(
        "Table V: max compression error (normalized to value range) per "
        "user-set eb_rel"
    )
    for dataset, variable in PANELS.items():
        data = load(dataset, scale=scale, seed=seed)[variable]
        for eb in USER_BOUNDS:
            sz = run_sz14(data, rel_bound=eb)
            zf = run_zfp_accuracy(data, rel_bound=eb)
            table.add(
                panel=dataset,
                user_eb=f"{eb:.0e}",
                sz14_max_rel=f"{sz.max_rel:.2e}",
                zfp_max_rel=f"{zf.max_rel:.2e}",
                zfp_over_conservatism=f"{zf.max_rel / eb:.2f}x",
            )
    table.note(
        "paper: SZ-1.4 realizes exactly the bound; ZFP realizes 0.18-0.43x "
        "of it (ATM 1e-3 -> 4.3e-4, hurricane 1e-3 -> 1.8e-4)"
    )
    return table
