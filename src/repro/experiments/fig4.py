"""Figure 4: prediction hitting rate vs error bound per interval count.

Reproduces both panels: (a) 2-D ATM-like with 15..4095 intervals and
(b) 3-D hurricane-like with 63..65535 intervals.  The signature shape: a
plateau above 90% that collapses once the bound is too tight for the
interval count, with larger interval counts pushing the collapse to
tighter bounds.
"""

from __future__ import annotations

from repro.core import compress_with_stats
from repro.datasets import load
from repro.experiments.common import Table

__all__ = ["run"]

ERROR_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8)
PANELS = {
    "ATM": ("FREQSH", (4, 6, 8, 11, 12)),        # 15..4095 intervals
    "Hurricane": ("U", (6, 9, 12, 14, 16)),       # 63..65535 intervals
}


def run(scale: str = "small", seed: int = 0) -> Table:
    table = Table("Figure 4: hitting rate vs eb_rel per interval count")
    for dataset, (variable, interval_bits) in PANELS.items():
        data = load(dataset, scale=scale, seed=seed)[variable]
        for m in interval_bits:
            row = {"panel": dataset, "intervals": (1 << m) - 1}
            for eb in ERROR_BOUNDS:
                _, stats = compress_with_stats(
                    data, mode="rel", bound=eb, interval_bits=m
                )
                row[f"eb {eb:.0e}"] = f"{stats.hit_rate:.1%}"
            table.add(**row)
    table.note(
        "paper shape: >90% plateau then sharp collapse; more intervals "
        "cover tighter bounds (e.g. 511 intervals drop 97.1%->41.4% at 1e-6)"
    )
    return table
