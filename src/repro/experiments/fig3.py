"""Figure 3: distribution of error-controlled quantization codes.

255 intervals (m=8) on ATM-like data: at eb_rel 1e-3 the distribution
spikes hard at the center code (~45% in the paper's (a) panel); at 1e-4
it spreads (~12% peak, panel (b)).  The uneven distribution is what makes
the variable-length encoding pay off.
"""

from __future__ import annotations

import numpy as np

from repro.core import compress_with_stats
from repro.datasets import load
from repro.experiments.common import Table

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0, spread: int = 8) -> Table:
    data = load("ATM", scale=scale, seed=seed)["FREQSH"]
    table = Table(
        "Figure 3: quantization-code distribution (255 intervals, m=8, "
        "ATM-like FREQSH)"
    )
    for eb_rel in (1e-3, 1e-4):
        _, stats = compress_with_stats(data, mode="rel", bound=eb_rel, interval_bits=8)
        hist = stats.code_histogram.astype(np.float64)
        shares = hist / hist.sum()
        center = 128
        row = {"eb_rel": f"{eb_rel:.0e}", "peak_share": f"{shares.max():.1%}"}
        for code in range(center - spread, center + spread + 1):
            row[f"c{code}"] = f"{shares[code]:.2%}"
        row["unpred(c0)"] = f"{shares[0]:.2%}"
        table.add(**row)
    table.note(
        "paper: peak ~45% at eb 1e-3, ~12% at 1e-4, both centered on code "
        "128 with near-symmetric decay"
    )
    return table
