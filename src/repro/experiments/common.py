"""Shared experiment machinery: result tables, compressor suite, runners."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    FPZIPLike,
    GzipLike,
    ISABELA,
    ISABELAFailure,
    SZ11,
    ZFPLike,
)
from repro.core import compress_with_stats, decompress
from repro.metrics import (
    max_abs_error,
    max_rel_error,
    nrmse,
    pearson,
    psnr,
)

__all__ = [
    "Table",
    "CompressorResult",
    "run_sz14",
    "run_zfp_accuracy",
    "run_zfp_rate",
    "run_sz11",
    "run_isabela",
    "run_fpzip",
    "run_gzip",
    "LOSSY_ERROR_BOUNDS",
]

LOSSY_ERROR_BOUNDS = (1e-3, 1e-4, 1e-5, 1e-6)
"""The paper's value-range-based relative error bound sweep (Fig. 6)."""


@dataclass
class Table:
    """A printable result table mirroring one paper artifact."""

    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        return [r.get(name) for r in self.rows]

    def __str__(self) -> str:
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        cols = list(dict.fromkeys(k for r in self.rows for k in r))
        fmt_rows = [
            [_fmt(r.get(c)) for c in cols] for r in self.rows
        ]
        widths = [
            max(len(c), *(len(fr[i]) for fr in fmt_rows)) for i, c in enumerate(cols)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for fr in fmt_rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(fr, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


@dataclass
class CompressorResult:
    """Uniform record of one (compressor, data, bound) run."""

    name: str
    cf: float
    bit_rate: float
    max_abs: float
    max_rel: float
    nrmse: float
    psnr: float
    rho: float
    comp_mb_s: float
    decomp_mb_s: float
    failed: bool = False
    reason: str = ""


def _finish(name, data, blob, out, t_comp, t_dec) -> CompressorResult:
    return CompressorResult(
        name=name,
        cf=data.nbytes / len(blob),
        bit_rate=8.0 * len(blob) / data.size,
        max_abs=max_abs_error(data, out),
        max_rel=max_rel_error(data, out),
        nrmse=nrmse(data, out),
        psnr=psnr(data, out),
        rho=pearson(data, out),
        comp_mb_s=data.nbytes / 1e6 / t_comp,
        decomp_mb_s=data.nbytes / 1e6 / t_dec,
    )


def _failed(name, reason) -> CompressorResult:
    return CompressorResult(
        name, np.nan, np.nan, np.nan, np.nan, np.nan, np.nan, np.nan,
        np.nan, np.nan, failed=True, reason=reason,
    )


def run_sz14(data: np.ndarray, rel_bound: float | None = None,
             abs_bound: float | None = None, **kw) -> CompressorResult:
    from repro.api import SZConfig

    config = SZConfig.from_kwargs(
        abs_bound=abs_bound, rel_bound=rel_bound, **kw
    )
    t0 = time.perf_counter()
    blob, _ = compress_with_stats(data, config=config)
    t1 = time.perf_counter()
    out = decompress(blob)
    t2 = time.perf_counter()
    return _finish("SZ-1.4", data, blob, out, t1 - t0, t2 - t1)


def run_zfp_accuracy(data: np.ndarray, rel_bound: float | None = None,
                     abs_bound: float | None = None) -> CompressorResult:
    tol = abs_bound
    if tol is None:
        tol = rel_bound * float(data.max() - data.min())
    z = ZFPLike(mode="accuracy", tolerance=tol)
    t0 = time.perf_counter()
    blob = z.compress(data)
    t1 = time.perf_counter()
    out = z.decompress(blob)
    t2 = time.perf_counter()
    return _finish("ZFP-like", data, blob, out, t1 - t0, t2 - t1)


def run_zfp_rate(data: np.ndarray, rate: float) -> CompressorResult:
    z = ZFPLike(mode="rate", rate=rate)
    t0 = time.perf_counter()
    blob = z.compress(data)
    t1 = time.perf_counter()
    out = z.decompress(blob)
    t2 = time.perf_counter()
    return _finish("ZFP-like", data, blob, out, t1 - t0, t2 - t1)


def run_sz11(data: np.ndarray, rel_bound: float | None = None,
             abs_bound: float | None = None) -> CompressorResult:
    sz = SZ11(abs_bound=abs_bound, rel_bound=rel_bound)
    t0 = time.perf_counter()
    blob = sz.compress(data)
    t1 = time.perf_counter()
    out = sz.decompress(blob)
    t2 = time.perf_counter()
    return _finish("SZ-1.1", data, blob, out, t1 - t0, t2 - t1)


def run_isabela(data: np.ndarray, rel_bound: float | None = None,
                abs_bound: float | None = None) -> CompressorResult:
    isa = ISABELA(abs_bound=abs_bound, rel_bound=rel_bound)
    try:
        t0 = time.perf_counter()
        blob = isa.compress(data)
        t1 = time.perf_counter()
        out = isa.decompress(blob)
        t2 = time.perf_counter()
    except ISABELAFailure as exc:
        return _failed("ISABELA", str(exc))
    return _finish("ISABELA", data, blob, out, t1 - t0, t2 - t1)


def run_fpzip(data: np.ndarray, **_ignored) -> CompressorResult:
    f = FPZIPLike()
    t0 = time.perf_counter()
    blob = f.compress(data)
    t1 = time.perf_counter()
    out = f.decompress(blob)
    t2 = time.perf_counter()
    return _finish("FPZIP-like", data, blob, out, t1 - t0, t2 - t1)


def run_gzip(data: np.ndarray, **_ignored) -> CompressorResult:
    g = GzipLike()
    t0 = time.perf_counter()
    blob = g.compress(data)
    t1 = time.perf_counter()
    out = g.decompress(blob)
    t2 = time.perf_counter()
    return _finish("GZIP-like", data, blob, out, t1 - t0, t2 - t1)
