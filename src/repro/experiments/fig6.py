"""Figure 6: compression factors of all six compressors per data set.

The paper's headline chart: SZ-1.4 beats everything at every reasonable
bound; at eb_rel=1e-4 on ATM the paper reports SZ-1.4 6.3 vs ZFP 3.0,
SZ-1.1 3.8, ISABELA 1.4, FPZIP 1.9, GZIP 1.3 (and 21.3 vs 8.0/8.9/1.2/
2.4/1.3 on hurricane).  Lossless baselines are bound-independent and run
once per data set; ISABELA rows show '-' after it fails, as in the paper
("we plot its compression factors only until it fails").
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load
from repro.experiments.common import (
    LOSSY_ERROR_BOUNDS,
    Table,
    run_fpzip,
    run_gzip,
    run_isabela,
    run_sz11,
    run_sz14,
    run_zfp_accuracy,
)

__all__ = ["run", "PANEL_VARIABLES"]

PANEL_VARIABLES = {"ATM": "FREQSH", "APS": "frame0", "Hurricane": "U"}

_LOSSY = (
    ("SZ-1.4", run_sz14),
    ("ZFP-like", run_zfp_accuracy),
    ("SZ-1.1", run_sz11),
    ("ISABELA", run_isabela),
)
_LOSSLESS = (("FPZIP-like", run_fpzip), ("GZIP-like", run_gzip))


def run(
    scale: str = "small",
    seed: int = 0,
    bounds: tuple = LOSSY_ERROR_BOUNDS,
    datasets: tuple = ("ATM", "APS", "Hurricane"),
) -> Table:
    table = Table("Figure 6: compression factor vs eb_rel, all compressors")
    for dataset in datasets:
        data = load(dataset, scale=scale, seed=seed)[PANEL_VARIABLES[dataset]]
        for name, runner in _LOSSY:
            row = {"panel": dataset, "compressor": name}
            for eb in bounds:
                res = runner(data, rel_bound=eb)
                row[f"eb {eb:.0e}"] = None if res.failed else round(res.cf, 2)
            table.add(**row)
        for name, runner in _LOSSLESS:
            res = runner(data)
            row = {"panel": dataset, "compressor": name}
            for eb in bounds:
                row[f"eb {eb:.0e}"] = round(res.cf, 2)
            table.add(**row)
    table.note(
        "paper @1e-4: ATM 6.3/3.0/3.8/1.4 (+FPZIP 1.9, GZIP 1.3); "
        "hurricane 21.3/8.0/8.9/1.2 (+2.4, 1.3) — SZ-1.4 should lead "
        "every column, ISABELA '-' where it fails"
    )
    return table


def best_competitor_gap(table: Table, eb_label: str) -> float:
    """SZ-1.4 CF divided by the best non-SZ-1.4 CF at one bound."""
    sz = [
        r[eb_label]
        for r in table.rows
        if r["compressor"] == "SZ-1.4" and r[eb_label]
    ]
    others = [
        r[eb_label]
        for r in table.rows
        if r["compressor"] != "SZ-1.4" and r[eb_label]
    ]
    return float(np.mean(sz) / max(others)) if sz and others else float("nan")
