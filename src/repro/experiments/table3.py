"""Table III: description of the data sets used in the evaluation."""

from __future__ import annotations

from repro.datasets import describe_datasets
from repro.experiments.common import Table

__all__ = ["run"]


def run(scale: str = "small", **_unused) -> Table:
    table = Table("Table III: data sets (synthetic stand-ins, see DESIGN.md)")
    for row in describe_datasets(scale=scale):
        table.add(**row)
    table.note(
        "paper data (2.6TB ATM / 40GB APS / 1.2GB hurricane) replaced by "
        "seeded generators with matching structure; shapes scale with --scale"
    )
    return table
