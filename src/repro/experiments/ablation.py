"""Ablation studies for the design choices DESIGN.md calls out.

Not paper artifacts, but each isolates one decision of the SZ-1.4 design:

* ``layers`` — why n=1 is the default (Section III-B beyond Table II:
  the full end-to-end CF per layer count).
* ``intervals`` — the cost/benefit of the interval count (Section IV-B):
  CF and hitting rate per m at two bounds.
* ``entropy`` — what the variable-length stage buys over raw m-bit codes
  (Section IV-A's "reduced significantly after variable-length encoding"),
  plus the arithmetic-coder extension and the lossless post-pass.
* ``quantization`` — error-controlled uniform quantization vs
  NUMARCK-style vector quantization: CF *and* whether the bound held
  (the paper's central argument against [6]/[16]).
* ``tiles`` — what block-indexed tiling (the v2 container) costs and
  buys: CF loss from shorter prediction contexts and per-tile Huffman
  tables vs. the fraction of the file a small region read touches.
* ``modes`` — what each error-bound mode costs at a comparable accuracy
  request: abs/rel/pw_rel/psnr CF on fields with narrow and wide value
  distributions, with every guarantee machine-checked via
  ``metrics.verify_bound``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import NumarckLike
from repro.core import compress_with_stats, decompress
from repro.datasets import load
from repro.experiments.common import Table
from repro.metrics import max_rel_error, verify_bound

__all__ = [
    "run_layers",
    "run_intervals",
    "run_entropy",
    "run_quantization",
    "run_tiles",
    "run_modes",
    "ABLATIONS",
]


def run_layers(scale: str = "small", seed: int = 0, rel_bound: float = 1e-4) -> Table:
    table = Table(f"Ablation: prediction layers (eb_rel={rel_bound:g})")
    for dataset, variable in (("ATM", "FREQSH"), ("ATM", "PHIS"), ("Hurricane", "U")):
        data = load(dataset, scale=scale, seed=seed)[variable]
        for n in (1, 2, 3, 4):
            blob, stats = compress_with_stats(data, mode="rel", bound=rel_bound, layers=n)
            out = decompress(blob)
            assert max_rel_error(data, out) <= rel_bound
            table.add(
                panel=f"{dataset}/{variable}",
                layers=n,
                cf=round(stats.compression_factor, 2),
                hit_rate=f"{stats.hit_rate:.1%}",
            )
    table.note("n=1 should win end-to-end on most data (paper default)")
    return table


def run_intervals(scale: str = "small", seed: int = 0) -> Table:
    table = Table("Ablation: quantization interval count (2^m - 1)")
    data = load("ATM", scale=scale, seed=seed)["FREQSH"]
    for rel_bound in (1e-3, 1e-5):
        for m in (4, 6, 8, 10, 12, 14, 16):
            blob, stats = compress_with_stats(
                data, mode="rel", bound=rel_bound, interval_bits=m
            )
            table.add(
                eb_rel=f"{rel_bound:.0e}",
                m=m,
                intervals=(1 << m) - 1,
                cf=round(stats.compression_factor, 2),
                hit_rate=f"{stats.hit_rate:.1%}",
            )
    table.note(
        "smallest m with a high hitting rate maximizes CF (Sec. IV-B); "
        "oversized m wastes code bits, undersized m floods the "
        "unpredictable path"
    )
    return table


def run_entropy(scale: str = "small", seed: int = 0, rel_bound: float = 1e-4) -> Table:
    table = Table(f"Ablation: entropy stage (eb_rel={rel_bound:g})")
    data = load("ATM", scale=scale, seed=seed)["FREQSH"]
    # raw m-bit packing baseline: quantization codes stored flat
    blob_h, stats_h = compress_with_stats(data, mode="rel", bound=rel_bound)
    m = stats_h.interval_bits
    raw_bits = data.size * m  # codes at m bits each, no entropy coding
    unpred_share = stats_h.n_unpredictable / data.size
    table.add(
        stage="raw m-bit codes (no entropy coding)",
        bytes=int(raw_bits / 8),
        cf=round(data.nbytes / (raw_bits / 8), 2),
    )
    table.add(
        stage="Huffman (paper AEQVE)",
        bytes=stats_h.compressed_bytes,
        cf=round(stats_h.compression_factor, 2),
    )
    blob_a, stats_a = compress_with_stats(
        data, mode="rel", bound=rel_bound, entropy_coder="arithmetic"
    )
    table.add(
        stage="arithmetic coder (extension)",
        bytes=stats_a.compressed_bytes,
        cf=round(stats_a.compression_factor, 2),
    )
    blob_p, stats_p = compress_with_stats(
        data, mode="rel", bound=rel_bound, lossless_post=True
    )
    table.add(
        stage="Huffman + DEFLATE post-pass",
        bytes=stats_p.compressed_bytes,
        cf=round(stats_p.compression_factor, 2),
    )
    table.note(
        f"hit rate {stats_h.hit_rate:.1%}, unpredictable share "
        f"{unpred_share:.2%}; variable-length coding is what turns the "
        "skewed code distribution (Fig. 3) into compression"
    )
    return table


def run_quantization(scale: str = "small", seed: int = 0, rel_bound: float = 1e-3) -> Table:
    table = Table(
        f"Ablation: error-controlled vs vector quantization (eb_rel={rel_bound:g})"
    )
    data = load("ATM", scale=scale, seed=seed)["FREQSH"]
    blob, stats = compress_with_stats(data, mode="rel", bound=rel_bound)
    out = decompress(blob)
    table.add(
        scheme="SZ-1.4 error-controlled (uniform intervals)",
        cf=round(stats.compression_factor, 2),
        max_rel_err=f"{max_rel_error(data, out):.2e}",
        bound_held=bool(max_rel_error(data, out) <= rel_bound),
    )
    for bits in (6, 8, 10):
        nmk = NumarckLike(bits=bits)
        nblob = nmk.compress(data)
        nout = nmk.decompress(nblob)
        err = max_rel_error(data, nout)
        table.add(
            scheme=f"NUMARCK-like vector quantization ({1 << bits} bins)",
            cf=round(data.nbytes / len(nblob), 2),
            max_rel_err=f"{err:.2e}",
            bound_held=bool(err <= rel_bound),
        )
    table.note(
        "vector quantization reaches similar CF but cannot bound the "
        "point-wise error (paper Sections I and IV-A)"
    )
    return table


def run_tiles(scale: str = "small", seed: int = 0, rel_bound: float = 1e-4) -> Table:
    from repro.chunked import (
        ByteAccountant,
        compress_tiled,
        decompress_region,
        tiled_container_info,
    )
    from repro.metrics import tile_ratio_stats

    table = Table(f"Ablation: tile size (eb_rel={rel_bound:g})")
    data = load("Hurricane", scale=scale, seed=seed)["U"]
    blob_whole, stats_whole = compress_with_stats(data, mode="rel", bound=rel_bound)
    table.add(
        tiling="whole array (v1)",
        tiles=1,
        cf=round(stats_whole.compression_factor, 2),
        cf_std="-",
        roi_read="100.0%",
    )
    # A small centered region: the random-access payoff being measured.
    roi = tuple(slice(s // 3, s // 3 + max(1, s // 6)) for s in data.shape)
    for side in (8, 16, 32):
        tile = tuple(min(side, s) for s in data.shape)
        blob = compress_tiled(data, tile_shape=tile, mode="rel", bound=rel_bound)
        info = tiled_container_info(blob)
        stats = tile_ratio_stats(
            info["tile_bytes"], info["tile_values"], data.dtype.itemsize
        )
        acc = ByteAccountant()
        region = decompress_region(blob, roi, accountant=acc)
        assert region.shape == tuple(sl.stop - sl.start for sl in roi)
        table.add(
            tiling=f"{'x'.join(str(t) for t in tile)} tiles",
            tiles=info["n_tiles"],
            cf=round(info["compression_factor"], 2),
            cf_std=round(stats["cf_std"], 2),
            roi_read=f"{acc.total_bytes / len(blob):.1%}",
        )
    table.note(
        "small tiles cut the bytes a region read touches but pay for "
        "shorter prediction contexts and per-tile Huffman tables; the "
        "per-tile CF spread (cf_std) is the signal ratio-quality "
        "models exploit"
    )
    return table


def run_modes(scale: str = "small", seed: int = 0, rel: float = 1e-3) -> Table:
    """CF across error-bound modes at a comparable accuracy request.

    ``rel`` anchors the sweep: abs gets ``rel * range``, rel gets
    ``rel``, pw_rel gets ``rel`` (now per point), and psnr gets
    ``20 log10(1/rel)`` dB — the PSNR a just-met range-relative bound
    would produce.  The wide-dynamic-range field is where the modes
    separate: a range-relative bound wipes out the small values a
    pointwise bound preserves.
    """
    table = Table(f"Ablation: error-bound modes (anchor rel={rel:g})")
    rng = np.random.default_rng(seed)
    fields = {
        "ATM/FREQSH": load("ATM", scale=scale, seed=seed)["FREQSH"],
        "wide-range": (
            rng.standard_normal((64, 64))
            * 10.0 ** rng.integers(-6, 6, (64, 64))
        ).astype(np.float32),
    }
    psnr_target = float(20.0 * np.log10(1.0 / rel))
    for panel, data in fields.items():
        value_range = float(data.max() - data.min())
        requests = (
            ("abs", rel * value_range),
            ("rel", rel),
            ("pw_rel", rel),
            ("psnr", psnr_target),
        )
        for mode, bound in requests:
            blob, stats = compress_with_stats(data, mode=mode, bound=bound)
            out = decompress(blob)
            check = verify_bound(data, out, mode, bound)
            table.add(
                panel=panel,
                mode=mode,
                bound=f"{bound:g}",
                cf=round(stats.compression_factor, 2),
                hit_rate=f"{stats.hit_rate:.1%}",
                bound_held=bool(check["ok"]),
            )
    table.note(
        "pw_rel pays for the sign/flag planes and log-domain coding but "
        "is the only mode whose guarantee survives a wide dynamic range; "
        "psnr converts a quality target into the loosest bound that "
        "meets it (verified post-hoc)"
    )
    return table


ABLATIONS = {
    "layers": run_layers,
    "intervals": run_intervals,
    "entropy": run_entropy,
    "quantization": run_quantization,
    "tiles": run_tiles,
    "modes": run_modes,
}
