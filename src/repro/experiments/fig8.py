"""Figure 8: rate-distortion (PSNR vs bit-rate) for the lossy compressors.

ZFP runs in its native fixed-rate mode at integer rates; the error-bounded
compressors sweep bounds and report their realized bit-rates.  The paper's
shape: SZ-1.4 dominates on 2-D (≈14 dB over ZFP at 8 bits/value on ATM,
≈9 dB on APS); on 3-D hurricane ZFP is competitive at ≤2 bits/value and
SZ-1.4 wins above.
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments.common import (
    Table,
    run_isabela,
    run_sz11,
    run_sz14,
    run_zfp_rate,
)
from repro.experiments.fig6 import PANEL_VARIABLES

__all__ = ["run"]

ZFP_RATES = (1, 2, 4, 6, 8, 12, 16)
EB_SWEEP = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7)


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: tuple = ("ATM", "APS", "Hurricane"),
    zfp_rates: tuple = ZFP_RATES,
    eb_sweep: tuple = EB_SWEEP,
) -> Table:
    table = Table("Figure 8: rate-distortion (bit-rate in bits/value, PSNR in dB)")
    for dataset in datasets:
        data = load(dataset, scale=scale, seed=seed)[PANEL_VARIABLES[dataset]]
        for rate in zfp_rates:
            res = run_zfp_rate(data, rate)
            table.add(
                panel=dataset, compressor="ZFP-like",
                bit_rate=round(res.bit_rate, 2), psnr_db=round(res.psnr, 1),
            )
        for runner, name in ((run_sz14, "SZ-1.4"), (run_sz11, "SZ-1.1")):
            for eb in eb_sweep:
                res = runner(data, rel_bound=eb)
                if res.bit_rate > 17:
                    continue  # paper plots only <= 16 bits/value
                table.add(
                    panel=dataset, compressor=name,
                    bit_rate=round(res.bit_rate, 2), psnr_db=round(res.psnr, 1),
                )
        for eb in eb_sweep[:4]:
            res = run_isabela(data, rel_bound=eb)
            if res.failed:
                continue
            table.add(
                panel=dataset, compressor="ISABELA",
                bit_rate=round(res.bit_rate, 2), psnr_db=round(res.psnr, 1),
            )
    table.note(
        "paper @8 bits/value: ATM SZ-1.4 103dB vs ZFP 89dB; APS 96 vs 87; "
        "hurricane 182 vs 171 (ZFP competitive only at ~2 bits/value)"
    )
    return table


def psnr_at_rate(table: Table, panel: str, compressor: str, rate: float) -> float:
    """Interpolated PSNR of one curve at a given bit-rate."""
    import numpy as np

    pts = sorted(
        (r["bit_rate"], r["psnr_db"])
        for r in table.rows
        if r["panel"] == panel and r["compressor"] == compressor
    )
    if not pts:
        return float("nan")
    xs, ys = zip(*pts)
    return float(np.interp(rate, xs, ys))
