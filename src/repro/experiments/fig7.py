"""Figure 7: compression factors at *matched* maximum error.

For fairness to over-conservative ZFP, SZ-1.4 is re-run with its input
bound set to ZFP's realized max error, making both compressors' max
errors equal; SZ-1.4 still wins (paper: +162% on ATM, +71% on hurricane
at the 1e-3-derived point).
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments.common import Table, run_sz14, run_zfp_accuracy
from repro.experiments.table5 import PANELS, USER_BOUNDS

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> Table:
    table = Table("Figure 7: CF at matched max error (SZ-1.4 vs ZFP)")
    for dataset, variable in PANELS.items():
        data = load(dataset, scale=scale, seed=seed)[variable]
        for eb in USER_BOUNDS:
            zf = run_zfp_accuracy(data, rel_bound=eb)
            matched = zf.max_rel
            if matched <= 0:
                continue
            sz = run_sz14(data, rel_bound=matched)
            table.add(
                panel=dataset,
                matched_max_rel=f"{matched:.1e}",
                sz14_cf=round(sz.cf, 2),
                zfp_cf=round(zf.cf, 2),
                sz14_gain=f"{100 * (sz.cf / zf.cf - 1):.0f}%",
            )
    table.note(
        "paper: +162% avg on ATM at matched 4.3e-4, +71% on hurricane at "
        "matched 1.8e-4 — SZ-1.4 should lead at every matched point"
    )
    return table
