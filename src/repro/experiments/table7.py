"""Table VII: strong scalability of parallel compression (1..1024 procs).

Two parts: (a) *measured* process-pool scaling on this machine up to the
local core count; (b) the Blues cluster model extended to 1024 processes,
calibrated on the paper's own per-node contention column (~100 % parallel
efficiency through 128 processes, ~90-96 % beyond — "node internal
limitations").
"""

from __future__ import annotations

import os

from repro.datasets import load
from repro.experiments.common import Table
from repro.parallel import BluesClusterModel
from repro.parallel.pool import measure_pool_scaling

__all__ = ["run", "run_measured"]

_PAPER_EFFICIENCY = {
    1: 1.0, 2: 0.998, 4: 0.999, 8: 0.998, 16: 0.999, 32: 0.997,
    64: 0.999, 128: 0.997, 256: 0.960, 512: 0.904, 1024: 0.909,
}


def run_measured(scale: str = "small", seed: int = 0, mode: str = "comp") -> Table:
    """Measured pool scaling on the local machine."""
    data = load("ATM", scale=scale, seed=seed)["FREQSH"]
    cores = os.cpu_count() or 1
    counts = [p for p in (1, 2, 4, 8, 16, 32) if p <= cores]
    rows = measure_pool_scaling(data, counts, mode="rel", bound=1e-4)
    key = "comp_speed_mb_s" if mode == "comp" else "decomp_speed_mb_s"
    table = Table(f"Table VII (measured, local): parallel {mode} scaling")
    for r in rows:
        table.add(
            processes=r["processes"],
            speed_mb_s=round(r[key], 1),
            speedup=round(r["speedup"], 2),
            efficiency=f"{r['efficiency']:.1%}",
        )
    return table


def run(scale: str = "small", seed: int = 0, measured: bool = False) -> Table:
    table = Table("Table VII: strong scaling of parallel compression (model)")
    model = BluesClusterModel(single_process_gb_s=0.09)
    for row in model.strong_scaling():
        table.add(
            processes=row.processes,
            nodes=row.nodes,
            comp_speed_gb_s=round(row.speed_gb_s, 2),
            speedup=round(row.speedup, 1),
            efficiency=f"{row.efficiency:.1%}",
            paper_efficiency=f"{_PAPER_EFFICIENCY[row.processes]:.1%}",
        )
    table.note(
        "paper: 0.09 GB/s at 1 proc -> 81.3 GB/s at 1024; efficiency ~100% "
        "to 128 procs (<=2/node), ~90-96% beyond"
    )
    if measured:
        table.note("run_measured() adds real local-pool numbers")
    return table
