"""Experiment registry mapping paper artifacts to runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    fig3,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.common import Table

__all__ = ["EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    name: str
    paper_artifact: str
    description: str
    runner: Callable[..., Table]


EXPERIMENTS: dict[str, Experiment] = {
    e.name: e
    for e in [
        Experiment("table2", "Table II",
                   "prediction hitting rate per layer (orig vs decomp)",
                   table2.run),
        Experiment("table3", "Table III", "data set inventory", table3.run),
        Experiment("fig3", "Figure 3",
                   "quantization-code distribution at m=8", fig3.run),
        Experiment("fig4", "Figure 4",
                   "hitting rate vs eb per interval count", fig4.run),
        Experiment("fig6", "Figure 6",
                   "compression factors, all compressors", fig6.run),
        Experiment("fig7", "Figure 7",
                   "CF at matched max error (SZ-1.4 vs ZFP)", fig7.run),
        Experiment("fig8", "Figure 8", "rate-distortion curves", fig8.run),
        Experiment("fig9", "Figure 9",
                   "error autocorrelation, FREQSH/SNOWHLND", fig9.run),
        Experiment("fig10", "Figure 10",
                   "compression+I/O vs initial-I/O time shares", fig10.run),
        Experiment("table4", "Table IV",
                   "Pearson rho at matched max errors", table4.run),
        Experiment("table5", "Table V",
                   "max errors: SZ-1.4 exact vs ZFP conservative", table5.run),
        Experiment("table6", "Table VI",
                   "compression/decompression speed", table6.run),
        Experiment("table7", "Table VII",
                   "parallel compression strong scaling", table7.run),
        Experiment("table8", "Table VIII",
                   "parallel decompression strong scaling", table8.run),
    ]
}


def run_experiment(name: str, scale: str = "small", **kwargs) -> Table:
    """Run a registered experiment by name."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name].runner(scale=scale, **kwargs)
