"""Table VI: compression/decompression speed (MB/s), SZ-1.4 vs ZFP.

Absolute speeds are not comparable to the paper (pure Python vs C on an
iMac), and the *relative* ordering flips: real zfp's C transform is
faster than SZ's pointwise pass, whereas our vectorized wavefront beats
our plane-by-plane ZFP-like coder.  The reproducible shape is
within-compressor: throughput decreases as the bound tightens.
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments.common import (
    LOSSY_ERROR_BOUNDS,
    Table,
    run_sz14,
    run_zfp_accuracy,
)
from repro.experiments.fig6 import PANEL_VARIABLES

__all__ = ["run"]


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: tuple = ("ATM", "APS", "Hurricane"),
) -> Table:
    table = Table("Table VI: compression / decompression speed (MB/s)")
    for dataset in datasets:
        data = load(dataset, scale=scale, seed=seed)[PANEL_VARIABLES[dataset]]
        for eb in LOSSY_ERROR_BOUNDS:
            sz = run_sz14(data, rel_bound=eb)
            zf = run_zfp_accuracy(data, rel_bound=eb)
            table.add(
                panel=dataset,
                eb_rel=f"{eb:.0e}",
                sz14_comp=round(sz.comp_mb_s, 1),
                sz14_decomp=round(sz.decomp_mb_s, 1),
                zfp_comp=round(zf.comp_mb_s, 1),
                zfp_decomp=round(zf.decomp_mb_s, 1),
            )
    table.note(
        "paper (C code, iMac): SZ-1.4 ~46-85 MB/s comp, ZFP ~84-252 MB/s; "
        "speeds fall as eb tightens — that trend is the reproducible shape; "
        "absolute values and the SZ/ZFP ordering are implementation-bound"
    )
    return table
