"""Table IV: Pearson correlation at matched maximum compression errors.

All three lossy compressors are driven to the *same* realized max error
(ZFP's, as in Table V) and compared on rho; the paper finds all reach
"five nines" (>= 0.99999) from the second row down.
"""

from __future__ import annotations

from repro.datasets import load
from repro.experiments.common import Table, run_sz11, run_sz14, run_zfp_accuracy
from repro.experiments.table5 import PANELS, USER_BOUNDS
from repro.metrics.correlation import nines

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> Table:
    table = Table("Table IV: Pearson rho at matched max compression errors")
    for dataset, variable in PANELS.items():
        data = load(dataset, scale=scale, seed=seed)[variable]
        for eb in USER_BOUNDS:
            zf = run_zfp_accuracy(data, rel_bound=eb)
            matched = zf.max_rel
            if matched <= 0:
                continue
            sz14 = run_sz14(data, rel_bound=matched)
            sz11 = run_sz11(data, rel_bound=matched)
            table.add(
                panel=dataset,
                matched_max_rel=f"{matched:.1e}",
                sz14_rho_nines=nines(sz14.rho),
                zfp_rho_nines=nines(zf.rho),
                sz11_rho_nines=nines(sz11.rho),
                five_nines_all=all(
                    nines(r) >= 5 for r in (sz14.rho, zf.rho, sz11.rho)
                ),
            )
    table.note(
        "paper: all three compressors reach >=5 nines from matched error "
        "~4e-4 (ATM) / ~2e-4 (hurricane) downward"
    )
    return table
