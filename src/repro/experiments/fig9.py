"""Figure 9: autocorrelation of compression errors, SZ-1.4 vs ZFP.

Two ATM-like variables at eb_rel=1e-4: FREQSH (low CF ~6.5) where SZ-1.4's
error autocorrelation is tiny (max ~4e-3) and far below ZFP's (~0.25);
SNOWHLND (high CF ~48) where the relation flips (SZ ~0.5 vs ZFP ~0.23) —
the weakness the paper's future work targets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ZFPLike
from repro.core import compress, decompress
from repro.datasets import load
from repro.experiments.common import Table
from repro.metrics import autocorrelation

__all__ = ["run"]

VARIABLES = ("FREQSH", "SNOWHLND")
LAG_SAMPLES = (1, 2, 5, 10, 25, 50, 100)


def error_acf(data: np.ndarray, recon: np.ndarray, max_lag: int = 100) -> np.ndarray:
    err = data.astype(np.float64).ravel() - recon.astype(np.float64).ravel()
    return autocorrelation(err, max_lag)


def run(scale: str = "small", seed: int = 0, rel_bound: float = 1e-4) -> Table:
    table = Table(
        f"Figure 9: error autocorrelation (first 100 lags, eb_rel={rel_bound:g})"
    )
    atm = load("ATM", scale=scale, seed=seed)
    for variable in VARIABLES:
        data = atm[variable]
        eb = rel_bound * float(data.max() - data.min())

        blob = compress(data, mode="abs", bound=eb)
        sz_out = decompress(blob)
        sz_acf = error_acf(data, sz_out)
        sz_cf = data.nbytes / len(blob)

        z = ZFPLike(mode="accuracy", tolerance=eb)
        zblob = z.compress(data)
        zfp_out = z.decompress(zblob)
        zfp_acf = error_acf(data, zfp_out)
        zfp_cf = data.nbytes / len(zblob)

        for name, acf, cf in (
            ("SZ-1.4", sz_acf, sz_cf),
            ("ZFP-like", zfp_acf, zfp_cf),
        ):
            row = {
                "variable": variable,
                "compressor": name,
                "CF": round(cf, 1),
                "max_|acf|": f"{np.abs(acf).max():.2e}",
            }
            for lag in LAG_SAMPLES:
                row[f"lag{lag}"] = f"{acf[lag - 1]:+.3f}"
            table.add(**row)
    table.note(
        "paper: on FREQSH (low CF) SZ max|acf| ~4e-3 << ZFP ~0.25; on "
        "SNOWHLND (high CF) SZ ~0.5 > ZFP ~0.23 — the ordering flips"
    )
    table.note(
        "repro: the low-CF ordering holds at every scale; the high-CF "
        "flip shows at scale=tiny (rougher patches) but not at small — "
        "see EXPERIMENTS.md"
    )
    return table
