"""Table VIII: strong scalability of parallel decompression (1..1024).

Same structure as Table VII with the paper's decompression base speed
(0.20 GB/s single-process -> 187 GB/s at 1024)."""

from __future__ import annotations

from repro.experiments.common import Table
from repro.experiments.table7 import _PAPER_EFFICIENCY, run_measured
from repro.parallel import BluesClusterModel

__all__ = ["run", "run_measured_decomp"]


def run_measured_decomp(scale: str = "small", seed: int = 0) -> Table:
    return run_measured(scale=scale, seed=seed, mode="decomp")


def run(scale: str = "small", seed: int = 0) -> Table:
    table = Table("Table VIII: strong scaling of parallel decompression (model)")
    model = BluesClusterModel(single_process_gb_s=0.20)
    for row in model.strong_scaling():
        table.add(
            processes=row.processes,
            nodes=row.nodes,
            decomp_speed_gb_s=round(row.speed_gb_s, 2),
            speedup=round(row.speedup, 1),
            efficiency=f"{row.efficiency:.1%}",
            paper_efficiency=f"{_PAPER_EFFICIENCY[row.processes]:.1%}",
        )
    table.note("paper: 0.20 GB/s at 1 proc -> 187.0 GB/s at 1024 (91.1%)")
    return table
