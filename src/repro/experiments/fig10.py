"""Figure 10: codec + compressed-I/O time vs initial-data I/O time.

Stacked time shares per process count on the Blues + GPFS model.  The
paper's conclusion: from ~32 processes, writing/reading the *initial*
data costs more than compressing/decompressing plus writing/reading the
*compressed* data, so SZ-1.4 reduces end-to-end I/O time, and the I/O
share keeps growing with scale (filesystem saturation).
"""

from __future__ import annotations

from repro.experiments.common import Table
from repro.parallel import ParallelIOModel

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0, data_gb: float = 2500.0) -> Table:
    table = Table("Figure 10: time shares, compression+I/O vs initial I/O")
    for mode, single in (("write/comp", 0.09), ("read/decomp", 0.20)):
        model = ParallelIOModel()
        for b in model.sweep(data_gb=data_gb, codec_single_gb_s=single):
            codec_s, comp_io_s, init_io_s = b.shares
            table.add(
                mode=mode,
                processes=b.processes,
                codec_share=f"{codec_s:.1%}",
                compressed_io_share=f"{comp_io_s:.1%}",
                initial_io_share=f"{init_io_s:.1%}",
                compression_pays=b.compression_pays_off,
            )
    table.note(
        "paper: crossover at ~32 processes; initial-data I/O share grows "
        "with process count as the shared filesystem saturates"
    )
    return table
