"""SZ-1.4 container format.

Self-describing byte layout::

    magic 'SZRP' (32) | version (8) | dtype code (8) | ndim (8) |
    interval_bits m (8) | layers n (8) | flags (8) |
    shape: ndim x 48 | eb_abs: raw float64 bits (64) |
    value_range: raw float64 bits (64) | unpred_count (48)
    [version 2: mode code (8) | mode param: raw float64 bits (64)]
    [flag CONSTANT: constant value (64), end]
    Huffman length table (self-delimiting)
    -- byte align --
    EncodedStream blob length (48) | EncodedStream bytes
    unpredictable payload length (48) | payload bytes
    [version 2: side payload length (48) | side payload bytes]

Everything needed for decompression is in the container; the caller only
holds bytes.  Version and magic are checked; truncation raises.

Versioning: ``abs``/``rel`` containers are written as version 1 —
byte-identical to every blob this library ever produced, and decoded as
mode ``abs`` (the effective bound is absolute either way).  The
mode-tagged version 2 layout is emitted only for the ``pw_rel`` and
``psnr`` modes, which need the mode code, its parameter, and (for
``pw_rel``) the preconditioning side payload to reconstruct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import CODE_MODES, MODE_CODES, MODED_MODES
from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.huffman import EncodedStream, HuffmanCodec
from repro.perf import stage

__all__ = [
    "Header",
    "write_container",
    "read_container",
    "FLAG_CONSTANT",
    "FLAG_ARITHMETIC",
    "MODE_CODES",
    "MODED_VERSION",
]

MAGIC = 0x535A5250  # 'SZRP'
VERSION = 1
MODED_VERSION = 2  # version 1 + mode tag / param / side payload
FLAG_CONSTANT = 1
FLAG_ARITHMETIC = 2  # quantization codes arithmetic- instead of Huffman-coded

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}

# Mode byte values and the moded-mode set are owned by the bounds module
# so the v1/v2 and tiled container families share one table.
_CODE_MODES = CODE_MODES


@dataclass
class Header:
    dtype: np.dtype
    shape: tuple[int, ...]
    interval_bits: int
    layers: int
    eb_abs: float
    value_range: float
    unpred_count: int
    flags: int = 0
    mode: str = "abs"
    mode_param: float = 0.0
    # A memoryview when parsed from a memoryview container (zero-copy).
    side_payload: bytes | memoryview = b""

    @property
    def is_constant(self) -> bool:
        return bool(self.flags & FLAG_CONSTANT)

    @property
    def is_arithmetic(self) -> bool:
        return bool(self.flags & FLAG_ARITHMETIC)

    @property
    def is_moded(self) -> bool:
        """True when the container needs the mode-tagged v2 layout.

        ``pw_rel``/``psnr`` always — decoding needs the mode.  Constant
        containers opt in whenever the request carried a parameter:
        their resolved ``eb_abs`` can degenerate to 0 (a rel bound on a
        zero-range field), so the tag is the only surviving record of
        the requested mode/bound — which ``info --json`` reports and
        the auto-tuner seeds its search from.
        """
        return self.mode in MODED_MODES or (
            self.is_constant and self.mode_param > 0.0
        )


def _f64_bits(x: float) -> int:
    return int(np.float64(x).view(np.uint64))


def _bits_f64(b: int) -> float:
    return float(np.uint64(b).view(np.float64))


def write_container(
    header: Header,
    codec: HuffmanCodec | None,
    stream: EncodedStream | None,
    unpred_payload: bytes,
    constant_value: float = 0.0,
    arith_payload: bytes | None = None,
) -> bytes:
    with stage("container_write"):
        return _write_container(
            header, codec, stream, unpred_payload, constant_value, arith_payload
        )


def _write_container(
    header: Header,
    codec: HuffmanCodec | None,
    stream: EncodedStream | None,
    unpred_payload: bytes,
    constant_value: float = 0.0,
    arith_payload: bytes | None = None,
) -> bytes:
    moded = header.is_moded
    w = BitWriter()
    w.write(MAGIC, 32)
    w.write(MODED_VERSION if moded else VERSION, 8)
    w.write(_DTYPE_CODES[np.dtype(header.dtype)], 8)
    w.write(len(header.shape), 8)
    w.write(header.interval_bits, 8)
    w.write(header.layers, 8)
    w.write(header.flags, 8)
    for s in header.shape:
        w.write(int(s), 48)
    w.write(_f64_bits(header.eb_abs), 64)
    w.write(_f64_bits(header.value_range), 64)
    w.write(header.unpred_count, 48)
    if moded:
        w.write(MODE_CODES[header.mode], 8)
        w.write(_f64_bits(header.mode_param), 64)
    if header.is_constant:
        w.write(_f64_bits(constant_value), 64)
        return w.getvalue()
    if header.is_arithmetic:
        assert arith_payload is not None
        stream_blob = arith_payload
    else:
        assert codec is not None and stream is not None
        codec.write_table(w)
        stream_blob = stream.to_bytes()
    head = w.getvalue()
    out = bytearray(head)
    out += len(stream_blob).to_bytes(6, "big")
    out += stream_blob
    out += len(unpred_payload).to_bytes(6, "big")
    out += unpred_payload
    if moded:
        out += len(header.side_payload).to_bytes(6, "big")
        out += header.side_payload
    return bytes(out)


def read_container(
    blob: bytes | memoryview,
) -> tuple[
    Header,
    HuffmanCodec | None,
    EncodedStream | None,
    bytes | memoryview,
    float,
    bytes | memoryview,
]:
    """Parse a container.

    Returns ``(header, codec, stream, unpredictable payload, constant,
    arithmetic payload)``; the codec/stream pair and the arithmetic
    payload are mutually exclusive depending on ``header.is_arithmetic``.
    """
    with stage("container_read", nbytes=len(blob)):
        return _read_container(blob)


def _read_container(
    blob: bytes | memoryview,
) -> tuple[
    Header,
    HuffmanCodec | None,
    EncodedStream | None,
    bytes | memoryview,
    float,
    bytes | memoryview,
]:
    r = BitReader(blob)
    try:
        if r.read(32) != MAGIC:
            raise ValueError("not an SZ-1.4 (repro) container: bad magic")
        version = r.read(8)
        if version not in (VERSION, MODED_VERSION):
            raise ValueError(f"unsupported container version {version}")
        dtype_code = r.read(8)
        if dtype_code not in _CODE_DTYPES:
            raise ValueError(f"corrupt container: unknown dtype code {dtype_code}")
        dtype = _CODE_DTYPES[dtype_code]
        ndim = r.read(8)
        if ndim < 1:
            raise ValueError("corrupt container: ndim must be >= 1")
        interval_bits = r.read(8)
        layers = r.read(8)
        flags = r.read(8)
        shape = tuple(r.read(48) for _ in range(ndim))
        if any(s < 1 for s in shape):
            raise ValueError("corrupt container: non-positive extent")
        eb_abs = _bits_f64(r.read(64))
        value_range = _bits_f64(r.read(64))
        unpred_count = r.read(48)
        n_values = 1
        for s in shape:
            n_values *= s
        if unpred_count > n_values:
            raise ValueError(
                f"corrupt container: {unpred_count} unpredictable values "
                f"for {n_values} points"
            )
        mode, mode_param = "abs", 0.0  # untagged v1 blobs decode as abs
        if version == MODED_VERSION:
            mode_code = r.read(8)
            if mode_code not in _CODE_MODES:
                raise ValueError(
                    f"corrupt container: unknown mode code {mode_code}"
                )
            mode = _CODE_MODES[mode_code]
            mode_param = _bits_f64(r.read(64))
        header = Header(
            dtype, shape, interval_bits, layers, eb_abs, value_range,
            unpred_count, flags, mode, mode_param,
        )
        if header.is_constant:
            constant = _bits_f64(r.read(64))
            return header, None, None, b"", constant, b""
        codec = None
        if not header.is_arithmetic:
            codec = HuffmanCodec.read_table(r)
        pos = (r.bitpos + 7) // 8
        stream_len = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        if pos + stream_len > len(blob):
            raise EOFError("truncated container: symbol stream")
        stream = None
        arith: bytes | memoryview = b""
        # Slices of a memoryview input stay zero-copy views; only a
        # bytes input pays the (unavoidable) bytes-slice copy.
        if header.is_arithmetic:
            arith = blob[pos : pos + stream_len]
        else:
            stream = EncodedStream.from_bytes(blob[pos : pos + stream_len])
        pos += stream_len
        unpred_len = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        if pos + unpred_len > len(blob):
            raise EOFError("truncated container: unpredictable payload")
        payload = blob[pos : pos + unpred_len]
        pos += unpred_len
        if version == MODED_VERSION:
            side_len = int.from_bytes(blob[pos : pos + 6], "big")
            pos += 6
            if pos + side_len > len(blob):
                raise EOFError("truncated container: mode side payload")
            header.side_payload = blob[pos : pos + side_len]
        return header, codec, stream, payload, 0.0, arith
    except EOFError as exc:
        raise ValueError(f"truncated SZ-1.4 container: {exc}") from exc
    except (IndexError, KeyError, OverflowError) as exc:
        # Bit-level noise in a corrupted table/stream section must not
        # escape as raw IndexError/KeyError from the decoders.
        raise ValueError(f"corrupt SZ-1.4 container: {exc!r}") from exc
