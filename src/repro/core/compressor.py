"""SZ-1.4 public compression API (paper Algorithm 1, Fig. 5).

Pipeline: multilayer prediction (Section III) → error-controlled
quantization (Section IV-A) → canonical Huffman variable-length encoding
(Section IV-A) → container.  Unpredictable values are stored via
binary-representation analysis.  Both absolute and value-range-based
relative error bounds are supported; when both are given the tighter one
wins (``|e_abs| < eb_abs`` **and** ``|e_rel| < eb_rel``).

>>> import numpy as np
>>> from repro.core import compress, decompress
>>> data = np.sin(np.linspace(0, 20, 10000)).reshape(100, 100).astype(np.float32)
>>> blob = compress(data, rel_bound=1e-4)
>>> out = decompress(blob)
>>> bool(np.max(np.abs(out - data)) <= 1e-4 * (data.max() - data.min()))
True
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptive import DEFAULT_THETA
from repro.core.lossless_post import unwrap, wrap
from repro.core.quantizer import interval_radius, num_intervals
from repro.core.stream import (
    FLAG_ARITHMETIC,
    FLAG_CONSTANT,
    Header,
    read_container,
    write_container,
)
from repro.core.unpredictable import decode_unpredictable, encode_unpredictable
from repro.core.wavefront import (
    WavefrontPlan,
    wavefront_compress,
    wavefront_decompress,
)
from repro.encoding.huffman import HuffmanCodec

__all__ = [
    "CompressionStats",
    "SZ14Compressor",
    "compress",
    "compress_with_stats",
    "container_info",
    "decompress",
]

_MAX_INTERVAL_BITS = 16
_PLAN_CACHE: OrderedDict[tuple, WavefrontPlan] = OrderedDict()
_PLAN_CACHE_MAX = 32
"""LRU bound: a long-lived tiled job cycling through many (tile shape,
layers) pairs must not grow the cache without limit; evicting the least
recently used plan keeps the hot interior-tile shape resident."""


@dataclass
class CompressionStats:
    """Diagnostics from one compression run."""

    eb_abs: float
    value_range: float
    layers: int
    interval_bits: int
    hit_rate: float
    n_unpredictable: int
    original_bytes: int
    compressed_bytes: int
    elapsed_seconds: float
    code_histogram: np.ndarray = field(repr=False, default=None)
    adaptive_attempts: int = 1
    itemsize: int = 4

    @property
    def n_values(self) -> int:
        return self.original_bytes // self.itemsize

    @property
    def compression_factor(self) -> float:
        return self.original_bytes / max(1, self.compressed_bytes)

    @property
    def bit_rate(self) -> float:
        """Amortized bits per value (paper Eq. 6)."""
        return 8.0 * self.compressed_bytes / max(1, self.n_values)


def _resolve_bound(
    data: np.ndarray, abs_bound: float | None, rel_bound: float | None
) -> tuple[float, float]:
    """Effective absolute bound and value range from the user's bounds."""
    finite = data[np.isfinite(data)]
    if finite.size:
        value_range = float(finite.max() - finite.min())
    else:
        value_range = 0.0
    candidates = []
    if abs_bound is not None:
        if abs_bound <= 0:
            raise ValueError("abs_bound must be positive")
        candidates.append(float(abs_bound))
    if rel_bound is not None:
        if rel_bound <= 0:
            raise ValueError("rel_bound must be positive")
        candidates.append(float(rel_bound) * value_range)
    if not candidates:
        raise ValueError("provide abs_bound and/or rel_bound")
    eb = min(candidates)
    return eb, value_range


def _get_plan(shape: tuple[int, ...], layers: int) -> WavefrontPlan:
    key = (shape, layers)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = WavefrontPlan(shape, layers)
        _PLAN_CACHE[key] = plan
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    else:
        _PLAN_CACHE.move_to_end(key)
    return plan


def compress_with_stats(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    layers: int = 1,
    interval_bits: int = 8,
    adaptive: bool = False,
    theta: float = DEFAULT_THETA,
    block_size: int = 4096,
    entropy_coder: str = "huffman",
    lossless_post: bool = False,
) -> tuple[bytes, CompressionStats]:
    """Compress ``data`` and return ``(container bytes, diagnostics)``.

    Parameters
    ----------
    data
        1-, 2- or 3-dimensional (any-d supported) float32/float64 array.
    abs_bound, rel_bound
        Absolute and/or value-range-based relative error bounds.  At least
        one is required; with both, the tighter effective bound is used.
    layers
        Prediction layers ``n`` (paper default 1; best layer is
        data-dependent, see Table II).
    interval_bits
        ``m``: the encoder uses ``2^m - 1`` quantization intervals.
    adaptive
        Retry with more intervals while the hitting rate is below
        ``theta`` (automated form of the paper's Section IV-B advice).
    theta
        Hitting-rate threshold for ``adaptive``.
    block_size
        Huffman chunk size (parallel-decode granularity).
    entropy_coder
        ``"huffman"`` (the paper's variable-length encoder, default) or
        ``"arithmetic"`` — an out-of-paper extension using the adaptive
        range coder (slower; removes Huffman's integer-bit rounding loss).
    lossless_post
        Run the finished container through the DEFLATE-like codec (SZ's
        optional gzip pipe); kept only when it actually shrinks.
    """
    if entropy_coder not in ("huffman", "arithmetic"):
        raise ValueError(f"unknown entropy coder {entropy_coder!r}")
    data = np.asarray(data)
    if data.dtype not in (np.float32, np.float64):
        raise TypeError(f"only float32/float64 supported, got {data.dtype}")
    if data.ndim < 1:
        raise ValueError("scalar input not supported")
    if data.size == 0:
        raise ValueError("empty input not supported")
    t0 = time.perf_counter()
    eb, value_range = _resolve_bound(data, abs_bound, rel_bound)

    if value_range == 0.0 and np.isfinite(data).all():
        # Constant field: a single value describes the array exactly.
        header = Header(
            data.dtype, data.shape, interval_bits, layers, eb, 0.0, 0,
            flags=FLAG_CONSTANT,
        )
        blob = write_container(header, None, None, b"", float(data.flat[0]))
        stats = CompressionStats(
            eb_abs=eb, value_range=0.0, layers=layers,
            interval_bits=interval_bits, hit_rate=1.0, n_unpredictable=0,
            original_bytes=data.nbytes, compressed_bytes=len(blob),
            elapsed_seconds=time.perf_counter() - t0,
            code_histogram=np.zeros(1, dtype=np.int64),
        )
        stats.itemsize = data.dtype.itemsize
        return blob, stats
    if eb == 0.0:
        raise ValueError("resolved error bound is zero (rel bound on constant data?)")

    plan = _get_plan(data.shape, layers)
    attempts = 0
    m = interval_bits
    while True:
        attempts += 1
        radius = interval_radius(m)
        result = wavefront_compress(data, eb, plan, radius)
        if not adaptive or result.hit_rate >= theta or m >= _MAX_INTERVAL_BITS:
            break
        m = min(_MAX_INTERVAL_BITS, m + 2)

    alphabet = 2 * interval_radius(m)  # codes 0 .. 2^m - 1
    unpred_payload, _ = encode_unpredictable(result.unpredictable, eb)
    if entropy_coder == "arithmetic":
        from repro.encoding.arithmetic import encode_symbols
        from repro.encoding.rice import zigzag

        header = Header(
            data.dtype, data.shape, m, layers, eb, value_range,
            result.unpredictable.size, flags=FLAG_ARITHMETIC,
        )
        # Re-center so the dominant code (the interval center) maps to the
        # cheapest symbol: 0 = unpredictable, 1 = exact hit, then outward.
        radius = interval_radius(m)
        mapped = np.where(
            result.codes == 0,
            0,
            zigzag(result.codes - radius).astype(np.int64) + 1,
        )
        arith = encode_symbols(mapped, max_bits=m + 2)
        blob = write_container(header, None, None, unpred_payload,
                               arith_payload=arith)
    else:
        codec = HuffmanCodec.from_symbols(result.codes, alphabet)
        stream = codec.encode(result.codes, block_size=block_size)
        header = Header(
            data.dtype, data.shape, m, layers, eb, value_range,
            result.unpredictable.size,
        )
        blob = write_container(header, codec, stream, unpred_payload)
    if lossless_post:
        blob = wrap(blob)
    stats = CompressionStats(
        eb_abs=eb,
        value_range=value_range,
        layers=layers,
        interval_bits=m,
        hit_rate=result.hit_rate,
        n_unpredictable=result.unpredictable.size,
        original_bytes=data.nbytes,
        compressed_bytes=len(blob),
        elapsed_seconds=time.perf_counter() - t0,
        code_histogram=np.bincount(result.codes, minlength=alphabet),
        adaptive_attempts=attempts,
    )
    stats.itemsize = data.dtype.itemsize
    return blob, stats


def compress(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    layers: int = 1,
    interval_bits: int = 8,
    adaptive: bool = False,
    theta: float = DEFAULT_THETA,
    block_size: int = 4096,
    entropy_coder: str = "huffman",
    lossless_post: bool = False,
) -> bytes:
    """Compress ``data``; see :func:`compress_with_stats` for parameters."""
    blob, _ = compress_with_stats(
        data, abs_bound, rel_bound, layers, interval_bits, adaptive, theta,
        block_size, entropy_coder, lossless_post,
    )
    return blob


def decompress(blob: bytes) -> np.ndarray:
    """Decompress an SZ-1.4 (repro) container back to the full array.

    Accepts plain containers, ``lossless_post``-wrapped containers, and
    both entropy-coder variants — the container is self-describing.
    """
    blob = unwrap(blob)
    header, codec, stream, unpred_payload, constant, arith = read_container(blob)
    if header.is_constant:
        return np.full(header.shape, constant, dtype=header.dtype)
    expected = int(np.prod(header.shape))
    try:
        if header.is_arithmetic:
            from repro.encoding.arithmetic import decode_symbols
            from repro.encoding.rice import unzigzag

            mapped = decode_symbols(
                arith, expected, max_bits=header.interval_bits + 2
            )
            radius = interval_radius(header.interval_bits)
            codes = np.where(
                mapped == 0,
                0,
                unzigzag((mapped - 1).astype(np.uint64)) + radius,
            )
        else:
            codes = codec.decode(stream)
        if codes.size != expected:
            raise ValueError(
                f"corrupt container: {codes.size} codes for {expected} points"
            )
        unpred_recon = decode_unpredictable(
            unpred_payload, header.unpred_count, header.eb_abs, header.dtype
        )
    except EOFError as exc:
        # A corrupted (but length-preserving) payload must fail with the
        # same clean ValueError contract as a truncated container.
        raise ValueError(f"corrupt SZ-1.4 container: {exc}") from exc
    plan = _get_plan(header.shape, header.layers)
    radius = interval_radius(header.interval_bits)
    return wavefront_decompress(
        codes, unpred_recon, plan, header.eb_abs, radius, header.dtype
    )


def container_info(blob: bytes) -> dict:
    """Inspect a container without decompressing it.

    Returns a dict with shape, dtype, bounds, layer/interval settings,
    unpredictable count and the entropy/post-pass variants in use.
    """
    from repro.core.lossless_post import is_wrapped

    wrapped = is_wrapped(blob)
    header = read_container(unwrap(blob))[0]
    return {
        "shape": header.shape,
        "dtype": str(np.dtype(header.dtype)),
        "eb_abs": header.eb_abs,
        "value_range": header.value_range,
        "layers": header.layers,
        "interval_bits": header.interval_bits,
        "n_unpredictable": header.unpred_count,
        "constant": header.is_constant,
        "entropy_coder": "arithmetic" if header.is_arithmetic else "huffman",
        "lossless_post": wrapped,
        "compressed_bytes": len(blob),
    }


class SZ14Compressor:
    """Object-style façade holding default parameters.

    >>> sz = SZ14Compressor(rel_bound=1e-4, layers=1)
    >>> blob = sz.compress(np.zeros((4, 4), dtype=np.float32) + 1)
    >>> sz.decompress(blob).shape
    (4, 4)
    """

    name = "SZ-1.4"

    def __init__(
        self,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
        layers: int = 1,
        interval_bits: int = 8,
        adaptive: bool = False,
        theta: float = DEFAULT_THETA,
        entropy_coder: str = "huffman",
        lossless_post: bool = False,
    ) -> None:
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound
        self.layers = layers
        self.interval_bits = interval_bits
        self.adaptive = adaptive
        self.theta = theta
        self.entropy_coder = entropy_coder
        self.lossless_post = lossless_post

    def _kwargs(self, **overrides):
        kwargs = dict(
            abs_bound=self.abs_bound,
            rel_bound=self.rel_bound,
            layers=self.layers,
            interval_bits=self.interval_bits,
            adaptive=self.adaptive,
            theta=self.theta,
            entropy_coder=self.entropy_coder,
            lossless_post=self.lossless_post,
        )
        kwargs.update({k: v for k, v in overrides.items() if v is not None})
        return kwargs

    def compress(self, data: np.ndarray, **overrides) -> bytes:
        return compress(data, **self._kwargs(**overrides))

    def compress_with_stats(
        self, data: np.ndarray, **overrides
    ) -> tuple[bytes, CompressionStats]:
        return compress_with_stats(data, **self._kwargs(**overrides))

    def decompress(self, blob: bytes) -> np.ndarray:
        return decompress(blob)

    @property
    def intervals(self) -> int:
        return num_intervals(self.interval_bits)
