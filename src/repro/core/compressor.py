"""SZ-1.4 public compression API (paper Algorithm 1, Fig. 5).

Pipeline: error-bound resolution (``repro.core.bounds``) → multilayer
prediction (Section III) → error-controlled quantization (Section IV-A)
→ canonical Huffman variable-length encoding (Section IV-A) →
container.  Unpredictable values are stored via binary-representation
analysis.

Four error-bound modes are supported (see :mod:`repro.core.bounds`):
``abs`` (``|e_i| <= b``), ``rel`` (``|e_i| <= b * range``, and with the
legacy ``abs_bound``/``rel_bound`` pair the tighter bound wins),
``pw_rel`` (``|e_i| <= b * |x_i|`` via logarithmic preconditioning) and
``psnr`` (decompressed PSNR ``>= b`` dB, verified post-hoc).

>>> import numpy as np
>>> from repro.core import compress, decompress
>>> data = np.sin(np.linspace(0, 20, 10000)).reshape(100, 100).astype(np.float32)
>>> blob = compress(data, mode="rel", bound=1e-4)
>>> out = decompress(blob)
>>> bool(np.max(np.abs(out - data)) <= 1e-4 * (data.max() - data.min()))
True
>>> pw = decompress(compress(data, mode="pw_rel", bound=1e-3))
>>> nz = data != 0
>>> bool(np.max(np.abs((pw[nz] - data[nz]) / data[nz])) <= 1e-3)
True
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.adaptive import DEFAULT_THETA
from repro.core.bounds import (
    ErrorBound,
    psnr_fallback_bound,
    psnr_to_abs_bound,
    pw_apply_repairs,
    pw_encode_side,
    pw_log_bound,
    pw_postcondition,
    pw_precondition,
)
from repro.core.lossless_post import unwrap, wrap
from repro.core.quantizer import interval_radius, num_intervals
from repro.core.stream import (
    FLAG_CONSTANT,
    Header,
    read_container,
    write_container,
)
from repro.core.unpredictable import decode_unpredictable, encode_unpredictable
from repro.core.wavefront import (
    WavefrontPlan,
    WavefrontResult,
    wavefront_compress,
    wavefront_decompress,
)
from repro.encoding.coders import (
    DEFAULT_ENTROPY_CODER,
    EntropyPayload,
    coder_for_flags,
    get_entropy_coder,
)
from repro.obs.tracer import Collector, active_collector
from repro.perf import stage

if TYPE_CHECKING:
    from repro.api.config import SZConfig

__all__ = [
    "CompressionStats",
    "SZ14Compressor",
    "compress",
    "compress_array",
    "compress_with_stats",
    "container_info",
    "decompress",
]

LEGACY_BOUND_MSG = (
    "the abs_bound/rel_bound keywords are deprecated; pass mode=/bound= "
    "(e.g. mode='rel', bound=1e-4) or an SZConfig via config="
)


def _reject_config_conflicts(
    abs_bound: float | None,
    rel_bound: float | None,
    layers: int,
    interval_bits: int,
    adaptive: bool,
    theta: float,
    block_size: int,
    entropy_coder: str,
    lossless_post: bool,
    mode: str | None,
    bound: float | None,
) -> None:
    """With ``config=`` given, every other keyword must stay unset.

    A knob passed alongside a config would be silently ignored — a
    sweep bug waiting to happen — so any non-default value raises.
    """
    defaults = (
        abs_bound is None and rel_bound is None
        and mode is None and bound is None
        and layers == 1 and interval_bits == 8
        and adaptive is False and theta == DEFAULT_THETA
        and block_size == 4096 and entropy_coder == DEFAULT_ENTROPY_CODER
        and lossless_post is False
    )
    if not defaults:
        raise ValueError(
            "config= is mutually exclusive with the bound/knob keywords; "
            "derive a variant with config.replace(...) instead"
        )


def _shim_config(
    abs_bound: float | None,
    rel_bound: float | None,
    layers: int,
    interval_bits: int,
    adaptive: bool,
    theta: float,
    block_size: int,
    entropy_coder: str,
    lossless_post: bool,
    mode: str | None,
    bound: float | None,
) -> "SZConfig":
    """Normalize a legacy keyword call into an ``SZConfig``.

    Emits the deprecation warning for the legacy ``abs_bound``/
    ``rel_bound`` pair at the caller's call site (stacklevel 3: helper →
    shim → user code).  Internal code constructs ``SZConfig`` directly
    and never goes through here.
    """
    if abs_bound is not None or rel_bound is not None:
        warnings.warn(LEGACY_BOUND_MSG, DeprecationWarning, stacklevel=3)
    from repro.api.config import SZConfig

    return SZConfig.from_kwargs(
        mode=mode, bound=bound, abs_bound=abs_bound, rel_bound=rel_bound,
        layers=layers, interval_bits=interval_bits, adaptive=adaptive,
        theta=theta, block_size=block_size, entropy_coder=entropy_coder,
        lossless_post=lossless_post,
    )

_MAX_INTERVAL_BITS = 16
_PLAN_CACHE: OrderedDict[
    tuple[tuple[int, ...], int, str], WavefrontPlan
] = OrderedDict()
_PLAN_CACHE_MAX = 32
#: Cap on the *gather-table* memory pinned by cached plans.  Plans for
#: large arrays carry tens of MB of precomputed index tables; the entry
#: count alone would let the cache grow to GBs.
_PLAN_CACHE_TABLE_BYTES_MAX = 256 * 1024 * 1024
"""LRU bound: a long-lived tiled job cycling through many (tile shape,
layers) pairs must not grow the cache without limit; evicting the least
recently used plan keeps the hot interior-tile shape resident."""


@dataclass
class CompressionStats:
    """Diagnostics from one compression run."""

    eb_abs: float
    value_range: float
    layers: int
    interval_bits: int
    hit_rate: float
    n_unpredictable: int
    original_bytes: int
    compressed_bytes: int
    elapsed_seconds: float
    code_histogram: np.ndarray | None = field(repr=False, default=None)
    adaptive_attempts: int = 1
    itemsize: int = 4
    mode: str = "abs"
    mode_param: float = 0.0
    mode_attempts: int = 1
    """Bound-resolution retries: >1 when the psnr noise model missed and
    the verified fallback bound was used, or when pw_rel repaired values."""

    @property
    def n_values(self) -> int:
        return self.original_bytes // self.itemsize

    @property
    def compression_factor(self) -> float:
        return self.original_bytes / max(1, self.compressed_bytes)

    @property
    def bit_rate(self) -> float:
        """Amortized bits per value (paper Eq. 6)."""
        return 8.0 * self.compressed_bytes / max(1, self.n_values)


def _value_range(data: np.ndarray) -> float:
    """Finite value range ``max - min`` (0.0 when nothing is finite)."""
    # Fast path: min/max without the isfinite boolean-index copy.  A
    # finite difference proves both extremes finite (inf - inf = nan,
    # anything involving nan is nan), so the result equals the masked
    # computation; otherwise fall back to it.  The subtraction stays in
    # the array dtype — float32 ranges must round exactly as before.
    spread = float(data.max() - data.min())
    if spread == spread and abs(spread) != float("inf"):
        return spread
    finite = data[np.isfinite(data)]
    return float(finite.max() - finite.min()) if finite.size else 0.0


_BIT_UINTS = {np.dtype(np.float32): np.uint32, np.dtype(np.float64): np.uint64}


def _constant_ok(data: np.ndarray, mode: str) -> bool:
    """May a zero-range field take the single-value constant shortcut?

    ``pw_rel`` promises bit-exact zeros (``+0.0`` vs ``-0.0`` included),
    so it only shortcuts when every element shares one bit pattern —
    a mixed ``[0.0, -0.0]`` field must flow through the sign plane.
    The other modes compare numerically, where ``0.0 == -0.0``.
    """
    if mode != "pw_rel":
        return True
    bits = np.ascontiguousarray(data).view(_BIT_UINTS[np.dtype(data.dtype)])
    return bool((bits == bits.flat[0]).all())


def _get_plan(
    shape: tuple[int, ...],
    layers: int,
    dtype: np.dtype | type = np.float64,
) -> WavefrontPlan:
    # The dtype is part of the plan's identity: it decides the working
    # array's interior dtype (float32 vs float64), so reusing a plan
    # across dtypes would silently fall back to the float64 interior.
    key = (shape, layers, np.dtype(dtype).str)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = WavefrontPlan(shape, layers, dtype)
        _PLAN_CACHE[key] = plan
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
        while (
            len(_PLAN_CACHE) > 1
            and sum(p.table_bytes for p in _PLAN_CACHE.values())
            > _PLAN_CACHE_TABLE_BYTES_MAX
        ):
            _PLAN_CACHE.popitem(last=False)
    else:
        _PLAN_CACHE.move_to_end(key)
    return plan


def _quantize_adaptive(
    data: np.ndarray,
    eb: float,
    layers: int,
    interval_bits: int,
    adaptive: bool,
    theta: float,
    workers: int = 1,
) -> tuple[WavefrontResult, int, int]:
    """Wavefront quantization with the adaptive interval-count retry."""
    plan = _get_plan(data.shape, layers, data.dtype)
    attempts = 0
    m = interval_bits
    while True:
        attempts += 1
        radius = interval_radius(m)
        result = wavefront_compress(data, eb, plan, radius, workers=workers)
        if not adaptive or result.hit_rate >= theta or m >= _MAX_INTERVAL_BITS:
            break
        m = min(_MAX_INTERVAL_BITS, m + 2)
    return result, m, attempts


def _emit_container(
    result: WavefrontResult,
    m: int,
    eb: float,
    header_dtype: np.dtype,
    shape: tuple[int, ...],
    value_range: float,
    layers: int,
    block_size: int,
    entropy_coder: str,
    mode: str = "abs",
    mode_param: float = 0.0,
    side_payload: bytes = b"",
    code_hist: np.ndarray | None = None,
) -> bytes:
    """Entropy-code a wavefront result and wrap it in a container.

    ``header_dtype`` is the *user-facing* dtype: for ``pw_rel`` the body
    encodes the float64 log field while the header advertises the
    original dtype (the mode tag tells the decoder the inner domain).
    ``code_hist``, when provided, is the precomputed code histogram
    (``np.bincount`` over the full alphabet) — callers that also need it
    for diagnostics pass it in so the pass over the codes runs once.
    """
    with stage("unpredictable", nbytes=result.unpredictable.nbytes):
        unpred_payload, _ = encode_unpredictable(result.unpredictable, eb)
    coder = get_entropy_coder(entropy_coder)
    with stage("entropy", nbytes=result.codes.nbytes):
        payload = coder.encode(
            result.codes,
            interval_bits=m,
            block_size=block_size,
            code_hist=code_hist,
        )
    header = Header(
        header_dtype, shape, m, layers, eb, value_range,
        result.unpredictable.size, flags=payload.flags,
        mode=mode, mode_param=mode_param, side_payload=side_payload,
    )
    return write_container(
        header, payload.codec, payload.stream, unpred_payload,
        arith_payload=payload.raw,
    )


def _psnr_of(data: np.ndarray, recon: np.ndarray, value_range: float) -> float:
    """PSNR (dB) of a reconstruction over the finite pairs (Metric 2)."""
    a = data.astype(np.float64)
    b = recon.astype(np.float64)
    mask = np.isfinite(a) & np.isfinite(b)
    if not mask.any():
        return float("inf")
    rmse = float(np.sqrt(np.mean((a[mask] - b[mask]) ** 2)))
    if rmse == 0.0:
        return float("inf")
    return float(20.0 * np.log10(value_range / rmse))


def compress_array(
    data: np.ndarray, config: "SZConfig"
) -> tuple[bytes, CompressionStats]:
    """The compression engine: ``(data, SZConfig) -> (blob, stats)``.

    Every public entry point — :func:`compress`,
    :func:`compress_with_stats`, :class:`repro.api.Codec`, the tiled
    writers — lands here.  ``config`` is an already-validated
    :class:`repro.api.SZConfig`.  ``tile_shape`` is ignored by this
    whole-array path; ``workers > 1`` splits the wavefront loop of large
    multi-dimensional arrays across a process pool (byte-identical
    output; see :mod:`repro.core.wavefront_pool`).

    With a :class:`repro.obs.Collector` active, the whole run records
    under a ``compress`` span and the run diagnostics feed the metrics
    registry; the emitted bytes are identical either way (telemetry only
    reads ``stats``, it never touches the encode path).
    """
    collector = active_collector()
    if collector is None:
        return _compress_array_impl(data, config)
    data = np.asarray(data)
    with collector.span(
        "compress",
        mode=config.error_bound.mode,
        dtype=str(data.dtype),
        shape=tuple(int(s) for s in data.shape),
        bytes=int(data.nbytes),
    ):
        blob, stats = _compress_array_impl(data, config)
    _record_compress_metrics(collector, stats)
    return blob, stats


def _record_compress_metrics(
    collector: Collector, stats: CompressionStats
) -> None:
    """Fold one run's :class:`CompressionStats` into the active metrics."""
    collector.add("compress/calls")
    collector.observe("compress/factor", stats.compression_factor)
    collector.add("quantize/values", float(stats.n_values))
    collector.add("quantize/outliers", float(stats.n_unpredictable))
    if stats.adaptive_attempts > 1:
        collector.add("adaptive/retries", float(stats.adaptive_attempts - 1))
    if stats.mode == "pw_rel":
        collector.add("pw_rel/repairs", float(stats.mode_attempts - 1))
    elif stats.mode == "psnr":
        collector.add("psnr/retries", float(stats.mode_attempts - 1))


def _compress_array_impl(
    data: np.ndarray, config: "SZConfig"
) -> tuple[bytes, CompressionStats]:
    layers = config.layers
    interval_bits = config.interval_bits
    adaptive = config.adaptive
    theta = config.theta
    block_size = config.block_size
    entropy_coder = config.entropy_coder
    data = np.asarray(data)
    if data.dtype not in (np.float32, np.float64):
        raise TypeError(f"only float32/float64 supported, got {data.dtype}")
    if data.ndim < 1:
        raise ValueError("scalar input not supported")
    if data.size == 0:
        raise ValueError("empty input not supported")
    spec = config.error_bound
    t0 = time.perf_counter()
    value_range = _value_range(data)

    if value_range == 0.0 and np.isfinite(data).all() and _constant_ok(
        data, spec.mode
    ):
        # Constant field: a single value describes the array exactly, so
        # every mode's guarantee holds trivially.  The recorded eb keeps
        # the legacy value (the abs bound if one was given, else 0.0) so
        # abs/rel output stays byte-identical across versions; pw_rel and
        # psnr requests keep their mode tag so info() reports them.
        eb = (
            float(spec.abs_bound)
            if spec.mode == "abs" and spec.abs_bound is not None
            else 0.0
        )
        header = Header(
            data.dtype, data.shape, interval_bits, layers, eb, 0.0, 0,
            flags=FLAG_CONSTANT, mode=spec.mode, mode_param=spec.param,
        )
        blob = write_container(header, None, None, b"", float(data.flat[0]))
        stats = CompressionStats(
            eb_abs=eb, value_range=0.0, layers=layers,
            interval_bits=interval_bits, hit_rate=1.0, n_unpredictable=0,
            original_bytes=data.nbytes, compressed_bytes=len(blob),
            elapsed_seconds=time.perf_counter() - t0,
            code_histogram=np.zeros(1, dtype=np.int64),
            mode=spec.mode, mode_param=spec.param,
        )
        stats.itemsize = data.dtype.itemsize
        return blob, stats

    code_hist = None
    if spec.mode == "pw_rel":
        assert spec.pw_bound is not None  # from_args invariant for pw_rel
        blob, result, m, attempts, repairs = _compress_pw_rel(
            data, spec.pw_bound, layers, interval_bits, adaptive, theta,
            block_size, entropy_coder, value_range, workers=config.workers,
        )
        eb, mode_attempts = pw_log_bound(spec.pw_bound, data.dtype), 1 + repairs
    elif spec.mode == "psnr":
        assert spec.psnr_target is not None  # from_args invariant for psnr
        blob, result, m, attempts, eb, mode_attempts = _compress_psnr(
            data, spec.psnr_target, layers, interval_bits, adaptive, theta,
            block_size, entropy_coder, value_range, workers=config.workers,
        )
    else:
        eb = spec.resolve(value_range)
        result, m, attempts = _quantize_adaptive(
            data, eb, layers, interval_bits, adaptive, theta,
            workers=config.workers,
        )
        code_hist = np.bincount(result.codes, minlength=2 * interval_radius(m))
        blob = _emit_container(
            result, m, eb, data.dtype, data.shape, value_range, layers,
            block_size, entropy_coder, code_hist=code_hist,
        )
        mode_attempts = 1
    if config.lossless_post:
        with stage("lossless_post", nbytes=len(blob)):
            blob = wrap(blob)
    stats = CompressionStats(
        eb_abs=eb,
        value_range=value_range,
        layers=layers,
        interval_bits=m,
        hit_rate=result.hit_rate,
        n_unpredictable=result.unpredictable.size,
        original_bytes=data.nbytes,
        compressed_bytes=len(blob),
        elapsed_seconds=time.perf_counter() - t0,
        code_histogram=(
            code_hist
            if code_hist is not None
            else np.bincount(result.codes, minlength=2 * interval_radius(m))
        ),
        adaptive_attempts=attempts,
        mode=spec.mode,
        mode_param=spec.param,
        mode_attempts=mode_attempts,
    )
    stats.itemsize = data.dtype.itemsize
    return blob, stats


def compress_with_stats(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    layers: int = 1,
    interval_bits: int = 8,
    adaptive: bool = False,
    theta: float = DEFAULT_THETA,
    block_size: int = 4096,
    entropy_coder: str = "huffman",
    lossless_post: bool = False,
    mode: str | None = None,
    bound: float | None = None,
    *,
    config: "SZConfig | None" = None,
) -> tuple[bytes, CompressionStats]:
    """Compress ``data`` and return ``(container bytes, diagnostics)``.

    Keyword shim over :func:`compress_array` /
    :class:`repro.api.SZConfig`: pass ``config=`` directly, or the
    keywords below (which are packed into an ``SZConfig`` for you).

    Parameters
    ----------
    data
        1-, 2- or 3-dimensional (any-d supported) float32/float64 array.
    config
        An :class:`repro.api.SZConfig`; mutually exclusive with every
        other keyword.
    mode, bound
        Error-bound mode (``abs``, ``rel``, ``pw_rel`` or ``psnr``) and
        its parameter: an absolute bound, a range-relative fraction, a
        pointwise-relative fraction in (0, 1), or a target PSNR in dB.
        See :mod:`repro.core.bounds` for the guarantees.
    abs_bound, rel_bound
        Deprecated legacy bound pair (absolute and/or value-range
        relative; with both, the tighter effective bound wins).
        Mutually exclusive with ``mode``/``bound``; emits a
        ``DeprecationWarning``.
    layers
        Prediction layers ``n`` (paper default 1; best layer is
        data-dependent, see Table II).
    interval_bits
        ``m``: the encoder uses ``2^m - 1`` quantization intervals.
    adaptive, theta
        Retry with more intervals while the hitting rate is below
        ``theta`` (automated form of the paper's Section IV-B advice).
    block_size
        Huffman chunk size (parallel-decode granularity).
    entropy_coder
        ``"huffman"`` (the paper's variable-length encoder, default) or
        ``"arithmetic"`` — an out-of-paper extension using the adaptive
        range coder (slower; removes Huffman's integer-bit rounding loss).
    lossless_post
        Run the finished container through the DEFLATE-like codec (SZ's
        optional gzip pipe); kept only when it actually shrinks.
    """
    if config is None:
        config = _shim_config(
            abs_bound, rel_bound, layers, interval_bits, adaptive, theta,
            block_size, entropy_coder, lossless_post, mode, bound,
        )
    else:
        _reject_config_conflicts(
            abs_bound, rel_bound, layers, interval_bits, adaptive, theta,
            block_size, entropy_coder, lossless_post, mode, bound,
        )
    return compress_array(data, config)


def _compress_pw_rel(
    data: np.ndarray,
    pw_bound: float,
    layers: int,
    interval_bits: int,
    adaptive: bool,
    theta: float,
    block_size: int,
    entropy_coder: str,
    value_range: float,
    workers: int = 1,
) -> tuple[bytes, WavefrontResult, int, int, int]:
    """Pointwise-relative mode: log-precondition, quantize, verify-repair."""
    eb_log = pw_log_bound(pw_bound, data.dtype)
    logs, flags, signs = pw_precondition(data)
    result, m, attempts = _quantize_adaptive(
        logs, eb_log, layers, interval_bits, adaptive, theta, workers=workers
    )
    # result.decompressed is the exact float64 log field a decompressor
    # materializes; any value the margin analysis failed to cover is
    # re-flagged raw here, making the pointwise guarantee unconditional.
    repairs = pw_apply_repairs(
        data, result.decompressed, flags, signs, pw_bound
    )
    side = pw_encode_side(data, flags, signs)
    blob = _emit_container(
        result, m, eb_log, data.dtype, data.shape, value_range, layers,
        block_size, entropy_coder,
        mode="pw_rel", mode_param=pw_bound, side_payload=side,
    )
    return blob, result, m, attempts, repairs


def _compress_psnr(
    data: np.ndarray,
    target_db: float,
    layers: int,
    interval_bits: int,
    adaptive: bool,
    theta: float,
    block_size: int,
    entropy_coder: str,
    value_range: float,
    workers: int = 1,
) -> tuple[bytes, WavefrontResult, int, int, float, int]:
    """PSNR-targeted mode: model-derived bound, verified post-hoc.

    The first candidate comes from the uniform-quantization noise model;
    if the actual reconstruction misses the target, the fallback bound
    ``R * 10^(-target/20)`` is mathematically guaranteed to reach it
    (``rmse <= max|error| <= eb``).  Further halvings are pure paranoia.
    """
    if value_range == 0.0:
        # Only reachable when non-finite values block the constant
        # shortcut: PSNR normalizes by the value range, so a target on a
        # zero-range field is as meaningless as a relative bound on one.
        raise ValueError(
            "psnr target cannot be resolved: the field's finite value "
            "range is 0 (constant data with NaN/Inf); pass abs_bound "
            "(or mode='abs') instead"
        )
    fallback = psnr_fallback_bound(target_db, value_range)
    candidates = [
        psnr_to_abs_bound(target_db, value_range),
        fallback, fallback / 2.0, fallback / 4.0,
    ]
    for mode_attempts, eb in enumerate(candidates, start=1):
        result, m, attempts = _quantize_adaptive(
            data, eb, layers, interval_bits, adaptive, theta, workers=workers
        )
        if _psnr_of(data, result.decompressed, value_range) >= target_db:
            break
    else:  # pragma: no cover - fallback candidates are guaranteed above
        raise RuntimeError(
            f"could not reach the PSNR target {target_db} dB"
        )
    blob = _emit_container(
        result, m, eb, data.dtype, data.shape, value_range, layers,
        block_size, entropy_coder, mode="psnr", mode_param=target_db,
    )
    return blob, result, m, attempts, eb, mode_attempts


def compress(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    layers: int = 1,
    interval_bits: int = 8,
    adaptive: bool = False,
    theta: float = DEFAULT_THETA,
    block_size: int = 4096,
    entropy_coder: str = "huffman",
    lossless_post: bool = False,
    mode: str | None = None,
    bound: float | None = None,
    *,
    config: "SZConfig | None" = None,
) -> bytes:
    """Compress ``data``; see :func:`compress_with_stats` for parameters.

    The keywords are normalized into one :class:`repro.api.SZConfig`
    here and forwarded keyword-only — the engine never sees a positional
    parameter list that could silently reorder.
    """
    if config is None:
        config = _shim_config(
            abs_bound, rel_bound, layers, interval_bits, adaptive, theta,
            block_size, entropy_coder, lossless_post, mode, bound,
        )
    else:
        _reject_config_conflicts(
            abs_bound, rel_bound, layers, interval_bits, adaptive, theta,
            block_size, entropy_coder, lossless_post, mode, bound,
        )
    blob, _ = compress_array(data, config)
    return blob


def _as_byte_view(buf: Any) -> bytes | memoryview:
    """View any buffer-protocol object as flat bytes without copying.

    ``bytes`` passes through untouched; everything else (``bytearray``,
    ``memoryview``, ``mmap``, a NumPy array) becomes a flat ``uint8``
    memoryview of the same memory — slicing a memoryview is zero-copy,
    which is what keeps the whole decode path allocation-free on the
    input side.
    """
    if isinstance(buf, bytes):
        return buf
    view = memoryview(buf)
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B")
    return view


def _fill_out(result: np.ndarray, out: Any) -> np.ndarray:
    """Place ``result`` into the caller's ``out`` buffer; return the view.

    ``out`` may be a writable ndarray (any shape of the right size and
    dtype) or any writable buffer-protocol object of the right byte
    length — the numcodecs ``decode(buf, out=chunk)`` reuse pattern.
    """
    if isinstance(out, np.ndarray):
        dst = out
        if dst.dtype != result.dtype:
            raise ValueError(
                f"out has dtype {dst.dtype}, container decodes to "
                f"{result.dtype}"
            )
    else:
        dst = np.frombuffer(out, dtype=result.dtype)
    if dst.size != result.size:
        raise ValueError(
            f"out holds {dst.size} values, container decodes to "
            f"{result.size}"
        )
    if dst.shape != result.shape:
        reshaped = dst.reshape(result.shape)
        if not np.shares_memory(reshaped, dst):
            # reshape of a non-contiguous buffer silently copies; filling
            # the copy would leave the caller's buffer untouched.
            raise ValueError(
                "out buffer is non-contiguous and cannot be viewed in the "
                "decoded shape; pass a contiguous buffer or one of the "
                "decoded shape"
            )
        dst = reshaped
    dst[...] = result
    return dst


def decompress(blob: Any, out: Any = None, workers: int = 1) -> np.ndarray:
    """Decompress an SZ-1.4 (repro) container back to the full array.

    Accepts plain containers, ``lossless_post``-wrapped containers, and
    both entropy-coder variants — the container is self-describing.
    ``blob`` may be any object exporting the buffer protocol (``bytes``,
    ``bytearray``, ``memoryview``, ``mmap``); non-``bytes`` buffers are
    read in place, never copied.  With ``out`` the decoded values are
    written into the caller's buffer and the filled view is returned.
    ``workers > 1`` splits the wavefront replay of large
    multi-dimensional arrays across a process pool (byte-identical
    output; see :mod:`repro.core.wavefront_pool`).

    With a :class:`repro.obs.Collector` active the run records under a
    ``decompress`` span; the decoded values are identical either way.
    """
    collector = active_collector()
    if collector is None:
        return _decompress_impl(blob, out, workers)
    with collector.span("decompress", bytes=len(_as_byte_view(blob))):
        result = _decompress_impl(blob, out, workers)
    collector.add("decompress/calls")
    return result


def _decompress_impl(
    blob: Any, out: Any = None, workers: int = 1
) -> np.ndarray:
    blob = _as_byte_view(blob)
    with stage("lossless_unwrap", nbytes=len(blob)):
        blob = unwrap(blob)
    header, codec, stream, unpred_payload, constant, arith = read_container(blob)
    if header.is_constant:
        result = np.full(header.shape, constant, dtype=header.dtype)
        return result if out is None else _fill_out(result, out)
    expected = int(np.prod(header.shape, dtype=np.int64))
    # pw_rel bodies encode the float64 log field; every other mode's body
    # lives directly in the advertised dtype.
    inner_dtype = (
        np.dtype(np.float64) if header.mode == "pw_rel" else header.dtype
    )
    try:
        # read_container returns a codec+stream pair (or an opaque
        # payload) for every non-constant container; the header flag
        # bits select the registered coder that parses it.
        coder = coder_for_flags(header.flags)
        payload = EntropyPayload(
            coder.coder_id, header.flags,
            codec=codec, stream=stream, raw=arith,
        )
        nbytes = (
            int(stream.payload.nbytes) if stream is not None
            else len(arith or b"")
        )
        with stage("entropy", nbytes=nbytes):
            codes = coder.decode(
                payload, expected=expected,
                interval_bits=header.interval_bits,
            )
        if codes.size != expected:
            raise ValueError(
                f"corrupt container: {codes.size} codes for {expected} points"
            )
        with stage("unpredictable", nbytes=len(unpred_payload)):
            unpred_recon = decode_unpredictable(
                unpred_payload, header.unpred_count, header.eb_abs, inner_dtype
            )
        plan = _get_plan(header.shape, header.layers, inner_dtype)
        radius = interval_radius(header.interval_bits)
        result = wavefront_decompress(
            codes, unpred_recon, plan, header.eb_abs, radius, inner_dtype,
            workers=workers,
        )
        if header.mode == "pw_rel":
            result = pw_postcondition(
                result, header.side_payload, header.dtype
            )
        return result if out is None else _fill_out(result, out)
    except (EOFError, IndexError) as exc:
        # A corrupted (but length-preserving) payload must fail with the
        # same clean ValueError contract as a truncated container.
        raise ValueError(f"corrupt SZ-1.4 container: {exc}") from exc


def container_info(blob: Any) -> dict[str, Any]:
    """Inspect a container without decompressing it.

    Returns a dict with shape, dtype, bounds, layer/interval settings,
    unpredictable count and the entropy/post-pass variants in use.
    Accepts any buffer-protocol object, like :func:`decompress`.
    """
    from repro.core.lossless_post import is_wrapped

    blob = _as_byte_view(blob)
    wrapped = is_wrapped(blob)
    header = read_container(unwrap(blob))[0]
    return {
        "shape": header.shape,
        "dtype": str(np.dtype(header.dtype)),
        "mode": header.mode,
        "mode_param": header.mode_param,
        "eb_abs": header.eb_abs,
        "value_range": header.value_range,
        "layers": header.layers,
        "interval_bits": header.interval_bits,
        "n_unpredictable": header.unpred_count,
        "constant": header.is_constant,
        "entropy_coder": coder_for_flags(header.flags).coder_id,
        "lossless_post": wrapped,
        "compressed_bytes": len(blob),
    }


class SZ14Compressor:
    """Object-style façade holding default parameters.

    A thin shim over :class:`repro.api.SZConfig` /
    :class:`repro.api.Codec`: pass ``config=`` directly, or the
    historical keywords (the ``abs_bound``/``rel_bound`` pair is
    deprecated, like everywhere else).

    >>> sz = SZ14Compressor(mode="rel", bound=1e-4, layers=1)
    >>> blob = sz.compress(np.zeros((4, 4), dtype=np.float32) + 1)
    >>> sz.decompress(blob).shape
    (4, 4)
    """

    name = "SZ-1.4"

    def __init__(
        self,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
        layers: int = 1,
        interval_bits: int = 8,
        adaptive: bool = False,
        theta: float = DEFAULT_THETA,
        entropy_coder: str = "huffman",
        lossless_post: bool = False,
        mode: str | None = None,
        bound: float | None = None,
        *,
        config: "SZConfig | None" = None,
    ) -> None:
        if abs_bound is not None or rel_bound is not None:
            warnings.warn(LEGACY_BOUND_MSG, DeprecationWarning, stacklevel=2)
        self._config = config
        if config is not None:
            _reject_config_conflicts(
                abs_bound, rel_bound, layers, interval_bits, adaptive,
                theta, 4096, entropy_coder, lossless_post, mode, bound,
            )
            spec = config.error_bound
            abs_bound, rel_bound = spec.abs_bound, spec.rel_bound
            mode, bound = spec.mode, spec.param
            layers, interval_bits = config.layers, config.interval_bits
            adaptive, theta = config.adaptive, config.theta
            entropy_coder = config.entropy_coder
            lossless_post = config.lossless_post
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound
        self.layers = layers
        self.interval_bits = interval_bits
        self.adaptive = adaptive
        self.theta = theta
        self.entropy_coder = entropy_coder
        self.lossless_post = lossless_post
        self.mode = mode
        self.bound = bound

    def _resolved_config(self, **overrides: Any) -> "SZConfig":
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if overrides.get("abs_bound") is not None or overrides.get(
            "rel_bound"
        ) is not None:
            warnings.warn(LEGACY_BOUND_MSG, DeprecationWarning, stacklevel=3)
        if self._config is not None:
            legacy = {
                k: overrides.pop(k)
                for k in ("abs_bound", "rel_bound")
                if k in overrides
            }
            if legacy:
                overrides["error_bound"] = ErrorBound.from_args(
                    None, None, legacy.get("abs_bound"), legacy.get("rel_bound")
                )
            return (
                self._config.replace(**overrides)
                if overrides
                else self._config
            )
        kwargs = dict(
            abs_bound=self.abs_bound,
            rel_bound=self.rel_bound,
            layers=self.layers,
            interval_bits=self.interval_bits,
            adaptive=self.adaptive,
            theta=self.theta,
            entropy_coder=self.entropy_coder,
            lossless_post=self.lossless_post,
            mode=self.mode,
            bound=self.bound,
        )
        kwargs.update(overrides)
        from repro.api.config import SZConfig

        return SZConfig.from_kwargs(**kwargs)

    def compress(self, data: np.ndarray, **overrides: Any) -> bytes:
        blob, _ = compress_array(data, self._resolved_config(**overrides))
        return blob

    def compress_with_stats(
        self, data: np.ndarray, **overrides: Any
    ) -> tuple[bytes, CompressionStats]:
        return compress_array(data, self._resolved_config(**overrides))

    def decompress(self, blob: Any, out: Any = None) -> np.ndarray:
        return decompress(blob, out=out)

    @property
    def intervals(self) -> int:
        return num_intervals(self.interval_bits)
