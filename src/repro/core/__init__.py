"""SZ-1.4 core: the paper's contribution.

Multilayer multidimensional prediction (Section III), adaptive
error-controlled quantization and variable-length encoding (AEQVE,
Section IV), and the container format tying them together.
"""

from repro.core.bounds import MODES, ErrorBound
from repro.core.compressor import (
    CompressionStats,
    SZ14Compressor,
    compress,
    compress_with_stats,
    container_info,
    decompress,
)
from repro.core.predictor import prediction_stencil, predict_from_original

__all__ = [
    "CompressionStats",
    "ErrorBound",
    "MODES",
    "SZ14Compressor",
    "compress",
    "compress_with_stats",
    "container_info",
    "decompress",
    "prediction_stencil",
    "predict_from_original",
]
