"""Adaptive scheme for the number of quantization intervals (Section IV-B).

The paper observes (Fig. 4) that the prediction hitting rate collapses at
an error bound that depends on the interval count: more intervals cover
tighter bounds, but each code costs more bits, so the right ``m`` is the
smallest one keeping the hitting rate above a threshold θ (default 0.99).

Two entry points:

* :func:`estimate_hit_rate` — cheap subsampled estimate for a candidate
  ``m`` without running the full compressor;
* :func:`suggest_interval_bits` — scan candidate ``m`` values and return
  the smallest that clears θ, which is what the compressor's
  ``adaptive=True`` mode uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import predict_from_original
from repro.core.quantizer import interval_radius

__all__ = [
    "estimate_hit_rate",
    "suggest_interval_bits",
    "suggest_layers",
    "DEFAULT_THETA",
]

DEFAULT_THETA = 0.99


def _subsample(data: np.ndarray, limit: int) -> np.ndarray:
    """Deterministic strided subsample keeping spatial structure per axis."""
    if data.size <= limit:
        return data
    step = max(1, int(np.ceil((data.size / limit) ** (1.0 / data.ndim))))
    return data[tuple(slice(None, None, step) for _ in range(data.ndim))]


def estimate_hit_rate(
    data: np.ndarray,
    eb: float,
    interval_bits: int,
    layers: int = 1,
    sample_limit: int = 65536,
) -> float:
    """Estimated prediction hitting rate for the given interval count.

    Uses prediction from *original* values on a subsample.  This slightly
    overestimates the decompressed-value hitting rate (Table II shows the
    original-value rate is an upper bound in practice), which is fine for
    choosing ``m``: the collapse point in Fig. 4 moves very little.
    """
    if eb <= 0:
        raise ValueError("error bound must be positive")
    sample = _subsample(np.asarray(data), sample_limit)
    pred = predict_from_original(sample, layers)
    qoff = np.rint((sample.astype(np.float64) - pred) / (2.0 * eb))
    radius = interval_radius(interval_bits)
    hits = np.abs(qoff) < radius
    hits &= np.isfinite(sample)
    return float(hits.mean())


def suggest_layers(
    data: np.ndarray,
    eb: float,
    candidates: tuple[int, ...] = (1, 2, 3),
    sample_limit: int = 16384,
) -> int:
    """Pick the layer count with the best *in-loop* hitting rate.

    Table II's lesson is that the right n must be judged on preceding
    *decompressed* values, not originals, so this runs the real wavefront
    kernel (center interval only) on a subsample per candidate.  The
    paper leaves n as a user switch with default 1; this helper automates
    the choice for users who want it.
    """
    from repro.core.wavefront import WavefrontPlan, wavefront_compress

    if eb <= 0:
        raise ValueError("error bound must be positive")
    sample = _subsample(np.asarray(data), sample_limit)
    best_n, best_rate = candidates[0], -1.0
    for n in candidates:
        plan = WavefrontPlan(sample.shape, n)
        rate = wavefront_compress(sample, eb, plan, radius=1).hit_rate
        if rate > best_rate + 1e-12:
            best_n, best_rate = n, rate
    return best_n


def suggest_interval_bits(
    data: np.ndarray,
    eb: float,
    layers: int = 1,
    theta: float = DEFAULT_THETA,
    candidates: tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16),
    sample_limit: int = 65536,
) -> int:
    """Smallest ``m`` whose estimated hitting rate clears ``theta``.

    Falls back to the largest candidate when none clears the threshold
    (the paper: "our compression algorithm will suggest that the user
    increases the number of quantization intervals").
    """
    for m in candidates:
        if estimate_hit_rate(data, eb, m, layers, sample_limit) >= theta:
            return m
    return candidates[-1]
