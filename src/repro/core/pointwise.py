"""Point-wise relative error bounds (extension).

The paper's footnote 1 distinguishes *value-range-based* relative error
(|e| ≤ p·R_X, what SZ-1.4 implements) from *point-wise* relative error
(|e_i| ≤ p·|x_i|).  Later SZ work added the point-wise mode through a
logarithmic transform; this module implements that approach on top of
the SZ-1.4 core:

* signs (−1/0/+1) are entropy-coded separately;
* magnitudes are compressed as ``log(|x|)`` with the absolute bound
  ``log(1 + p)``, which guarantees the multiplicative bound
  ``x̂/x ∈ [1/(1+p), 1+p]`` and hence ``|x̂ − x| ≤ p·|x|`` point-wise;
* exact zeros are preserved exactly (sign code 0).

Only finite inputs are supported (raise otherwise).
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import compress as _compress
from repro.core.compressor import decompress as _decompress
from repro.encoding.huffman import EncodedStream, HuffmanCodec
from repro.encoding.bitio import BitReader, BitWriter

__all__ = ["compress_pointwise", "decompress_pointwise"]

_MAGIC = 0x535A5057  # 'SZPW'


def compress_pointwise(
    data: np.ndarray, rel_bound: float, **sz_kwargs
) -> bytes:
    """Compress with the point-wise guarantee ``|x̂_i - x_i| <= rel|x_i|``."""
    data = np.asarray(data)
    if data.dtype not in (np.float32, np.float64):
        raise TypeError(f"only float32/float64 supported, got {data.dtype}")
    if not 0 < rel_bound < 1:
        raise ValueError("pointwise relative bound must be in (0, 1)")
    if not np.isfinite(data).all():
        raise ValueError("pointwise mode supports finite data only")
    signs = np.sign(data).astype(np.int64) + 1  # 0/1/2 for -/0/+
    mags = np.abs(data.astype(np.float64))
    nonzero = mags > 0.0
    log_mag = np.zeros_like(mags)
    if nonzero.any():
        log_mag[nonzero] = np.log(mags[nonzero])
        # zeros carry a neutral magnitude so they do not distort the
        # value range of the log field (their sign code forces exact 0)
        log_mag[~nonzero] = log_mag[nonzero].min()
    eb_log = float(np.log1p(rel_bound))
    inner = _compress(
        log_mag.astype(data.dtype), abs_bound=eb_log, **sz_kwargs
    )
    sign_codec = HuffmanCodec.from_symbols(signs, 3)
    sign_stream = sign_codec.encode(signs.ravel())

    w = BitWriter()
    w.write(_MAGIC, 32)
    w.write(0 if data.dtype == np.float32 else 1, 8)
    sign_codec.write_table(w)
    head = w.getvalue()
    sign_blob = sign_stream.to_bytes()
    out = bytearray(head)
    out += len(sign_blob).to_bytes(6, "big")
    out += sign_blob
    out += len(inner).to_bytes(6, "big")
    out += inner
    return bytes(out)


def decompress_pointwise(blob: bytes) -> np.ndarray:
    """Inverse of :func:`compress_pointwise`."""
    r = BitReader(blob)
    if r.read(32) != _MAGIC:
        raise ValueError("not a pointwise-relative container")
    dtype = np.dtype(np.float32 if r.read(8) == 0 else np.float64)
    sign_codec = HuffmanCodec.read_table(r)
    pos = (r.bitpos + 7) // 8
    sign_len = int.from_bytes(blob[pos : pos + 6], "big")
    pos += 6
    sign_stream = EncodedStream.from_bytes(blob[pos : pos + sign_len])
    pos += sign_len
    inner_len = int.from_bytes(blob[pos : pos + 6], "big")
    pos += 6
    inner = bytes(blob[pos : pos + inner_len])

    log_mag = _decompress(inner).astype(np.float64)
    signs = sign_codec.decode(sign_stream).reshape(log_mag.shape) - 1
    out = signs * np.exp(log_mag)
    return out.astype(dtype)
