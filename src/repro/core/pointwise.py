"""Point-wise relative error bounds — legacy API over ``mode="pw_rel"``.

The paper's footnote 1 distinguishes *value-range-based* relative error
(|e| ≤ p·R_X, what SZ-1.4 implements) from *point-wise* relative error
(|e_i| ≤ p·|x_i|).  This module predates the error-bound mode subsystem
(:mod:`repro.core.bounds`) and is kept as a thin compatibility shim: the
log-preconditioning now lives in the mode pipeline, so
:func:`compress_pointwise` simply produces a standard mode-tagged
container that :func:`repro.core.decompress` (and every container-aware
tool: the CLI, tiled readers, archives) understands directly.

The historical API contract is preserved: bounds must lie in (0, 1) and
non-finite inputs are rejected here even though ``mode="pw_rel"`` itself
carries NaN/Inf losslessly.
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import compress as _compress
from repro.core.compressor import decompress as _decompress

__all__ = ["compress_pointwise", "decompress_pointwise"]


def compress_pointwise(
    data: np.ndarray, rel_bound: float, **sz_kwargs
) -> bytes:
    """Compress with the point-wise guarantee ``|x̂_i - x_i| <= rel|x_i|``."""
    data = np.asarray(data)
    if data.dtype not in (np.float32, np.float64):
        raise TypeError(f"only float32/float64 supported, got {data.dtype}")
    if not 0 < rel_bound < 1:
        raise ValueError("pointwise relative bound must be in (0, 1)")
    if not np.isfinite(data).all():
        raise ValueError("pointwise mode supports finite data only")
    return _compress(data, mode="pw_rel", bound=float(rel_bound), **sz_kwargs)


def decompress_pointwise(blob: bytes) -> np.ndarray:
    """Inverse of :func:`compress_pointwise`."""
    return _decompress(blob)
