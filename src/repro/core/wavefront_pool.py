"""Multi-process hyperplane splitting of the wavefront loop.

The wavefront traversal (see :mod:`repro.core.wavefront`) already
exposes all of each hyperplane as independent elementwise work; this
module splits every hyperplane into ``W`` contiguous chunks and runs the
chunks in ``W`` worker processes.  The reconstruction array lives in
POSIX shared memory so workers see each other's finished planes; a
per-plane progress barrier (one int64 slot per worker, spin-waited)
enforces the only ordering the algorithm needs: *no chunk of plane*
``s`` *starts before every chunk of plane* ``s - 1`` *is stored*.

Because every per-plane operation is elementwise, chunking changes
nothing about the arithmetic — the differential harness
(``tests/test_wavefront_identity.py``) pins byte-for-byte equality with
the serial kernel for ``workers ∈ {1, 2, 4}``.

Workers are dispatched through :func:`repro.parallel.pool.pool_map`, so
the existing telemetry plumbing applies unchanged: with a
:class:`repro.perf.StageTimer` or :class:`repro.obs.Collector` active in
the parent, each worker records its own ``quantize_worker`` /
``dequantize_worker`` stage (distinct names — the parent's ``quantize``
stage already wraps the whole dispatch) and the parent merges the
records with one lane per worker process.

This path is *opt-in* (``workers > 1``) and gated on array size
(:data:`repro.core.wavefront._SPLIT_MIN_POINTS`): process startup, the
per-worker plan rebuild and the barrier spins only amortize on large
arrays.
"""

from __future__ import annotations

import time
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.core.quantizer import UNPREDICTABLE
from repro.core.unpredictable import truncate_to_bound
from repro.parallel.pool import pool_map
from repro.perf import stage

__all__ = ["pool_wavefront_compress", "pool_wavefront_decompress"]

#: Hard ceiling on the pool width; hyperplane chunks thinner than this
#: never pay for themselves.
_MAX_WORKERS = 8

#: Barrier timeout — generous, since a worker may legitimately wait for
#: the whole remaining runtime of the others on an oversubscribed box.
_BARRIER_TIMEOUT_S = 300.0


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block without adopting it.

    Attaching would register the segment with the resource tracker,
    which then unlinks it when the worker exits — even though the parent
    still owns it (and several workers would race to unregister the same
    name).  Suppressing the registration keeps single-owner semantics:
    the parent created the block and is the only one to unlink it.
    """
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


def _wait_for_plane(progress: np.ndarray, s: int) -> None:
    """Block until every worker has finished plane ``s``."""
    if int(progress.min()) >= s:
        return
    deadline = time.monotonic() + _BARRIER_TIMEOUT_S
    spins = 0
    while int(progress.min()) < s:
        spins += 1
        # Start with pure yields; back off to short sleeps so W spinning
        # processes don't starve the one doing work on small machines.
        time.sleep(0 if spins < 200 else 1e-4)
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"wavefront pool barrier timed out waiting for plane {s}"
            )


def _chunk_bounds(start: int, end: int, w: int, n_workers: int) -> tuple[int, int]:
    """Contiguous chunk of plane ``[start, end)`` owned by worker ``w``."""
    m = end - start
    return start + (m * w) // n_workers, start + (m * (w + 1)) // n_workers


def _predict_into(
    pred: np.ndarray,
    nbr: np.ndarray,
    signs: np.ndarray | None,
    coeffs: np.ndarray,
    tmp: np.ndarray,
) -> None:
    """Accumulate the stencil prediction exactly like the serial kernel."""
    pred.fill(0.0)
    if signs is not None:
        for k in range(len(signs)):
            if signs[k] > 0:
                np.add(pred, nbr[k], out=pred)
            else:
                np.subtract(pred, nbr[k], out=pred)
    else:
        for k in range(len(coeffs)):
            np.multiply(nbr[k], coeffs[k], out=tmp)
            np.add(pred, tmp, out=pred)


def _worker_plan(item: dict[str, Any]) -> Any:
    """Rebuild the traversal geometry inside a worker process.

    Tables are skipped — the worker gathers per plane through
    ``plane_table``-style on-the-fly indices restricted to its chunk.
    """
    from repro.core.wavefront import WavefrontPlan

    return WavefrontPlan(
        tuple(item["shape"]),
        int(item["n"]),
        np.dtype(item["out_dtype"]),
        with_tables=False,
    )


def _compress_chunk_worker(item: dict[str, Any]) -> None:
    """One worker's share of every hyperplane (compress direction)."""
    w = int(item["w"])
    n_workers = int(item["workers"])
    eb = float(item["eb"])
    fradius = float(item["radius"])
    two_eb = 2.0 * eb
    out_dtype = np.dtype(item["out_dtype"])
    idt = np.dtype(item["interior_dtype"])
    store_f32 = idt == np.float32
    f32_out = out_dtype == np.float32
    all_finite = bool(item["all_finite"])
    plan = _worker_plan(item)
    n_points = plan.order.size
    shms = [_attach(item[k]) for k in ("vals", "dec", "qall", "ok", "progress")]
    try:
        vals64 = np.ndarray(n_points, dtype=np.float64, buffer=shms[0].buf)
        dec = np.ndarray(n_points + 1, dtype=idt, buffer=shms[1].buf)
        qall = np.ndarray(n_points, dtype=np.float64, buffer=shms[2].buf)
        ok_all = np.ndarray(n_points, dtype=bool, buffer=shms[3].buf)
        progress = np.ndarray(n_workers, dtype=np.int64, buffer=shms[4].buf)
        coeffs, signs = plan.coeffs, plan.signs
        msize = (plan.max_group + n_workers - 1) // n_workers + 1
        pred_s = np.empty(msize, dtype=np.float64)
        tmp_s = np.empty(msize, dtype=np.float64)
        diff_s = np.empty(msize, dtype=np.float64)
        mask_s = np.empty(msize, dtype=bool)
        rc_s = np.empty(msize, dtype=np.float32) if f32_out else None
        chunk_points = sum(
            hi - lo
            for lo, hi in (
                _chunk_bounds(s, e, w, n_workers) for s, e in plan.groups
            )
        )
        with stage(
            "quantize_worker", nbytes=chunk_points * out_dtype.itemsize
        ), np.errstate(invalid="ignore", over="ignore"):
            for s, (start, end) in enumerate(plan.groups):
                _wait_for_plane(progress, s - 1)
                lo, hi = _chunk_bounds(start, end, w, n_workers)
                m = hi - lo
                if m > 0:
                    tab = plan.wf_pos[
                        plan.pad_flat[lo:hi] - plan.deltas[:, None]
                    ]
                    gathered = dec.take(tab)
                    nbr = (
                        gathered.astype(np.float64) if store_f32 else gathered
                    )
                    pred = pred_s[:m]
                    _predict_into(pred, nbr, signs, coeffs, tmp_s[:m])
                    x = vals64[lo:hi]
                    qoff = qall[lo:hi]
                    diff = diff_s[:m]
                    np.subtract(x, pred, out=diff)
                    np.divide(diff, two_eb, out=diff)
                    np.rint(diff, out=qoff)
                    ok = ok_all[lo:hi]
                    np.abs(qoff, out=diff)
                    np.less(diff, fradius, out=ok)
                    np.multiply(qoff, two_eb, out=diff)
                    np.add(pred, diff, out=diff)
                    if f32_out:
                        rc = rc_s[:m]
                        rc[...] = diff
                        recon: np.ndarray = rc
                    else:
                        recon = diff
                    err = tmp_s[:m]
                    np.subtract(x, recon, out=err)
                    np.abs(err, out=err)
                    bounded = mask_s[:m]
                    np.less_equal(err, eb, out=bounded)
                    np.logical_and(ok, bounded, out=ok)
                    if not all_finite:
                        np.logical_and(ok, np.isfinite(x), out=ok)
                    if f32_out and not store_f32:
                        recon = diff
                        recon[...] = rc
                    if not ok.all():
                        miss = mask_s[:m]
                        np.logical_not(ok, out=miss)
                        originals = x[miss].astype(out_dtype)
                        recon[miss] = truncate_to_bound(originals, eb)
                    dec[1 + lo : 1 + hi] = recon
                progress[w] = s
        # Drop every view into the shared buffers before closing them.
        x = qoff = ok = None  # noqa: F841 - release loop-local views
        del vals64, dec, qall, ok_all, progress
    finally:
        _close_all(shms)


def _decompress_chunk_worker(item: dict[str, Any]) -> None:
    """One worker's share of every hyperplane (decompress direction)."""
    w = int(item["w"])
    n_workers = int(item["workers"])
    eb = float(item["eb"])
    fradius = float(item["radius"])
    two_eb = 2.0 * eb
    out_dtype = np.dtype(item["out_dtype"])
    idt = np.dtype(item["interior_dtype"])
    store_f32 = idt == np.float32
    f32_out = out_dtype == np.float32
    n_unpred = int(item["n_unpred"])
    plan = _worker_plan(item)
    n_points = plan.order.size
    names = ["codes", "dec", "progress"]
    if n_unpred:
        names += ["unpred", "uidx"]
    shms = [_attach(item[k]) for k in names]
    try:
        codes = np.ndarray(n_points, dtype=np.int64, buffer=shms[0].buf)
        dec = np.ndarray(n_points + 1, dtype=idt, buffer=shms[1].buf)
        progress = np.ndarray(n_workers, dtype=np.int64, buffer=shms[2].buf)
        unpred_vals = (
            np.ndarray(n_unpred, dtype=idt, buffer=shms[3].buf)
            if n_unpred
            else None
        )
        uidx = (
            np.ndarray(n_points, dtype=np.int64, buffer=shms[4].buf)
            if n_unpred
            else None
        )
        coeffs, signs = plan.coeffs, plan.signs
        msize = (plan.max_group + n_workers - 1) // n_workers + 1
        pred_s = np.empty(msize, dtype=np.float64)
        tmp_s = np.empty(msize, dtype=np.float64)
        work_s = np.empty(msize, dtype=np.float64)
        rc_s = np.empty(msize, dtype=np.float32) if f32_out else None
        with stage(
            "dequantize_worker", nbytes=n_points * out_dtype.itemsize
        ):
            for s, (start, end) in enumerate(plan.groups):
                _wait_for_plane(progress, s - 1)
                lo, hi = _chunk_bounds(start, end, w, n_workers)
                m = hi - lo
                if m > 0:
                    tab = plan.wf_pos[
                        plan.pad_flat[lo:hi] - plan.deltas[:, None]
                    ]
                    gathered = dec.take(tab)
                    nbr = (
                        gathered.astype(np.float64) if store_f32 else gathered
                    )
                    pred = pred_s[:m]
                    _predict_into(pred, nbr, signs, coeffs, tmp_s[:m])
                    work = work_s[:m]
                    work[...] = codes[lo:hi]
                    np.subtract(work, fradius, out=work)
                    np.multiply(work, two_eb, out=work)
                    np.add(pred, work, out=work)
                    if f32_out:
                        rc = rc_s[:m]
                        rc[...] = work
                        recon: np.ndarray = rc
                    else:
                        recon = work
                    if f32_out and not store_f32:
                        recon = work
                        recon[...] = rc
                    if unpred_vals is not None:
                        mask = codes[lo:hi] == UNPREDICTABLE
                        if mask.any():
                            assert uidx is not None
                            recon[mask] = unpred_vals[uidx[lo:hi][mask]]
                    dec[1 + lo : 1 + hi] = recon
                progress[w] = s
        del codes, dec, progress, unpred_vals, uidx
    finally:
        _close_all(shms)


class _ShmPool:
    """Parent-side owner of the run's shared-memory blocks."""

    def __init__(self) -> None:
        self._blocks: list[shared_memory.SharedMemory] = []
        self._views: list[np.ndarray] = []

    def array(
        self, n: int, dtype: np.dtype | type
    ) -> tuple[np.ndarray, str]:
        dt = np.dtype(dtype)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, n * dt.itemsize)
        )
        self._blocks.append(shm)
        view = np.ndarray(n, dtype=dt, buffer=shm.buf)
        self._views.append(view)
        return view, shm.name

    def release(self) -> None:
        self._views.clear()
        for shm in self._blocks:
            shm.close()
            shm.unlink()
        self._blocks.clear()


def _effective_workers(workers: int, max_group: int) -> int:
    return max(1, min(int(workers), _MAX_WORKERS, max_group))


def _close_all(shms: list[shared_memory.SharedMemory]) -> None:
    """Close worker-side attachments, tolerating lingering views.

    On the normal path every ndarray view has been dropped first; on
    error paths a view bound to a local may still pin the buffer, and a
    ``BufferError`` from ``close`` must not mask the real failure (the
    mapping is released when the worker process exits regardless).
    """
    for shm in shms:
        try:
            shm.close()
        except BufferError:
            pass


def pool_wavefront_compress(
    data: np.ndarray,
    eb: float,
    plan: Any,
    radius: int,
    workers: int,
) -> Any:
    """Pool-split twin of ``_wavefront_compress`` — byte-identical output."""
    from repro.core.wavefront import (
        WavefrontResult,
        _effective_interior,
        _materialize_codes,
    )

    out_dtype = data.dtype
    idt = _effective_interior(plan, out_dtype)
    n_workers = _effective_workers(workers, plan.max_group)
    values_orig_wf = data.reshape(-1).take(plan.order)
    n_points = values_orig_wf.size
    shm = _ShmPool()
    try:
        vals64, vals_name = shm.array(n_points, np.float64)
        vals64[...] = values_orig_wf  # exact upcast for f32, copy for f64
        vmin, vmax = vals64.min(), vals64.max()
        all_finite = bool(np.isfinite(vmin)) and bool(np.isfinite(vmax))
        dec, dec_name = shm.array(n_points + 1, idt)
        dec[...] = 0
        qall_sh, qall_name = shm.array(n_points, np.float64)
        ok_sh, ok_name = shm.array(n_points, bool)
        progress, prog_name = shm.array(n_workers, np.int64)
        progress[...] = -1
        base = {
            "shape": tuple(plan.shape),
            "n": int(plan.n),
            "out_dtype": out_dtype.str,
            "interior_dtype": idt.str,
            "eb": float(eb),
            "radius": float(radius),
            "workers": n_workers,
            "all_finite": all_finite,
            "vals": vals_name,
            "dec": dec_name,
            "qall": qall_name,
            "ok": ok_name,
            "progress": prog_name,
        }
        items = [dict(base, w=w) for w in range(n_workers)]
        # n_workers == len(items): the chunks synchronize per plane, so
        # every worker must run concurrently — a narrower pool deadlocks.
        pool_map(_compress_chunk_worker, items, n_workers=n_workers)
        qall = qall_sh.copy()
        ok_all = ok_sh.copy()
        dec_wf = dec.copy()
    finally:
        shm.release()
    if bool(ok_all.all()):
        unpred_chunks: list[np.ndarray] = []
    else:
        unpred_chunks = [values_orig_wf[np.logical_not(ok_all)]]
    codes, unpredictable = _materialize_codes(
        qall, ok_all, unpred_chunks, float(radius), out_dtype
    )
    hit_rate = 1.0 - unpredictable.size / max(1, n_points)
    return WavefrontResult(
        codes, unpredictable, None, hit_rate,
        dec_wf=dec_wf, plan=plan, out_dtype=out_dtype,
    )


def pool_wavefront_decompress(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    plan: Any,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
    workers: int,
) -> np.ndarray:
    """Pool-split twin of ``_wavefront_decompress`` — byte-identical."""
    from repro.core.wavefront import (
        _effective_interior,
        _wavefront_to_raster,
    )

    out_dtype = np.dtype(out_dtype)
    idt = _effective_interior(plan, out_dtype)
    n_workers = _effective_workers(workers, plan.max_group)
    n_points = plan.order.size
    miss_all = codes == UNPREDICTABLE
    total_miss = int(miss_all.sum(dtype=np.int64))
    if total_miss != unpred_recon.size:
        raise ValueError(
            "corrupt stream: unpredictable-value count mismatch "
            f"({total_miss} consumed, {unpred_recon.size} stored)"
        )
    shm = _ShmPool()
    try:
        codes_sh, codes_name = shm.array(n_points, np.int64)
        codes_sh[...] = codes
        dec, dec_name = shm.array(n_points + 1, idt)
        dec[...] = 0
        progress, prog_name = shm.array(n_workers, np.int64)
        progress[...] = -1
        base = {
            "shape": tuple(plan.shape),
            "n": int(plan.n),
            "out_dtype": out_dtype.str,
            "interior_dtype": idt.str,
            "eb": float(eb),
            "radius": float(radius),
            "workers": n_workers,
            "n_unpred": total_miss,
            "codes": codes_name,
            "dec": dec_name,
            "progress": prog_name,
        }
        if total_miss:
            unpred_sh, unpred_name = shm.array(total_miss, idt)
            unpred_sh[...] = (
                unpred_recon
                if unpred_recon.dtype == idt
                else unpred_recon.astype(idt)
            )
            uidx_sh, uidx_name = shm.array(n_points, np.int64)
            np.cumsum(miss_all, dtype=np.int64, out=uidx_sh)
            np.subtract(uidx_sh, 1, out=uidx_sh)
            base["unpred"] = unpred_name
            base["uidx"] = uidx_name
        items = [dict(base, w=w) for w in range(n_workers)]
        pool_map(_decompress_chunk_worker, items, n_workers=n_workers)
        dec_wf = dec.copy()
    finally:
        shm.release()
    return _wavefront_to_raster(dec_wf, plan, out_dtype)
