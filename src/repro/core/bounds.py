"""Error-bound modes: the contract between the user's accuracy request
and the absolute bound the quantizer actually enforces.

The paper's quantizer (Section IV-A) guarantees ``|x - x'| <= eb`` for a
single global *absolute* bound.  Real workloads ask for accuracy in
other currencies; this module converts each of them into that primitive
(the SZ3 "error-bound mode as a composable stage" design):

``abs``
    ``|x_i - x'_i| <= bound``.  The quantizer's native guarantee.
``rel``
    Value-range-relative: ``|x_i - x'_i| <= bound * (max - min)``.
    Resolved once against the finite value range, then enforced as an
    absolute bound.
``pw_rel``
    Pointwise relative: ``|x_i - x'_i| <= bound * |x_i|`` for every
    finite non-zero value.  Implemented by logarithmic preconditioning:
    ``log|x|`` is compressed as a float64 field with the absolute bound
    ``log1p(bound - eps)`` (``eps`` the input dtype's machine epsilon,
    margin for the final cast), so the multiplicative guarantee
    ``x'/x in [1/(1+b), 1+b]`` falls out of the additive one.  Signs
    are stored losslessly in a bit plane; zeros (including ``-0.0``),
    non-finite values and subnormals are carried verbatim through a
    per-element flag plane plus raw IEEE bits.  A compress-time
    verify-and-repair pass re-flags any value the margin did not cover,
    making the guarantee unconditional.
``psnr``
    Quality-targeted: the decompressed field must satisfy
    ``PSNR >= bound`` dB.  The target converts to an absolute bound via
    the uniform-quantization noise model (``rmse ~ eb / sqrt(3)``),
    the result is verified post-hoc against the actual reconstruction,
    and on a miss the bound falls back to ``R * 10^(-bound/20)`` —
    which guarantees the target because ``rmse <= max|error| <= eb``.

:class:`ErrorBound` normalizes every spelling (legacy
``abs_bound``/``rel_bound`` keywords included) into one value object;
:func:`ErrorBound.resolve` is the successor of the compressor's old
``_resolve_bound`` and raises a clear error — instead of returning
``eb = 0`` — when only a relative bound is given for a constant field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.encoding.bitio import pack_varlen, unpack_varlen

__all__ = [
    "MODES",
    "MODE_CODES",
    "CODE_MODES",
    "MODED_MODES",
    "ErrorBound",
    "PW_FLAG_NORMAL",
    "PW_FLAG_ZERO",
    "PW_FLAG_RAW",
    "pw_log_bound",
    "pw_precondition",
    "pw_apply_repairs",
    "pw_encode_side",
    "pw_decode_side",
    "pw_postcondition",
    "psnr_to_abs_bound",
    "psnr_fallback_bound",
]

MODES = ("abs", "rel", "pw_rel", "psnr")

MODE_CODES = {"abs": 0, "rel": 1, "pw_rel": 2, "psnr": 3}
"""On-disk mode byte, shared by the v2 SZRP header and the tiled v3
header/index — one table so the two container families can never
disagree about what a code means."""
CODE_MODES = {v: k for k, v in MODE_CODES.items()}
MODED_MODES = ("pw_rel", "psnr")
"""Modes that need a mode-tagged container layout to reconstruct."""

_UINT = {np.dtype(np.float32): np.dtype(np.uint32),
         np.dtype(np.float64): np.dtype(np.uint64)}


@dataclass(frozen=True)
class ErrorBound:
    """One normalized error-bound request.

    ``abs``/``rel`` keep the legacy pair semantics (with both given the
    tighter effective bound wins); ``pw_rel`` and ``psnr`` carry a
    single mode parameter.
    """

    mode: str
    abs_bound: float | None = None
    rel_bound: float | None = None
    pw_bound: float | None = None
    psnr_target: float | None = None

    @classmethod
    def from_args(
        cls,
        mode: str | None = None,
        bound: float | None = None,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
    ) -> "ErrorBound":
        """Normalize the public keyword surface into an :class:`ErrorBound`.

        ``mode=None`` is the legacy spelling: ``abs_bound``/``rel_bound``
        directly.  With an explicit ``mode``, ``bound`` carries the mode
        parameter and the legacy keywords must stay unset.
        """
        if mode is None:
            if bound is not None:
                raise ValueError("bound requires an explicit mode")
            if abs_bound is None and rel_bound is None:
                raise ValueError("provide abs_bound and/or rel_bound")
            if abs_bound is not None and abs_bound <= 0:
                raise ValueError("abs_bound must be positive")
            if rel_bound is not None and rel_bound <= 0:
                raise ValueError("rel_bound must be positive")
            legacy_mode = "rel" if rel_bound is not None else "abs"
            return cls(legacy_mode, abs_bound=abs_bound, rel_bound=rel_bound)
        if mode not in MODES:
            raise ValueError(f"unknown error-bound mode {mode!r}; use one of {MODES}")
        if abs_bound is not None or rel_bound is not None:
            raise ValueError(
                "mode/bound and abs_bound/rel_bound are mutually exclusive"
            )
        if bound is None:
            raise ValueError(f"mode {mode!r} requires bound")
        bound = float(bound)
        if mode == "abs":
            if bound <= 0:
                raise ValueError("abs bound must be positive")
            return cls("abs", abs_bound=bound)
        if mode == "rel":
            if bound <= 0:
                raise ValueError("rel bound must be positive")
            return cls("rel", rel_bound=bound)
        if mode == "pw_rel":
            if not 0.0 < bound < 1.0:
                raise ValueError("pw_rel bound must be in (0, 1)")
            return cls("pw_rel", pw_bound=bound)
        if not math.isfinite(bound) or bound <= 0:
            raise ValueError("psnr target must be a positive finite dB value")
        return cls("psnr", psnr_target=bound)

    @property
    def param(self) -> float:
        """The single mode parameter (for container headers / stats)."""
        # from_args guarantees the field matching `mode` is always set.
        if self.mode == "pw_rel":
            assert self.pw_bound is not None
            return float(self.pw_bound)
        if self.mode == "psnr":
            assert self.psnr_target is not None
            return float(self.psnr_target)
        if self.mode == "rel":
            assert self.rel_bound is not None
            return float(self.rel_bound)
        assert self.abs_bound is not None
        return float(self.abs_bound)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe spelling of this bound; inverse of :meth:`from_dict`.

        The combined legacy pair (``rel`` with an ``abs`` cap, where the
        tighter effective bound wins) has no single-parameter spelling,
        so it serializes with an extra ``abs_bound`` key.
        """
        if self.mode == "rel" and self.abs_bound is not None:
            assert self.rel_bound is not None  # from_args invariant
            return {
                "mode": "rel",
                "bound": float(self.rel_bound),
                "abs_bound": float(self.abs_bound),
            }
        return {"mode": self.mode, "bound": self.param}

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "ErrorBound":
        """Rebuild an :class:`ErrorBound` from :meth:`to_dict` output.

        Every value is re-validated through :meth:`from_args`, so a
        hand-written or tampered dict fails with the same errors as the
        keyword surface.
        """
        if not isinstance(spec, dict):
            raise ValueError(f"error-bound spec must be a dict, got {spec!r}")
        mode = spec.get("mode")
        if mode == "rel" and spec.get("abs_bound") is not None:
            return cls.from_args(
                None, None, spec["abs_bound"], spec.get("bound")
            )
        return cls.from_args(mode, spec.get("bound"))

    def resolve(self, value_range: float) -> float:
        """Effective absolute bound for the ``abs``/``rel`` modes.

        Raises a clear :class:`ValueError` (rather than returning
        ``eb = 0``) when only a relative bound is given and the field's
        finite value range is zero — a relative bound is meaningless on
        a constant field.
        """
        if self.mode not in ("abs", "rel"):
            raise ValueError(f"mode {self.mode!r} has no direct absolute bound")
        candidates: list[float] = []
        if self.abs_bound is not None:
            candidates.append(float(self.abs_bound))
        if self.rel_bound is not None:
            candidates.append(float(self.rel_bound) * float(value_range))
        eb = min(candidates)
        if eb == 0.0:
            raise ValueError(
                "relative error bound resolves to zero: the field's finite "
                "value range is 0 (constant data); pass abs_bound (or "
                "mode='abs') instead"
            )
        return eb


# ---------------------------------------------------------------------------
# pw_rel: logarithmic preconditioning
# ---------------------------------------------------------------------------

PW_FLAG_NORMAL = 0  # finite, non-zero, normal magnitude: log-compressed
PW_FLAG_ZERO = 1  # exact zero: reconstructed as +/-0.0 from the sign plane
PW_FLAG_RAW = 2  # NaN/Inf/subnormal/repaired: full IEEE bits stored


def pw_log_bound(pw_bound: float, dtype: np.dtype) -> float:
    """Absolute bound in the log domain for a pointwise-relative bound.

    ``|log|x| - log|x'|| <= log1p(b)`` implies ``|x - x'| <= b |x|``;
    the margin ``eps`` (one machine epsilon of the *output* dtype)
    absorbs the final cast back to ``dtype`` and the float64 ``log`` /
    ``exp`` round-off.  The compress-time verify-and-repair pass covers
    anything the margin analysis misses.
    """
    eps = float(np.finfo(np.dtype(dtype)).eps)
    effective = float(pw_bound) - eps
    if effective <= 0.0:
        raise ValueError(
            f"pw_rel bound {pw_bound:g} is at or below the machine epsilon "
            f"({eps:g}) of {np.dtype(dtype)}; it cannot be guaranteed"
        )
    return float(np.log1p(effective))


def pw_precondition(
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``data`` into ``(log64 field, flags, signbits)``.

    The log field is always float64 (float32 ``log`` round-off would eat
    tight bounds); special positions carry the mean finite log so they
    do not distort prediction.  Subnormals go to the raw plane: their
    log is finite but the relative cast error of the reconstruction is
    not bounded by ``eps``.
    """
    x64 = data.astype(np.float64)
    finite = np.isfinite(x64)
    abs_x = np.abs(x64)
    tiny = float(np.finfo(data.dtype).tiny)
    is_zero = finite & (x64 == 0.0)
    is_raw = (~finite) | (finite & (x64 != 0.0) & (abs_x < tiny))
    normal = ~(is_zero | is_raw)
    flags = np.full(data.shape, PW_FLAG_NORMAL, dtype=np.uint8)
    flags[is_zero] = PW_FLAG_ZERO
    flags[is_raw] = PW_FLAG_RAW
    logs = np.zeros(data.shape, dtype=np.float64)
    if normal.any():
        logs[normal] = np.log(abs_x[normal])
        fill = float(logs[normal].mean())
    else:
        fill = 0.0
    logs[~normal] = fill
    return logs, flags, np.signbit(x64)


def pw_apply_repairs(
    data: np.ndarray,
    recon_logs: np.ndarray,
    flags: np.ndarray,
    signs: np.ndarray,
    pw_bound: float,
) -> int:
    """Re-flag as raw every value the log round-trip failed to bound.

    ``recon_logs`` is the exact float64 log field a decompressor will
    materialize; re-running the reconstruction here makes the pointwise
    guarantee unconditional — a violated value simply ships its IEEE
    bits.  Returns the number of repairs (0 in the overwhelming case).
    """
    normal = flags == PW_FLAG_NORMAL
    if not normal.any():
        return 0
    x64 = data.astype(np.float64)
    recon = _pw_reconstruct(recon_logs, signs, data.dtype)
    viol = normal & ~(
        np.abs(recon.astype(np.float64) - x64) <= float(pw_bound) * np.abs(x64)
    )
    n = int(viol.sum(dtype=np.int64))
    if n:
        flags[viol] = PW_FLAG_RAW
    return n


def _pw_reconstruct(
    recon_logs: np.ndarray, signs: np.ndarray, dtype: np.dtype
) -> np.ndarray:
    """Signed magnitudes from decoded logs, rounded through ``dtype``."""
    with np.errstate(over="ignore"):
        mags = np.exp(recon_logs.astype(np.float64))
    return np.where(signs, -mags, mags).astype(dtype)


def pw_encode_side(
    data: np.ndarray, flags: np.ndarray, signs: np.ndarray
) -> bytes:
    """Pack the pw_rel side channel: flag plane, sign plane, raw bits.

    Three byte-aligned bit-packed sections — 2 bits/element of flags,
    1 bit/element of signs, and the full IEEE words of the raw-flagged
    elements.  Cost: 3 bits per element plus ``itemsize`` bytes per
    special value.
    """
    flags_flat = flags.ravel().astype(np.uint64)
    signs_flat = signs.ravel().astype(np.uint64)
    n = flags_flat.size
    sections: list[np.ndarray] = []
    buf, _ = pack_varlen(flags_flat, np.full(n, 2, dtype=np.int64))
    sections.append(buf)
    buf, _ = pack_varlen(signs_flat, np.full(n, 1, dtype=np.int64))
    sections.append(buf)
    raw_mask = flags.ravel() == PW_FLAG_RAW
    n_raw = int(raw_mask.sum(dtype=np.int64))
    if n_raw:
        uint = _UINT[np.dtype(data.dtype)]
        bits = np.ascontiguousarray(data).ravel().view(uint)[raw_mask]
        buf, _ = pack_varlen(
            bits.astype(np.uint64),
            np.full(n_raw, uint.itemsize * 8, dtype=np.int64),
        )
        sections.append(buf)
    return b"".join(s.tobytes() for s in sections)


def pw_decode_side(
    payload: bytes | memoryview, n: int, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pw_encode_side`: ``(flags, signs, raw values)``."""
    dtype = np.dtype(dtype)
    buf = np.frombuffer(payload, dtype=np.uint8)
    flags = unpack_varlen(buf, np.full(n, 2, dtype=np.int64)).astype(np.uint8)
    if np.any(flags > PW_FLAG_RAW):
        raise ValueError("corrupt pw_rel side payload: bad flag")
    offset = 2 * n + (-2 * n) % 8
    signs = unpack_varlen(
        buf, np.full(n, 1, dtype=np.int64), bit_offset=offset
    ).astype(bool)
    offset += n + (-n) % 8
    n_raw = int((flags == PW_FLAG_RAW).sum(dtype=np.int64))
    uint = _UINT[dtype]
    if n_raw:
        raw_bits = unpack_varlen(
            buf,
            np.full(n_raw, uint.itemsize * 8, dtype=np.int64),
            bit_offset=offset,
        )
        raws = raw_bits.astype(uint.type).view(dtype)
    else:
        raws = np.zeros(0, dtype=dtype)
    return flags, signs, raws


def pw_postcondition(
    recon_logs: np.ndarray, payload: bytes | memoryview, dtype: np.dtype
) -> np.ndarray:
    """Rebuild the original-domain array from decoded logs + side channel."""
    dtype = np.dtype(dtype)
    flags, signs, raws = pw_decode_side(payload, recon_logs.size, dtype)
    flags = flags.reshape(recon_logs.shape)
    signs = signs.reshape(recon_logs.shape)
    out = _pw_reconstruct(recon_logs, signs, dtype)
    zero = flags == PW_FLAG_ZERO
    if zero.any():
        out[zero] = np.where(signs[zero], dtype.type(-0.0), dtype.type(0.0))
    raw = flags == PW_FLAG_RAW
    if raw.any():
        out[raw] = raws
    return out


# ---------------------------------------------------------------------------
# psnr: quality-targeted absolute bound
# ---------------------------------------------------------------------------


def psnr_to_abs_bound(target_db: float, value_range: float) -> float:
    """Absolute bound predicted to hit ``target_db`` (noise model).

    Quantization errors are roughly uniform on ``[-eb, eb]``, so
    ``rmse ~ eb / sqrt(3)``; inverting ``PSNR = 20 log10(R / rmse)``
    gives ``eb = sqrt(3) R 10^(-PSNR/20)``.  Optimistic by design — the
    caller verifies against the actual reconstruction.
    """
    return math.sqrt(3.0) * float(value_range) * 10.0 ** (-float(target_db) / 20.0)


def psnr_fallback_bound(target_db: float, value_range: float) -> float:
    """Absolute bound that *guarantees* ``PSNR >= target_db``.

    ``rmse <= max|error| <= eb``, so ``eb = R 10^(-target/20)`` meets
    the target unconditionally; the tiny shave covers float round-off
    in this very conversion.
    """
    return (
        float(value_range) * 10.0 ** (-float(target_db) / 20.0) * (1.0 - 1e-12)
    )
