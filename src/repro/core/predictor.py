"""Multilayer multidimensional prediction model (paper Section III).

The paper derives (Theorem 1 and Eq. 11) a unified formula predicting a
data point from its ``n``-layer neighborhood in ``d`` dimensions::

    f(x1..xd) = sum over 0 <= k1..kd <= n, k != 0 of
                - prod_j (-1)^{k_j} C(n, k_j) * V(x1-k1, ..., xd-kd)

The classic Lorenzo predictor [Ibarria et al. 2003] is the ``n = 1``
special case.  The prediction surface interpolates polynomials of total
degree up to ``2n - 1`` exactly, which is the property the test suite
verifies against randomly drawn polynomials.

This module produces the stencil (offset/coefficient pairs) consumed by
the wavefront engine, and a whole-array "prediction from original values"
used to reproduce the paper's Table II hitting-rate analysis.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb

import numpy as np

__all__ = [
    "prediction_stencil",
    "predict_from_original",
    "layer_counts",
    "unit_coeff_signs",
]


@lru_cache(maxsize=None)
def _stencil_cached(n: int, d: int) -> tuple[np.ndarray, np.ndarray]:
    if n < 1:
        raise ValueError(f"layer count must be >= 1, got {n}")
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    grids = np.meshgrid(*[np.arange(n + 1)] * d, indexing="ij")
    offsets = np.stack([g.ravel() for g in grids], axis=-1)
    offsets = offsets[offsets.any(axis=1)]  # drop the origin (0,...,0)
    binom = np.array([comb(n, k) for k in range(n + 1)], dtype=np.float64)
    signs = np.where(offsets % 2 == 0, 1.0, -1.0)
    coeffs = -np.prod(signs * binom[offsets], axis=1, dtype=np.float64)
    offsets.setflags(write=False)
    coeffs.setflags(write=False)
    return offsets, coeffs


def prediction_stencil(n: int, d: int) -> tuple[np.ndarray, np.ndarray]:
    """Offsets and coefficients of the ``n``-layer, ``d``-dimensional model.

    Returns
    -------
    offsets
        ``((n+1)^d - 1, d)`` int64 array; each row is ``(k1..kd)`` meaning
        the neighbor at ``x - k`` participates in the prediction.
    coeffs
        Matching float64 coefficients from Eq. (11).  They always sum to 1
        (a constant field is predicted exactly).
    """
    return _stencil_cached(int(n), int(d))


def unit_coeff_signs(coeffs: np.ndarray) -> np.ndarray | None:
    """Sign pattern of an all-``±1`` stencil, or ``None``.

    The ``n = 1`` (Lorenzo) stencil has coefficients that are all exactly
    ``+1.0`` or ``-1.0`` in every dimension, which lets the wavefront
    kernels accumulate the prediction with pure adds/subtracts instead of
    multiply-adds.  ``c * arm`` with ``c = ±1.0`` is bitwise ``±arm``, so
    the rewrite is exact; anything else returns ``None`` and the caller
    keeps the general multiply-accumulate.
    """
    if coeffs.size and bool((np.abs(coeffs) == 1.0).all()):
        return np.where(coeffs > 0, 1, -1).astype(np.int8)
    return None


def layer_counts(n: int, d: int) -> int:
    """Number of data points used by the ``n``-layer model (paper: n(n+2)
    for d=2)."""
    return (n + 1) ** d - 1


def predict_from_original(data: np.ndarray, n: int) -> np.ndarray:
    """Predict every point from *original* (not decompressed) neighbors.

    This is the quantity behind the paper's Table II column
    ``R_PH^orig``: the idealized hitting rate when prediction could see
    exact preceding values.  Out-of-range neighbors are treated as zero,
    which degrades gracefully to the lower-dimensional / extrapolating
    forms of the same model at the array borders.

    Parameters
    ----------
    data
        d-dimensional float array.
    n
        Number of layers.

    Returns
    -------
    float64 array of predictions, same shape as ``data``.
    """
    data = np.asarray(data)
    d = data.ndim
    offsets, coeffs = prediction_stencil(n, d)
    padded = np.zeros(tuple(s + n for s in data.shape), dtype=np.float64)
    padded[tuple(slice(n, None) for _ in range(d))] = data
    pred = np.zeros(data.shape, dtype=np.float64)
    for off, c in zip(offsets, coeffs):
        src = tuple(
            slice(n - o, n - o + s) for o, s in zip(off, data.shape)
        )
        pred += c * padded[src]
    return pred
