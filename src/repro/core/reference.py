"""Scalar reference implementation of the SZ-1.4 inner loop.

Processes points in the paper's raster order (low dimension fastest) with
plain Python loops.  It exists purely so the test suite can prove the
wavefront engine (:mod:`repro.core.wavefront`) is bit-identical to the
published sequential algorithm; never use it for real data sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import prediction_stencil
from repro.core.quantizer import UNPREDICTABLE
from repro.core.unpredictable import truncate_to_bound

__all__ = ["reference_compress", "reference_decompress"]


def reference_compress(
    data: np.ndarray, eb: float, n: int, radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Raster-order compression; returns (codes in raster order, decompressed)."""
    out_dtype = data.dtype
    cast = out_dtype.type
    offsets, coeffs = prediction_stencil(n, data.ndim)
    padded = np.zeros(tuple(s + n for s in data.shape), dtype=np.float64)
    codes = np.zeros(data.shape, dtype=np.int64)
    two_eb = 2.0 * eb
    for idx in np.ndindex(data.shape):
        pidx = tuple(i + n for i in idx)
        pred = 0.0
        for off, c in zip(offsets, coeffs):
            pred += c * padded[tuple(p - o for p, o in zip(pidx, off))]
        x = float(data[idx])
        q = np.rint((x - pred) / two_eb)
        ok = False
        if np.isfinite(x) and abs(q) < radius:
            recon = float(cast(pred + q * two_eb))
            if np.isfinite(recon) and abs(x - recon) <= eb:
                codes[idx] = int(q) + radius
                padded[pidx] = recon
                ok = True
        if not ok:
            codes[idx] = UNPREDICTABLE
            padded[pidx] = float(
                truncate_to_bound(np.array([x], dtype=out_dtype), eb)[0]
            )
    interior = tuple(slice(n, None) for _ in range(data.ndim))
    return codes, padded[interior].astype(out_dtype)


def reference_decompress(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    eb: float,
    n: int,
    radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    """Raster-order decompression matching :func:`reference_compress`.

    ``unpred_recon`` must be in raster order here (the reference pipeline
    keeps everything in raster order).
    """
    shape = codes.shape
    cast = np.dtype(out_dtype).type
    offsets, coeffs = prediction_stencil(n, codes.ndim)
    padded = np.zeros(tuple(s + n for s in shape), dtype=np.float64)
    two_eb = 2.0 * eb
    upos = 0
    for idx in np.ndindex(shape):
        pidx = tuple(i + n for i in idx)
        code = int(codes[idx])
        if code == UNPREDICTABLE:
            padded[pidx] = float(unpred_recon[upos])
            upos += 1
        else:
            pred = 0.0
            for off, c in zip(offsets, coeffs):
                pred += c * padded[tuple(p - o for p, o in zip(pidx, off))]
            padded[pidx] = float(cast(pred + (code - radius) * two_eb))
    interior = tuple(slice(n, None) for _ in range(codes.ndim))
    return padded[interior].astype(out_dtype)
