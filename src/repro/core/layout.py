"""Effective-dimensionality selection.

The multilayer stencil (Eq. 11) is symmetric under axis permutation —
transposing the array provably cannot change the hitting rate — so the
layout decision that *does* matter for this codec is how many dimensions
to predict across.  When leading-axis slices are mutually uncorrelated
(ensemble members, detector frames, far-apart snapshots), the
d-dimensional stencil reaches across slice boundaries and only adds
noise: its residual on independent slices is ~sqrt(2) times the
per-slice residual.  Treating the leading axis as a batch and
compressing each slice independently wins there, and also parallelizes
(paper §VI: independent pieces, no communication).

``suggest_batching`` measures both in-loop hitting rates on a subsample;
``compress_sliced`` / ``decompress_sliced`` wrap the per-slice mode in a
small envelope::

    'SZSL' | slice count (4) | per-slice container length (6) x count |
    containers
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import compress as _compress
from repro.core.compressor import decompress as _decompress
from repro.core.wavefront import WavefrontPlan, wavefront_compress

__all__ = ["suggest_batching", "compress_sliced", "decompress_sliced"]

_MAGIC = b"SZSL"


def _subsample(data: np.ndarray, limit: int) -> np.ndarray:
    if data.size <= limit:
        return data
    step = max(1, int(np.ceil((data.size / limit) ** (1.0 / data.ndim))))
    # never subsample the leading (batch-candidate) axis away entirely
    slices = [slice(None)] + [slice(None, None, step)] * (data.ndim - 1)
    return data[tuple(slices)]


def suggest_batching(
    data: np.ndarray,
    eb: float,
    layers: int = 1,
    sample_limit: int = 32768,
) -> bool:
    """True when per-slice compression out-predicts the full-d stencil.

    Compares the d-dimensional model against the (d-1)-dimensional model
    applied per leading-axis slice on a subsample.  The comparison uses
    the *center-interval* hitting rate (radius 1, as in the paper's
    Table II methodology): with the full 2^m-1 intervals both variants
    saturate near 100 % and the residual-width difference — which is
    what actually costs bits — would be invisible.
    """
    data = np.asarray(data)
    if data.ndim < 2 or data.shape[0] < 2:
        return False
    if eb <= 0:
        raise ValueError("error bound must be positive")
    sample = _subsample(data, sample_limit)
    plan_full = WavefrontPlan(sample.shape, layers)
    full = wavefront_compress(sample, eb, plan_full, radius=1).hit_rate
    plan_slice = WavefrontPlan(sample.shape[1:], layers)
    rates = [
        wavefront_compress(
            np.ascontiguousarray(sample[i]), eb, plan_slice, radius=1
        ).hit_rate
        for i in range(sample.shape[0])
    ]
    return float(np.mean(rates)) > full + 1e-12


def compress_sliced(
    data: np.ndarray,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    **sz_kwargs,
) -> bytes:
    """Compress each leading-axis slice as an independent container.

    A relative bound is resolved against the *global* value range first
    so every slice honors the same absolute bound (matching what the
    full-array call would guarantee).
    """
    data = np.asarray(data)
    if data.ndim < 2:
        raise ValueError("slicing needs at least 2 dimensions")
    if rel_bound is not None:
        finite = data[np.isfinite(data)]
        vrange = float(finite.max() - finite.min()) if finite.size else 0.0
        eb_from_rel = rel_bound * vrange
        abs_bound = (
            min(abs_bound, eb_from_rel) if abs_bound is not None else eb_from_rel
        )
    if abs_bound is None or abs_bound <= 0:
        raise ValueError("resolved bound must be positive")
    blobs = [
        _compress(np.ascontiguousarray(data[i]), mode="abs", bound=abs_bound, **sz_kwargs)
        for i in range(data.shape[0])
    ]
    out = bytearray(_MAGIC)
    out += len(blobs).to_bytes(4, "big")
    for blob in blobs:
        out += len(blob).to_bytes(6, "big")
    for blob in blobs:
        out += blob
    return bytes(out)


def decompress_sliced(blob: bytes) -> np.ndarray:
    """Inverse of :func:`compress_sliced`."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a sliced container")
    count = int.from_bytes(blob[4:8], "big")
    pos = 8
    lengths = []
    for _ in range(count):
        lengths.append(int.from_bytes(blob[pos : pos + 6], "big"))
        pos += 6
    slices = []
    for length in lengths:
        if pos + length > len(blob):
            raise ValueError("truncated sliced container")
        slices.append(_decompress(bytes(blob[pos : pos + length])))
        pos += length
    return np.stack(slices)
