"""Error-controlled quantization (paper Section IV-A).

The encoder expands ``2^m - 2`` second-phase predicted values around the
first-phase prediction by linear scaling of the error bound: interval
``i`` is centered at ``pred + (i - 2^(m-1)) * 2 * eb`` and has width
``2 * eb``, so any value landing in an interval is reconstructed with
error at most ``eb``.  Code ``0`` is reserved for unpredictable data;
code ``2^(m-1)`` is the center (prediction hit within ``eb``).

Unlike the *vector quantization* of NUMARCK/SSEM, intervals are uniform
and the bound holds point-wise by construction — the paper's "uniformity
and error-control" distinction.

All arithmetic runs in float64; reconstructed values are rounded through
the output dtype *before* the bound check, so the guarantee holds for the
values a decompressor will actually materialize (important for float32
data whose ulp can exceed ``eb``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interval_radius",
    "num_intervals",
    "quantize",
    "reconstruct",
    "resolve_interior_dtype",
    "UNPREDICTABLE",
]

UNPREDICTABLE = 0
"""Quantization code marking unpredictable data (paper: code 0)."""


def interval_radius(interval_bits: int) -> int:
    """Half the code range: ``2^(m-1)`` for ``m`` interval bits."""
    if not 2 <= interval_bits <= 16:
        raise ValueError(
            f"interval_bits must be in [2, 16], got {interval_bits}"
        )
    return 1 << (interval_bits - 1)


def num_intervals(interval_bits: int) -> int:
    """Number of usable quantization intervals: ``2^m - 1``."""
    return (1 << interval_bits) - 1


def resolve_interior_dtype(out_dtype: np.dtype | type) -> np.dtype:
    """Storage dtype of the padded working array for ``out_dtype`` data.

    The quantization arithmetic always runs in float64, but every value
    *stored* into the padded array has already been rounded through the
    output dtype (the reconstruction round-trip above, or the truncated
    unpredictable fallback).  For float32 output those values are exact
    float32 numbers, so storing them as float32 and upcasting on gather
    loses nothing — the prediction sums, bound checks and quantization
    codes are bit-identical while the working set halves.  Any other
    dtype (notably the float64 ``pw_rel`` log domain) keeps float64.
    """
    dt = np.dtype(out_dtype)
    return dt if dt == np.float32 else np.dtype(np.float64)


def quantize(
    values: np.ndarray,
    preds: np.ndarray,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``values`` against first-phase predictions ``preds``.

    Parameters
    ----------
    values
        Original values (float64).
    preds
        Predicted values (float64), same shape.
    eb
        Absolute error bound (> 0).
    radius
        ``2^(m-1)``; codes span ``[1, 2*radius - 1]`` for predictable data.
    out_dtype
        Dtype of the decompressed array; reconstructions are rounded
        through it before the bound check.

    Returns
    -------
    codes
        int64 array; ``UNPREDICTABLE`` (0) where the value missed every
        interval, else ``offset + radius``.
    recon
        float64 array of reconstructed values (already rounded through
        ``out_dtype``); meaningless where unpredictable.
    predictable
        boolean mask of predictable points.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        diff = values - preds
        qoff = np.rint(diff / (2.0 * eb))
        within = np.abs(qoff) < radius
        qoff = np.where(within, qoff, 0.0)  # avoid overflow on wild misses
        recon64 = preds + qoff * (2.0 * eb)
        recon = recon64.astype(out_dtype).astype(np.float64)
        predictable = (
            within
            & np.isfinite(values)
            & np.isfinite(recon)
            & (np.abs(values - recon) <= eb)
        )
    codes = np.where(predictable, qoff + radius, float(UNPREDICTABLE))
    return codes.astype(np.int64), recon, predictable


def reconstruct(
    preds: np.ndarray, codes: np.ndarray, eb: float, radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    """Rebuild predictable values from codes (inverse of :func:`quantize`).

    Entries with code ``UNPREDICTABLE`` are returned as NaN; the caller
    substitutes the separately stored unpredictable reconstructions.
    """
    qoff = codes.astype(np.float64) - radius
    recon64 = preds + qoff * (2.0 * eb)
    recon = recon64.astype(out_dtype).astype(np.float64)
    return np.where(codes == UNPREDICTABLE, np.nan, recon)
