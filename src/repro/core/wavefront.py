"""Anti-diagonal wavefront execution of the prediction/quantization loop.

The paper's Algorithm 1 processes points in raster order; each prediction
must use *preceding decompressed* values so the decompressor can replay
it.  Every stencil offset ``(k1..kd)`` of the multilayer model satisfies
``k1 + ... + kd >= 1``, so a point on the coordinate-sum hyperplane
``s = i1 + ... + id`` depends only on hyperplanes ``< s``.  Processing
hyperplanes in ascending order therefore produces *bit-identical* results
to the sequential scan, while the work inside each hyperplane is a plain
vectorized NumPy kernel — the idiomatic way to make a data-dependent scan
fast in pure Python (vectorize the inner loop; keep the short loop
outside).  ``tests/test_wavefront.py`` checks equivalence against the
scalar reference implementation point for point.

One-dimensional arrays have singleton hyperplanes, so a dedicated tight
scalar loop handles ``d == 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.core.predictor import prediction_stencil
from repro.core.quantizer import UNPREDICTABLE
from repro.core.unpredictable import truncate_to_bound
from repro.perf import stage

__all__ = ["WavefrontPlan", "wavefront_compress", "wavefront_decompress"]


@dataclass
class WavefrontResult:
    """Everything the container needs, plus compression diagnostics."""

    codes: np.ndarray  # int64, wavefront order
    unpredictable: np.ndarray  # original values, wavefront order
    decompressed: np.ndarray  # what a decompressor will reconstruct
    hit_rate: float


class WavefrontPlan:
    """Precomputed traversal order and stencil geometry for one shape.

    Plans are cheap relative to compression and cacheable per
    ``(shape, n)``; the compressor keeps a small cache.
    """

    def __init__(self, shape: tuple[int, ...], n: int) -> None:
        if any(s <= 0 for s in shape):
            raise ValueError(f"degenerate shape: {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.n = int(n)
        self.ndim = len(self.shape)
        offsets, coeffs = prediction_stencil(self.n, self.ndim)
        self.coeffs = coeffs
        self.padded_shape = tuple(s + self.n for s in self.shape)
        if self.ndim == 1:
            # 1-D uses the dedicated scalar kernels; no traversal tables.
            self.deltas = np.zeros(0, dtype=np.int64)
            self.order = np.arange(self.shape[0], dtype=np.int64)
            self.groups = []
            self.pad_flat = np.zeros(0, dtype=np.int64)
            return
        # C-order element strides of the padded array.
        pad_strides = np.ones(self.ndim, dtype=np.int64)
        for axis in range(self.ndim - 2, -1, -1):
            pad_strides[axis] = pad_strides[axis + 1] * self.padded_shape[axis + 1]
        # Flat-index displacement in the padded array for each stencil arm.
        self.deltas = offsets @ pad_strides
        # Traversal: stable sort of flat indices by coordinate sum.
        coord_sum = reduce(
            np.add.outer, [np.arange(s, dtype=np.int32) for s in self.shape]
        ).ravel()
        self.order = np.argsort(coord_sum, kind="stable")
        sums = coord_sum[self.order]
        max_sum = int(sums[-1])
        bounds = np.searchsorted(sums, np.arange(max_sum + 2))
        self.groups = [
            (int(bounds[s]), int(bounds[s + 1])) for s in range(max_sum + 1)
        ]
        # Padded flat index of every point, in wavefront order.
        coords = np.unravel_index(self.order, self.shape)
        pad_flat = np.zeros(self.order.size, dtype=np.int64)
        for axis in range(self.ndim):
            pad_flat += (coords[axis].astype(np.int64) + self.n) * pad_strides[axis]
        self.pad_flat = pad_flat


def wavefront_compress(
    data: np.ndarray,
    eb: float,
    plan: WavefrontPlan,
    radius: int,
) -> WavefrontResult:
    """Run prediction + error-controlled quantization over ``data``.

    Returns codes and unpredictable originals in wavefront order, plus the
    exact array a decompressor will reconstruct.
    """
    with stage("quantize", nbytes=data.nbytes):
        return _wavefront_compress(data, eb, plan, radius)


def _wavefront_compress(
    data: np.ndarray,
    eb: float,
    plan: WavefrontPlan,
    radius: int,
) -> WavefrontResult:
    if data.ndim == 1:
        return _compress_1d(data, eb, plan.n, radius)
    out_dtype = data.dtype
    values_orig_wf = data.reshape(-1)[plan.order]
    values_wf = values_orig_wf.astype(np.float64)
    padded = np.zeros(plan.padded_shape, dtype=np.float64)
    pflat = padded.reshape(-1)
    codes = np.zeros(values_wf.size, dtype=np.int64)
    unpred_chunks: list[np.ndarray] = []
    coeffs, deltas, pad_flat = plan.coeffs, plan.deltas, plan.pad_flat
    # Hoisted out of the per-hyperplane loop: the finite mask of the whole
    # field (one pass instead of one per group) and the errstate guard
    # (entering/leaving it ~200 times dominates small hyperplanes).
    finite_wf = np.isfinite(values_wf)
    all_finite = bool(finite_wf.all())
    two_eb = 2.0 * eb
    fradius = float(radius)
    with np.errstate(invalid="ignore", over="ignore"):
        for start, end in plan.groups:
            base = pad_flat[start:end]
            x = values_wf[start:end]
            # One fancy-index gather for all stencil arms; accumulation
            # order matches the scalar formulation exactly (bit-identical
            # prediction sums).
            neighbours = pflat[base - deltas[:, None]]
            pred = np.zeros(end - start, dtype=np.float64)
            for k in range(len(coeffs)):
                pred += coeffs[k] * neighbours[k]
            # Inlined error-controlled quantization (same operations, in
            # the same order, as repro.core.quantizer.quantize — kept
            # bit-identical; see tests/test_wavefront.py).
            diff = x - pred
            diff /= two_eb
            qoff = np.rint(diff)
            within = np.abs(qoff) < fradius
            qoff[~within] = 0.0  # avoid overflow on wild misses
            recon = pred + qoff * two_eb
            recon = recon.astype(out_dtype).astype(np.float64)
            ok = within
            if not all_finite:
                ok &= finite_wf[start:end]
            ok &= np.isfinite(recon)
            ok &= np.abs(x - recon) <= eb
            g_codes = (qoff + fradius).astype(np.int64)
            if ok.all():
                codes[start:end] = g_codes
            else:
                miss = ~ok
                g_codes[miss] = 0
                codes[start:end] = g_codes
                originals = values_orig_wf[start:end][miss]
                unpred_chunks.append(originals)
                recon[miss] = truncate_to_bound(originals, eb).astype(
                    np.float64
                )
            pflat[base] = recon

    unpredictable = (
        np.concatenate(unpred_chunks)
        if unpred_chunks
        else np.zeros(0, dtype=out_dtype)
    )
    interior = tuple(slice(plan.n, None) for _ in range(data.ndim))
    decompressed = padded[interior].astype(out_dtype)
    hit_rate = 1.0 - unpredictable.size / max(1, data.size)
    return WavefrontResult(codes, unpredictable, decompressed, hit_rate)


def wavefront_decompress(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    plan: WavefrontPlan,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    """Replay prediction from codes; inverse of :func:`wavefront_compress`."""
    n_out = 1
    for s in plan.shape:
        n_out *= s
    with stage("dequantize", nbytes=n_out * np.dtype(out_dtype).itemsize):
        return _wavefront_decompress(
            codes, unpred_recon, plan, eb, radius, out_dtype
        )


def _wavefront_decompress(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    plan: WavefrontPlan,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    if len(plan.shape) == 1:
        return _decompress_1d(
            codes, unpred_recon, plan.shape[0], plan.n, eb, radius, out_dtype
        )
    padded = np.zeros(plan.padded_shape, dtype=np.float64)
    pflat = padded.reshape(-1)
    coeffs, deltas, pad_flat = plan.coeffs, plan.deltas, plan.pad_flat
    unpred_recon64 = unpred_recon.astype(np.float64)
    upos = 0
    two_eb = 2.0 * eb
    for start, end in plan.groups:
        base = pad_flat[start:end]
        g_codes = codes[start:end]
        # Single gather + ordered accumulation: bit-identical to the
        # per-arm formulation (and to the compressor's prediction chain).
        neighbours = pflat[base - deltas[:, None]]
        pred = np.zeros(end - start, dtype=np.float64)
        for k in range(len(coeffs)):
            pred += coeffs[k] * neighbours[k]
        qoff = g_codes.astype(np.float64) - radius
        recon = (pred + qoff * two_eb).astype(out_dtype).astype(np.float64)
        miss = g_codes == UNPREDICTABLE
        nmiss = int(miss.sum(dtype=np.int64))
        if nmiss:
            recon[miss] = unpred_recon64[upos : upos + nmiss]
            upos += nmiss
        pflat[base] = recon
    if upos != unpred_recon.size:
        raise ValueError(
            "corrupt stream: unpredictable-value count mismatch "
            f"({upos} consumed, {unpred_recon.size} stored)"
        )
    interior = tuple(slice(plan.n, None) for _ in range(len(plan.shape)))
    return padded[interior].astype(out_dtype)


def _compress_1d(
    data: np.ndarray, eb: float, n: int, radius: int
) -> WavefrontResult:
    """Sequential scalar kernel for 1-D arrays (singleton hyperplanes)."""
    out_dtype = data.dtype
    coeffs = prediction_stencil(n, 1)[1].tolist()
    x64 = data.astype(np.float64)
    N = x64.size
    dec = np.zeros(N + n, dtype=np.float64)  # n-element zero prologue
    codes = np.zeros(N, dtype=np.int64)
    unpred_idx: list[int] = []
    two_eb = 2.0 * eb
    xs = x64.tolist()
    cast = out_dtype.type
    for i in range(N):
        pred = 0.0
        for k in range(n):
            pred += coeffs[k] * dec[i + n - 1 - k]
        x = xs[i]
        d = (x - pred) / two_eb
        # The range gate is also the NaN/Inf guard: a non-finite x (or a
        # prediction poisoned by a raw-stored Inf neighbour) fails the
        # comparison and falls through to the unpredictable path, exactly
        # like the vectorized N-d kernel.
        if -radius < d < radius:
            q = round(d)
            if -radius < q < radius:
                recon = float(cast(pred + q * two_eb))
                if abs(x - recon) <= eb and np.isfinite(recon):
                    codes[i] = q + radius
                    dec[i + n] = recon
                    continue
        unpred_idx.append(i)
        dec[i + n] = float(
            truncate_to_bound(np.array([x], dtype=out_dtype), eb)[0]
        )
    unpredictable = data[np.array(unpred_idx, dtype=np.int64)] if unpred_idx else np.zeros(0, dtype=out_dtype)
    decompressed = dec[n:].astype(out_dtype)
    hit_rate = 1.0 - len(unpred_idx) / max(1, N)
    return WavefrontResult(codes, unpredictable, decompressed, hit_rate)


def _decompress_1d(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    N: int,
    n: int,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    coeffs = prediction_stencil(n, 1)[1].tolist()
    dec = np.zeros(N + n, dtype=np.float64)
    codes_l = codes.tolist()
    unpred64 = unpred_recon.astype(np.float64).tolist()
    upos = 0
    two_eb = 2.0 * eb
    cast = np.dtype(out_dtype).type
    for i in range(N):
        code = codes_l[i]
        if code == UNPREDICTABLE:
            dec[i + n] = unpred64[upos]
            upos += 1
        else:
            pred = 0.0
            for k in range(n):
                pred += coeffs[k] * dec[i + n - 1 - k]
            dec[i + n] = float(cast(pred + (code - radius) * two_eb))
    if upos != len(unpred64):
        raise ValueError("corrupt stream: unpredictable-value count mismatch")
    return dec[n:].astype(out_dtype)
