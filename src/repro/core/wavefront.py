"""Anti-diagonal wavefront execution of the prediction/quantization loop.

The paper's Algorithm 1 processes points in raster order; each prediction
must use *preceding decompressed* values so the decompressor can replay
it.  Every stencil offset ``(k1..kd)`` of the multilayer model satisfies
``k1 + ... + kd >= 1``, so a point on the coordinate-sum hyperplane
``s = i1 + ... + id`` depends only on hyperplanes ``< s``.  Processing
hyperplanes in ascending order therefore produces *bit-identical* results
to the sequential scan, while the work inside each hyperplane is a plain
vectorized NumPy kernel — the idiomatic way to make a data-dependent scan
fast in pure Python (vectorize the inner loop; keep the short loop
outside).

Kernel-level optimizations, each pinned byte-identical by
``tests/test_wavefront_identity.py`` against the scalar reference:

* **wavefront-order storage + grouped flat-index tables** — instead of a
  padded d-dimensional working array (which forces a fancy-index scatter
  per plane), reconstructions live in a flat array in wavefront order
  with one extra leading slot holding the padding zero.  Writing a
  finished plane is then a contiguous slice store, and
  :class:`WavefrontPlan` precomputes one contiguous ``(arms, plane)``
  int64 gather table per hyperplane so the hot loop issues a single
  ``take`` per plane.  The tables persist with the plan in the
  compressor's plan cache.
* **reduced-footprint interior** — the working array stores ``float32``
  when :func:`repro.core.quantizer.resolve_interior_dtype` decides the
  input dtype allows it.  Every stored value has already been rounded
  through the output dtype, so the float32 store is exact and the
  float64 upcast on gather reproduces the full-precision arithmetic bit
  for bit; anything else falls back to float64.
* **scratch-buffer reuse** — per-plane temporaries are preallocated at
  the maximum plane size and every ufunc writes through ``out=``; the
  accumulation *order* of the prediction sum is preserved exactly
  (including the ``+0.0`` start that normalizes signed zeros).

Large multi-dimensional arrays can additionally split each hyperplane
across a process pool (``workers > 1``); see
:mod:`repro.core.wavefront_pool`.  One-dimensional arrays have singleton
hyperplanes, so a dedicated tight scalar loop handles ``d == 1``.
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.core.predictor import prediction_stencil, unit_coeff_signs
from repro.core.quantizer import UNPREDICTABLE, resolve_interior_dtype
from repro.core.unpredictable import truncate_to_bound
from repro.perf import stage

__all__ = ["WavefrontPlan", "wavefront_compress", "wavefront_decompress"]

#: Upper bound on precomputed gather-table memory per plan.  Beyond this
#: the kernels rebuild each plane's indices on the fly (identical output,
#: slightly slower) instead of pinning hundreds of MB in the plan cache.
_TABLE_BYTES_MAX = 128 * 1024 * 1024

#: Minimum number of points before ``workers > 1`` actually splits the
#: wavefront across processes; below it the serial kernel always wins.
_SPLIT_MIN_POINTS = 1 << 21


class WavefrontResult:
    """Everything the container needs, plus compression diagnostics.

    ``decompressed`` — the exact array a decompressor will reconstruct —
    is materialized lazily from the wavefront-order working array: the
    plain ``abs``/``rel`` encode path never reads it, while ``pw_rel`` /
    ``psnr`` verification does.
    """

    __slots__ = (
        "codes", "unpredictable", "hit_rate",
        "_decompressed", "_dec_wf", "_plan", "_out_dtype",
    )

    def __init__(
        self,
        codes: np.ndarray,
        unpredictable: np.ndarray,
        decompressed: np.ndarray | None,
        hit_rate: float,
        *,
        dec_wf: np.ndarray | None = None,
        plan: WavefrontPlan | None = None,
        out_dtype: np.dtype | None = None,
    ) -> None:
        self.codes = codes
        self.unpredictable = unpredictable
        self.hit_rate = hit_rate
        self._decompressed = decompressed
        self._dec_wf = dec_wf
        self._plan = plan
        self._out_dtype = out_dtype

    @property
    def decompressed(self) -> np.ndarray:
        if self._decompressed is None:
            self._decompressed = _wavefront_to_raster(
                self._dec_wf, self._plan, self._out_dtype
            )
            self._dec_wf = None  # free the working copy
        return self._decompressed


def _wavefront_to_raster(
    dec_wf: np.ndarray, plan: WavefrontPlan, out_dtype: np.dtype
) -> np.ndarray:
    """Scatter the wavefront-order reconstruction back to raster order."""
    out = np.empty(plan.order.size, dtype=dec_wf.dtype)
    out[plan.order] = dec_wf[1:]
    return out.reshape(plan.shape).astype(out_dtype)


class WavefrontPlan:
    """Precomputed traversal order and stencil geometry for one shape.

    Plans are cheap relative to compression and cacheable per
    ``(shape, n, dtype)`` — the dtype is part of the identity because the
    plan fixes the working array's ``interior_dtype``; the compressor
    keeps a small cache keyed accordingly.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        n: int,
        dtype: np.dtype | type = np.float64,
        *,
        with_tables: bool = True,
    ) -> None:
        if any(s <= 0 for s in shape):
            raise ValueError(f"degenerate shape: {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.n = int(n)
        self.ndim = len(self.shape)
        self.dtype = np.dtype(dtype)
        self.interior_dtype = resolve_interior_dtype(self.dtype)
        offsets, coeffs = prediction_stencil(self.n, self.ndim)
        self.coeffs = coeffs
        self.signs = unit_coeff_signs(coeffs)
        self.padded_shape = tuple(s + self.n for s in self.shape)
        self.gather_tables: list[np.ndarray] | None = None
        self.table_bytes = 0
        if self.ndim == 1:
            # 1-D uses the dedicated scalar kernels; no traversal tables.
            self.deltas = np.zeros(0, dtype=np.int64)
            self.order = np.arange(self.shape[0], dtype=np.int64)
            self.groups: list[tuple[int, int]] = []
            self.pad_flat = np.zeros(0, dtype=np.int64)
            self.wf_pos = np.zeros(0, dtype=np.int64)
            self.max_group = 0
            return
        # C-order element strides of the padded index space.
        pad_strides = np.ones(self.ndim, dtype=np.int64)
        for axis in range(self.ndim - 2, -1, -1):
            pad_strides[axis] = pad_strides[axis + 1] * self.padded_shape[axis + 1]
        # Flat-index displacement in padded space for each stencil arm.
        self.deltas = offsets @ pad_strides
        # Traversal: stable sort of flat indices by coordinate sum.
        coord_sum = reduce(
            np.add.outer, [np.arange(s, dtype=np.int32) for s in self.shape]
        ).ravel()
        self.order = np.argsort(coord_sum, kind="stable")
        sums = coord_sum[self.order]
        max_sum = int(sums[-1])
        bounds = np.searchsorted(sums, np.arange(max_sum + 2))
        self.groups = [
            (int(bounds[s]), int(bounds[s + 1])) for s in range(max_sum + 1)
        ]
        self.max_group = max(e - s for s, e in self.groups)
        # Padded flat index of every point, in wavefront order.
        coords = np.unravel_index(self.order, self.shape)
        n_points = self.order.size
        pad_flat = np.zeros(n_points, dtype=np.int64)
        for axis in range(self.ndim):
            pad_flat += (coords[axis].astype(np.int64) + self.n) * pad_strides[axis]
        self.pad_flat = pad_flat
        # Map padded flat index -> wavefront storage slot.  Slot 0 of the
        # working array is the permanent padding zero; data points live at
        # wavefront position + 1.
        padded_size = 1
        for s in self.padded_shape:
            padded_size *= s
        wf_pos = np.zeros(padded_size, dtype=np.int64)
        wf_pos[pad_flat] = np.arange(1, n_points + 1, dtype=np.int64)
        self.wf_pos = wf_pos
        if with_tables:
            self._build_gather_tables()

    def _build_gather_tables(self) -> None:
        """Precompute one contiguous gather table per hyperplane.

        ``gather_tables[g][k, i]`` is the wavefront-storage slot of
        stencil arm ``k`` for the ``i``-th point of hyperplane ``g`` —
        int64 indices ``take`` consumes directly (int64 *is* the fast
        path: smaller index dtypes get converted per call).  Skipped when
        the tables would exceed the memory budget; the kernels then fall
        back to :meth:`plane_table` per plane.
        """
        arms = int(self.deltas.size)
        total = arms * self.pad_flat.size * 8
        if total > _TABLE_BYTES_MAX:
            return
        neighbour_flat = self.pad_flat[None, :] - self.deltas[:, None]
        slots = self.wf_pos[neighbour_flat]
        self.gather_tables = [
            np.ascontiguousarray(slots[:, s:e]) for s, e in self.groups
        ]
        self.table_bytes = total

    def plane_table(self, start: int, end: int) -> np.ndarray:
        """Gather table for one hyperplane, built on the fly (fallback)."""
        return self.wf_pos[self.pad_flat[start:end] - self.deltas[:, None]]


def wavefront_compress(
    data: np.ndarray,
    eb: float,
    plan: WavefrontPlan,
    radius: int,
    workers: int = 1,
) -> WavefrontResult:
    """Run prediction + error-controlled quantization over ``data``.

    Returns codes and unpredictable originals in wavefront order, plus
    (lazily) the exact array a decompressor will reconstruct.
    ``workers > 1`` splits each hyperplane across a process pool for
    large multi-dimensional arrays (byte-identical output; see
    :mod:`repro.core.wavefront_pool`).
    """
    with stage("quantize", nbytes=data.nbytes):
        if workers > 1 and data.ndim >= 2 and data.size >= _SPLIT_MIN_POINTS:
            from repro.core.wavefront_pool import pool_wavefront_compress

            return pool_wavefront_compress(data, eb, plan, radius, workers)
        return _wavefront_compress(data, eb, plan, radius)


def _effective_interior(plan: WavefrontPlan, out_dtype: np.dtype) -> np.dtype:
    """Interior dtype actually used by a kernel run.

    The plan's ``interior_dtype`` applies only when the plan was built
    for this output dtype; a mismatched plan (possible when callers
    construct plans directly) falls back to float64, which is always
    byte-identical.
    """
    want = resolve_interior_dtype(out_dtype)
    return want if plan.interior_dtype == want else np.dtype(np.float64)


def _wavefront_compress(
    data: np.ndarray,
    eb: float,
    plan: WavefrontPlan,
    radius: int,
) -> WavefrontResult:
    if data.ndim == 1:
        return _compress_1d(data, eb, plan.n, radius)
    out_dtype = data.dtype
    idt = _effective_interior(plan, out_dtype)
    store_f32 = idt == np.float32
    f32_out = out_dtype == np.float32
    values_orig_wf = data.reshape(-1).take(plan.order)
    values_wf = (
        values_orig_wf
        if out_dtype == np.float64
        else values_orig_wf.astype(np.float64)
    )
    n_points = values_wf.size
    dec_wf = np.zeros(n_points + 1, dtype=idt)  # slot 0: padding zero
    # Deferred code materialization: raw quantization offsets and the
    # predictable mask accumulate per plane; one vectorized epilogue
    # turns them into codes (cheaper than per-plane int casts).
    qall = np.empty(n_points, dtype=np.float64)
    ok_all = np.empty(n_points, dtype=bool)
    unpred_chunks: list[np.ndarray] = []
    coeffs, signs, tables = plan.coeffs, plan.signs, plan.gather_tables
    # Finiteness of the whole field in two reductions (min/max are NaN-
    # and Inf-poisoning), avoiding the full isfinite mask when clean.
    vmin, vmax = values_wf.min(), values_wf.max()
    all_finite = bool(np.isfinite(vmin)) and bool(np.isfinite(vmax))
    finite_wf = None if all_finite else np.isfinite(values_wf)
    two_eb = 2.0 * eb
    fradius = float(radius)
    # Scratch buffers at the maximum plane size; every per-plane ufunc
    # writes through out= into contiguous views of these.
    msize = plan.max_group
    pred_s = np.empty(msize, dtype=np.float64)
    tmp_s = np.empty(msize, dtype=np.float64)
    diff_s = np.empty(msize, dtype=np.float64)
    mask_s = np.empty(msize, dtype=bool)
    rc_s = np.empty(msize, dtype=np.float32) if f32_out else None
    with np.errstate(invalid="ignore", over="ignore"):
        for gi, (start, end) in enumerate(plan.groups):
            m = end - start
            tab = tables[gi] if tables is not None else plan.plane_table(start, end)
            gathered = dec_wf.take(tab)
            nbr = gathered.astype(np.float64) if store_f32 else gathered
            pred = pred_s[:m]
            pred.fill(0.0)
            if signs is not None:
                # All-±1 stencil (n == 1): pure adds/subtracts, starting
                # from true zero — bit-identical to `pred += c * arm`.
                for k in range(len(signs)):
                    if signs[k] > 0:
                        np.add(pred, nbr[k], out=pred)
                    else:
                        np.subtract(pred, nbr[k], out=pred)
            else:
                tmp = tmp_s[:m]
                for k in range(len(coeffs)):
                    np.multiply(nbr[k], coeffs[k], out=tmp)
                    np.add(pred, tmp, out=pred)
            # Inlined error-controlled quantization (same operations, in
            # the same order, as repro.core.quantizer.quantize — kept
            # bit-identical; pinned by tests/test_wavefront_identity.py).
            x = values_wf[start:end]
            qoff = qall[start:end]
            diff = diff_s[:m]
            np.subtract(x, pred, out=diff)
            np.divide(diff, two_eb, out=diff)
            np.rint(diff, out=qoff)
            ok = ok_all[start:end]
            np.abs(qoff, out=diff)
            np.less(diff, fradius, out=ok)  # ok = within the code range
            np.multiply(qoff, two_eb, out=diff)
            np.add(pred, diff, out=diff)  # diff = recon, pre-rounding
            if f32_out:
                rc = rc_s[:m]
                rc[...] = diff  # round through the output dtype
                recon = rc
            else:
                recon = diff  # float64 out: rounding is the identity
            err = tmp_s[:m]
            np.subtract(x, recon, out=err)  # f32 operand upcasts exactly
            np.abs(err, out=err)
            bounded = mask_s[:m]
            np.less_equal(err, eb, out=bounded)
            np.logical_and(ok, bounded, out=ok)
            # |x - recon| <= eb already implies recon (and x) finite; only
            # a field with non-finite values needs the explicit mask.
            if finite_wf is not None:
                np.logical_and(ok, finite_wf[start:end], out=ok)
            if f32_out and not store_f32:
                # Fallback (plan built for another dtype): float64 working
                # array holding values rounded through float32.
                recon = diff
                recon[...] = rc
            if not ok.all():
                miss = mask_s[:m]
                np.logical_not(ok, out=miss)
                originals = values_orig_wf[start:end][miss]
                unpred_chunks.append(originals)
                recon[miss] = truncate_to_bound(originals, eb)
            dec_wf[1 + start : 1 + end] = recon

    codes, unpredictable = _materialize_codes(
        qall, ok_all, unpred_chunks, fradius, out_dtype
    )
    hit_rate = 1.0 - unpredictable.size / max(1, n_points)
    return WavefrontResult(
        codes, unpredictable, None, hit_rate,
        dec_wf=dec_wf, plan=plan, out_dtype=out_dtype,
    )


def _materialize_codes(
    qall: np.ndarray,
    ok_all: np.ndarray,
    unpred_chunks: list[np.ndarray],
    fradius: float,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Turn accumulated offsets + predictable mask into final codes."""
    if unpred_chunks:
        miss_all = np.logical_not(ok_all)
        # Wild offsets (outside the code range) sit at miss positions;
        # zero them before the int cast to avoid undefined conversions.
        np.copyto(qall, 0.0, where=miss_all)
        codes = np.add(qall, fradius, out=qall).astype(np.int64)
        codes[miss_all] = UNPREDICTABLE
        unpredictable = np.concatenate(unpred_chunks)
    else:
        codes = np.add(qall, fradius, out=qall).astype(np.int64)
        unpredictable = np.zeros(0, dtype=out_dtype)
    return codes, unpredictable


def wavefront_decompress(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    plan: WavefrontPlan,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
    workers: int = 1,
) -> np.ndarray:
    """Replay prediction from codes; inverse of :func:`wavefront_compress`."""
    n_out = 1
    for s in plan.shape:
        n_out *= s
    with stage("dequantize", nbytes=n_out * np.dtype(out_dtype).itemsize):
        if workers > 1 and len(plan.shape) >= 2 and n_out >= _SPLIT_MIN_POINTS:
            from repro.core.wavefront_pool import pool_wavefront_decompress

            return pool_wavefront_decompress(
                codes, unpred_recon, plan, eb, radius, out_dtype, workers
            )
        return _wavefront_decompress(
            codes, unpred_recon, plan, eb, radius, out_dtype
        )


def _wavefront_decompress(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    plan: WavefrontPlan,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    if len(plan.shape) == 1:
        return _decompress_1d(
            codes, unpred_recon, plan.shape[0], plan.n, eb, radius, out_dtype
        )
    out_dtype = np.dtype(out_dtype)
    idt = _effective_interior(plan, out_dtype)
    store_f32 = idt == np.float32
    f32_out = out_dtype == np.float32
    n_points = plan.order.size
    dec_wf = np.zeros(n_points + 1, dtype=idt)
    coeffs, signs, tables = plan.coeffs, plan.signs, plan.gather_tables
    miss_all = codes == UNPREDICTABLE
    total_miss = int(miss_all.sum(dtype=np.int64))
    unpred_vals = (
        unpred_recon
        if unpred_recon.dtype == idt
        else unpred_recon.astype(idt)
    )
    upos = 0
    two_eb = 2.0 * eb
    fradius = float(radius)
    msize = plan.max_group
    pred_s = np.empty(msize, dtype=np.float64)
    tmp_s = np.empty(msize, dtype=np.float64)
    work_s = np.empty(msize, dtype=np.float64)
    rc_s = np.empty(msize, dtype=np.float32) if f32_out else None
    for gi, (start, end) in enumerate(plan.groups):
        m = end - start
        tab = tables[gi] if tables is not None else plan.plane_table(start, end)
        gathered = dec_wf.take(tab)
        nbr = gathered.astype(np.float64) if store_f32 else gathered
        pred = pred_s[:m]
        pred.fill(0.0)
        if signs is not None:
            for k in range(len(signs)):
                if signs[k] > 0:
                    np.add(pred, nbr[k], out=pred)
                else:
                    np.subtract(pred, nbr[k], out=pred)
        else:
            tmp = tmp_s[:m]
            for k in range(len(coeffs)):
                np.multiply(nbr[k], coeffs[k], out=tmp)
                np.add(pred, tmp, out=pred)
        work = work_s[:m]
        work[...] = codes[start:end]  # int64 -> float64 cast
        np.subtract(work, fradius, out=work)
        np.multiply(work, two_eb, out=work)
        np.add(pred, work, out=work)  # work = recon, pre-rounding
        if f32_out:
            rc = rc_s[:m]
            rc[...] = work  # round through the output dtype
            recon = rc
        else:
            recon = work
        if f32_out and not store_f32:
            recon = work
            recon[...] = rc
        if total_miss:
            mask = miss_all[start:end]
            nmiss = int(mask.sum(dtype=np.int64))
            if nmiss:
                recon[mask] = unpred_vals[upos : upos + nmiss]
                upos += nmiss
        dec_wf[1 + start : 1 + end] = recon
    if upos != unpred_recon.size:
        raise ValueError(
            "corrupt stream: unpredictable-value count mismatch "
            f"({upos} consumed, {unpred_recon.size} stored)"
        )
    return _wavefront_to_raster(dec_wf, plan, out_dtype)


def _compress_1d(
    data: np.ndarray, eb: float, n: int, radius: int
) -> WavefrontResult:
    """Sequential scalar kernel for 1-D arrays (singleton hyperplanes)."""
    out_dtype = data.dtype
    coeffs = prediction_stencil(n, 1)[1].tolist()
    x64 = data.astype(np.float64)
    N = x64.size
    dec = np.zeros(N + n, dtype=np.float64)  # n-element zero prologue
    codes = np.zeros(N, dtype=np.int64)
    unpred_idx: list[int] = []
    two_eb = 2.0 * eb
    xs = x64.tolist()
    cast = out_dtype.type
    for i in range(N):
        pred = 0.0
        for k in range(n):
            pred += coeffs[k] * dec[i + n - 1 - k]
        x = xs[i]
        d = (x - pred) / two_eb
        # The range gate is also the NaN/Inf guard: a non-finite x (or a
        # prediction poisoned by a raw-stored Inf neighbour) fails the
        # comparison and falls through to the unpredictable path, exactly
        # like the vectorized N-d kernel.
        if -radius < d < radius:
            q = round(d)
            if -radius < q < radius:
                recon = float(cast(pred + q * two_eb))
                if abs(x - recon) <= eb and np.isfinite(recon):
                    codes[i] = q + radius
                    dec[i + n] = recon
                    continue
        unpred_idx.append(i)
        dec[i + n] = float(
            truncate_to_bound(np.array([x], dtype=out_dtype), eb)[0]
        )
    unpredictable = data[np.array(unpred_idx, dtype=np.int64)] if unpred_idx else np.zeros(0, dtype=out_dtype)
    decompressed = dec[n:].astype(out_dtype)
    hit_rate = 1.0 - len(unpred_idx) / max(1, N)
    return WavefrontResult(codes, unpredictable, decompressed, hit_rate)


def _decompress_1d(
    codes: np.ndarray,
    unpred_recon: np.ndarray,
    N: int,
    n: int,
    eb: float,
    radius: int,
    out_dtype: np.dtype,
) -> np.ndarray:
    coeffs = prediction_stencil(n, 1)[1].tolist()
    dec = np.zeros(N + n, dtype=np.float64)
    codes_l = codes.tolist()
    unpred64 = unpred_recon.astype(np.float64).tolist()
    upos = 0
    two_eb = 2.0 * eb
    cast = np.dtype(out_dtype).type
    for i in range(N):
        code = codes_l[i]
        if code == UNPREDICTABLE:
            dec[i + n] = unpred64[upos]
            upos += 1
        else:
            pred = 0.0
            for k in range(n):
                pred += coeffs[k] * dec[i + n - 1 - k]
            dec[i + n] = float(cast(pred + (code - radius) * two_eb))
    if upos != len(unpred64):
        raise ValueError("corrupt stream: unpredictable-value count mismatch")
    return dec[n:].astype(out_dtype)
