"""Binary-representation analysis for unpredictable values (SZ-1.1, [9]).

Values that miss every quantization interval are stored individually, but
not at full width: given the absolute error bound ``eb``, only enough
leading mantissa bits are kept that the truncation error stays below
``eb``.  The required bit count is a pure function of the value's IEEE
exponent and ``eb``, so it need not be stored — the decoder recomputes it.

Per-value layout (three bit-packed sections, vectorized both ways):

=======  ========================================================
flag(2)  0: ``|v| <= eb`` — reconstruct 0.0, nothing else stored
         1: normal — sign(1) + raw exponent (8/11), then ``t``
            leading mantissa bits where
            ``t = clip(e_unbiased - floor(log2 eb) + 1, 0, MANT)``
         2: raw — NaN/Inf (or decoder-unsupported), full IEEE bits
=======  ========================================================

Truncating the mantissa to ``t`` bits leaves an error strictly below
``2^(e - t) <= 2^(floor(log2 eb) - 1) < eb`` (the ``+1`` also covers the
subnormal case where the effective exponent is ``1 - bias``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.encoding.bitio import pack_varlen, unpack_varlen

__all__ = ["encode_unpredictable", "decode_unpredictable", "truncate_to_bound"]

_FLAG_ZERO = 0
_FLAG_NORMAL = 1
_FLAG_RAW = 2


@dataclass(frozen=True)
class _Layout:
    uint: np.dtype
    total_bits: int
    exp_bits: int
    mant_bits: int
    bias: int


_LAYOUTS = {
    np.dtype(np.float32): _Layout(np.dtype(np.uint32), 32, 8, 23, 127),
    np.dtype(np.float64): _Layout(np.dtype(np.uint64), 64, 11, 52, 1023),
}


def _layout(dtype: np.dtype) -> _Layout:
    try:
        return _LAYOUTS[np.dtype(dtype)]
    except KeyError:
        raise ValueError(f"unsupported float dtype: {dtype}") from None


def _split_fields(bits: np.ndarray, lo: _Layout):
    sign = (bits >> np.uint64(lo.total_bits - 1)).astype(np.uint64) & np.uint64(1)
    exp = (bits.astype(np.uint64) >> np.uint64(lo.mant_bits)) & np.uint64(
        (1 << lo.exp_bits) - 1
    )
    mant = bits.astype(np.uint64) & np.uint64((1 << lo.mant_bits) - 1)
    return sign, exp, mant


def _required_bits(exp_raw: np.ndarray, eb: float, lo: _Layout) -> np.ndarray:
    """Mantissa bits to keep so truncation error < eb (vectorized)."""
    eb_floor = math.floor(math.log2(eb))
    e_unb = np.where(
        exp_raw == 0, 1 - lo.bias, exp_raw.astype(np.int64) - lo.bias
    )
    return np.clip(e_unb - eb_floor + 1, 0, lo.mant_bits).astype(np.int64)


def _classify(values: np.ndarray, eb: float, lo: _Layout):
    bits = values.view(lo.uint).astype(np.uint64)
    sign, exp, mant = _split_fields(bits, lo)
    is_raw = ~np.isfinite(values)
    is_zero = (~is_raw) & (np.abs(values) <= eb)
    is_normal = ~(is_raw | is_zero)
    return bits, sign, exp, mant, is_zero, is_normal, is_raw


def truncate_to_bound(values: np.ndarray, eb: float) -> np.ndarray:
    """Reconstructions the decoder will produce, without building a payload.

    The wavefront compressor calls this inline so subsequent predictions
    see exactly the values a decompressor will see.
    """
    values = np.asarray(values)
    lo = _layout(values.dtype)
    if eb <= 0:
        raise ValueError("error bound must be positive")
    bits, sign, exp, mant, is_zero, is_normal, is_raw = _classify(values, eb, lo)
    t = _required_bits(exp, eb, lo)
    keep_shift = (lo.mant_bits - t).astype(np.uint64)
    mant_trunc = (mant >> keep_shift) << keep_shift
    rebuilt = (
        (sign << np.uint64(lo.total_bits - 1))
        | (exp << np.uint64(lo.mant_bits))
        | mant_trunc
    )
    out = rebuilt.astype(lo.uint.type).view(values.dtype)
    out = np.where(is_zero, values.dtype.type(0), out)
    return np.where(is_raw, values, out)


def encode_unpredictable(values: np.ndarray, eb: float) -> tuple[bytes, np.ndarray]:
    """Encode unpredictable values; returns ``(payload, reconstructions)``.

    ``reconstructions`` equals :func:`truncate_to_bound` of the input and
    is bit-identical to what :func:`decode_unpredictable` will return.
    """
    values = np.ascontiguousarray(values)
    lo = _layout(values.dtype)
    if eb <= 0:
        raise ValueError("error bound must be positive")
    n = values.size
    if n == 0:
        return b"", values.copy()
    bits, sign, exp, mant, is_zero, is_normal, is_raw = _classify(values, eb, lo)
    flags = np.full(n, _FLAG_ZERO, dtype=np.uint64)
    flags[is_normal] = _FLAG_NORMAL
    flags[is_raw] = _FLAG_RAW

    sections: list[np.ndarray] = []
    # All three sections pack values that fit their widths by
    # construction (flags < 4, sign|exp fields, right-shifted mantissa
    # prefixes), so the masking pass is skipped.
    flag_buf, _ = pack_varlen(flags, np.full(n, 2, dtype=np.int64), masked=True)
    sections.append(flag_buf)

    if is_normal.any():
        t = _required_bits(exp[is_normal], eb, lo)
        head = (sign[is_normal] << np.uint64(lo.exp_bits)) | exp[is_normal]
        head_buf, _ = pack_varlen(
            head,
            np.full(
                int(is_normal.sum(dtype=np.int64)),
                1 + lo.exp_bits,
                dtype=np.int64,
            ),
            masked=True,
        )
        sections.append(head_buf)
        mant_prefix = mant[is_normal] >> (lo.mant_bits - t).astype(np.uint64)
        mant_buf, _ = pack_varlen(mant_prefix, t, masked=True)
        sections.append(mant_buf)
    if is_raw.any():
        raw_buf, _ = pack_varlen(
            bits[is_raw],
            np.full(
                int(is_raw.sum(dtype=np.int64)), lo.total_bits, dtype=np.int64
            ),
        )
        sections.append(raw_buf)

    payload = b"".join(s.tobytes() for s in sections)
    return payload, truncate_to_bound(values, eb)


def decode_unpredictable(
    payload: bytes | memoryview, count: int, eb: float, dtype: np.dtype
) -> np.ndarray:
    """Decode ``count`` values stored by :func:`encode_unpredictable`."""
    dtype = np.dtype(dtype)
    lo = _layout(dtype)
    if count == 0:
        return np.zeros(0, dtype=dtype)
    buf = np.frombuffer(payload, dtype=np.uint8)
    flags = unpack_varlen(buf, np.full(count, 2, dtype=np.int64))
    offset = count * 2
    offset += (-offset) % 8  # sections are byte aligned

    out_bits = np.zeros(count, dtype=np.uint64)
    is_normal = flags == _FLAG_NORMAL
    is_raw = flags == _FLAG_RAW
    n_normal = int(is_normal.sum(dtype=np.int64))
    if n_normal:
        head = unpack_varlen(
            buf,
            np.full(n_normal, 1 + lo.exp_bits, dtype=np.int64),
            bit_offset=offset,
        )
        offset += n_normal * (1 + lo.exp_bits)
        offset += (-offset) % 8  # each pack_varlen section is byte aligned
        sign = head >> np.uint64(lo.exp_bits)
        exp = head & np.uint64((1 << lo.exp_bits) - 1)
        t = _required_bits(exp, eb, lo)
        mant_prefix = unpack_varlen(buf, t, bit_offset=offset)
        offset += int(t.sum(dtype=np.int64))
        offset += (-offset) % 8
        out_bits[is_normal] = (
            (sign << np.uint64(lo.total_bits - 1))
            | (exp << np.uint64(lo.mant_bits))
            | (mant_prefix << (lo.mant_bits - t).astype(np.uint64))
        )
    n_raw = int(is_raw.sum(dtype=np.int64))
    if n_raw:
        raws = unpack_varlen(
            buf,
            np.full(n_raw, lo.total_bits, dtype=np.int64),
            bit_offset=offset,
        )
        out_bits[is_raw] = raws
    return out_bits.astype(lo.uint.type).view(dtype)
