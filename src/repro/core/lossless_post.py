"""Optional lossless post-pass over the SZ-1.4 container.

The original SZ implementations can pipe their output through a lossless
byte compressor (SZ-1.x shipped with gzip integration).  Wrapping the
container in our DEFLATE-like codec squeezes residual redundancy out of
the Huffman table, the unpredictable section and any padding — typically
a few extra percent, more when the code stream is extremely skewed.

Wrapped containers carry their own magic so :func:`unwrap` can pass
ordinary containers straight through.
"""

from __future__ import annotations

from repro.encoding.deflate import deflate_compress, deflate_decompress

__all__ = ["wrap", "unwrap", "is_wrapped"]

_MAGIC = b"SZPP"


def wrap(container: bytes, max_chain: int = 8) -> bytes:
    """Deflate the container; keeps whichever representation is smaller."""
    packed = _MAGIC + deflate_compress(container, max_chain=max_chain)
    if len(packed) >= len(container):
        return container
    return packed


def is_wrapped(blob) -> bool:
    """Accepts bytes or any flat byte view (memoryview slices compare
    by content against bytes, so no copy happens here)."""
    return blob[:4] == _MAGIC


def unwrap(blob: bytes | memoryview) -> bytes | memoryview:
    """Undo :func:`wrap`; a plain container passes through unchanged.

    ``blob`` may be ``bytes`` or a flat ``uint8`` memoryview — an
    unwrapped container is returned as the same object (zero-copy).
    """
    if is_wrapped(blob):
        return deflate_decompress(blob[4:])
    return blob
