"""Tiled container v2: block-indexed compression with random access.

The whole-array pipeline of :mod:`repro.core` compresses one prediction
pass into one opaque container; this package decomposes the array into
fixed-shape tiles, runs that same pipeline per tile, and adds a footer
index (offset, length, CRC32, quantization-histogram summary per tile).
That single format change buys three capabilities:

* **parallel compression** — tiles are independent, so
  :func:`compress_tiled` fans out over a process pool and still emits a
  byte-identical container;
* **random access** — :func:`decompress_region` touches only the tiles
  intersecting a requested hyperslab (auditable via
  :class:`ByteAccountant`);
* **streaming** — :class:`TiledWriter` / :class:`TiledReader` move one
  tile-row at a time, so arrays larger than RAM round-trip through a
  file handle.
"""

from repro.chunked.format import (
    TiledHeader,
    TileEntry,
    TileGrid,
    footer_features,
    is_tiled,
)
from repro.chunked.io import ByteAccountant
from repro.chunked.streams import TiledReader, TiledWriter, default_tile_shape
from repro.chunked.tiled import (
    compress_file_tiled,
    compress_tiled,
    container_info_any,
    decompress_any,
    decompress_region,
    decompress_tiled,
    region_of_interest_cost,
    tiled_container_info,
)

__all__ = [
    "ByteAccountant",
    "TileEntry",
    "TileGrid",
    "TiledHeader",
    "TiledReader",
    "TiledWriter",
    "compress_file_tiled",
    "compress_tiled",
    "container_info_any",
    "decompress_any",
    "decompress_region",
    "decompress_tiled",
    "default_tile_shape",
    "footer_features",
    "is_tiled",
    "region_of_interest_cost",
    "tiled_container_info",
]
