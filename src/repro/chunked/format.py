"""Tiled container format v2 (``SZRT``): block-indexed SZ compression.

A v2 container splits an N-d array into fixed-shape tiles, compresses
each tile independently as a standard v1 container (``repro.core``), and
appends a self-describing footer index so any tile can be located and
verified without touching the rest of the file.

Byte layout (all integers big-endian)::

    header:
        magic 'SZRT' (4) | version=2|3 (1) | dtype code (1) | ndim (1) |
        flags (1) | shape: ndim x 8 | tile_shape: ndim x 8 |
        abs_bound: raw float64 bits (8) | rel_bound: raw float64 bits (8)
        [version 3: mode code (1) | mode param: raw float64 bits (8)]
    tile payloads, concatenated in C order of the tile grid
        (each payload is a complete v1/v2 'SZRP' container)
    index: n_tiles x 42-byte (v2) or 43-byte (v3) entries:
        offset (8) | length (6) | crc32 (4) |
        n_values (6) | n_unpredictable (6) |
        mode_count (6) | nonzero_bins (6) |
        [version 3: mode code (1)]
    tail (24 bytes):
        index offset (8) | index length (8) | index crc32 (4) |
        end magic 'SZRX' (4)

    Versioning mirrors the per-tile container: ``abs``/``rel`` containers
    keep the version-2 layout (byte-identical to every tiled blob this
    library ever produced, decoded with mode ``abs``/``rel`` from the
    bound fields); the ``pw_rel``/``psnr`` modes write version 3, whose
    mode byte rides in both the header and each footer-index entry so
    ``decompress_region`` knows how to reconstruct a tile before reading
    its payload.

The header is written before any tile, the index after the last one, so
the format supports single-pass streaming writes; readers locate the
index through the fixed-size tail, which makes random access a
two-seek operation on file-backed sources.  ``abs_bound``/``rel_bound``
store the *requested* bounds (NaN when unset); each tile's v1 header
carries the absolute bound that tile actually used.

The per-tile ``(n_values, n_unpredictable, mode_count, nonzero_bins)``
quadruple summarizes the tile's quantization-code histogram: hit rate is
``1 - n_unpredictable / n_values``, the mode share ``mode_count /
n_values`` bounds the entropy from below, and ``nonzero_bins`` is the
effective alphabet — the statistics ratio-quality models need without
decompressing anything.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.bounds import CODE_MODES as _CODE_MODES
from repro.core.bounds import MODE_CODES
from repro.core.bounds import MODED_MODES as _MODED

__all__ = [
    "MAGIC",
    "END_MAGIC",
    "VERSION",
    "MODED_VERSION",
    "MODE_CODES",
    "TiledHeader",
    "TileEntry",
    "TileGrid",
    "is_tiled",
    "write_header",
    "read_header",
    "build_index",
    "parse_index",
    "build_tail",
    "parse_tail",
    "TAIL_BYTES",
    "ENTRY_BYTES",
    "MODED_ENTRY_BYTES",
    "entry_bytes",
    "footer_features",
    "footer_summary",
]

MAGIC = b"SZRT"
END_MAGIC = b"SZRX"
VERSION = 2
MODED_VERSION = 3  # version 2 + mode byte in the header and index entries

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}

ENTRY_BYTES = 42
MODED_ENTRY_BYTES = 43
TAIL_BYTES = 24


def entry_bytes(version: int) -> int:
    """Footer-index entry size for a container ``version``."""
    return MODED_ENTRY_BYTES if version == MODED_VERSION else ENTRY_BYTES


def _f64_raw(x: float | None) -> bytes:
    return np.float64(math.nan if x is None else x).tobytes()


def _raw_f64(b: bytes | memoryview) -> float | None:
    x = float(np.frombuffer(b, dtype=np.float64)[0])
    return None if math.isnan(x) else x


@dataclass(frozen=True)
class TiledHeader:
    """Fixed-size leading header of a tiled (v2/v3) container."""

    dtype: np.dtype
    shape: tuple[int, ...]
    tile_shape: tuple[int, ...]
    abs_bound: float | None
    rel_bound: float | None
    flags: int = 0
    mode: str = "abs"
    mode_param: float = 0.0

    @property
    def is_moded(self) -> bool:
        """True when the container needs the mode-tagged v3 layout."""
        return self.mode in _MODED

    @property
    def version(self) -> int:
        return MODED_VERSION if self.is_moded else VERSION

    @property
    def header_bytes(self) -> int:
        return 8 + 16 * len(self.shape) + 16 + (9 if self.is_moded else 0)

    @property
    def n_values(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))


@dataclass(frozen=True)
class TileEntry:
    """One footer-index row: where a tile lives and what is inside it.

    ``mode_code`` (v3 only; 0 on legacy v2 entries) names the error-bound
    mode the tile was compressed with, so region readers know how a tile
    reconstructs before touching its payload.
    """

    offset: int
    length: int
    crc32: int
    n_values: int
    n_unpredictable: int
    mode_count: int
    nonzero_bins: int
    mode_code: int = 0

    @property
    def mode(self) -> str:
        return _CODE_MODES.get(self.mode_code, "abs")

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.n_unpredictable / max(1, self.n_values)

    @property
    def mode_share(self) -> float:
        return self.mode_count / max(1, self.n_values)


def is_tiled(blob: bytes | bytearray | memoryview) -> bool:
    """True when ``blob`` starts with the v2 tiled magic."""
    return bytes(blob[:4]) == MAGIC


def write_header(header: TiledHeader) -> bytes:
    if len(header.shape) != len(header.tile_shape):
        raise ValueError("shape and tile_shape must have the same rank")
    out = bytearray()
    out += MAGIC
    out.append(header.version)
    out.append(_DTYPE_CODES[np.dtype(header.dtype)])
    out.append(len(header.shape))
    out.append(header.flags)
    for s in header.shape:
        out += int(s).to_bytes(8, "big")
    for t in header.tile_shape:
        out += int(t).to_bytes(8, "big")
    out += _f64_raw(header.abs_bound)
    out += _f64_raw(header.rel_bound)
    if header.is_moded:
        out.append(MODE_CODES[header.mode])
        out += np.float64(header.mode_param).tobytes()
    return bytes(out)


def read_header(buf: bytes | memoryview) -> TiledHeader:
    """Parse the leading header from at least its first bytes."""
    if len(buf) < 8:
        raise ValueError("truncated tiled container: short header")
    if buf[:4] != MAGIC:
        raise ValueError("not a tiled (SZRT) container: bad magic")
    version = buf[4]
    if version not in (VERSION, MODED_VERSION):
        raise ValueError(f"unsupported tiled container version {version}")
    try:
        dtype = _CODE_DTYPES[buf[5]]
    except KeyError:
        raise ValueError(f"unknown dtype code {buf[5]}") from None
    ndim = buf[6]
    if ndim < 1:
        raise ValueError("tiled container must have ndim >= 1")
    flags = buf[7]
    need = 8 + 16 * ndim + 16 + (9 if version == MODED_VERSION else 0)
    if len(buf) < need:
        raise ValueError("truncated tiled container: short header")
    pos = 8
    shape = []
    for _ in range(ndim):
        shape.append(int.from_bytes(buf[pos : pos + 8], "big"))
        pos += 8
    tile_shape = []
    for _ in range(ndim):
        tile_shape.append(int.from_bytes(buf[pos : pos + 8], "big"))
        pos += 8
    abs_bound = _raw_f64(buf[pos : pos + 8])
    rel_bound = _raw_f64(buf[pos + 8 : pos + 16])
    pos += 16
    mode, mode_param = "abs", 0.0
    if version == MODED_VERSION:
        if buf[pos] not in _CODE_MODES:
            raise ValueError(
                f"corrupt tiled container: unknown mode code {buf[pos]}"
            )
        mode = _CODE_MODES[buf[pos]]
        mode_param = float(
            np.frombuffer(buf[pos + 1 : pos + 9], dtype=np.float64)[0]
        )
    elif rel_bound is not None:
        mode = "rel"  # legacy v2: the bound fields name the mode
    if any(s < 1 for s in shape) or any(t < 1 for t in tile_shape):
        raise ValueError("corrupt tiled container: non-positive extent")
    if any(t > s for t, s in zip(tile_shape, shape)):
        raise ValueError("corrupt tiled container: tile larger than array")
    return TiledHeader(
        dtype, tuple(shape), tuple(tile_shape), abs_bound, rel_bound, flags,
        mode, mode_param,
    )


def build_index(entries: list[TileEntry], version: int = VERSION) -> bytes:
    out = bytearray()
    moded = version == MODED_VERSION
    for e in entries:
        out += e.offset.to_bytes(8, "big")
        out += e.length.to_bytes(6, "big")
        out += e.crc32.to_bytes(4, "big")
        out += e.n_values.to_bytes(6, "big")
        out += e.n_unpredictable.to_bytes(6, "big")
        out += e.mode_count.to_bytes(6, "big")
        out += e.nonzero_bins.to_bytes(6, "big")
        if moded:
            out.append(e.mode_code)
    return bytes(out)


def parse_index(
    buf: bytes | memoryview, n_tiles: int, version: int = VERSION
) -> list[TileEntry]:
    nbytes = entry_bytes(version)
    if len(buf) != n_tiles * nbytes:
        raise ValueError(
            f"corrupt tiled container: index holds {len(buf)} bytes for "
            f"{n_tiles} tiles ({n_tiles * nbytes} expected)"
        )
    moded = version == MODED_VERSION
    entries = []
    for i in range(n_tiles):
        p = i * nbytes
        entries.append(
            TileEntry(
                offset=int.from_bytes(buf[p : p + 8], "big"),
                length=int.from_bytes(buf[p + 8 : p + 14], "big"),
                crc32=int.from_bytes(buf[p + 14 : p + 18], "big"),
                n_values=int.from_bytes(buf[p + 18 : p + 24], "big"),
                n_unpredictable=int.from_bytes(buf[p + 24 : p + 30], "big"),
                mode_count=int.from_bytes(buf[p + 30 : p + 36], "big"),
                nonzero_bins=int.from_bytes(buf[p + 36 : p + 42], "big"),
                mode_code=buf[p + 42] if moded else 0,
            )
        )
    return entries


def footer_features(
    entries: list[TileEntry], itemsize: int | None = None
) -> dict[str, np.ndarray]:
    """Per-tile histogram features as aligned arrays — no decompression.

    This is the machine-facing counterpart of :func:`footer_summary`:
    one ``float64``/``int64`` array per feature, index-aligned with the
    tile grid (C order), derived purely from the footer index.  The
    ratio-quality estimator (`repro.tuning`) and the ``trace``/``info``
    commands both consume these; cost is proportional to ``n_tiles``,
    never to the payload.

    Returns ``length``, ``n_values``, ``n_unpredictable``,
    ``mode_count``, ``nonzero_bins`` (``int64``) plus the derived rates
    ``hit_rate``, ``mode_share``, ``outlier_rate`` (``float64``) and,
    when the array ``itemsize`` is supplied, the per-tile
    ``compression_factor``.
    """
    n = len(entries)
    feats: dict[str, np.ndarray] = {
        "length": np.fromiter(
            (e.length for e in entries), dtype=np.int64, count=n
        ),
        "n_values": np.fromiter(
            (e.n_values for e in entries), dtype=np.int64, count=n
        ),
        "n_unpredictable": np.fromiter(
            (e.n_unpredictable for e in entries), dtype=np.int64, count=n
        ),
        "mode_count": np.fromiter(
            (e.mode_count for e in entries), dtype=np.int64, count=n
        ),
        "nonzero_bins": np.fromiter(
            (e.nonzero_bins for e in entries), dtype=np.int64, count=n
        ),
    }
    denom = np.maximum(feats["n_values"], 1).astype(np.float64)
    outlier = feats["n_unpredictable"].astype(np.float64) / denom
    feats["outlier_rate"] = outlier
    feats["hit_rate"] = 1.0 - outlier
    feats["mode_share"] = feats["mode_count"].astype(np.float64) / denom
    if itemsize is not None:
        feats["compression_factor"] = (
            feats["n_values"].astype(np.float64) * float(itemsize)
        ) / np.maximum(feats["length"], 1).astype(np.float64)
    return feats


def footer_summary(entries: list[TileEntry]) -> dict[str, Any]:
    """Distribution summaries over the footer index — no decompression.

    Everything here derives from the per-tile quadruple the index
    already stores (via :func:`footer_features`), so the cost is
    proportional to ``n_tiles``, never to the payload.  The ``*_hist``
    keys are 10-bin counts over ``[0, 1]`` (rate quantities) used by
    ``info --json`` and the ``trace`` command to show how tiles spread
    without listing every one.
    """
    n = len(entries)
    if n == 0:
        return {"n_tiles": 0}
    feats = footer_features(entries)

    def _dist(values: np.ndarray) -> dict[str, float]:
        return {
            "min": float(values.min()),
            "mean": float(
                values.sum(dtype=np.float64) / max(1, values.size)
            ),
            "max": float(values.max()),
        }

    def _rate_hist(values: np.ndarray) -> list[int]:
        bins = np.clip((values * 10).astype(np.int64), 0, 9)
        return [int(c) for c in np.bincount(bins, minlength=10)]

    return {
        "n_tiles": n,
        "n_values": int(feats["n_values"].sum(dtype=np.int64)),
        "n_unpredictable": int(feats["n_unpredictable"].sum(dtype=np.int64)),
        "payload_bytes": int(feats["length"].sum(dtype=np.int64)),
        "hit_rate": _dist(feats["hit_rate"]),
        "hit_rate_hist": _rate_hist(feats["hit_rate"]),
        "mode_share": _dist(feats["mode_share"]),
        "mode_share_hist": _rate_hist(feats["mode_share"]),
        "nonzero_bins": _dist(feats["nonzero_bins"].astype(np.float64)),
    }


def build_tail(index_offset: int, index_length: int, index_crc: int) -> bytes:
    return (
        index_offset.to_bytes(8, "big")
        + index_length.to_bytes(8, "big")
        + index_crc.to_bytes(4, "big")
        + END_MAGIC
    )


def parse_tail(tail: bytes | memoryview) -> tuple[int, int, int]:
    """Return ``(index_offset, index_length, index_crc32)`` from the tail."""
    if len(tail) != TAIL_BYTES:
        raise ValueError("truncated tiled container: short tail")
    if tail[20:24] != END_MAGIC:
        raise ValueError("truncated tiled container: bad end magic")
    return (
        int.from_bytes(tail[0:8], "big"),
        int.from_bytes(tail[8:16], "big"),
        int.from_bytes(tail[16:20], "big"),
    )


def verify_index(buf: bytes | memoryview, crc: int) -> None:
    if zlib.crc32(buf) & 0xFFFFFFFF != crc:
        raise ValueError("corrupt tiled container: index CRC mismatch")


class TileGrid:
    """Geometry of the tile decomposition: C-ordered fixed-shape tiles.

    Edge tiles are clipped to the array, so tile shapes need not divide
    the data evenly.
    """

    def __init__(
        self, shape: tuple[int, ...], tile_shape: tuple[int, ...]
    ) -> None:
        shape = tuple(int(s) for s in shape)
        tile_shape = tuple(int(t) for t in tile_shape)
        if len(shape) != len(tile_shape):
            raise ValueError("shape and tile_shape must have the same rank")
        if any(s < 1 for s in shape):
            raise ValueError("array extents must be positive")
        if any(t < 1 for t in tile_shape):
            raise ValueError("tile extents must be positive")
        self.shape = shape
        self.tile_shape = tuple(min(t, s) for t, s in zip(tile_shape, shape))
        self.grid = tuple(
            -(-s // t) for s, t in zip(self.shape, self.tile_shape)
        )
        self.n_tiles = int(np.prod(self.grid, dtype=np.int64))

    def coord(self, index: int) -> tuple[int, ...]:
        """Grid coordinate of flat tile ``index`` (C order)."""
        if not 0 <= index < self.n_tiles:
            raise IndexError(f"tile index {index} out of range")
        return tuple(int(c) for c in np.unravel_index(index, self.grid))

    def tile_slices(self, index: int) -> tuple[slice, ...]:
        """Array slices covered by flat tile ``index``."""
        coord = self.coord(index)
        return tuple(
            slice(c * t, min((c + 1) * t, s))
            for c, t, s in zip(coord, self.tile_shape, self.shape)
        )

    def tile_data_shape(self, index: int) -> tuple[int, ...]:
        return tuple(sl.stop - sl.start for sl in self.tile_slices(index))

    def normalize_region(
        self, region: Any
    ) -> tuple[tuple[slice, ...], tuple[int, ...]]:
        """Canonicalize a region spec into per-axis ``slice`` objects.

        Accepts a single slice/int or a tuple of them; missing trailing
        axes default to the full extent.  Integers select one index and
        (like NumPy) drop that axis — the second return value lists the
        axes to squeeze.  Steps other than 1 are rejected.
        """
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > len(self.shape):
            raise ValueError(
                f"region has {len(region)} axes, array has {len(self.shape)}"
            )
        region = region + (slice(None),) * (len(self.shape) - len(region))
        out = []
        squeeze = []
        for axis, (item, extent) in enumerate(zip(region, self.shape)):
            if isinstance(item, (int, np.integer)):
                idx = int(item)
                if idx < 0:
                    idx += extent
                if not 0 <= idx < extent:
                    raise IndexError(
                        f"index {item} out of bounds for axis {axis} "
                        f"(extent {extent})"
                    )
                out.append(slice(idx, idx + 1))
                squeeze.append(axis)
            elif isinstance(item, slice):
                if item.step not in (None, 1):
                    raise ValueError("region slices must have step 1")
                start, stop, _ = item.indices(extent)
                if stop < start:
                    stop = start
                out.append(slice(start, stop))
            else:
                raise TypeError(f"unsupported region item: {item!r}")
        return tuple(out), tuple(squeeze)

    def tiles_intersecting(self, region: tuple[slice, ...]) -> list[int]:
        """Flat indices (C order) of tiles overlapping ``region``.

        ``region`` must already be normalized (step-1 slices with
        resolved bounds).
        """
        per_axis = []
        for sl, t, g in zip(region, self.tile_shape, self.grid):
            if sl.stop <= sl.start:
                return []
            first = sl.start // t
            last = (sl.stop - 1) // t
            per_axis.append(range(first, min(last, g - 1) + 1))
        mesh = np.meshgrid(*[np.asarray(r) for r in per_axis], indexing="ij")
        coords = np.stack([m.ravel() for m in mesh], axis=-1)
        return [
            int(np.ravel_multi_index(tuple(c), self.grid)) for c in coords
        ]
