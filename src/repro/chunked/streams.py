"""Streaming writer/reader for tiled (v2) containers.

``TiledWriter`` compresses tiles in a single forward pass — header
first, tile payloads as they arrive, footer index on close — so a
source larger than RAM round-trips through a file handle one tile-row
(*slab*) at a time.  ``TiledReader`` locates any tile through the footer
index with two positional reads, which makes whole-array, per-slab and
region decompression all touch only the bytes they need.

Bound semantics: a relative bound is resolved against each *tile's* own
value range.  A tile's range never exceeds the whole array's, so every
element still satisfies the requested array-level value-range-relative
bound (usually with margin); absolute bounds are identical either way.
This is what lets the writer stream — it never needs a global pass to
learn the full value range before emitting the first tile.  The same
argument covers the mode subsystem: ``pw_rel`` is pointwise, so
per-tile application is exact, and a per-tile ``psnr`` target implies
the array-level one (each tile's rmse is at most ``R_tile 10^(-t/20)
<= R_array 10^(-t/20)``, and the array rmse is a weighted mean of tile
rmses).
"""

from __future__ import annotations

import warnings
import zlib
from pathlib import Path

import numpy as np

from repro.chunked.format import (
    MAGIC,
    MODE_CODES,
    MODED_VERSION,
    TAIL_BYTES,
    VERSION,
    TiledHeader,
    TileEntry,
    TileGrid,
    build_index,
    build_tail,
    entry_bytes,
    footer_summary,
    parse_index,
    parse_tail,
    read_header,
    verify_index,
    write_header,
)
from repro.chunked.io import ByteAccountant, open_source
from repro.core.compressor import LEGACY_BOUND_MSG, compress_array, decompress
from repro.obs.tracer import metric_add, metric_observe, span
from repro.parallel.pool import pool_map

__all__ = ["TiledWriter", "TiledReader"]


def _tile_job(args) -> tuple[bytes, int, int, int]:
    """Compress one tile; returns (blob, n_unpred, mode_count, nonzero_bins).

    Module-level so the process pool can pickle it; the frozen
    ``SZConfig`` travels to the workers instead of a kwargs dict.
    """
    tile, config, index = args
    with span("tile", tile=index, shape=tuple(tile.shape)):
        blob, stats = compress_array(np.ascontiguousarray(tile), config)
    hist = stats.code_histogram
    mode_count = int(hist.max()) if hist is not None and hist.size else 0
    nonzero = (
        int((hist > 0).sum(dtype=np.int64))
        if hist is not None and hist.size
        else 0
    )
    return blob, stats.n_unpredictable, mode_count, nonzero


class TiledWriter:
    """Single-pass writer of a tiled container.

    Parameters
    ----------
    dest
        Output path or writable+seekable binary file handle.
    shape, dtype
        Full-array geometry, declared up front (streaming sources cannot
        be re-read to discover it later).
    tile_shape
        Tile extents; clipped per-axis to ``shape``.  ``None`` picks a
        near-isotropic tile of ~64k values (:func:`default_tile_shape`).
    config
        An :class:`repro.api.SZConfig` carrying the error bound and all
        pipeline knobs (the canonical spelling; mutually exclusive with
        the bound keywords below).  Its ``tile_shape``/``workers`` are
        the defaults when the matching parameters are left unset.
    abs_bound, rel_bound
        Deprecated legacy bound pair, applied per tile (see module
        docstring); emits a ``DeprecationWarning``.
    mode, bound
        Explicit error-bound mode and parameter (``abs``, ``rel``,
        ``pw_rel``, ``psnr``), mutually exclusive with the legacy
        ``abs_bound``/``rel_bound`` pair; ``pw_rel``/``psnr`` write the
        mode-tagged v3 container.
    workers
        Process-pool width for compressing the tiles of one batch.
    **compress_kwargs
        Remaining :class:`repro.api.SZConfig` knobs
        (``layers``, ``interval_bits``, ``adaptive``, ...).

    Tiles arrive through :meth:`write_slab` (one tile-row of the leading
    axis at a time, in order) or the :meth:`write_array` /
    :meth:`write_from` conveniences; :meth:`close` seals the container.
    """

    def __init__(
        self,
        dest,
        shape: tuple[int, ...],
        tile_shape: tuple[int, ...] | None = None,
        dtype=np.float32,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
        workers: int = 1,
        mode: str | None = None,
        bound: float | None = None,
        config=None,
        **compress_kwargs,
    ) -> None:
        # Normalize the whole request into one SZConfig up front (same
        # surface as repro.core.compress) so a bad mode or knob fails
        # before the destination is opened and truncated.
        from repro.api.config import SZConfig

        if config is None:
            if abs_bound is not None or rel_bound is not None:
                warnings.warn(
                    LEGACY_BOUND_MSG, DeprecationWarning, stacklevel=2
                )
            config = SZConfig.from_kwargs(
                mode=mode, bound=bound, abs_bound=abs_bound,
                rel_bound=rel_bound, workers=max(1, int(workers)),
                **compress_kwargs,
            )
        elif (
            abs_bound is not None or rel_bound is not None
            or mode is not None or bound is not None or compress_kwargs
        ):
            raise ValueError(
                "config= is mutually exclusive with bound/knob keywords"
            )
        else:
            if workers != 1:
                config = config.replace(workers=max(1, int(workers)))
            if tile_shape is None:
                tile_shape = config.tile_shape
        self.config = config
        spec = config.error_bound
        dtype = np.dtype(dtype)
        if dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {dtype}")
        shape = tuple(int(s) for s in shape)
        if tile_shape is None:
            tile_shape = default_tile_shape(shape)
        elif isinstance(tile_shape, (int, np.integer)):
            tile_shape = (int(tile_shape),) * len(shape)  # cubic tiles
        self.grid = TileGrid(shape, tile_shape)
        self.header = TiledHeader(
            np.dtype(dtype), shape, self.grid.tile_shape,
            spec.abs_bound, spec.rel_bound,
            mode=spec.mode, mode_param=spec.param if spec.mode in
            ("pw_rel", "psnr") else 0.0,
        )
        self.workers = config.workers
        self._mode_code = MODE_CODES[spec.mode]
        if isinstance(dest, (str, Path)):
            self._fh = open(dest, "wb")
            self._owns_fh = True
        else:
            self._fh = dest
            self._owns_fh = False
        self._offset = 0
        self._entries: list[TileEntry] = []
        self._next_tile = 0
        self._next_row = 0
        self._closed = False
        self.bytes_written = 0  # final container size, set on close()
        head = write_header(self.header)
        self._fh.write(head)
        self._offset += len(head)

    # -- geometry helpers -------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return self.grid.n_tiles

    @property
    def tile_shape(self) -> tuple[int, ...]:
        """Resolved per-axis tile extents (mirrors ``TiledReader``)."""
        return self.grid.tile_shape

    @property
    def tiles_written(self) -> int:
        return self._next_tile

    def slab_extent(self, row: int) -> tuple[int, int]:
        """Leading-axis ``[start, stop)`` covered by tile-row ``row``."""
        t0 = self.grid.tile_shape[0]
        start = row * t0
        return start, min(start + t0, self.grid.shape[0])

    @property
    def n_slabs(self) -> int:
        return self.grid.grid[0]

    # -- writing ----------------------------------------------------------

    def write_tiles(self, tiles: list[np.ndarray]) -> None:
        """Append the next tiles in C grid order, compressed as one batch."""
        if self._closed:
            raise ValueError("writer is closed")
        for i, tile in enumerate(tiles):
            expect = self.grid.tile_data_shape(self._next_tile + i)
            if tuple(tile.shape) != expect:
                raise ValueError(
                    f"tile {self._next_tile + i} has shape {tile.shape}, "
                    f"expected {expect}"
                )
            if tile.dtype != self.header.dtype:
                raise TypeError(
                    f"tile dtype {tile.dtype} != container dtype "
                    f"{self.header.dtype}"
                )
        jobs = [
            (tile, self.config, self._next_tile + i)
            for i, tile in enumerate(tiles)
        ]
        results = pool_map(_tile_job, jobs, n_workers=self.workers)
        for (blob, n_unpred, mode_count, nonzero), tile in zip(results, tiles):
            metric_add("tile/count")
            metric_observe(
                "tile/compression_factor", tile.nbytes / max(1, len(blob))
            )
            self._entries.append(
                TileEntry(
                    offset=self._offset,
                    length=len(blob),
                    crc32=zlib.crc32(blob) & 0xFFFFFFFF,
                    n_values=int(tile.size),
                    n_unpredictable=n_unpred,
                    mode_count=mode_count,
                    nonzero_bins=nonzero,
                    mode_code=self._mode_code,
                )
            )
            self._fh.write(blob)
            self._offset += len(blob)
            self._next_tile += 1

    def write_slab(self, slab: np.ndarray) -> None:
        """Append the next tile-row of the leading axis (in order)."""
        if self._next_row >= self.n_slabs:
            raise ValueError("all slabs already written")
        start, stop = self.slab_extent(self._next_row)
        expect = (stop - start,) + self.grid.shape[1:]
        slab = np.asarray(slab)
        if tuple(slab.shape) != expect:
            raise ValueError(
                f"slab {self._next_row} has shape {slab.shape}, "
                f"expected {expect}"
            )
        inner = TileGrid(expect, (expect[0],) + self.grid.tile_shape[1:])
        self.write_tiles(
            [slab[inner.tile_slices(i)] for i in range(inner.n_tiles)]
        )
        self._next_row += 1

    def write_array(self, data: np.ndarray) -> None:
        """Write a whole in-memory (or memory-mapped) array slab by slab."""
        data = np.asarray(data)
        if tuple(data.shape) != self.grid.shape:
            raise ValueError(
                f"array shape {data.shape} != declared {self.grid.shape}"
            )
        for row in range(self._next_row, self.n_slabs):
            start, stop = self.slab_extent(row)
            self.write_slab(data[start:stop])

    def write_from(self, source) -> None:
        """Consume an iterable/generator of slabs (leading-axis order)."""
        if isinstance(source, np.ndarray):
            self.write_array(source)
            return
        for slab in source:
            self.write_slab(slab)

    def close(self) -> bytes | None:
        """Write the footer index and tail; finalize the container."""
        if self._closed:
            return None
        if self._next_tile != self.n_tiles:
            raise ValueError(
                f"container incomplete: {self._next_tile} of "
                f"{self.n_tiles} tiles written"
            )
        index = build_index(self._entries, self.header.version)
        self._fh.write(index)
        self._fh.write(
            build_tail(self._offset, len(index), zlib.crc32(index) & 0xFFFFFFFF)
        )
        self._fh.flush()
        self.bytes_written = self._offset + len(index) + TAIL_BYTES
        self._closed = True
        if self._owns_fh:
            self._fh.close()
        return None

    def __enter__(self) -> "TiledWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self._owns_fh:
            self._fh.close()


def default_tile_shape(
    shape: tuple[int, ...], target_values: int = 1 << 16
) -> tuple[int, ...]:
    """Near-isotropic tile extents holding ~``target_values`` elements."""
    ndim = len(shape)
    if ndim == 0:
        raise ValueError("scalar input not supported")
    side = max(1, round(target_values ** (1.0 / ndim)))
    return tuple(min(int(s), side) for s in shape)


class TiledReader:
    """Random-access and streaming reads over a tiled container.

    ``src`` may be the container bytes, a filesystem path, or a seekable
    binary file handle.  Pass a :class:`ByteAccountant` to record every
    byte range touched — region reads are provably proportional to the
    tiles they intersect.
    """

    def __init__(self, src, accountant: ByteAccountant | None = None) -> None:
        self.accountant = accountant
        self._src = open_source(src, accountant)
        try:
            if self._src.size < 8 + TAIL_BYTES:
                raise ValueError("truncated tiled container: too short")
            head = bytes(self._src.read_at(0, 8))
            version, ndim = read_header_prefix(head)
            rest = 16 * ndim + 16 + (9 if version == MODED_VERSION else 0)
            head = head + bytes(self._src.read_at(8, rest))
            self.header = read_header(head)
            self.grid = TileGrid(self.header.shape, self.header.tile_shape)
            tail = self._src.read_at(self._src.size - TAIL_BYTES, TAIL_BYTES)
            index_offset, index_length, index_crc = parse_tail(tail)
            if index_offset + index_length + TAIL_BYTES > self._src.size:
                raise ValueError(
                    "truncated tiled container: index extends past tail"
                )
            index = self._src.read_at(index_offset, index_length)
            verify_index(index, index_crc)
            self.entries = parse_index(index, self.grid.n_tiles, version)
            for i, e in enumerate(self.entries):
                if e.offset + e.length > index_offset:
                    raise ValueError(
                        f"corrupt tiled container: tile {i} payload "
                        "overlaps the index"
                    )
        except Exception:
            self._src.close()
            raise

    # -- basic access ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.header.shape

    @property
    def tile_shape(self) -> tuple[int, ...]:
        return self.header.tile_shape

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.header.dtype)

    @property
    def n_tiles(self) -> int:
        return self.grid.n_tiles

    def read_tile_bytes(self, index: int) -> bytes:
        """Raw v1 container of one tile, CRC-verified."""
        entry = self.entries[index]
        blob = self._src.read_at(entry.offset, entry.length)
        if zlib.crc32(blob) & 0xFFFFFFFF != entry.crc32:
            metric_add("crc/mismatch")
            raise ValueError(
                f"corrupt tiled container: tile {index} CRC mismatch"
            )
        metric_add("crc/verified")
        return blob

    def read_tile(self, index: int) -> np.ndarray:
        """Decompress one tile to its array block."""
        tile = decompress(self.read_tile_bytes(index))
        expect = self.grid.tile_data_shape(index)
        if tuple(tile.shape) != expect:
            raise ValueError(
                f"corrupt tiled container: tile {index} decodes to "
                f"{tile.shape}, expected {expect}"
            )
        return tile

    # -- assembled reads ---------------------------------------------------

    def read_all(self) -> np.ndarray:
        """Decompress the full array (tile by tile, never the whole blob)."""
        out = np.empty(self.shape, dtype=self.dtype)
        for i in range(self.n_tiles):
            out[self.grid.tile_slices(i)] = self.read_tile(i)
        return out

    def region(self, region) -> np.ndarray:
        """Decompress only the tiles intersecting ``region``.

        ``region`` follows basic NumPy indexing: a tuple of step-1
        slices and/or integers (integers drop their axis); missing
        trailing axes are read in full.
        """
        slices, squeeze = self.grid.normalize_region(region)
        out_shape = tuple(sl.stop - sl.start for sl in slices)
        out = np.empty(out_shape, dtype=self.dtype)
        for i in self.grid.tiles_intersecting(slices):
            tile = self.read_tile(i)
            tsl = self.grid.tile_slices(i)
            src_sel = []
            dst_sel = []
            for t, s in zip(tsl, slices):
                lo = max(t.start, s.start)
                hi = min(t.stop, s.stop)
                src_sel.append(slice(lo - t.start, hi - t.start))
                dst_sel.append(slice(lo - s.start, hi - s.start))
            out[tuple(dst_sel)] = tile[tuple(src_sel)]
        if squeeze:
            out = out.reshape(
                tuple(
                    n
                    for axis, n in enumerate(out.shape)
                    if axis not in squeeze
                )
            )
        return out

    def __getitem__(self, region) -> np.ndarray:
        return self.region(region)

    def iter_slabs(self):
        """Yield ``((start, stop), slab)`` per leading-axis tile-row.

        Streaming counterpart of :meth:`TiledWriter.write_slab`: at most
        one tile-row of decompressed data is alive at a time.
        """
        t0 = self.grid.tile_shape[0]
        inner = (
            int(np.prod(self.grid.grid[1:], dtype=np.int64))
            if len(self.grid.grid) > 1
            else 1
        )
        for row in range(self.grid.grid[0]):
            start = row * t0
            stop = min(start + t0, self.shape[0])
            slab = np.empty((stop - start,) + self.shape[1:], dtype=self.dtype)
            for j in range(inner):
                i = row * inner + j
                tsl = self.grid.tile_slices(i)
                slab[(slice(0, stop - start),) + tsl[1:]] = self.read_tile(i)
            yield (start, stop), slab

    # -- metadata ----------------------------------------------------------

    def info(self) -> dict:
        """Container metadata + per-tile statistics (no decompression)."""
        compressed = [e.length for e in self.entries]
        n_vals = [e.n_values for e in self.entries]
        itemsize = self.dtype.itemsize
        cfs = [
            v * itemsize / max(1, c) for v, c in zip(n_vals, compressed)
        ]
        total_comp = self._src.size
        return {
            "format": f"tiled-v{self.header.version}",
            "shape": self.shape,
            "tile_shape": self.tile_shape,
            "tile_grid": self.grid.grid,
            "n_tiles": self.n_tiles,
            "dtype": str(self.dtype),
            "mode": self.header.mode,
            "mode_param": self.header.mode_param,
            "abs_bound": self.header.abs_bound,
            "rel_bound": self.header.rel_bound,
            "n_unpredictable": sum(e.n_unpredictable for e in self.entries),
            "compressed_bytes": total_comp,
            "payload_bytes": sum(compressed),
            "index_bytes": (
                self.n_tiles * entry_bytes(self.header.version) + TAIL_BYTES
            ),
            "compression_factor": (
                self.header.n_values * itemsize / max(1, total_comp)
            ),
            "tile_bytes": compressed,
            "tile_values": n_vals,
            "tile_compression_factors": cfs,
            "tile_hit_rates": [e.hit_rate for e in self.entries],
            "tile_summary": footer_summary(self.entries),
        }

    def close(self) -> None:
        self._src.close()

    def __enter__(self) -> "TiledReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_header_prefix(head8: bytes) -> tuple[int, int]:
    """Validate the 8-byte header prefix; return ``(version, ndim)``."""
    if head8[:4] != MAGIC:
        raise ValueError("not a tiled (SZRT) container: bad magic")
    version = head8[4]
    if version not in (VERSION, MODED_VERSION):
        raise ValueError(f"unsupported tiled container version {version}")
    ndim = head8[6]
    if ndim < 1:
        raise ValueError("tiled container must have ndim >= 1")
    return version, ndim
