"""Byte sources with read accounting for tiled containers.

``ByteAccountant`` records every ``(offset, length)`` range a reader
touches; tests (and cost models) use it to prove that a region read
never pulls bytes belonging to tiles outside the requested hyperslab.
``open_source`` wraps bytes, a filesystem path, or a seekable binary
file handle behind one positional-read interface.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import IO, Any

from repro.obs.tracer import active_collector

__all__ = ["ByteAccountant", "ByteSource", "open_source"]


class ByteAccountant:
    """Records byte ranges read from a container source."""

    def __init__(self) -> None:
        self.reads: list[tuple[int, int]] = []

    def record(self, offset: int, length: int) -> None:
        self.reads.append((offset, length))

    @property
    def total_bytes(self) -> int:
        return sum(n for _, n in self.reads)

    def touched(self, offset: int, length: int) -> bool:
        """Did any recorded read overlap ``[offset, offset + length)``?"""
        end = offset + length
        return any(o < end and offset < o + n for o, n in self.reads if n)

    def clear(self) -> None:
        self.reads.clear()


class ByteSource:
    """Positional reads over bytes or a seekable binary file handle."""

    def __init__(
        self,
        raw: bytes | bytearray | memoryview | IO[bytes],
        accountant: ByteAccountant | None = None,
        close: bool = False,
    ) -> None:
        self._close = close
        self.accountant = accountant
        self._buf: bytes | memoryview | None
        self._fh: IO[bytes] | None
        if isinstance(raw, (bytes, bytearray, memoryview)):
            # Keep the caller's buffer as a view: slicing a memoryview
            # is zero-copy, so in-memory containers are never duplicated.
            self._buf = raw if isinstance(raw, bytes) else memoryview(raw)
            self._fh = None
            self._size = len(self._buf)
        else:
            self._buf = None
            self._fh = raw
            raw.seek(0, os.SEEK_END)
            self._size = raw.tell()

    @property
    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, length: int) -> bytes | memoryview:
        """Read exactly ``length`` bytes at ``offset`` (raises when short).

        In-memory sources hand back a zero-copy slice (a memoryview for
        non-``bytes`` buffers); file sources return fresh ``bytes``.
        """
        if offset < 0 or length < 0 or offset + length > self._size:
            raise ValueError(
                f"truncated tiled container: need bytes "
                f"[{offset}, {offset + length}) of {self._size}"
            )
        if self.accountant is not None:
            self.accountant.record(offset, length)
        collector = active_collector()
        if collector is not None:
            collector.add("tiled/reads")
            collector.add("tiled/bytes_read", float(length))
        if self._buf is not None:
            return self._buf[offset : offset + length]
        assert self._fh is not None  # __init__ sets exactly one of buf/fh
        self._fh.seek(offset)
        data = self._fh.read(length)
        if len(data) != length:
            raise ValueError("truncated tiled container: short read")
        return data

    def close(self) -> None:
        if self._close and self._fh is not None:
            self._fh.close()

    def __enter__(self) -> "ByteSource":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_source(
    src: Any, accountant: ByteAccountant | None = None
) -> ByteSource:
    """Wrap ``bytes``, a path, or a binary file handle as a ByteSource."""
    if isinstance(src, (bytes, bytearray, memoryview)):
        return ByteSource(src, accountant)
    if isinstance(src, (str, Path)):
        return ByteSource(open(src, "rb"), accountant, close=True)
    if isinstance(src, io.IOBase) or hasattr(src, "seek"):
        return ByteSource(src, accountant)
    raise TypeError(f"unsupported container source: {type(src).__name__}")
