"""High-level tiled compression API.

One-call wrappers over :class:`~repro.chunked.streams.TiledWriter` /
:class:`~repro.chunked.streams.TiledReader`:

* :func:`compress_tiled` — whole array in, v2 container bytes (or file)
  out, with optional process-pool fan-out over tiles.
* :func:`decompress_tiled` — full-array inverse.
* :func:`decompress_region` — decode only the tiles intersecting a
  hyperslab; accepts a :class:`ByteAccountant` to audit exactly which
  byte ranges were touched.
* :func:`compress_file_tiled` — compress an ``.npy`` file memory-mapped,
  slab by slab, so inputs larger than RAM never fully materialize.
* :func:`decompress_any` / :func:`container_info_any` — dispatch between
  v1 ('SZRP') and tiled v2 ('SZRT') containers by magic.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.chunked.format import TileGrid, is_tiled
from repro.chunked.io import ByteAccountant
from repro.chunked.streams import TiledReader, TiledWriter, default_tile_shape
from repro.core import container_info as v1_container_info
from repro.core import decompress as v1_decompress

__all__ = [
    "compress_tiled",
    "decompress_tiled",
    "decompress_region",
    "compress_file_tiled",
    "decompress_any",
    "container_info_any",
    "tiled_container_info",
]


def _normalize_tile_shape(
    shape: tuple[int, ...], tile_shape
) -> tuple[int, ...]:
    if tile_shape is None:
        return default_tile_shape(shape)
    if isinstance(tile_shape, (int, np.integer)):
        tile_shape = (int(tile_shape),) * len(shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != len(shape):
        raise ValueError(
            f"tile_shape has {len(tile_shape)} axes, data has {len(shape)}"
        )
    return tile_shape


def compress_tiled(
    data: np.ndarray,
    tile_shape=None,
    workers: int = 1,
    out=None,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    mode: str | None = None,
    bound: float | None = None,
    config=None,
    **compress_kwargs,
) -> bytes | None:
    """Compress ``data`` into a tiled (v2/v3) container.

    ``tile_shape`` may be a per-axis tuple, a single int (cubic tiles),
    or ``None`` for the config's ``tile_shape`` (falling back to a
    ~64k-value near-isotropic default); tiles need not divide the array
    evenly.  ``workers > 1`` fans tile compression out over a process
    pool — the resulting container is byte-identical to the serial one.
    ``config`` is the canonical :class:`repro.api.SZConfig` spelling;
    alternatively ``mode``/``bound`` select an error-bound mode
    (``abs``, ``rel``, ``pw_rel``, ``psnr``; see
    :mod:`repro.core.bounds`), applied per tile — each tile's pointwise
    or PSNR guarantee implies the array-level one.  With ``out`` (a path
    or binary file handle) the container is written there and ``None``
    is returned; otherwise the bytes are returned.
    """
    data = np.asarray(data)
    if data.ndim < 1:
        raise ValueError("scalar input not supported")
    if tile_shape is None and config is not None:
        tile_shape = config.tile_shape
    tile_shape = _normalize_tile_shape(data.shape, tile_shape)
    sink = out if out is not None else io.BytesIO()
    writer = TiledWriter(
        sink,
        data.shape,
        tile_shape,
        dtype=data.dtype,
        abs_bound=abs_bound,
        rel_bound=rel_bound,
        mode=mode,
        bound=bound,
        workers=workers,
        config=config,
        **compress_kwargs,
    )
    with writer:
        writer.write_array(data)
    if out is None:
        return sink.getvalue()
    return None


def compress_file_tiled(
    npy_path,
    out,
    tile_shape=None,
    workers: int = 1,
    abs_bound: float | None = None,
    rel_bound: float | None = None,
    mode: str | None = None,
    bound: float | None = None,
    config=None,
    **compress_kwargs,
) -> dict:
    """Compress an ``.npy`` file slab by slab via a memory map.

    Only one leading-axis tile-row is resident at a time, so the source
    may exceed RAM.  ``config`` (an :class:`repro.api.SZConfig`) or
    ``mode``/``bound`` select the error-bound request as in
    :func:`compress_tiled`.  Returns a small summary dict.
    """
    data = np.load(npy_path, mmap_mode="r")
    if tile_shape is None and config is not None:
        tile_shape = config.tile_shape
    tile_shape = _normalize_tile_shape(data.shape, tile_shape)
    writer = TiledWriter(
        out,
        data.shape,
        tile_shape,
        dtype=data.dtype,
        abs_bound=abs_bound,
        rel_bound=rel_bound,
        mode=mode,
        bound=bound,
        workers=workers,
        config=config,
        **compress_kwargs,
    )
    with writer:
        for row in range(writer.n_slabs):
            start, stop = writer.slab_extent(row)
            writer.write_slab(np.asarray(data[start:stop]))
    original_bytes = int(np.prod(data.shape, dtype=np.int64)) * data.dtype.itemsize
    return {
        "shape": tuple(data.shape),
        "tile_shape": tile_shape,
        "n_tiles": writer.n_tiles,
        "original_bytes": original_bytes,
        "compressed_bytes": writer.bytes_written,
        "compression_factor": original_bytes / max(1, writer.bytes_written),
    }


def decompress_tiled(src) -> np.ndarray:
    """Decompress a tiled container (bytes, path or file) to the array."""
    with TiledReader(src) as reader:
        return reader.read_all()


def decompress_region(
    src, region, accountant: ByteAccountant | None = None
) -> np.ndarray:
    """Decode only the tiles of ``src`` intersecting ``region``.

    ``region`` is a tuple of step-1 slices and/or integers (NumPy basic
    indexing; integers drop their axis).  ``accountant`` records every
    ``(offset, length)`` read — the byte-accounting hook proving that
    tiles outside the region are never touched.
    """
    with TiledReader(src, accountant=accountant) as reader:
        return reader.region(region)


def tiled_container_info(src) -> dict:
    """Metadata + per-tile statistics of a tiled container."""
    with TiledReader(src) as reader:
        return reader.info()


def _leading_bytes(src, n: int = 4) -> bytes:
    if isinstance(src, (bytes, bytearray, memoryview)):
        return bytes(src[:n])
    if isinstance(src, (str, Path)):
        with open(src, "rb") as fh:
            return fh.read(n)
    pos = src.tell()
    head = src.read(n)
    src.seek(pos)
    return head


def decompress_any(src) -> np.ndarray:
    """Decompress either container generation, dispatching on magic."""
    if is_tiled(_leading_bytes(src)):
        return decompress_tiled(src)
    if isinstance(src, (str, Path)):
        src = Path(src).read_bytes()
    elif not isinstance(src, (bytes, bytearray, memoryview)):
        src = src.read()
    return v1_decompress(src)


def container_info_any(src) -> dict:
    """``container_info`` for v1 and tiled v2 containers alike."""
    if is_tiled(_leading_bytes(src)):
        return tiled_container_info(src)
    if isinstance(src, (str, Path)):
        src = Path(src).read_bytes()
    elif not isinstance(src, (bytes, bytearray, memoryview)):
        src = src.read()
    info = v1_container_info(src)
    # Untagged blobs are the original v1 layout; pw_rel/psnr blobs carry
    # the mode-tagged (version 2) header of the same container family.
    info["format"] = (
        "v1-moded" if info.get("mode") in ("pw_rel", "psnr") else "v1"
    )
    return info


def region_of_interest_cost(src, region) -> dict:
    """Bytes a region read would touch vs. the whole container.

    Performs the same CRC-verified tile reads a real
    :func:`decompress_region` would issue — recorded through the
    accounting hook — but never decompresses anything, so sizing the
    partial-read savings costs I/O only, not decode CPU.
    """
    accountant = ByteAccountant()
    with TiledReader(src, accountant=accountant) as reader:
        grid: TileGrid = reader.grid
        total = reader._src.size
        slices, squeeze = grid.normalize_region(region)
        needed = grid.tiles_intersecting(slices)
        for i in needed:
            reader.read_tile_bytes(i)
    region_shape = tuple(
        sl.stop - sl.start
        for axis, sl in enumerate(slices)
        if axis not in squeeze
    )
    return {
        "region_shape": region_shape,
        "bytes_read": accountant.total_bytes,
        "container_bytes": total,
        "tiles_read": len(needed),
        "tiles_total": grid.n_tiles,
        "read_fraction": accountant.total_bytes / max(1, total),
    }
