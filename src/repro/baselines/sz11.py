"""SZ-1.1 baseline (Di & Cappello, IPDPS 2016 [9]).

The previous SZ generation the paper improves upon: data are linearized in
raster order regardless of dimensionality, and each point is predicted by
the best of three curve fits on the *preceding decompressed* values —
preceding neighbor (constant), linear, quadratic.  A 2-bit best-fit code
is emitted when the winning fit is within the error bound; otherwise the
value is unpredictable and stored via binary-representation analysis.
Best-fit codes are entropy coded (we Huffman them, then the whole code
section rides through the shared container; SZ-1.1 used gzip on its
bit-arrays — our canonical Huffman plays the same role).

The sequential scan is the algorithm's defining property (and its
multidimensional weakness, which Table II / Fig. 6 of the paper expose),
so the hot loop is scalar Python by necessity; it is kept tight with
list-based state.
"""

from __future__ import annotations

import numpy as np

from repro.core.unpredictable import (
    decode_unpredictable,
    encode_unpredictable,
    truncate_to_bound,
)
from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.huffman import EncodedStream, HuffmanCodec

__all__ = ["SZ11"]

_MAGIC = 0x535A3131  # 'SZ11'

_CODE_UNPRED = 0
_CODE_PREV = 1
_CODE_LINEAR = 2
_CODE_QUAD = 3


class SZ11:
    """SZ-1.1 compressor: best-fit curve prediction on linearized data."""

    name = "SZ-1.1"

    def __init__(
        self,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
    ) -> None:
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound

    def _resolve(self, data: np.ndarray) -> float:
        candidates = []
        if self.abs_bound is not None:
            candidates.append(float(self.abs_bound))
        if self.rel_bound is not None:
            finite = data[np.isfinite(data)]
            vrange = float(finite.max() - finite.min()) if finite.size else 0.0
            candidates.append(float(self.rel_bound) * vrange)
        if not candidates:
            raise ValueError("provide abs_bound and/or rel_bound")
        eb = min(candidates)
        if eb <= 0:
            raise ValueError("resolved error bound must be positive")
        return eb

    def compress(self, data: np.ndarray) -> bytes:
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {data.dtype}")
        eb = self._resolve(data)
        flat = data.reshape(-1)
        n = flat.size
        xs = flat.astype(np.float64).tolist()
        cast = data.dtype.type
        codes = np.zeros(n, dtype=np.int64)
        unpred_idx: list[int] = []
        # decompressed history (three taps)
        d1 = d2 = d3 = 0.0
        codes_l = codes  # local alias
        isfinite = np.isfinite(flat)
        fin = isfinite.tolist()
        for i in range(n):
            x = xs[i]
            best_code = _CODE_UNPRED
            recon = 0.0
            if fin[i]:
                p1 = d1
                p2 = 2.0 * d1 - d2
                p3 = 3.0 * d1 - 3.0 * d2 + d3
                e1 = abs(x - p1)
                e2 = abs(x - p2)
                e3 = abs(x - p3)
                if e1 <= e2 and e1 <= e3:
                    best, best_code = p1, _CODE_PREV
                elif e2 <= e3:
                    best, best_code = p2, _CODE_LINEAR
                else:
                    best, best_code = p3, _CODE_QUAD
                recon = float(cast(best))
                if not (abs(x - recon) <= eb):
                    best_code = _CODE_UNPRED
            if best_code == _CODE_UNPRED:
                unpred_idx.append(i)
                recon = float(
                    truncate_to_bound(np.array([x], dtype=data.dtype), eb)[0]
                )
            codes_l[i] = best_code
            d3, d2, d1 = d2, d1, recon
        unpred = (
            flat[np.array(unpred_idx, dtype=np.int64)]
            if unpred_idx
            else np.zeros(0, dtype=data.dtype)
        )
        codec = HuffmanCodec.from_symbols(codes, 4)
        stream = codec.encode(codes, block_size=1 << 14)
        unpred_payload, _ = encode_unpredictable(unpred, eb)

        w = BitWriter()
        w.write(_MAGIC, 32)
        w.write(0 if data.dtype == np.float32 else 1, 8)
        w.write(data.ndim, 8)
        for s in data.shape:
            w.write(int(s), 48)
        w.write(int(np.float64(eb).view(np.uint64)), 64)
        w.write(len(unpred_idx), 48)
        codec.write_table(w)
        head = w.getvalue()
        stream_blob = stream.to_bytes()
        out = bytearray(head)
        out += len(stream_blob).to_bytes(6, "big")
        out += stream_blob
        out += len(unpred_payload).to_bytes(6, "big")
        out += unpred_payload
        return bytes(out)

    def decompress(self, blob: bytes) -> np.ndarray:
        r = BitReader(blob)
        if r.read(32) != _MAGIC:
            raise ValueError("not an SZ-1.1 container")
        dtype = np.dtype(np.float32 if r.read(8) == 0 else np.float64)
        ndim = r.read(8)
        shape = tuple(r.read(48) for _ in range(ndim))
        eb = float(np.uint64(r.read(64)).view(np.float64))
        unpred_count = r.read(48)
        codec = HuffmanCodec.read_table(r)
        pos = (r.bitpos + 7) // 8
        stream_len = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        stream = EncodedStream.from_bytes(blob[pos : pos + stream_len])
        pos += stream_len
        unpred_len = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        unpred_payload = bytes(blob[pos : pos + unpred_len])
        codes = codec.decode(stream).tolist()
        unpred = decode_unpredictable(
            unpred_payload, unpred_count, eb, dtype
        ).astype(np.float64).tolist()

        n = int(np.prod(shape))
        out = np.zeros(n, dtype=np.float64)
        cast = dtype.type
        d1 = d2 = d3 = 0.0
        upos = 0
        for i in range(n):
            code = codes[i]
            if code == _CODE_UNPRED:
                recon = unpred[upos]
                upos += 1
            elif code == _CODE_PREV:
                recon = float(cast(d1))
            elif code == _CODE_LINEAR:
                recon = float(cast(2.0 * d1 - d2))
            else:
                recon = float(cast(3.0 * d1 - 3.0 * d2 + d3))
            out[i] = recon
            d3, d2, d1 = d2, d1, recon
        if upos != unpred_count:
            raise ValueError("corrupt SZ-1.1 stream: unpredictable count")
        return out.reshape(shape).astype(dtype)
