"""ZFP-like transform codec (Lindstrom 2014 [13], zfp 0.5 architecture).

Pipeline per 4^d block: common-exponent fixed-point alignment → integer
lifting transform along each dimension → total-sequency coefficient
ordering → negabinary → embedded bit-plane coding with prefix-significance
group testing.  Two modes:

* ``accuracy`` (fixed tolerance): per-block plane cutoff derived from the
  block exponent and the tolerance.  Like real zfp this is usually *over-
  conservative* (max error well below the tolerance, paper Table V) and —
  crucially for the paper's argument — **can violate the bound when the
  value range is huge**, because the fixed-point alignment at a large
  ``emax`` makes even the lowest retained plane coarser than the
  tolerance.
* ``rate`` (fixed bits/value): every block gets exactly ``rate * 4^d``
  payload bits; the embedded stream is truncated mid-plane.

Deviations from zfp proper (documented in DESIGN.md): we use zfp's lifting
constants (inverse is approximate by design, ±2 LSB — absorbed below the
plane cutoff); per-block bit lengths are Huffman-coded into the container
in accuracy mode so decoding can proceed block-parallel (zfp offers the
same via its offset index); the container layout is ours.

All encode/decode stages are vectorized *across blocks*; the only Python
loops are over the 4 lifting lines, ~P bit planes, and the ≤ 2*4^d+1
state-machine rounds inside a plane.
"""

from __future__ import annotations

import math

import numpy as np

from repro.encoding.bitio import BitReader, BitWriter, pack_varlen, read_bits_at, unpack_varlen
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.ragged import last_true_index

__all__ = ["ZFPLike"]

_MAGIC = 0x525A4650  # 'RZFP'
_NBMASK = np.uint64(0xAAAAAAAAAAAAAAAA)
_EMAX_BIAS = 2048
_EMAX_BITS = 13

_QPREC = {np.dtype(np.float32): 30, np.dtype(np.float64): 52}


def _guard(d: int) -> int:
    """Extra planes kept below the tolerance cutoff.

    The inverse lifting amplifies truncation error by ~2.25x per
    dimension, so the guard grows with d.  d+2 calibrates the realized
    max error to ~0.2-0.5x the tolerance — the over-conservatism real
    zfp exhibits in the paper's Table V — while never violating it on
    normal-range data.
    """
    return d + 2


def _fwd_lift(v: np.ndarray, axis: int) -> None:
    """zfp forward lifting along ``axis`` (length 4), in place."""
    idx = [slice(None)] * v.ndim
    def at(i):
        idx[axis] = i
        return tuple(idx)
    x, y, z, w = v[at(0)].copy(), v[at(1)].copy(), v[at(2)].copy(), v[at(3)].copy()
    x += w; x >>= 1; w -= x
    z += y; z >>= 1; y -= z
    x += z; x >>= 1; z -= x
    w += y; w >>= 1; y -= w
    w += y >> 1; y -= w >> 1
    v[at(0)], v[at(1)], v[at(2)], v[at(3)] = x, y, z, w


def _inv_lift(v: np.ndarray, axis: int) -> None:
    """zfp inverse lifting along ``axis`` (length 4), in place."""
    idx = [slice(None)] * v.ndim
    def at(i):
        idx[axis] = i
        return tuple(idx)
    x, y, z, w = v[at(0)].copy(), v[at(1)].copy(), v[at(2)].copy(), v[at(3)].copy()
    y += w >> 1; w -= y >> 1
    y += w; w <<= 1; w -= y
    z += x; x <<= 1; x -= z
    y += z; z <<= 1; z -= y
    w += x; x <<= 1; x -= w
    v[at(0)], v[at(1)], v[at(2)], v[at(3)] = x, y, z, w


def _sequency_perm(d: int) -> np.ndarray:
    """Order tensor coefficients by total per-dimension frequency."""
    grids = np.meshgrid(*[np.arange(4)] * d, indexing="ij")
    total = sum(g.ravel() for g in grids)
    return np.argsort(total, kind="stable")


def _to_negabinary(q: np.ndarray) -> np.ndarray:
    return (q.astype(np.uint64) + _NBMASK) ^ _NBMASK


def _from_negabinary(u: np.ndarray) -> np.ndarray:
    return ((u ^ _NBMASK) - _NBMASK).astype(np.int64)


def _blockize(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Split into (B, 4^d) blocks, edge-replicating partial blocks."""
    d = data.ndim
    nb = tuple(-(-s // 4) for s in data.shape)
    pad = [(0, nb[i] * 4 - data.shape[i]) for i in range(d)]
    padded = np.pad(data, pad, mode="edge")
    shape = []
    for n in nb:
        shape.extend([n, 4])
    v = padded.reshape(shape)
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    return v.transpose(order).reshape(-1, 4**d), nb


def _unblockize(
    blocks: np.ndarray, nb: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    d = len(shape)
    v = blocks.reshape(tuple(nb) + (4,) * d)
    order = []
    for i in range(d):
        order.extend([i, d + i])
    padded = v.transpose(order).reshape(tuple(n * 4 for n in nb))
    return padded[tuple(slice(0, s) for s in shape)]


class ZFPLike:
    """ZFP-like compressor.  ``mode`` is 'accuracy' or 'rate'.

    >>> z = ZFPLike(mode='accuracy', tolerance=1e-3)
    >>> z = ZFPLike(mode='rate', rate=8.0)   # bits per value
    """

    name = "ZFP-like"

    def __init__(
        self,
        mode: str = "accuracy",
        tolerance: float | None = None,
        rate: float | None = None,
    ) -> None:
        if mode not in ("accuracy", "rate"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "accuracy" and (tolerance is None or tolerance <= 0):
            raise ValueError("accuracy mode needs a positive tolerance")
        if mode == "rate" and (rate is None or rate <= 0):
            raise ValueError("rate mode needs a positive rate (bits/value)")
        self.mode = mode
        self.tolerance = tolerance
        self.rate = rate

    # -- encoding ---------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {data.dtype}")
        if not 1 <= data.ndim <= 3:
            raise ValueError("ZFP-like supports 1-3 dimensional arrays")
        if not np.isfinite(data).all():
            raise ValueError("ZFP-like does not support NaN/Inf input")
        d = data.ndim
        S = 4**d
        qprec = _QPREC[data.dtype]
        nplanes = qprec + 2
        blocks, nb = _blockize(data.astype(np.float64))
        B = blocks.shape[0]

        maxabs = np.abs(blocks).max(axis=1)
        zero_blk = maxabs == 0.0
        emax = np.zeros(B, dtype=np.int64)
        nz = ~zero_blk
        if nz.any():
            _, e = np.frexp(maxabs[nz])
            emax[nz] = e  # maxabs < 2^emax
        q = np.rint(np.ldexp(blocks, (qprec - emax)[:, None])).astype(np.int64)
        q[zero_blk] = 0

        v = q.reshape((B,) + (4,) * d)
        for axis in range(1, d + 1):
            _fwd_lift(v, axis)
        perm = _sequency_perm(d)
        u = _to_negabinary(q.reshape(B, S)[:, perm])

        if self.mode == "accuracy":
            cut = (
                qprec
                + np.int64(math.floor(math.log2(self.tolerance)))
                - emax
                - _guard(d)
            )
            plane_cut = np.clip(cut, 0, nplanes)
            plane_cut[zero_blk] = nplanes  # nothing encoded
            budget = None
        else:
            # zfp charges the per-block exponent header against the budget.
            plane_cut = np.zeros(B, dtype=np.int64)
            budget = np.full(
                B,
                max(0, int(round(self.rate * S)) - _EMAX_BITS),
                dtype=np.int64,
            )

        payload_bits, block_bits = _encode_planes(
            u, plane_cut, nplanes, S, budget
        )

        w = BitWriter()
        w.write(_MAGIC, 32)
        w.write(0 if data.dtype == np.float32 else 1, 8)
        w.write(d, 8)
        w.write(0 if self.mode == "accuracy" else 1, 8)
        w.write(qprec, 8)
        for s in data.shape:
            w.write(int(s), 48)
        param = self.tolerance if self.mode == "accuracy" else self.rate
        w.write(int(np.float64(param).view(np.uint64)), 64)
        head = w.getvalue()
        out = bytearray(head)
        if self.mode == "accuracy":
            flags_buf, _ = pack_varlen(
                zero_blk.astype(np.uint64), np.full(B, 1, dtype=np.int64)
            )
            emax_buf, _ = pack_varlen(
                (emax[nz] + _EMAX_BIAS).astype(np.uint64),
                np.full(int(nz.sum()), _EMAX_BITS, dtype=np.int64),
            )
            out += flags_buf.tobytes()
            out += emax_buf.tobytes()
        else:
            # rate mode: uniform sections keep per-block offsets implicit
            emax_buf, _ = pack_varlen(
                (emax + _EMAX_BIAS).astype(np.uint64),
                np.full(B, _EMAX_BITS, dtype=np.int64),
            )
            out += emax_buf.tobytes()
        if self.mode == "accuracy":
            # Huffman-coded per-block bit lengths: the parallel-decode index.
            lens_codec = HuffmanCodec.from_symbols(
                block_bits, int(block_bits.max()) + 1
            )
            lw = BitWriter()
            lens_codec.write_table(lw)
            lens_stream = lens_codec.encode(block_bits, block_size=1 << 16)
            lens_blob = lw.getvalue() + lens_stream.to_bytes()
            out += len(lens_blob).to_bytes(4, "big")
            out += lens_blob
        out += len(payload_bits).to_bytes(6, "big")
        out += payload_bits.tobytes()
        return bytes(out)

    # -- decoding ---------------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        r = BitReader(blob)
        if r.read(32) != _MAGIC:
            raise ValueError("not a ZFP-like container")
        dtype = np.float32 if r.read(8) == 0 else np.float64
        d = r.read(8)
        mode = "accuracy" if r.read(8) == 0 else "rate"
        qprec = r.read(8)
        shape = tuple(r.read(48) for _ in range(d))
        param = float(np.uint64(r.read(64)).view(np.float64))
        S = 4**d
        nplanes = qprec + 2
        nb = tuple(-(-s // 4) for s in shape)
        B = int(np.prod(nb))
        pos = (r.bitpos + 7) // 8
        if mode == "accuracy":
            flag_bytes = (B + 7) // 8
            zero_blk = unpack_varlen(
                np.frombuffer(blob, np.uint8, flag_bytes, pos),
                np.full(B, 1, dtype=np.int64),
            ).astype(bool)
            pos += flag_bytes
            n_nz = int((~zero_blk).sum())
            emax_bytes = (n_nz * _EMAX_BITS + 7) // 8
            emax = np.zeros(B, dtype=np.int64)
            emax[~zero_blk] = (
                unpack_varlen(
                    np.frombuffer(blob, np.uint8, emax_bytes, pos),
                    np.full(n_nz, _EMAX_BITS, dtype=np.int64),
                ).astype(np.int64)
                - _EMAX_BIAS
            )
            pos += emax_bytes
            cut = (
                qprec
                + np.int64(math.floor(math.log2(param)))
                - emax
                - _guard(d)
            )
            plane_cut = np.clip(cut, 0, nplanes)
            plane_cut[zero_blk] = nplanes
            lens_len = int.from_bytes(blob[pos : pos + 4], "big")
            pos += 4
            lens_blob = blob[pos : pos + lens_len]
            pos += lens_len
            lr = BitReader(lens_blob)
            lens_codec = HuffmanCodec.read_table(lr)
            from repro.encoding.huffman import EncodedStream

            lens_stream = EncodedStream.from_bytes(
                lens_blob[(lr.bitpos + 7) // 8 :]
            )
            block_bits = lens_codec.decode(lens_stream)
        else:
            zero_blk = np.zeros(B, dtype=bool)
            emax_bytes = (B * _EMAX_BITS + 7) // 8
            emax = (
                unpack_varlen(
                    np.frombuffer(blob, np.uint8, emax_bytes, pos),
                    np.full(B, _EMAX_BITS, dtype=np.int64),
                ).astype(np.int64)
                - _EMAX_BIAS
            )
            pos += emax_bytes
            plane_cut = np.zeros(B, dtype=np.int64)
            block_bits = np.full(
                B,
                max(0, int(round(param * S)) - _EMAX_BITS),
                dtype=np.int64,
            )
        payload_len = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        payload = np.frombuffer(blob, np.uint8, payload_len, pos)

        u = _decode_planes(payload, block_bits, plane_cut, nplanes, S, B)
        perm = _sequency_perm(d)
        inv_perm = np.argsort(perm)
        q = _from_negabinary(u)[:, inv_perm]
        v = q.reshape((B,) + (4,) * d)
        for axis in range(d, 0, -1):
            _inv_lift(v, axis)
        blocks = np.ldexp(
            v.reshape(B, S).astype(np.float64), (emax - qprec)[:, None]
        )
        blocks[zero_blk] = 0.0
        return _unblockize(blocks, nb, shape).astype(dtype)


def _encode_planes(
    u: np.ndarray,
    plane_cut: np.ndarray,
    nplanes: int,
    S: int,
    budget: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Embedded bit-plane encoding; returns (payload bytes, bits/block)."""
    B = u.shape[0]
    cols = np.arange(S, dtype=np.int64)
    n_state = np.zeros(B, dtype=np.int64)
    remaining = budget.copy() if budget is not None else None
    mats: list[np.ndarray] = []
    widths: list[np.ndarray] = []
    top = nplanes - 1
    bottom = int(plane_cut.min()) if B else 0
    for p in range(top, bottom - 1, -1):
        active = plane_cut <= p
        if remaining is not None:
            active &= remaining > 0
        if not active.any():
            break  # rate budgets exhausted (cut planes never reactivate)
        bits_p = ((u >> np.uint64(p)) & np.uint64(1)).astype(np.uint8)
        M, width, n_state = _encode_one_plane(bits_p, n_state, active, cols, S)
        if remaining is not None:
            width = np.minimum(width, remaining)
            remaining -= width
        mats.append(M)
        widths.append(width)
    if not mats:
        return np.zeros(0, dtype=np.uint8), np.zeros(B, dtype=np.int64)
    width_pb = np.stack(widths)  # (P, B)
    block_bits = width_pb.sum(axis=0)
    if budget is not None:
        # Pad every block to its full budget with zero bits.
        block_bits = budget.copy()
    intra = np.zeros_like(width_pb)
    np.cumsum(width_pb[:-1], axis=0, out=intra[1:])
    block_starts = np.zeros(B, dtype=np.int64)
    np.cumsum(block_bits[:-1], out=block_starts[1:])
    total = int(block_bits.sum())
    bits = np.zeros(total, dtype=np.uint8)
    for pi, (M, width) in enumerate(zip(mats, widths)):
        wmax = int(width.max()) if width.size else 0
        if wmax == 0:
            continue
        colsw = np.arange(wmax, dtype=np.int64)
        mask = colsw[None, :] < width[:, None]
        dest = (block_starts + intra[pi])[:, None] + colsw[None, :]
        bits[dest[mask]] = M[:, :wmax][mask]
    return np.packbits(bits), block_bits


def _encode_one_plane(
    bits_p: np.ndarray,
    n_state: np.ndarray,
    active: np.ndarray,
    cols: np.ndarray,
    S: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One bit plane for every block: refinement + group-tested tail."""
    B = bits_p.shape[0]
    n = np.where(active, n_state, 0)
    tail_mask = cols[None, :] >= n[:, None]
    set_tail = (bits_p != 0) & tail_mask & active[:, None]
    s_k = last_true_index(set_tail, axis=1)  # -1 when no set bit
    k = set_tail.sum(axis=1)
    c_excl = np.cumsum(set_tail, axis=1) - set_tail
    has_set = k > 0
    tail_len = np.where(
        has_set,
        (s_k + 1 - n) + k + (s_k + 1 < S),
        np.where(n < S, 1, 0),
    )
    tail_len = np.where(active, tail_len, 0)
    width = np.where(active, n + tail_len, 0)
    W = S + S + 1
    M = np.zeros((B, W), dtype=np.uint8)
    col_idx = np.arange(W, dtype=np.int64)
    in_tail = (col_idx[None, :] >= n[:, None]) & (
        col_idx[None, :] < width[:, None]
    )
    M[in_tail] = 1  # markers default to 1
    # refinement: plane bits of coefficients already significant (prefix n)
    ref_mask = (cols[None, :] < n[:, None]) & active[:, None]
    M[:, :S][ref_mask] = bits_p[ref_mask]
    # value bits: tail coefficients up to the last set one
    val_mask = tail_mask & (cols[None, :] <= s_k[:, None]) & active[:, None]
    if val_mask.any():
        rows = np.broadcast_to(np.arange(B)[:, None], (B, S))
        dest_col = cols[None, :] + 1 + c_excl
        M[rows[val_mask], dest_col[val_mask]] = bits_p[val_mask]
    # trailing '0' test bit (only when the tail terminates early)
    trail = active & (
        (~has_set & (n < S)) | (has_set & (s_k + 1 < S))
    )
    if trail.any():
        M[np.flatnonzero(trail), width[trail] - 1] = 0
    n_new = np.where(has_set, s_k + 1, n_state)
    n_new = np.where(active, n_new, n_state)
    return M, width, n_new


def _decode_planes(
    payload: np.ndarray,
    block_bits: np.ndarray,
    plane_cut: np.ndarray,
    nplanes: int,
    S: int,
    B: int,
) -> np.ndarray:
    """Replay the embedded coder; returns negabinary coefficients (B, S)."""
    u = np.zeros((B, S), dtype=np.uint64)
    starts = np.zeros(B, dtype=np.int64)
    np.cumsum(block_bits[:-1].astype(np.int64), out=starts[1:])
    ends = starts + block_bits.astype(np.int64)
    cursors = starts.copy()
    n_state = np.zeros(B, dtype=np.int64)
    top = nplanes - 1
    bottom = int(plane_cut.min()) if B else 0

    def read_bit(sel: np.ndarray) -> np.ndarray:
        """Read one bit per selected block; zero once past block end."""
        can = cursors[sel] < ends[sel]
        out = np.zeros(sel.size, dtype=np.uint64)
        if can.any():
            out[can] = read_bits_at(payload, cursors[sel][can], 1)
        cursors[sel] += can  # only real reads advance
        return out

    for p in range(top, bottom - 1, -1):
        if np.all(cursors >= ends):
            break  # every block's stream fully consumed
        active = (plane_cut <= p) & (cursors < ends)
        if not active.any():
            continue
        pbit = np.uint64(1) << np.uint64(p)
        # refinement: n_state consecutive bits per block, fetched as two
        # ≤57-bit windows instead of bit-by-bit rounds
        sel = np.flatnonzero(active & (n_state > 0))
        if sel.size:
            nb = n_state[sel]
            avail = np.minimum(nb, np.maximum(ends[sel] - cursors[sel], 0))
            w1 = read_bits_at(payload, np.minimum(cursors[sel], len(payload) * 8), 57)
            ref_bits = np.zeros((sel.size, int(nb.max())), dtype=bool)
            upto = int(min(57, nb.max()))
            for i in range(upto):
                ref_bits[:, i] = ((w1 >> np.uint64(56 - i)) & np.uint64(1)) == 1
            if nb.max() > 57:
                sel2 = np.flatnonzero(nb > 57)
                w2 = read_bits_at(
                    payload,
                    np.minimum(cursors[sel][sel2] + 57, len(payload) * 8),
                    7,
                )
                for i in range(57, int(nb.max())):
                    ref_bits[sel2, i] = ((w2 >> np.uint64(57 + 6 - i)) & np.uint64(1)) == 1
            cols64 = np.arange(ref_bits.shape[1], dtype=np.int64)
            valid = cols64[None, :] < avail[:, None]  # beyond end reads as 0
            hit = ref_bits & valid
            rows, cidx = np.nonzero(hit)
            u[sel[rows], cidx] |= pbit
            cursors[sel] += avail
        # tail state machine: 0 = need test, 1 = scanning, 2 = done
        phase = np.where(active & (n_state < S), 0, 2)
        pos = n_state.copy()
        while True:
            busy = np.flatnonzero(phase < 2)
            if busy.size == 0:
                break
            bit = read_bit(busy)
            ph = phase[busy]
            testing = ph == 0
            scanning = ph == 1
            # test bit: 0 -> done, 1 -> start scanning
            t_idx = busy[testing]
            phase[t_idx] = np.where(bit[testing] == 1, 1, 2)
            # value bit at pos
            s_idx = busy[scanning]
            if s_idx.size:
                sbit = bit[scanning]
                hit = sbit == 1
                u[s_idx[hit], pos[s_idx[hit]]] |= pbit
                pos[s_idx] += 1
                n_state[s_idx[hit]] = pos[s_idx[hit]]
                # after a set bit: next is a test (or done at S)
                done_full = pos[s_idx] >= S
                phase[s_idx] = np.where(
                    hit & ~done_full, 0, np.where(done_full, 2, 1)
                )
    return u
