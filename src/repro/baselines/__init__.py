"""Baseline compressors the paper evaluates against (Section V).

Every comparator is implemented from scratch on the shared encoding
substrates:

=============  ==================================================own=====
``sz11``       SZ-1.1 single-dimension curve-fitting predictor [9]
``zfp``        ZFP-like fixed-rate / fixed-accuracy block-transform codec [13]
``isabela``    ISABELA sort + B-spline window compressor [12]
``fpzip``      FPZIP-like lossless Lorenzo-predictive float coder [14]
``gzip_like``  GZIP-like DEFLATE codec over raw bytes [8]
``numarck``    NUMARCK/SSEM-style vector quantization (related work) [6,16]
=============  =========================================================
"""

from repro.baselines.fpzip import FPZIPLike
from repro.baselines.gzip_like import GzipLike
from repro.baselines.isabela import ISABELA, ISABELAFailure
from repro.baselines.numarck import NumarckLike
from repro.baselines.sz11 import SZ11
from repro.baselines.zfp import ZFPLike

__all__ = [
    "FPZIPLike",
    "GzipLike",
    "ISABELA",
    "ISABELAFailure",
    "NumarckLike",
    "SZ11",
    "ZFPLike",
]
