"""GZIP-like lossless baseline: the repro DEFLATE codec over raw bytes.

The paper uses GZIP [8] as the lossless strawman (CF ~1.1-1.3 on float
data).  This wrapper adds array framing (dtype/shape) around
:mod:`repro.encoding.deflate`.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.deflate import deflate_compress, deflate_decompress

__all__ = ["GzipLike"]

_DTYPES = {0: np.float32, 1: np.float64}
_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}


class GzipLike:
    """Lossless byte-stream compressor (LZ77 + canonical Huffman)."""

    name = "GZIP-like"

    def __init__(self, max_chain: int = 8, lazy: bool = False) -> None:
        # Modest matcher effort: float data rarely has long byte repeats and
        # the matcher is pure Python.
        self.max_chain = max_chain
        self.lazy = lazy

    def compress(self, data: np.ndarray) -> bytes:
        data = np.ascontiguousarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {data.dtype}")
        head = bytearray()
        head.append(_CODES[data.dtype])
        head.append(data.ndim)
        for s in data.shape:
            head += int(s).to_bytes(6, "big")
        body = deflate_compress(
            data.tobytes(), max_chain=self.max_chain, lazy=self.lazy
        )
        return bytes(head) + body

    def decompress(self, blob: bytes) -> np.ndarray:
        dtype = np.dtype(_DTYPES[blob[0]])
        ndim = blob[1]
        shape = tuple(
            int.from_bytes(blob[2 + 6 * i : 8 + 6 * i], "big")
            for i in range(ndim)
        )
        raw = deflate_decompress(blob[2 + 6 * ndim :])
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
