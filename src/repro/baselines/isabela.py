"""ISABELA baseline (Lakshminarasimhan et al. 2013 [12]).

In-situ Sort-And-B-spline Error-bounded Lossy Abatement: each fixed-size
window of the linearized stream is sorted into a monotone curve, fitted
with a least-squares cubic B-spline, and the *permutation index* is stored
so the decoder can undo the sort.  The index costs ``log2(window)`` bits
per value, which caps the compression factor — the structural weakness the
paper's Figure 6 shows.

Error control: residuals against the fitted curve are quantized at
``2*eb`` and entropy coded, so every reconstructed value is within ``eb``
(the original bounds point-wise relative error; we bound absolute error,
consistent with how the paper drives every compressor from a
value-range-based relative bound).  When the residual stream stops
compressing — tight bounds on rough data — the achieved factor drops
below 1 and :class:`ISABELAFailure` is raised, mirroring the original
implementation giving up at low error bounds ("we plot its compression
factors only until it fails").

The B-spline basis (Cox–de Boor) is built from scratch; because windows
share one uniform design matrix, fitting all windows is a single
pseudo-inverse matmul.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitio import BitReader, BitWriter, pack_varlen, unpack_varlen
from repro.encoding.huffman import EncodedStream, HuffmanCodec

__all__ = ["ISABELA", "ISABELAFailure", "bspline_basis"]

_MAGIC = 0x52495341  # 'RISA'


class ISABELAFailure(RuntimeError):
    """Raised when ISABELA cannot reach a compression factor > 1."""


def bspline_basis(
    x: np.ndarray, n_coeffs: int, degree: int = 3
) -> np.ndarray:
    """Cox–de Boor B-spline design matrix on a clamped uniform knot vector.

    Parameters
    ----------
    x
        Evaluation points in ``[0, 1]``.
    n_coeffs
        Number of control points (columns).
    degree
        Spline degree (3 = cubic, as in ISABELA).

    Returns
    -------
    ``(len(x), n_coeffs)`` float64 design matrix.
    """
    if n_coeffs <= degree:
        raise ValueError("need more coefficients than the degree")
    n_knots = n_coeffs + degree + 1
    interior = n_knots - 2 * (degree + 1)
    knots = np.concatenate(
        [
            np.zeros(degree + 1),
            np.linspace(0, 1, interior + 2)[1:-1],
            np.ones(degree + 1),
        ]
    )
    x = np.asarray(x, dtype=np.float64)
    # degree-0 basis: indicator of the knot span (right-open, last closed)
    basis = np.zeros((x.size, n_knots - 1))
    for j in range(n_knots - 1):
        if knots[j + 1] > knots[j]:
            basis[:, j] = (x >= knots[j]) & (x < knots[j + 1])
    basis[x >= knots[-1] - 1e-12, np.max(np.nonzero(np.diff(knots))[0])] = 1.0
    for p in range(1, degree + 1):
        nb = np.zeros((x.size, n_knots - p - 1))
        for j in range(n_knots - p - 1):
            left_den = knots[j + p] - knots[j]
            right_den = knots[j + p + 1] - knots[j + 1]
            term = 0.0
            if left_den > 0:
                term = (x - knots[j]) / left_den * basis[:, j]
            if right_den > 0:
                term = term + (knots[j + p + 1] - x) / right_den * basis[:, j + 1]
            nb[:, j] = term
        basis = nb
    return basis


def _repair_cast_rounding(
    sorted_vals: np.ndarray,
    fit: np.ndarray,
    q: np.ndarray,
    eb: float,
    dtype: np.dtype,
) -> np.ndarray:
    """Nudge quantized residuals whose reconstruction, once rounded through
    the output dtype, lands outside the bound (float32 ulp vs tiny eb)."""
    recon = (fit + q * (2.0 * eb)).astype(dtype).astype(np.float64)
    bad = np.abs(sorted_vals - recon) > eb
    if not bad.any():
        return q
    for delta in (-1, 1):
        cand = q[bad] + delta
        recon_c = (fit[bad] + cand * (2.0 * eb)).astype(dtype).astype(np.float64)
        fix = np.abs(sorted_vals[bad] - recon_c) <= eb
        qb = q[bad]
        qb[fix] = cand[fix]
        q[bad] = qb
        recon = (fit + q * (2.0 * eb)).astype(dtype).astype(np.float64)
        bad = np.abs(sorted_vals - recon) > eb
        if not bad.any():
            return q
    raise ISABELAFailure(
        "bound unreachable after dtype rounding; eb too tight for ISABELA"
    )


class ISABELA:
    """Window-sorted B-spline compressor with error-bound repair stream."""

    name = "ISABELA"

    def __init__(
        self,
        abs_bound: float | None = None,
        rel_bound: float | None = None,
        window: int = 1024,
        n_coeffs: int = 30,
    ) -> None:
        if window & (window - 1):
            raise ValueError("window must be a power of two")
        self.abs_bound = abs_bound
        self.rel_bound = rel_bound
        self.window = window
        self.n_coeffs = n_coeffs
        self._design_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _design(self, w: int) -> tuple[np.ndarray, np.ndarray]:
        """(basis, pseudo-inverse) for a window of length ``w``."""
        if w not in self._design_cache:
            x = np.linspace(0, 1, w)
            basis = bspline_basis(x, min(self.n_coeffs, max(4, w // 4)))
            pinv = np.linalg.pinv(basis)
            self._design_cache[w] = (basis, pinv)
        return self._design_cache[w]

    def _resolve(self, data: np.ndarray) -> float:
        candidates = []
        if self.abs_bound is not None:
            candidates.append(float(self.abs_bound))
        if self.rel_bound is not None:
            vrange = float(data.max() - data.min())
            candidates.append(float(self.rel_bound) * vrange)
        if not candidates:
            raise ValueError("provide abs_bound and/or rel_bound")
        eb = min(candidates)
        if eb <= 0:
            raise ValueError("resolved error bound must be positive")
        return eb

    def compress(self, data: np.ndarray) -> bytes:
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {data.dtype}")
        if not np.isfinite(data).all():
            raise ValueError("ISABELA does not support NaN/Inf input")
        eb = self._resolve(data)
        flat = data.reshape(-1).astype(np.float64)
        n = flat.size
        W = self.window
        n_full = n // W
        rem = n - n_full * W

        perm_bits = int(np.log2(W))
        parts_perm: list[np.ndarray] = []
        coeff_list: list[np.ndarray] = []
        q_all: list[np.ndarray] = []

        if n_full:
            windows = flat[: n_full * W].reshape(n_full, W)
            order = np.argsort(windows, axis=1, kind="stable")
            sorted_vals = np.take_along_axis(windows, order, axis=1)
            basis, pinv = self._design(W)
            coeffs = sorted_vals @ pinv.T  # (n_full, K)
            coeffs32 = coeffs.astype(np.float32)
            fit = coeffs32.astype(np.float64) @ basis.T
            resid = sorted_vals - fit
            q = np.rint(resid / (2.0 * eb)).astype(np.int64)
            q = _repair_cast_rounding(sorted_vals, fit, q, eb, data.dtype)
            coeff_list.append(coeffs32)
            q_all.append(q.reshape(-1))
            buf, _ = pack_varlen(
                order.reshape(-1).astype(np.uint64),
                np.full(n_full * W, perm_bits, dtype=np.int64),
            )
            parts_perm.append(buf)
        if rem:
            tailw = flat[n_full * W :]
            order = np.argsort(tailw, kind="stable")
            sorted_vals = tailw[order]
            k = min(self.n_coeffs, max(4, rem // 4))
            if rem > k:
                basis, pinv = self._design(rem)
                coeffs32 = (pinv @ sorted_vals).astype(np.float32)
                fit = basis @ coeffs32.astype(np.float64)
            else:  # degenerate tiny tail: store values as "coefficients"
                coeffs32 = sorted_vals.astype(np.float32)
                fit = coeffs32.astype(np.float64)
            resid = sorted_vals - fit
            q = np.rint(resid / (2.0 * eb)).astype(np.int64)
            q = _repair_cast_rounding(sorted_vals, fit, q, eb, data.dtype)
            coeff_list.append(coeffs32.reshape(1, -1))
            q_all.append(q)
            tail_bits = max(1, int(np.ceil(np.log2(max(rem, 2)))))
            buf, _ = pack_varlen(
                order.astype(np.uint64),
                np.full(rem, tail_bits, dtype=np.int64),
            )
            parts_perm.append(buf)

        q_flat = np.concatenate(q_all) if q_all else np.zeros(0, dtype=np.int64)
        # zigzag then Huffman; alphabet sized by the worst symbol
        zz = ((q_flat << 1) ^ (q_flat >> 63)).astype(np.int64)
        # guard: enormous quantized residuals mean the fit is useless
        if zz.size and zz.max() > 1 << 24:
            raise ISABELAFailure(
                "residuals too large to quantize; bound too tight for ISABELA"
            )
        alphabet = int(zz.max()) + 1 if zz.size else 1
        codec = HuffmanCodec.from_symbols(zz, alphabet)
        stream = codec.encode(zz, block_size=1 << 14)

        w = BitWriter()
        w.write(_MAGIC, 32)
        w.write(0 if data.dtype == np.float32 else 1, 8)
        w.write(data.ndim, 8)
        for s in data.shape:
            w.write(int(s), 48)
        w.write(int(np.float64(eb).view(np.uint64)), 64)
        w.write(W, 16)
        codec.write_table(w)
        head = w.getvalue()
        coeff_bytes = b"".join(c.tobytes() for c in coeff_list)
        perm_bytes = b"".join(p.tobytes() for p in parts_perm)
        stream_blob = stream.to_bytes()
        out = bytearray(head)
        out += len(coeff_bytes).to_bytes(6, "big")
        out += coeff_bytes
        out += len(perm_bytes).to_bytes(6, "big")
        out += perm_bytes
        out += len(stream_blob).to_bytes(6, "big")
        out += stream_blob
        blob = bytes(out)
        if len(blob) >= data.nbytes:
            raise ISABELAFailure(
                f"compression factor {data.nbytes / len(blob):.2f} < 1 "
                f"at eb={eb:.3e}"
            )
        return blob

    def decompress(self, blob: bytes) -> np.ndarray:
        r = BitReader(blob)
        if r.read(32) != _MAGIC:
            raise ValueError("not an ISABELA container")
        dtype = np.dtype(np.float32 if r.read(8) == 0 else np.float64)
        ndim = r.read(8)
        shape = tuple(r.read(48) for _ in range(ndim))
        eb = float(np.uint64(r.read(64)).view(np.float64))
        W = r.read(16)
        codec = HuffmanCodec.read_table(r)
        pos = (r.bitpos + 7) // 8
        coeff_len = int.from_bytes(blob[pos : pos + 6], "big"); pos += 6
        coeff_bytes = blob[pos : pos + coeff_len]; pos += coeff_len
        perm_len = int.from_bytes(blob[pos : pos + 6], "big"); pos += 6
        perm_bytes = np.frombuffer(blob, np.uint8, perm_len, pos); pos += perm_len
        stream_len = int.from_bytes(blob[pos : pos + 6], "big"); pos += 6
        stream = EncodedStream.from_bytes(blob[pos : pos + stream_len])

        n = int(np.prod(shape))
        n_full = n // W
        rem = n - n_full * W
        perm_bits = int(np.log2(W))
        zz = codec.decode(stream)
        q = (zz >> 1) ^ -(zz & 1)

        coeffs = np.frombuffer(coeff_bytes, dtype=np.float32)
        out = np.zeros(n, dtype=np.float64)
        if n_full:
            basis, _ = self._design(W)
            K = basis.shape[1]
            cmat = coeffs[: n_full * K].reshape(n_full, K).astype(np.float64)
            fit = cmat @ basis.T
            sorted_vals = fit + q[: n_full * W].reshape(n_full, W) * (2.0 * eb)
            order = unpack_varlen(
                perm_bytes, np.full(n_full * W, perm_bits, dtype=np.int64)
            ).astype(np.int64).reshape(n_full, W)
            windows = np.zeros((n_full, W))
            np.put_along_axis(windows, order, sorted_vals, axis=1)
            out[: n_full * W] = windows.reshape(-1)
        if rem:
            k = min(self.n_coeffs, max(4, rem // 4))
            ctail = coeffs[-(rem if rem <= k else k):].astype(np.float64)
            if rem > k:
                basis, _ = self._design(rem)
                fit = basis @ ctail
            else:
                fit = ctail
            sorted_vals = fit + q[n_full * W :] * (2.0 * eb)
            tail_bits = max(1, int(np.ceil(np.log2(max(rem, 2)))))
            offset_bits = n_full * W * perm_bits
            offset_bits += (-offset_bits) % 8  # sections byte aligned
            order = unpack_varlen(
                perm_bytes,
                np.full(rem, tail_bits, dtype=np.int64),
                bit_offset=offset_bits,
            ).astype(np.int64)
            tail = np.zeros(rem)
            tail[order] = sorted_vals
            out[n_full * W :] = tail
        return out.reshape(shape).astype(dtype)
