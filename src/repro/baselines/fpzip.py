"""FPZIP-like lossless predictive float compressor (Lindstrom & Isenburg
2006 [14]).

Lorenzo (n=1) prediction on *original* values — lossless means the decoder
reproduces them exactly, so prediction is fully vectorizable — followed by
a monotone float→integer mapping, residual differencing modulo 2^w, and
entropy coding of residual magnitudes (bit-length buckets via canonical
Huffman + raw offset bits; fpzip proper uses a range coder, similar rates).

An optional ``precision`` parameter truncates mantissa bits before
prediction (fpzip's lossy mode); the default is fully lossless.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import prediction_stencil
from repro.encoding.bitio import BitReader, BitWriter, pack_varlen, unpack_varlen
from repro.encoding.huffman import EncodedStream, HuffmanCodec

__all__ = ["FPZIPLike"]

_MAGIC = 0x52465A50  # 'RFZP'

_UINT = {np.dtype(np.float32): np.uint32, np.dtype(np.float64): np.uint64}
_WIDTH = {np.dtype(np.float32): 32, np.dtype(np.float64): 64}


def _float_to_ordered(bits: np.ndarray, width: int) -> np.ndarray:
    """Monotone IEEE-bits → unsigned mapping (total order on floats)."""
    bits = bits.astype(np.uint64)
    sign = bits >> np.uint64(width - 1)
    return np.where(
        sign == 1,
        ~bits & np.uint64((1 << width) - 1),
        bits | np.uint64(1 << (width - 1)),
    )


def _ordered_to_float_bits(ordered: np.ndarray, width: int) -> np.ndarray:
    high = np.uint64(1 << (width - 1))
    mask = np.uint64((1 << width) - 1)
    is_pos = (ordered & high) != 0
    return np.where(is_pos, ordered & ~high, ~ordered & mask)


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized bit length of uint64 values (0 -> 0)."""
    out = np.zeros(values.shape, dtype=np.int64)
    tmp = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = tmp >= (np.uint64(1) << np.uint64(shift))
        out[big] += shift
        tmp[big] >>= np.uint64(shift)
    out[values > 0] += 1
    return out


class FPZIPLike:
    """Lossless (or precision-truncated) Lorenzo-predictive float codec."""

    name = "FPZIP-like"

    def __init__(self, precision: int | None = None) -> None:
        self.precision = precision  # kept mantissa bits; None = lossless

    def compress(self, data: np.ndarray) -> bytes:
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {data.dtype}")
        width = _WIDTH[data.dtype]
        uint = _UINT[data.dtype]
        work = data
        if self.precision is not None:
            mant = 23 if width == 32 else 52
            drop = np.uint64(max(0, mant - self.precision))
            bits = work.reshape(-1).view(uint).astype(np.uint64)
            bits = (bits >> drop) << drop
            work = bits.astype(uint).view(data.dtype).reshape(data.shape)
        pred = _lorenzo_predict_exact(work)
        keys = _float_to_ordered(
            work.reshape(-1).view(uint).astype(np.uint64), width
        )
        pkeys = _float_to_ordered(
            pred.reshape(-1).view(uint).astype(np.uint64), width
        )
        resid = keys - pkeys  # wraps mod 2^64: bijective
        # zigzag on the signed interpretation
        signed = resid.astype(np.int64)
        zz = ((signed << 1) ^ (signed >> 63)).astype(np.uint64)
        buckets = _bit_length(zz)
        codec = HuffmanCodec.from_symbols(buckets, width + 1)
        stream = codec.encode(buckets, block_size=1 << 14)
        # offset bits: value below its MSB (bucket-1 bits)
        off_len = np.maximum(buckets - 1, 0)
        off_val = zz & ((np.uint64(1) << off_len.astype(np.uint64)) - np.uint64(1))
        off_buf, off_bits = pack_varlen(off_val, off_len)

        w = BitWriter()
        w.write(_MAGIC, 32)
        w.write(0 if width == 32 else 1, 8)
        w.write(data.ndim, 8)
        w.write(self.precision if self.precision is not None else 63, 8)
        for s in data.shape:
            w.write(int(s), 48)
        codec.write_table(w)
        head = w.getvalue()
        stream_blob = stream.to_bytes()
        out = bytearray(head)
        out += len(stream_blob).to_bytes(6, "big")
        out += stream_blob
        out += len(off_buf).to_bytes(6, "big")
        out += off_buf.tobytes()
        return bytes(out)

    def decompress(self, blob: bytes) -> np.ndarray:
        r = BitReader(blob)
        if r.read(32) != _MAGIC:
            raise ValueError("not an FPZIP-like container")
        dtype = np.dtype(np.float32 if r.read(8) == 0 else np.float64)
        ndim = r.read(8)
        r.read(8)  # precision (informational)
        shape = tuple(r.read(48) for _ in range(ndim))
        codec = HuffmanCodec.read_table(r)
        pos = (r.bitpos + 7) // 8
        stream_len = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        stream = EncodedStream.from_bytes(blob[pos : pos + stream_len])
        pos += stream_len
        off_len_bytes = int.from_bytes(blob[pos : pos + 6], "big")
        pos += 6
        off_buf = np.frombuffer(blob, np.uint8, off_len_bytes, pos)

        width = _WIDTH[dtype]
        uint = _UINT[dtype]
        buckets = codec.decode(stream)
        off_len = np.maximum(buckets - 1, 0)
        offs = unpack_varlen(off_buf, off_len)
        zz = np.where(
            buckets > 0,
            (np.uint64(1) << np.maximum(buckets - 1, 0).astype(np.uint64)) | offs,
            np.uint64(0),
        )
        signed = (zz >> np.uint64(1)).astype(np.int64) ^ -(
            (zz & np.uint64(1)).astype(np.int64)
        )
        resid = signed.astype(np.uint64)
        # Sequential reconstruction is needed because prediction uses decoded
        # values; but lossless decoding reproduces the originals, so we can
        # decode in wavefront order... in practice the Lorenzo stencil makes
        # raster order safe: predictions only look backwards in every dim.
        return _lorenzo_unpredict(resid, shape, width, dtype, uint)

    # container introspection helpers for tests
    @staticmethod
    def parse_shape(blob: bytes) -> tuple[int, ...]:
        r = BitReader(blob)
        r.read(32 + 8)
        ndim = r.read(8)
        r.read(8)
        return tuple(r.read(48) for _ in range(ndim))


def _lorenzo_predict_exact(data: np.ndarray) -> np.ndarray:
    """Lorenzo n=1 prediction from original values, cast to data dtype."""
    d = data.ndim
    offsets, coeffs = prediction_stencil(1, d)
    padded = np.zeros(tuple(s + 1 for s in data.shape), dtype=np.float64)
    padded[tuple(slice(1, None) for _ in range(d))] = data
    pred = np.zeros(data.shape, dtype=np.float64)
    for off, c in zip(offsets, coeffs):
        src = tuple(slice(1 - o, 1 - o + s) for o, s in zip(off, data.shape))
        pred += c * padded[src]
    return pred.astype(data.dtype)


def _lorenzo_unpredict(
    resid: np.ndarray,
    shape: tuple[int, ...],
    width: int,
    dtype: np.dtype,
    uint,
) -> np.ndarray:
    """Invert prediction.  Residuals are keyed to *original* neighbors, so
    reconstruct in wavefront order: every neighbor is strictly earlier in
    coordinate-sum, and once decoded it equals the original exactly."""
    from functools import reduce

    d = len(shape)
    if d == 1:
        out = np.zeros(shape, dtype=dtype)
        flat = out.reshape(-1)
        for i in range(shape[0]):
            prev = flat[i - 1] if i else dtype.type(0.0)
            pkey = _float_to_ordered(
                np.array([prev], dtype=dtype).view(uint).astype(np.uint64), width
            )
            key = (pkey + resid[i]) & np.uint64((1 << width) - 1)
            flat[i] = (
                _ordered_to_float_bits(key, width).astype(uint).view(dtype)[0]
            )
        return out
    offsets, coeffs = prediction_stencil(1, d)
    padded = np.zeros(tuple(s + 1 for s in shape), dtype=np.float64)
    pflat = padded.reshape(-1)
    pad_strides = np.ones(d, dtype=np.int64)
    pshape = tuple(s + 1 for s in shape)
    for axis in range(d - 2, -1, -1):
        pad_strides[axis] = pad_strides[axis + 1] * pshape[axis + 1]
    deltas = offsets @ pad_strides
    coord_sum = reduce(
        np.add.outer, [np.arange(s, dtype=np.int32) for s in shape]
    ).ravel()
    order = np.argsort(coord_sum, kind="stable")
    sums = coord_sum[order]
    bounds = np.searchsorted(sums, np.arange(int(sums[-1]) + 2))
    coords = np.unravel_index(order, shape)
    pad_flat = np.zeros(order.size, dtype=np.int64)
    for axis in range(d):
        pad_flat += (coords[axis].astype(np.int64) + 1) * pad_strides[axis]
    resid_wf = resid[order]
    mask = np.uint64((1 << width) - 1)
    keys_flat = np.zeros(order.size, dtype=np.uint64)
    for s in range(len(bounds) - 1):
        start, end = int(bounds[s]), int(bounds[s + 1])
        if start == end:
            continue
        base = pad_flat[start:end]
        pred = np.zeros(end - start, dtype=np.float64)
        for c, dlt in zip(coeffs, deltas):
            pred += c * pflat[base - dlt]
        pred_cast = pred.astype(dtype)
        pkeys = _float_to_ordered(
            pred_cast.view(uint).astype(np.uint64), width
        )
        keys = (pkeys + resid_wf[start:end]) & mask
        vals = (
            _ordered_to_float_bits(keys, width)
            .astype(uint)
            .view(dtype)
            .astype(np.float64)
        )
        pflat[base] = vals
        keys_flat[start:end] = keys
    out_keys = np.zeros(order.size, dtype=np.uint64)
    out_keys[order] = keys_flat
    return (
        _ordered_to_float_bits(out_keys, width)
        .astype(uint)
        .view(dtype)
        .reshape(shape)
    )
