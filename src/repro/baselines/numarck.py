"""NUMARCK/SSEM-style vector-quantization baseline ([6], [16]).

Related-work compressors the paper contrasts with: they quantize the
*distribution* of changes between snapshots into a learned codebook
(k-means / quantile bins).  Because bins in the tails are wide, the
point-wise error is **not bounded** — exactly the deficiency the paper's
error-controlled quantization fixes.  This module exists to demonstrate
that contrast in the ablation benchmarks.

``NumarckLike`` quantizes per-point deltas between two snapshots (or the
values themselves when no previous snapshot is given) into ``2^bits``
quantile bins, storing bin indices plus the codebook of bin centroids.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitio import BitReader, BitWriter, pack_varlen, unpack_varlen

__all__ = ["NumarckLike"]

_MAGIC = 0x524E4D43  # 'RNMC'


class NumarckLike:
    """Quantile-codebook delta quantizer with unbounded point-wise error."""

    name = "NUMARCK-like"

    def __init__(self, bits: int = 8, iterations: int = 8) -> None:
        if not 2 <= bits <= 16:
            raise ValueError("bits must be in [2, 16]")
        self.bits = bits
        self.iterations = iterations  # Lloyd refinement steps

    def _codebook(self, deltas: np.ndarray) -> np.ndarray:
        """Quantile-initialized 1-D k-means codebook (Lloyd's algorithm)."""
        k = 1 << self.bits
        qs = np.linspace(0, 1, k)
        centers = np.quantile(deltas, qs)
        centers = np.unique(centers)
        for _ in range(self.iterations):
            edges = (centers[1:] + centers[:-1]) / 2
            idx = np.searchsorted(edges, deltas)
            sums = np.bincount(idx, weights=deltas, minlength=centers.size)
            counts = np.bincount(idx, minlength=centers.size)
            nonempty = counts > 0
            new = centers.copy()
            new[nonempty] = sums[nonempty] / counts[nonempty]
            if np.allclose(new, centers):
                break
            centers = new
        return centers

    def compress(
        self, data: np.ndarray, previous: np.ndarray | None = None
    ) -> bytes:
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"only float32/float64 supported, got {data.dtype}")
        base = (
            np.zeros_like(data, dtype=np.float64)
            if previous is None
            else np.asarray(previous, dtype=np.float64)
        )
        if base.shape != data.shape:
            raise ValueError("previous snapshot shape mismatch")
        deltas = data.astype(np.float64).reshape(-1) - base.reshape(-1)
        centers = self._codebook(deltas)
        edges = (centers[1:] + centers[:-1]) / 2
        idx = np.searchsorted(edges, deltas).astype(np.uint64)
        nbits = max(1, int(np.ceil(np.log2(max(centers.size, 2)))))
        idx_buf, _ = pack_varlen(idx, np.full(idx.size, nbits, dtype=np.int64))

        w = BitWriter()
        w.write(_MAGIC, 32)
        w.write(0 if data.dtype == np.float32 else 1, 8)
        w.write(data.ndim, 8)
        w.write(nbits, 8)
        w.write(centers.size, 32)
        for s in data.shape:
            w.write(int(s), 48)
        head = w.getvalue()
        out = bytearray(head)
        out += centers.astype(np.float64).tobytes()
        out += idx_buf.tobytes()
        return bytes(out)

    def decompress(
        self, blob: bytes, previous: np.ndarray | None = None
    ) -> np.ndarray:
        r = BitReader(blob)
        if r.read(32) != _MAGIC:
            raise ValueError("not a NUMARCK-like container")
        dtype = np.dtype(np.float32 if r.read(8) == 0 else np.float64)
        ndim = r.read(8)
        nbits = r.read(8)
        k = r.read(32)
        shape = tuple(r.read(48) for _ in range(ndim))
        pos = (r.bitpos + 7) // 8
        centers = np.frombuffer(blob, np.float64, k, pos)
        pos += k * 8
        n = int(np.prod(shape))
        idx = unpack_varlen(
            np.frombuffer(blob, np.uint8, len(blob) - pos, pos),
            np.full(n, nbits, dtype=np.int64),
        ).astype(np.int64)
        deltas = centers[idx]
        base = (
            np.zeros(n, dtype=np.float64)
            if previous is None
            else np.asarray(previous, dtype=np.float64).reshape(-1)
        )
        return (base + deltas).reshape(shape).astype(dtype)
