"""repro — reproduction of SZ-1.4 (Tao, Di, Chen, Cappello, IPDPS 2017).

Error-bounded lossy compression for scientific floating-point data via
multidimensional multilayer prediction and adaptive error-controlled
quantization, with every baseline the paper evaluates against built from
scratch on shared substrates.

Quickstart
----------
>>> import numpy as np, repro
>>> data = np.sin(np.linspace(0, 20, 10000)).reshape(100, 100).astype(np.float32)
>>> blob = repro.compress(data, mode="rel", bound=1e-4)
>>> out = repro.decompress(blob)
>>> assert abs(out - data).max() <= 1e-4 * (data.max() - data.min())

Or through the canonical config/codec objects (``repro.api``):

>>> codec = repro.Codec(repro.SZConfig.from_kwargs(mode="rel", bound=1e-4))
>>> assert codec.decode(codec.encode(data)).shape == data.shape
"""

__version__ = "1.5.0"

from repro.api import Codec, SZConfig, get_codec, register_codec
from repro.chunked import (
    TiledReader,
    TiledWriter,
    compress_tiled,
    decompress_region,
    decompress_tiled,
)
from repro.core import (
    CompressionStats,
    ErrorBound,
    SZ14Compressor,
    compress,
    compress_with_stats,
    container_info,
    decompress,
)
from repro.metrics import verify_bound
from repro.obs import Collector
from repro.tuning import autotune, estimate

__all__ = [
    "Codec",
    "Collector",
    "CompressionStats",
    "ErrorBound",
    "SZ14Compressor",
    "SZConfig",
    "TiledReader",
    "TiledWriter",
    "autotune",
    "compress",
    "compress_tiled",
    "compress_with_stats",
    "container_info",
    "decompress",
    "decompress_region",
    "decompress_tiled",
    "estimate",
    "get_codec",
    "register_codec",
    "verify_bound",
    "__version__",
]
