"""repro — reproduction of SZ-1.4 (Tao, Di, Chen, Cappello, IPDPS 2017).

Error-bounded lossy compression for scientific floating-point data via
multidimensional multilayer prediction and adaptive error-controlled
quantization, with every baseline the paper evaluates against built from
scratch on shared substrates.

Quickstart
----------
>>> import numpy as np, repro
>>> data = np.sin(np.linspace(0, 20, 10000)).reshape(100, 100).astype(np.float32)
>>> blob = repro.compress(data, rel_bound=1e-4)
>>> out = repro.decompress(blob)
>>> assert abs(out - data).max() <= 1e-4 * (data.max() - data.min())
"""

from repro.chunked import (
    TiledReader,
    TiledWriter,
    compress_tiled,
    decompress_region,
    decompress_tiled,
)
from repro.core import (
    CompressionStats,
    SZ14Compressor,
    compress,
    compress_with_stats,
    decompress,
)

__version__ = "1.4.0"

__all__ = [
    "CompressionStats",
    "SZ14Compressor",
    "TiledReader",
    "TiledWriter",
    "compress",
    "compress_tiled",
    "compress_with_stats",
    "decompress",
    "decompress_region",
    "decompress_tiled",
    "__version__",
]
