"""Auto-tuner: search ``mode``/``bound`` to hit a target ratio or quality.

The compressor's ratio and quality are monotone in the error bound —
loosening the bound can only raise the compression ratio and lower the
PSNR — so hitting a target is a one-dimensional root-finding problem,
and every probe is a cheap sampled :func:`repro.tuning.estimate`
instead of a full compression.  The search brackets the target
geometrically in log-bound space, then bisects; all trials share one
deterministic sample (same fraction/seed), which keeps the
estimate-vs-bound curve smooth and the whole run reproducible.

Every trial is logged as a :class:`Trial` carrying the candidate
``SZConfig`` (``config.to_json()`` ready) and its prediction; the final
:class:`TuneResult` optionally carries the *actual* compressed ratio
when ``verify=True`` spends one real compression at the chosen config.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.tracer import metric_add, metric_observe, span
from repro.tuning.estimator import Estimate, estimate

__all__ = ["Trial", "TuneResult", "autotune", "config_from_container"]

#: Hard bound-search limits per mode: ``rel``/``pw_rel`` are fractions
#: (pw_rel must stay inside (0, 1)); ``abs`` and ``psnr`` widen on the
#: data's scale at runtime.
_BOUND_LIMITS = {
    "rel": (1e-12, 0.5),
    "pw_rel": (1e-9, 0.5),
    "abs": (1e-300, 1e300),
    "psnr": (1e-3, 1e6),
}
_EXPAND_FACTOR = 8.0  # geometric bracket growth per probe


@dataclass(frozen=True)
class Trial:
    """One tuner probe: a candidate config and what it predicted."""

    config: Any
    estimate: Estimate
    target_kind: str
    target_value: float

    @property
    def predicted(self) -> float:
        """The predicted value of the targeted metric."""
        if self.target_kind == "ratio":
            return self.estimate.ratio
        assert self.estimate.psnr is not None
        return self.estimate.psnr

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "config_json": self.config.to_json(),
            "target_kind": self.target_kind,
            "target_value": float(self.target_value),
            "predicted": float(self.predicted),
            "predicted_ratio": float(self.estimate.ratio),
            "predicted_psnr": (
                None
                if self.estimate.psnr is None
                else float(self.estimate.psnr)
            ),
            "bound": float(self.config.bound),
        }


@dataclass
class TuneResult:
    """Outcome of one :func:`autotune` run."""

    config: Any
    estimate: Estimate
    target_kind: str
    target_value: float
    trials: list[Trial] = field(default_factory=list)
    converged: bool = False
    rtol: float = 0.05
    seconds: float = 0.0
    actual_ratio: float | None = None
    actual_psnr: float | None = None

    @property
    def predicted(self) -> float:
        if self.target_kind == "ratio":
            return self.estimate.ratio
        assert self.estimate.psnr is not None
        return self.estimate.psnr

    @property
    def relative_miss(self) -> float:
        """``|predicted / target - 1|`` of the chosen config."""
        return abs(self.predicted / self.target_value - 1.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "config_json": self.config.to_json(),
            "target_kind": self.target_kind,
            "target_value": float(self.target_value),
            "predicted": float(self.predicted),
            "converged": bool(self.converged),
            "rtol": float(self.rtol),
            "n_trials": len(self.trials),
            "seconds": float(self.seconds),
            "estimate": self.estimate.to_dict(),
            "actual_ratio": (
                None if self.actual_ratio is None else float(self.actual_ratio)
            ),
            "actual_psnr": (
                None if self.actual_psnr is None else float(self.actual_psnr)
            ),
            "trials": [t.to_dict() for t in self.trials],
        }


def config_from_container(source: Any) -> Any:
    """Seed config recovered from a tiled container's header.

    The mode/bound a container was written with is the natural starting
    point for tuning it toward a different target; v3 headers carry the
    mode byte and parameter directly, legacy v2 headers name the mode
    through which bound fields are set.
    """
    from repro.api.config import SZConfig
    from repro.chunked.streams import TiledReader

    with TiledReader(source) as reader:
        h = reader.header
    if h.version >= 3:
        return SZConfig.from_kwargs(mode=h.mode, bound=h.mode_param)
    if h.rel_bound is not None and h.abs_bound is not None:
        return SZConfig(
            error_bound={
                "mode": "rel",
                "bound": h.rel_bound,
                "abs_bound": h.abs_bound,
            }
        )
    if h.rel_bound is not None:
        return SZConfig.from_kwargs(mode="rel", bound=h.rel_bound)
    return SZConfig.from_kwargs(mode="abs", bound=h.abs_bound)


def _metric_of(est: Estimate, target_kind: str) -> float:
    if target_kind == "ratio":
        return est.ratio
    assert est.psnr is not None
    return est.psnr


def _direction(mode: str, target_kind: str) -> int:
    """Sign of d(metric)/d(bound) for the monotone search.

    Loosening an ``abs``/``rel``/``pw_rel`` bound raises the ratio and
    lowers the PSNR; a ``psnr``-mode bound *is* a quality target, so
    the signs flip.
    """
    if mode == "psnr":
        return -1 if target_kind == "ratio" else 1
    return 1 if target_kind == "ratio" else -1


def autotune(
    source: Any,
    *,
    target_ratio: float | None = None,
    target_psnr: float | None = None,
    config: Any = None,
    fraction: float | None = None,
    seed: int | None = None,
    block_values: int | None = None,
    rtol: float = 0.05,
    max_trials: int = 24,
    verify: bool = False,
) -> TuneResult:
    """Search the error bound until the predicted metric hits the target.

    Parameters
    ----------
    source
        Anything :func:`repro.tuning.estimate` accepts: an array, a
        ``.npy`` path, or a container (tiled containers also seed the
        starting config from their header when ``config=None``).
    target_ratio, target_psnr
        Exactly one must be given: the compression factor, or the
        quality (dB), to hit.
    config
        Starting :class:`repro.api.SZConfig`; its mode is kept and only
        the bound is swept via ``config.replace(bound=...)``.  Defaults
        to the container's own config for tiled sources, else
        ``mode="rel", bound=1e-4``.
    rtol
        Convergence tolerance: stop when the predicted metric is within
        ``rtol`` (relative) of the target.
    max_trials
        Probe budget (bracketing + bisection).
    verify
        Spend one real compression at the chosen config and record the
        actual ratio/PSNR in the result.

    Every probe re-estimates on the *same* deterministic sample, so the
    search sees a smooth monotone curve and two runs with the same
    inputs produce identical trials.
    """
    if (target_ratio is None) == (target_psnr is None):
        raise ValueError("pass exactly one of target_ratio= / target_psnr=")
    target_kind = "ratio" if target_ratio is not None else "psnr"
    target = float(
        target_ratio if target_ratio is not None else target_psnr  # type: ignore[arg-type]
    )
    if target <= 0 or not math.isfinite(target):
        raise ValueError(f"target must be positive and finite, got {target}")
    if config is None:
        config = _default_config(source)
    spec = config.error_bound
    if spec.mode == "rel" and spec.abs_bound is not None:
        raise ValueError(
            "cannot tune a combined abs+rel bound (replace(bound=...) is "
            "ambiguous); start from a single-parameter config"
        )
    if spec.mode == "psnr" and target_kind == "psnr":
        # The bound *is* the quality target: nothing to search.
        chosen = config.replace(bound=target)
        return _finalize(
            source, chosen, target_kind, target, [], True, rtol,
            time.perf_counter(), verify, fraction, seed, block_values,
        )

    t0 = time.perf_counter()
    with span(
        "tune", target=target_kind, value=target, mode=spec.mode
    ):
        result = _search(
            source, config, target_kind, target, fraction, seed,
            block_values, rtol, max_trials, t0, verify,
        )
    metric_add("tune/calls")
    metric_add("tune/trials", float(len(result.trials)))
    metric_observe("tune/relative_miss", result.relative_miss)
    return result


def _default_config(source: Any) -> Any:
    from repro.tuning.estimator import _is_container_source

    if _is_container_source(source):
        return config_from_container(source)
    from repro.api.config import SZConfig

    return SZConfig.from_kwargs(mode="rel", bound=1e-4)


def _search(
    source: Any,
    config: Any,
    target_kind: str,
    target: float,
    fraction: float | None,
    seed: int | None,
    block_values: int | None,
    rtol: float,
    max_trials: int,
    t0: float,
    verify: bool,
) -> TuneResult:
    mode = config.error_bound.mode
    direction = _direction(mode, target_kind)
    trials: list[Trial] = []

    def probe(bound: float) -> Trial:
        cand = config.replace(bound=bound)
        est = estimate(
            source, cand, fraction=fraction, seed=seed,
            block_values=block_values,
        )
        trial = Trial(cand, est, target_kind, target)
        trials.append(trial)
        return trial

    def miss(trial: Trial) -> float:
        return abs(trial.predicted / target - 1.0)

    lo_lim, hi_lim = _BOUND_LIMITS[mode]
    cur = best = probe(min(max(float(config.bound), lo_lim), hi_lim))
    if miss(best) <= rtol:
        return _finalize_trials(
            source, best, trials, True, rtol, t0, verify,
        )

    # Bracket: walk the bound geometrically toward the target until the
    # predicted metric crosses it (monotonicity makes this sound).
    # ``below_b``/``above_b`` hold bounds whose prediction is below /
    # above the target — with direction -1 the below-bound is the
    # numerically larger one, which the log-space bisection handles.
    below_b: float | None = None
    above_b: float | None = None
    b = float(cur.config.bound)
    while len(trials) < max_trials and (below_b is None or above_b is None):
        if cur.predicted < target:
            below_b = b
        else:
            above_b = b
        if below_b is not None and above_b is not None:
            break
        grow = (cur.predicted < target) == (direction > 0)
        nb = b * _EXPAND_FACTOR if grow else b / _EXPAND_FACTOR
        nb = min(max(nb, lo_lim), hi_lim)
        if nb == b:
            break  # pinned at a mode limit: the target is unreachable
        b = nb
        cur = probe(b)
        if miss(cur) < miss(best):
            best = cur
        if miss(best) <= rtol:
            return _finalize_trials(
                source, best, trials, True, rtol, t0, verify,
            )

    # Bisect in log-bound space until within tolerance or out of budget.
    while (
        below_b is not None
        and above_b is not None
        and len(trials) < max_trials
        and miss(best) > rtol
    ):
        mid = math.exp((math.log(below_b) + math.log(above_b)) / 2.0)
        if mid in (below_b, above_b):
            break  # float resolution exhausted
        cur = probe(mid)
        if miss(cur) < miss(best):
            best = cur
        if cur.predicted < target:
            below_b = mid
        else:
            above_b = mid
    return _finalize_trials(
        source, best, trials, miss(best) <= rtol, rtol, t0, verify,
    )


def _finalize_trials(
    source: Any,
    best: Trial,
    trials: list[Trial],
    converged: bool,
    rtol: float,
    t0: float,
    verify: bool,
) -> TuneResult:
    result = TuneResult(
        config=best.config,
        estimate=best.estimate,
        target_kind=best.target_kind,
        target_value=best.target_value,
        trials=trials,
        converged=converged,
        rtol=rtol,
        seconds=time.perf_counter() - t0,
    )
    if verify:
        _verify(source, result)
        result.seconds = time.perf_counter() - t0
    return result


def _finalize(
    source: Any,
    chosen: Any,
    target_kind: str,
    target: float,
    trials: list[Trial],
    converged: bool,
    rtol: float,
    t0: float,
    verify: bool,
    fraction: float | None,
    seed: int | None,
    block_values: int | None,
) -> TuneResult:
    est = estimate(
        source, chosen, fraction=fraction, seed=seed,
        block_values=block_values,
    )
    trial = Trial(chosen, est, target_kind, target)
    return _finalize_trials(
        source, trial, trials + [trial], converged, rtol, t0, verify
    )


def _verify(source: Any, result: TuneResult) -> None:
    """One real compression at the chosen config → actual ratio/PSNR."""
    from repro.core.compressor import (
        _psnr_of,
        _value_range,
        compress_array,
        decompress,
    )

    data = _materialize(source)
    blob, _ = compress_array(data, result.config)
    result.actual_ratio = data.nbytes / max(1, len(blob))
    recon = decompress(blob)
    result.actual_psnr = _psnr_of(data, recon, _value_range(data))


def _materialize(source: Any) -> np.ndarray:
    """Load ``source`` fully into memory (verify path only)."""
    from repro.chunked.format import is_tiled
    from repro.chunked.streams import TiledReader

    if isinstance(source, np.ndarray):
        return np.ascontiguousarray(source)
    if isinstance(source, (bytes, bytearray, memoryview)):
        if is_tiled(source):
            with TiledReader(source) as reader:
                return reader.read_all()
        from repro.core.compressor import decompress

        return decompress(source)
    with open(source, "rb") as fh:
        magic = fh.read(6)
    if magic[:4] == b"SZRT":
        with TiledReader(source) as reader:
            return reader.read_all()
    if magic[:6] == b"\x93NUMPY":
        return np.ascontiguousarray(np.load(source))
    from pathlib import Path

    from repro.core.compressor import decompress

    return decompress(Path(source).read_bytes())
