"""Deterministic sampling: the data-acquisition half of `repro.tuning`.

An estimate is only as trustworthy as its sample.  This module draws
**deterministic** block samples — the same ``(source, fraction, seed,
block shape)`` request always selects the same elements, so estimates
are reproducible, tuner trials on one source are comparable to each
other, and tests can pin exact predictions.

Three source kinds are supported through one entry point,
:func:`draw_sample`:

* **in-memory arrays** — the array is decomposed into near-isotropic
  blocks (the :class:`~repro.chunked.format.TileGrid` geometry) and a
  seeded permutation picks the sampled subset;
* **``.npy`` files** — identical, but through a memory map, so sampling
  a larger-than-RAM file only faults in the selected blocks;
* **tiled containers** — the sample unit is the container's own tile:
  only the sampled tiles are decompressed, and the per-tile footer
  features (hit rate, mode share, effective alphabet — see
  :func:`repro.chunked.format.footer_features`) ride along for *every*
  tile, since the index makes them free.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_BLOCK_VALUES",
    "Sample",
    "draw_sample",
    "sample_array",
    "sample_container",
    "sample_npy",
]

#: Target element count of one sample block.  Small enough that a few
#: percent of a bench-scale array spans several blocks (variance
#: estimation needs k >= 2), large enough that the block-boundary
#: prediction penalty stays a small correction.
DEFAULT_BLOCK_VALUES = 4096


class Sample:
    """A deterministic block sample plus the source's global facts.

    ``blocks`` are contiguous copies in the source dtype; ``value_range``
    is the finite global range when the source allowed a cheap full pass
    (arrays, ``.npy`` maps), else the range over the sampled blocks with
    ``range_exact`` False.
    """

    def __init__(
        self,
        blocks: list[np.ndarray],
        block_indices: list[int],
        n_blocks_total: int,
        shape: tuple[int, ...],
        dtype: np.dtype,
        value_range: float,
        range_exact: bool,
        fraction: float,
        seed: int,
        source_kind: str,
        tile_features: dict[str, np.ndarray] | None = None,
        container_info: dict[str, Any] | None = None,
    ) -> None:
        self.blocks = blocks
        self.block_indices = block_indices
        self.n_blocks_total = n_blocks_total
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.value_range = value_range
        self.range_exact = range_exact
        self.fraction = fraction
        self.seed = seed
        self.source_kind = source_kind
        self.tile_features = tile_features
        self.container_info = container_info

    @property
    def n_values_total(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def n_values_sampled(self) -> int:
        return sum(int(b.size) for b in self.blocks)

    @property
    def sampled_fraction(self) -> float:
        """The fraction actually drawn (block granularity rounds up)."""
        return self.n_values_sampled / max(1, self.n_values_total)

    def __repr__(self) -> str:
        return (
            f"Sample({self.source_kind}, {len(self.blocks)}/"
            f"{self.n_blocks_total} blocks, "
            f"{self.sampled_fraction:.2%} of {self.shape})"
        )


def _finite_range(data: np.ndarray) -> float:
    """Finite ``max - min`` of ``data`` (0.0 when nothing is finite)."""
    spread = float(np.asarray(data).max() - np.asarray(data).min())
    if spread == spread and abs(spread) != float("inf"):
        return spread
    finite = np.asarray(data)[np.isfinite(data)]
    return float(finite.max() - finite.min()) if finite.size else 0.0


def _chosen_indices(n_total: int, fraction: float, seed: int) -> list[int]:
    """Deterministic sorted subset of ``range(n_total)`` covering ~fraction."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    # At least two blocks whenever the grid allows it: a single block
    # cannot estimate across-block variance (degenerate CI).
    k = min(n_total, max(2, int(np.ceil(n_total * fraction))))
    # The caller-supplied seed is part of the determinism contract
    # (same seed => same blocks), not an unseeded generator.
    rng = np.random.default_rng(seed)  # szlint: ignore[SZ102]
    chosen = rng.permutation(n_total)[:k]
    chosen.sort()
    return [int(i) for i in chosen]


def sample_array(
    data: np.ndarray,
    fraction: float = 0.05,
    seed: int = 0,
    block_values: int | None = None,
    source_kind: str = "array",
) -> Sample:
    """Sample an in-memory (or memory-mapped) array block-wise."""
    from repro.chunked.format import TileGrid
    from repro.chunked.streams import default_tile_shape

    data = np.asarray(data) if not isinstance(data, np.memmap) else data
    if data.ndim < 1 or data.size == 0:
        raise ValueError("cannot sample an empty or scalar source")
    block_shape = default_tile_shape(
        tuple(int(s) for s in data.shape),
        target_values=block_values or DEFAULT_BLOCK_VALUES,
    )
    grid = TileGrid(tuple(int(s) for s in data.shape), block_shape)
    chosen = _chosen_indices(grid.n_tiles, fraction, seed)
    blocks = [
        np.ascontiguousarray(data[grid.tile_slices(i)]) for i in chosen
    ]
    return Sample(
        blocks=blocks,
        block_indices=chosen,
        n_blocks_total=grid.n_tiles,
        shape=tuple(int(s) for s in data.shape),
        dtype=data.dtype,
        value_range=_finite_range(data),
        range_exact=True,
        fraction=fraction,
        seed=seed,
        source_kind=source_kind,
    )


def sample_npy(
    path: str | Path,
    fraction: float = 0.05,
    seed: int = 0,
    block_values: int | None = None,
) -> Sample:
    """Sample a ``.npy`` file through a memory map.

    Only the selected blocks are materialized; the global value range
    does stream the whole map once (a max/min pass is orders of
    magnitude cheaper than compression).
    """
    data = np.load(path, mmap_mode="r")
    return sample_array(
        data, fraction=fraction, seed=seed, block_values=block_values,
        source_kind="npy",
    )


def sample_container(
    src: Any,
    fraction: float = 0.05,
    seed: int = 0,
) -> Sample:
    """Sample a tiled (SZRT) container tile-wise.

    Decompresses only the sampled tiles; the footer features of *all*
    tiles are attached (``tile_features``) because the index already
    holds them — a ratio model over the container itself never touches a
    payload byte (see :func:`repro.tuning.estimator.estimate`).
    """
    from repro.chunked.format import footer_features
    from repro.chunked.streams import TiledReader

    with TiledReader(src) as reader:
        chosen = _chosen_indices(reader.n_tiles, fraction, seed)
        blocks = [reader.read_tile(i) for i in chosen]
        features = footer_features(
            reader.entries, itemsize=reader.dtype.itemsize
        )
        info = {
            "format": f"tiled-v{reader.header.version}",
            "shape": reader.shape,
            "tile_shape": reader.tile_shape,
            "n_tiles": reader.n_tiles,
            "dtype": str(reader.dtype),
            "mode": reader.header.mode,
            "mode_param": reader.header.mode_param,
            "abs_bound": reader.header.abs_bound,
            "rel_bound": reader.header.rel_bound,
            "compressed_bytes": reader._src.size,
        }
        shape = reader.shape
        dtype = reader.dtype
    vrange = max((_finite_range(b) for b in blocks), default=0.0)
    return Sample(
        blocks=blocks,
        block_indices=chosen,
        n_blocks_total=info["n_tiles"],
        shape=shape,
        dtype=dtype,
        value_range=vrange,
        range_exact=False,
        fraction=fraction,
        seed=seed,
        source_kind="container",
        tile_features=features,
        container_info=info,
    )


def _leading_magic(source: str | Path) -> bytes:
    with open(source, "rb") as fh:
        return fh.read(6)


def draw_sample(
    source: Any,
    fraction: float = 0.05,
    seed: int = 0,
    block_values: int | None = None,
) -> Sample:
    """Dispatching sampler: array, ``.npy`` path, or container.

    ``source`` may be an ``np.ndarray``, a path (``.npy`` file, tiled
    container, or v1 container), or container bytes.  v1 containers have
    no tile index, so sampling one decompresses it fully first — cheap
    for inspection, but prefer tiled containers for estimation at scale.
    """
    from repro.chunked.format import is_tiled

    if isinstance(source, np.ndarray):
        return sample_array(
            source, fraction=fraction, seed=seed, block_values=block_values
        )
    if isinstance(source, (bytes, bytearray, memoryview)):
        if is_tiled(source):
            return sample_container(source, fraction=fraction, seed=seed)
        from repro.core.compressor import decompress

        return sample_array(
            decompress(source), fraction=fraction, seed=seed,
            block_values=block_values, source_kind="v1-container",
        )
    if isinstance(source, (str, Path)):
        magic = _leading_magic(source)
        if magic[:4] == b"SZRT":
            return sample_container(source, fraction=fraction, seed=seed)
        if magic[:6] == b"\x93NUMPY":
            return sample_npy(
                source, fraction=fraction, seed=seed,
                block_values=block_values,
            )
        from repro.core.compressor import decompress

        return sample_array(
            decompress(Path(source).read_bytes()), fraction=fraction,
            seed=seed, block_values=block_values, source_kind="v1-container",
        )
    raise TypeError(
        f"cannot sample {type(source).__name__}: pass an ndarray, a path "
        "to a .npy file or container, or container bytes"
    )
