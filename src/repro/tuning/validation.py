"""Estimator-accuracy validation harness.

Sweeps the estimator against ground truth over a synthetic corpus that
spans the regimes where a prediction-based compressor behaves
differently — smooth fields (high hit rate, tight histograms),
turbulent fields (broad histograms, outliers) and sparse fields (mode
collapse, pw_rel flag planes) — across both dtypes and the three
deterministic bound modes.  For every case the field is compressed for
real once, estimated once, and the relative ratio error recorded; the
report states whether every case landed inside the accuracy envelope.

Run directly (CI does)::

    python -m repro.tuning.validation --scale tiny --envelope 0.15

Exit status 1 when any case breaches the envelope, so the suite works
as a regression gate for the ratio model itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

import numpy as np

from repro.datasets.fields import (
    gaussian_random_field,
    ridged_field,
    sparse_patches,
)

__all__ = ["ENVELOPE", "corpus", "validate_accuracy", "main"]

#: Default relative-error envelope asserted on |predicted/actual - 1|.
#: The estimator is typically within a few percent (see README table);
#: 15% leaves room for the hardest sparse/pw_rel corners while still
#: catching any real model regression.
ENVELOPE = 0.15

_SCALE_SHAPES = {
    "tiny": (24, 32, 32),
    "small": (48, 64, 64),
    "large": (96, 128, 128),
}
_MODES: tuple[tuple[str, float], ...] = (
    ("abs", 1e-3),
    ("rel", 1e-4),
    ("pw_rel", 1e-3),
)
_DTYPES = ("float32", "float64")


def corpus(
    scale: str = "tiny", seed: int = 7
) -> list[tuple[str, np.ndarray]]:
    """The named synthetic fields, as float64 (cast per case later)."""
    shape = _SCALE_SHAPES[scale]
    return [
        ("smooth", gaussian_random_field(shape, beta=3.5, seed=seed)),
        ("turbulent", ridged_field(shape, beta=1.5, seed=seed + 1)),
        ("sparse", sparse_patches(shape, coverage=0.15, seed=seed + 2)),
    ]


def validate_accuracy(
    scale: str = "tiny",
    fraction: float = 0.05,
    seed: int = 0,
    envelope: float = ENVELOPE,
    modes: tuple[tuple[str, float], ...] = _MODES,
    dtypes: tuple[str, ...] = _DTYPES,
) -> dict[str, Any]:
    """Predicted-vs-actual sweep; returns the accuracy report dict."""
    from repro.api.config import SZConfig
    from repro.core.compressor import compress_array
    from repro.tuning.estimator import estimate

    cases: list[dict[str, Any]] = []
    for field_name, field64 in corpus(scale):
        for dtype in dtypes:
            data = field64.astype(dtype)
            for mode, bound in modes:
                config = SZConfig.from_kwargs(
                    mode=mode, bound=bound, sample_fraction=fraction,
                    sample_seed=seed,
                )
                t0 = time.perf_counter()
                blob, _ = compress_array(data, config)
                t_full = time.perf_counter() - t0
                actual = data.nbytes / max(1, len(blob))
                est = estimate(data, config)
                rel_err = est.ratio / actual - 1.0
                cases.append(
                    {
                        "field": field_name,
                        "dtype": dtype,
                        "mode": mode,
                        "bound": bound,
                        "actual_ratio": actual,
                        "predicted_ratio": est.ratio,
                        "ratio_low": est.ratio_low,
                        "ratio_high": est.ratio_high,
                        "rel_err": rel_err,
                        "within_envelope": abs(rel_err) <= envelope,
                        "sample_fraction": est.sample_fraction,
                        "n_blocks": est.n_blocks,
                        "estimate_seconds": est.seconds,
                        "compress_seconds": t_full,
                        "speedup": t_full / max(est.seconds, 1e-12),
                    }
                )
    errs = np.array([abs(c["rel_err"]) for c in cases], dtype=np.float64)
    return {
        "schema": "repro-tuning-accuracy/1",
        "scale": scale,
        "fraction": fraction,
        "seed": seed,
        "envelope": envelope,
        "n_cases": len(cases),
        "max_abs_rel_err": float(errs.max()),
        "mean_abs_rel_err": float(
            errs.sum(dtype=np.float64) / max(1, errs.size)
        ),
        "all_within_envelope": bool(all(c["within_envelope"] for c in cases)),
        "cases": cases,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning.validation",
        description="validate estimator accuracy against ground truth",
    )
    parser.add_argument(
        "--scale", default="tiny", choices=sorted(_SCALE_SHAPES)
    )
    parser.add_argument("--fraction", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--envelope", type=float, default=ENVELOPE)
    parser.add_argument("--out", default=None, metavar="REPORT.json")
    args = parser.parse_args(argv)
    report = validate_accuracy(
        scale=args.scale, fraction=args.fraction, seed=args.seed,
        envelope=args.envelope,
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    for c in report["cases"]:
        flag = "ok " if c["within_envelope"] else "FAIL"
        print(
            f"{flag} {c['field']:10s} {c['dtype']:8s} {c['mode']:6s} "
            f"actual={c['actual_ratio']:8.3f} "
            f"predicted={c['predicted_ratio']:8.3f} "
            f"err={c['rel_err']:+7.2%} speedup={c['speedup']:6.1f}x"
        )
    print(
        f"{report['n_cases']} cases, max |rel err| "
        f"{report['max_abs_rel_err']:.2%} "
        f"(envelope {report['envelope']:.0%})"
    )
    return 0 if report["all_within_envelope"] else 1


if __name__ == "__main__":
    sys.exit(main())
