"""Sample-based compression-ratio / quality estimation.

Predicts what :func:`repro.core.compress_array` *would* produce —
compression ratio, bit rate, PSNR, max error — from a small
deterministic sample, at a small fraction of the cost.  The approach
follows the ratio-quality modeling line of work (Jin et al.,
arXiv 2111.09815; Underwood et al., arXiv 2305.08801) specialized to
this prediction-based compressor:

1. run the **real quantizer** (`wavefront_compress`, the exact
   prediction + error-controlled quantization kernel) on the sampled
   blocks, in the mode's real domain (``pw_rel`` samples are
   log-preconditioned and verify-repaired exactly like the pipeline).
   Blocks sharing a shape are assembled into one near-cubic grid and
   quantized in a **single kernel launch** — per-hyperplane dispatch
   overhead, not arithmetic, dominates quantizing many small blocks —
   and the code plane is sliced back into per-block regions afterwards
   so the across-block spread survives;
2. aggregate the per-block quantization-code histograms and derive
   optimal code lengths for the *aggregate* alphabet
   (:func:`repro.encoding.huffman.huffman_code_lengths`) — this models
   the whole-array entropy stage without encoding a single codeword,
   and avoids the small-sample bias of simply compressing tiny blocks
   (each of which would pay its own header and Huffman table);
3. measure the real byte cost of the sample's unpredictable values and
   ``pw_rel`` side channel, and add the container's fixed overhead
   (header + code-length table + section framing) analytically from
   the documented v1/v2 layout — no extra compression pass.

The predicted payload bits/value carry a 95% confidence interval from
the across-block spread.  Quality (PSNR, max error) is measured on the
sampled reconstruction — free, because the quantizer's
``result.decompressed`` is exactly what a decompressor materializes.

Estimating an *existing tiled container* as-is needs no sampling at
all: the footer index already stores every tile's compressed length
and histogram features, so :func:`estimate` returns the exact ratio
with ``method="footer"`` in O(n_tiles).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.bounds import (
    MODED_MODES,
    psnr_fallback_bound,
    psnr_to_abs_bound,
    pw_apply_repairs,
    pw_encode_side,
    pw_log_bound,
    pw_postcondition,
    pw_precondition,
)
from repro.core.quantizer import UNPREDICTABLE, interval_radius
from repro.core.unpredictable import encode_unpredictable
from repro.encoding import DEFAULT_ENTROPY_CODER
from repro.encoding.bitio import BitWriter
from repro.encoding.huffman import HuffmanCodec, huffman_code_lengths
from repro.obs.tracer import metric_add, metric_observe, span
from repro.tuning.sampler import Sample, draw_sample

__all__ = ["Estimate", "estimate"]

_STREAM_FIXED_BYTES = 16  # EncodedStream header (see encoding.huffman)
_STREAM_CHUNK_BYTES = 5  # per-chunk bit-length record in the stream header
_CONSTANT_CONTAINER_BYTES = 64  # ~size of a v1/v2 constant container


@dataclass(frozen=True)
class Estimate:
    """One ratio/quality prediction and how it was obtained.

    ``ratio`` is the predicted compression factor (original bytes /
    predicted container bytes); ``ratio_low``/``ratio_high`` bracket it
    with a 95% confidence interval from the across-block payload
    spread (equal to ``ratio`` when fewer than two blocks were
    sampled, or when ``method`` is exact).  ``method`` is ``"sampled"``
    (the quantize-and-extrapolate path), ``"footer"`` (exact, from a
    tiled container's index) or ``"constant"`` (zero-range field).
    """

    ratio: float
    ratio_low: float
    ratio_high: float
    bit_rate: float
    predicted_bytes: int
    original_bytes: int
    psnr: float | None
    max_abs_error: float | None
    max_pw_rel_error: float | None
    mode: str
    bound: float
    eb_abs: float | None
    method: str
    sample_fraction: float
    n_blocks: int
    n_values_sampled: int
    n_values_total: int
    seed: int
    seconds: float
    features: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict of every field (CLI/service serialization)."""
        def _num(x: float | None) -> float | None:
            return None if x is None else float(x)

        return {
            "ratio": float(self.ratio),
            "ratio_low": float(self.ratio_low),
            "ratio_high": float(self.ratio_high),
            "bit_rate": float(self.bit_rate),
            "predicted_bytes": int(self.predicted_bytes),
            "original_bytes": int(self.original_bytes),
            "psnr": _num(self.psnr),
            "max_abs_error": _num(self.max_abs_error),
            "max_pw_rel_error": _num(self.max_pw_rel_error),
            "mode": self.mode,
            "bound": float(self.bound),
            "eb_abs": _num(self.eb_abs),
            "method": self.method,
            "sample_fraction": float(self.sample_fraction),
            "n_blocks": int(self.n_blocks),
            "n_values_sampled": int(self.n_values_sampled),
            "n_values_total": int(self.n_values_total),
            "seed": int(self.seed),
            "seconds": float(self.seconds),
            "features": {k: float(v) for k, v in self.features.items()},
        }


@dataclass
class _BlockStats:
    """Per-block measurements feeding the extrapolation."""

    hist: np.ndarray
    payload_extra_bytes: float  # unpredictable + pw_rel side channel
    n_values: int
    sq_err: float
    max_abs_err: float
    max_pw_rel_err: float
    n_unpredictable: int


def _grid_dims(k: int, ndim: int) -> tuple[int, ...]:
    """Near-isotropic integer grid with extents multiplying to ``k``."""
    dims: list[int] = []
    remaining = k
    for axes_left in range(ndim, 1, -1):
        target = max(1, int(round(remaining ** (1.0 / axes_left))))
        d = 1
        for c in range(target, 1, -1):
            if remaining % c == 0:
                d = c
                break
        dims.append(d)
        remaining //= d
    dims.append(remaining)
    return tuple(dims)


def _plane_count(grids: list[tuple[int, ...]], shape: tuple[int, ...]) -> int:
    """Total wavefront hyperplanes the assembled grids would execute."""
    return sum(
        sum(g * s for g, s in zip(grid, shape)) - (len(shape) - 1)
        for grid in grids
    )


def _assembly_plan(
    k: int, shape: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Split ``k`` same-shape blocks into near-cubic assembly grids.

    The wavefront kernel's cost is dominated by its per-hyperplane
    dispatch, and a grid's hyperplane count is the *sum* of its extents
    — so compact (cubic) grids quantize the same values in far fewer
    launches than a pile of standalone blocks.  Two candidate plans are
    compared by hyperplane count: one exact near-isotropic
    factorization of ``k`` (poor when ``k`` is prime) and a greedy
    cube-chunking (``31 -> 3x3x3 + 2x1x2``); the cheaper wins.
    """
    ndim = len(shape)
    if k == 1:
        return [(1,) * ndim]
    single = [_grid_dims(k, ndim)]
    chunked: list[tuple[int, ...]] = []
    rem = k
    while rem > 0:
        side = 1
        while (side + 1) ** ndim <= rem:
            side += 1
        if side == 1:
            chunked.append(_grid_dims(rem, ndim))
            break
        chunked.append((side,) * ndim)
        rem -= side**ndim
    if _plane_count(single, shape) <= _plane_count(chunked, shape):
        return single
    return chunked


def _assemble(
    blocks: list[np.ndarray], grid: tuple[int, ...]
) -> tuple[np.ndarray, list[tuple[slice, ...]]]:
    """Pack same-shape blocks into one grid array; return each region."""
    shape = tuple(int(s) for s in blocks[0].shape)
    if len(blocks) == 1:
        return blocks[0], [tuple(slice(0, s) for s in shape)]
    out = np.empty(
        tuple(g * s for g, s in zip(grid, shape)), dtype=blocks[0].dtype
    )
    regions: list[tuple[slice, ...]] = []
    for flat, block in enumerate(blocks):
        coord = np.unravel_index(flat, grid)
        region = tuple(
            slice(int(c) * s, (int(c) + 1) * s)
            for c, s in zip(coord, shape)
        )
        out[region] = block
        regions.append(region)
    return out, regions


def _measure_assembled(
    block: np.ndarray,
    regions: list[tuple[slice, ...]],
    mode: str,
    bound: float,
    eb: float,
    config: Any,
) -> list[_BlockStats]:
    """One quantizer pass over an assembled grid, sliced per region.

    Values on internal grid faces are predicted from a neighboring
    block's data — the same order of boundary error a standalone block
    pays at its zero-padded faces, and bounded by ``eb`` either way
    (a missed prediction just lands in the unpredictable store).
    """
    from repro.core.compressor import _get_plan
    from repro.core.wavefront import wavefront_compress

    radius = interval_radius(config.interval_bits)
    side = b""
    if mode == "pw_rel":
        logs, flags, signs = pw_precondition(block)
        plan = _get_plan(logs.shape, config.layers, logs.dtype)
        result = wavefront_compress(logs, eb, plan, radius)
        pw_apply_repairs(block, result.decompressed, flags, signs, bound)
        side = pw_encode_side(block, flags, signs)
        recon = pw_postcondition(result.decompressed, side, block.dtype)
    else:
        plan = _get_plan(block.shape, config.layers, block.dtype)
        result = wavefront_compress(block, eb, plan, radius)
        recon = result.decompressed

    codes = result.codes.reshape(block.shape)
    unpred_payload, _ = encode_unpredictable(result.unpredictable, eb)
    n_unpred_total = int(result.unpredictable.size)
    a = block.astype(np.float64)
    b = recon.astype(np.float64)
    finite = np.isfinite(a) & np.isfinite(b)
    err = np.where(finite, np.abs(a - b), 0.0)

    out: list[_BlockStats] = []
    for region in regions:
        hist = np.bincount(
            codes[region].ravel(), minlength=2 * radius
        ).astype(np.int64)
        n_unpred = int(hist[UNPREDICTABLE])
        e = err[region]
        sq_err = float(np.sum(e * e, dtype=np.float64))
        max_abs = float(e.max()) if e.size else 0.0
        max_pw = 0.0
        if mode == "pw_rel":
            ar, br = a[region], b[region]
            nz = finite[region] & (ar != 0.0)
            if nz.any():
                max_pw = float(np.max(np.abs((br[nz] - ar[nz]) / ar[nz])))
        n_values = int(e.size)
        # The sample-wide unpredictable payload and side channel are
        # apportioned per block: by outlier count (the payload is a flat
        # per-value record) and by value count (the side channel is
        # pointwise) respectively.
        extra = len(unpred_payload) * (
            n_unpred / max(1, n_unpred_total)
        ) + len(side) * (n_values / max(1, int(block.size)))
        out.append(
            _BlockStats(
                hist=hist,
                payload_extra_bytes=extra,
                n_values=n_values,
                sq_err=sq_err,
                max_abs_err=max_abs,
                max_pw_rel_err=max_pw,
                n_unpredictable=n_unpred,
            )
        )
    return out


def _measure_blocks(
    blocks: list[np.ndarray], mode: str, bound: float, eb: float, config: Any
) -> list[_BlockStats]:
    """Measure every sampled block in as few kernel launches as possible.

    Blocks sharing a shape are assembled into near-cubic grids (see
    :func:`_assembly_plan`) and quantized together; odd-shaped edge
    blocks fall through as single-block grids.  The returned stats are
    in ``blocks`` order regardless of grouping.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    for i, block in enumerate(blocks):
        groups.setdefault(tuple(int(s) for s in block.shape), []).append(i)
    stats: list[_BlockStats | None] = [None] * len(blocks)
    for shape, idxs in groups.items():
        pos = 0
        for grid in _assembly_plan(len(idxs), shape):
            take = idxs[pos : pos + int(np.prod(grid, dtype=np.int64))]
            pos += len(take)
            assembled, regions = _assemble([blocks[i] for i in take], grid)
            measured = _measure_assembled(
                assembled, regions, mode, bound, eb, config
            )
            for i, st in zip(take, measured):
                stats[i] = st
    return [s for s in stats if s is not None]


def _payload_bits(
    stats: _BlockStats, lengths: np.ndarray, entropy_coder: str
) -> float:
    """Entropy-stage + side-channel bits this block contributes."""
    if entropy_coder == DEFAULT_ENTROPY_CODER:
        code_bits = float(stats.hist @ lengths)
    else:
        # Arithmetic coding approaches the Shannon bound; charge the
        # aggregate-distribution cross-entropy instead of code lengths.
        total = float(stats.hist.sum(dtype=np.int64))
        probs = lengths  # repurposed: aggregate probabilities, see caller
        nz = stats.hist > 0
        code_bits = float(
            -(stats.hist[nz] * np.log2(probs[nz])).sum(dtype=np.float64)
        ) if total else 0.0
    return code_bits + 8.0 * stats.payload_extra_bytes


def _chunks(n: int, block_size: int) -> int:
    return -(-n // block_size)


def _fixed_overhead(
    ndim: int, lengths: np.ndarray, config: Any, mode: str
) -> int:
    """Analytic per-container fixed bytes (header + table + framing).

    Mirrors the v1/v2 layout documented in :mod:`repro.core.stream`:
    the bit-packed header is ``32 + 6*ndim`` bytes (moded containers
    add a 9-byte mode tag/param and a third framed section), each
    payload section carries a 6-byte length, and the Huffman
    code-length table costs whatever serializing a codec built from
    the aggregate sample alphabet costs — the sample's alphabet stands
    in for the full array's.  Computing this from the layout instead of
    compressing a calibration block keeps the estimate orders of
    magnitude cheaper than the compression it predicts.
    """
    header_bytes = 32 + 6 * ndim
    framing = 12  # stream + unpredictable section lengths
    if mode in MODED_MODES:
        header_bytes += 9  # mode code byte + raw float64 parameter
        framing += 6  # side-payload section length
    table_bytes = 0
    if config.entropy_coder == DEFAULT_ENTROPY_CODER:
        w = BitWriter()
        HuffmanCodec(lengths).write_table(w)
        table_bytes = len(w.getvalue())
    return header_bytes + table_bytes + framing


def _resolve_eb(mode: str, spec: Any, sample: Sample) -> float:
    """First-candidate absolute bound in the mode's working domain."""
    if mode == "pw_rel":
        return pw_log_bound(spec.pw_bound, sample.dtype)
    if mode == "psnr":
        return psnr_to_abs_bound(spec.psnr_target, sample.value_range)
    return spec.resolve(sample.value_range)


def _constant_estimate(sample: Sample, config: Any, t0: float) -> Estimate:
    """Zero-range field: the compressor's constant shortcut applies."""
    original = sample.n_values_total * sample.dtype.itemsize
    predicted = _CONSTANT_CONTAINER_BYTES
    ratio = original / predicted
    return Estimate(
        ratio=ratio, ratio_low=ratio, ratio_high=ratio,
        bit_rate=8.0 * predicted / max(1, sample.n_values_total),
        predicted_bytes=predicted, original_bytes=original,
        psnr=float("inf"), max_abs_error=0.0, max_pw_rel_error=None,
        mode=config.mode, bound=config.bound, eb_abs=None,
        method="constant", sample_fraction=sample.sampled_fraction,
        n_blocks=len(sample.blocks),
        n_values_sampled=sample.n_values_sampled,
        n_values_total=sample.n_values_total, seed=sample.seed,
        seconds=time.perf_counter() - t0,
    )


def _footer_estimate(source: Any, seed: int, t0: float) -> Estimate:
    """Exact as-is stats of a tiled container, from the footer alone."""
    from repro.chunked.format import footer_features
    from repro.chunked.streams import TiledReader

    with TiledReader(source) as reader:
        feats = footer_features(reader.entries, reader.dtype.itemsize)
        compressed = reader._src.size
        n_values = reader.header.n_values
        itemsize = reader.dtype.itemsize
        mode = reader.header.mode
        if reader.header.version >= 3:
            bound = reader.header.mode_param
        elif mode == "rel":
            bound = float(reader.header.rel_bound or 0.0)
        else:
            bound = float(reader.header.abs_bound or 0.0)
        abs_bound = reader.header.abs_bound
    original = n_values * itemsize
    ratio = original / max(1, compressed)
    n_vals = float(feats["n_values"].sum(dtype=np.int64))
    return Estimate(
        ratio=ratio, ratio_low=ratio, ratio_high=ratio,
        bit_rate=8.0 * compressed / max(1, n_values),
        predicted_bytes=int(compressed), original_bytes=int(original),
        psnr=None,
        max_abs_error=(
            float(abs_bound) if mode == "abs" and abs_bound else None
        ),
        max_pw_rel_error=bound if mode == "pw_rel" else None,
        mode=mode, bound=bound, eb_abs=abs_bound,
        method="footer", sample_fraction=0.0, n_blocks=0,
        n_values_sampled=0, n_values_total=int(n_values), seed=seed,
        seconds=time.perf_counter() - t0,
        features={
            "outlier_rate": float(
                feats["n_unpredictable"].sum(dtype=np.int64)
            ) / max(1.0, n_vals),
            "hit_rate": float(feats["hit_rate"].mean(dtype=np.float64)),
            "mode_share": float(feats["mode_share"].mean(dtype=np.float64)),
            "nonzero_bins": float(
                feats["nonzero_bins"].astype(np.float64).mean(
                    dtype=np.float64
                )
            ),
        },
    )


def _is_container_source(source: Any) -> bool:
    from repro.chunked.format import is_tiled

    if isinstance(source, (bytes, bytearray, memoryview)):
        return is_tiled(source)
    if isinstance(source, (str, np.str_)) or hasattr(source, "__fspath__"):
        try:
            with open(source, "rb") as fh:
                return fh.read(4) == b"SZRT"
        except OSError:
            return False
    return False


def estimate(
    source: Any,
    config: Any = None,
    *,
    fraction: float | None = None,
    seed: int | None = None,
    block_values: int | None = None,
) -> Estimate:
    """Predict compression ratio and quality from a deterministic sample.

    Parameters
    ----------
    source
        An array, a ``.npy`` path, a tiled-container path/bytes, or a
        v1 container (fully decoded first — it has no tile index).
    config
        The :class:`repro.api.SZConfig` to predict for.  ``None`` on a
        tiled container returns the container's **exact** as-is stats
        from the footer index (``method="footer"``, no decompression);
        ``None`` on anything else is an error.
    fraction, seed, block_values
        Sampling knobs; default to the config's ``sample_fraction`` /
        ``sample_seed`` / ``sample_block``.

    The fixed sampling seed makes estimates reproducible: identical
    inputs always produce the identical :class:`Estimate`.
    """
    t0 = time.perf_counter()
    if config is None:
        if _is_container_source(source):
            with span("estimate", method="footer"):
                est = _footer_estimate(source, seed or 0, t0)
            metric_add("estimate/calls")
            metric_observe("estimate/predicted_cf", est.ratio)
            return est
        raise ValueError(
            "estimate() needs a config= for array/.npy sources; only an "
            "existing tiled container can be estimated as-is"
        )
    fraction = config.sample_fraction if fraction is None else fraction
    seed = config.sample_seed if seed is None else seed
    block_values = (
        config.sample_block if block_values is None else block_values
    )
    spec = config.error_bound
    with span(
        "estimate", mode=spec.mode, fraction=float(fraction), seed=int(seed)
    ):
        sample = draw_sample(
            source, fraction=fraction, seed=seed, block_values=block_values
        )
        est = _estimate_sampled(sample, config, t0)
    metric_add("estimate/calls")
    metric_add("estimate/sampled_values", float(est.n_values_sampled))
    metric_observe("estimate/predicted_cf", est.ratio)
    metric_observe("estimate/seconds", est.seconds)
    return est


def _estimate_sampled(sample: Sample, config: Any, t0: float) -> Estimate:
    spec = config.error_bound
    mode = spec.mode
    if sample.value_range == 0.0 and mode != "pw_rel":
        return _constant_estimate(sample, config, t0)

    eb = _resolve_eb(mode, spec, sample)
    stats = _measure_blocks(sample.blocks, mode, spec.param, eb, config)
    if mode == "psnr":
        return _estimate_psnr(sample, config, stats, eb, t0)
    return _extrapolate(sample, config, stats, eb, t0)


_PSNR_KNIFE_EDGE_DB = 1.0
"""Borderline band around the target: the noise-model bound lands the
actual PSNR within float noise of the target *by construction*, so
whether the pipeline's verify keeps it or falls back is effectively a
coin flip the sample cannot call.  Inside this band the estimate's
confidence interval is widened to span both outcomes."""


def _estimate_psnr(
    sample: Sample,
    config: Any,
    stats: list[_BlockStats],
    eb: float,
    t0: float,
) -> Estimate:
    """psnr mode: mirror the pipeline's verify-and-fallback decision.

    The sampled PSNR under the noise-model bound decides the primary
    prediction exactly like ``_compress_psnr`` decides the real bound.
    Near the target the decision is a knife edge (see
    ``_PSNR_KNIFE_EDGE_DB``), so both candidate outcomes bound the
    reported confidence interval.
    """
    import dataclasses

    spec = config.error_bound
    target = spec.psnr_target
    sampled_psnr = _sample_psnr(stats, sample)
    fallback = psnr_fallback_bound(target, sample.value_range)
    if sampled_psnr >= target:
        primary_stats, primary_eb = stats, eb
    else:
        primary_stats = _measure_blocks(
            sample.blocks, "psnr", spec.param, fallback, config
        )
        primary_eb = fallback
    est = _extrapolate(sample, config, primary_stats, primary_eb, t0)
    if abs(sampled_psnr - target) >= _PSNR_KNIFE_EDGE_DB:
        return est
    other_stats = (
        _measure_blocks(sample.blocks, "psnr", spec.param, fallback, config)
        if primary_eb == eb
        else stats
    )
    other_eb = fallback if primary_eb == eb else eb
    other = _extrapolate(sample, config, other_stats, other_eb, t0)
    return dataclasses.replace(
        est,
        ratio_low=min(est.ratio_low, other.ratio_low),
        ratio_high=max(est.ratio_high, other.ratio_high),
        seconds=time.perf_counter() - t0,
    )


def _sample_psnr(stats: list[_BlockStats], sample: Sample) -> float:
    sq = sum(s.sq_err for s in stats)
    n = sum(s.n_values for s in stats)
    rmse = float(np.sqrt(sq / max(1, n)))
    if rmse == 0.0 or sample.value_range == 0.0:
        return float("inf")
    return float(20.0 * np.log10(sample.value_range / rmse))


def _extrapolate(
    sample: Sample,
    config: Any,
    stats: list[_BlockStats],
    eb: float,
    t0: float,
) -> Estimate:
    spec = config.error_bound
    mode = spec.mode
    agg = np.zeros(max(s.hist.size for s in stats), dtype=np.int64)
    for s in stats:
        agg[: s.hist.size] += s.hist
    if config.entropy_coder == DEFAULT_ENTROPY_CODER:
        weights = huffman_code_lengths(agg)
    else:
        weights = agg.astype(np.float64) / max(
            1.0, float(agg.sum(dtype=np.int64))
        )

    bits = np.array(
        [_payload_bits(s, weights, config.entropy_coder) for s in stats],
        dtype=np.float64,
    )
    sizes = np.array([s.n_values for s in stats], dtype=np.float64)
    bits_pv = float(bits.sum(dtype=np.float64) / sizes.sum(dtype=np.float64))
    per_block = bits / sizes
    if len(stats) > 1:
        stderr = float(per_block.std(ddof=1)) / np.sqrt(len(stats))
    else:
        stderr = 0.0
    ci = 1.96 * stderr

    # `weights` holds the aggregate code lengths on the Huffman path —
    # exactly what the analytic table-size model serializes.
    fixed = _fixed_overhead(len(sample.shape), weights, config, mode)
    n_total = sample.n_values_total
    chunk_bytes = _STREAM_FIXED_BYTES + _STREAM_CHUNK_BYTES * _chunks(
        n_total, config.block_size
    )

    def _total_bytes(bpv: float) -> int:
        return int(round(n_total * bpv / 8.0 + chunk_bytes + fixed))

    original = n_total * sample.dtype.itemsize
    predicted = _total_bytes(bits_pv)
    ratio = original / max(1, predicted)
    ratio_high = original / max(1, _total_bytes(max(0.0, bits_pv - ci)))
    ratio_low = original / max(1, _total_bytes(bits_pv + ci))

    n_sampled = int(sizes.sum(dtype=np.float64))
    outliers = sum(s.n_unpredictable for s in stats)
    psnr = _sample_psnr(stats, sample)
    return Estimate(
        ratio=ratio, ratio_low=ratio_low, ratio_high=ratio_high,
        bit_rate=8.0 * predicted / max(1, n_total),
        predicted_bytes=predicted, original_bytes=int(original),
        psnr=psnr,
        max_abs_error=max(s.max_abs_err for s in stats),
        max_pw_rel_error=(
            max(s.max_pw_rel_err for s in stats) if mode == "pw_rel" else None
        ),
        mode=mode, bound=spec.param,
        eb_abs=None if mode == "pw_rel" else eb,
        method="sampled", sample_fraction=sample.sampled_fraction,
        n_blocks=len(stats), n_values_sampled=n_sampled,
        n_values_total=n_total, seed=sample.seed,
        seconds=time.perf_counter() - t0,
        features={
            "outlier_rate": outliers / max(1, n_sampled),
            "hit_rate": 1.0 - outliers / max(1, n_sampled),
            "nonzero_bins": float((agg > 0).sum(dtype=np.int64)),
            "payload_bits_per_value": bits_pv,
            "fixed_overhead_bytes": float(fixed),
        },
    )
