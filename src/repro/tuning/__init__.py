"""`repro.tuning` — sample-based ratio/quality estimation + auto-tuning.

The interactive counterpart of the compressor: predict what a
configuration *would* do (:func:`estimate`) and search for the
configuration that hits a target (:func:`autotune`), both from a small
deterministic sample instead of full recompression.

>>> import numpy as np
>>> from repro.api import SZConfig
>>> from repro.tuning import autotune, estimate
>>> data = np.sin(np.linspace(0, 60, 1 << 15)).astype(np.float32)
>>> est = estimate(data, SZConfig.from_kwargs(mode="rel", bound=1e-4))
>>> est.method
'sampled'
>>> result = autotune(data, target_ratio=est.ratio, rtol=0.2)
>>> result.converged
True
"""

from typing import Any

from repro.tuning.estimator import Estimate, estimate
from repro.tuning.sampler import Sample, draw_sample
from repro.tuning.tuner import (
    Trial,
    TuneResult,
    autotune,
    config_from_container,
)


def __getattr__(name: str) -> Any:
    # Lazy on purpose: the validation harness pulls in the synthetic
    # dataset generators, and an eager import would also make
    # ``python -m repro.tuning.validation`` warn about the module being
    # found in sys.modules before runpy executes it.
    if name == "validate_accuracy":
        from repro.tuning.validation import validate_accuracy

        return validate_accuracy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Estimate",
    "Sample",
    "Trial",
    "TuneResult",
    "autotune",
    "config_from_container",
    "draw_sample",
    "estimate",
    "validate_accuracy",
]
