"""Multi-file archives: the paper's off-line compression workflow.

Section VI: "ATM data sets have a total of 11400 files ... users can
load these files by multiple processes and run our compressor in
parallel, without inter-process communications."  This module packages
that workflow: compress a directory of ``.npy`` snapshots (optionally in
parallel) into one archive with a manifest, and restore or selectively
extract from it.

Archive layout::

    magic 'SZAR' (4) | version (1) | entry count (4, big endian)
    per entry: name length (2) | utf-8 name | container length (6)
    entry containers, concatenated in manifest order
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import compress as sz_compress
from repro.core import decompress as sz_decompress
from repro.parallel.pool import parallel_compress, parallel_decompress

__all__ = [
    "ArchiveEntry",
    "archive_info",
    "create_archive",
    "extract",
    "extract_all",
    "extract_region",
    "read_manifest",
]

_MAGIC = b"SZAR"
_VERSION = 1


@dataclass(frozen=True)
class ArchiveEntry:
    name: str
    offset: int
    length: int


def create_archive(
    arrays: dict[str, np.ndarray] | None = None,
    directory: str | Path | None = None,
    out_path: str | Path | None = None,
    n_workers: int = 1,
    tile_shape=None,
    **compress_kwargs,
) -> bytes:
    """Build an archive from named arrays and/or a directory of ``.npy``.

    Each variable is compressed independently (its own value range and
    bounds), so any entry can be extracted without touching the others —
    the property that makes the paper's off-line mode embarrassingly
    parallel.  With ``tile_shape`` every entry is written as a tiled
    (v2) container, so hyperslabs of an entry can later be read via
    :func:`extract_region` without decoding the rest of it.
    """
    items: list[tuple[str, np.ndarray]] = []
    if arrays:
        items.extend(sorted(arrays.items()))
    if directory is not None:
        for path in sorted(Path(directory).glob("*.npy")):
            items.append((path.stem, np.load(path)))
    if not items:
        raise ValueError("nothing to archive")
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ValueError("duplicate entry names")
    chunks = [arr for _, arr in items]
    if tile_shape is not None:
        from repro.chunked import compress_tiled

        # Tile-level fan-out: the per-entry index must be built in
        # order anyway, and workers already parallelize within entries.
        blobs = [
            compress_tiled(
                c, tile_shape=tile_shape, workers=n_workers,
                **compress_kwargs,
            )
            for c in chunks
        ]
    elif n_workers > 1:
        blobs = parallel_compress(chunks, n_workers=n_workers, **compress_kwargs)
    else:
        blobs = [sz_compress(c, **compress_kwargs) for c in chunks]

    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    out += len(items).to_bytes(4, "big")
    for name, blob in zip(names, blobs):
        encoded = name.encode("utf-8")
        if len(encoded) > 65535:
            raise ValueError(f"entry name too long: {name!r}")
        out += len(encoded).to_bytes(2, "big")
        out += encoded
        out += len(blob).to_bytes(6, "big")
    for blob in blobs:
        out += blob
    data = bytes(out)
    if out_path is not None:
        Path(out_path).write_bytes(data)
    return data


def read_manifest(archive: bytes) -> list[ArchiveEntry]:
    """Parse the manifest without touching any entry payload."""
    if archive[:4] != _MAGIC:
        raise ValueError("not an SZ archive")
    if archive[4] != _VERSION:
        raise ValueError(f"unsupported archive version {archive[4]}")
    count = int.from_bytes(archive[5:9], "big")
    pos = 9
    metas: list[tuple[str, int]] = []
    for _ in range(count):
        nlen = int.from_bytes(archive[pos : pos + 2], "big")
        pos += 2
        name = archive[pos : pos + nlen].decode("utf-8")
        pos += nlen
        length = int.from_bytes(archive[pos : pos + 6], "big")
        pos += 6
        metas.append((name, length))
    entries = []
    offset = pos
    for name, length in metas:
        if offset + length > len(archive):
            raise ValueError("truncated archive")
        entries.append(ArchiveEntry(name, offset, length))
        offset += length
    return entries


def _entry_blob(archive: bytes, entry: ArchiveEntry) -> bytes:
    return archive[entry.offset : entry.offset + entry.length]


def _find_entry(archive: bytes, name: str) -> bytes:
    for entry in read_manifest(archive):
        if entry.name == name:
            return _entry_blob(archive, entry)
    raise KeyError(f"no entry named {name!r}")


def extract(archive: bytes, name: str) -> np.ndarray:
    """Decompress a single entry, v1 or tiled v2 (no other entry is parsed)."""
    from repro.chunked import decompress_any

    return decompress_any(_find_entry(archive, name))


def extract_region(archive: bytes, name: str, region) -> np.ndarray:
    """Read a hyperslab of one tiled entry, touching only its tiles.

    v1 entries have no tile index, so the whole entry is decoded first
    and then sliced.
    """
    from repro.chunked import decompress_region, is_tiled

    blob = _find_entry(archive, name)
    if is_tiled(blob):
        return decompress_region(blob, region)
    return sz_decompress(blob)[region]


def extract_all(
    archive: bytes, n_workers: int = 1
) -> dict[str, np.ndarray]:
    """Decompress every entry, optionally with a process pool."""
    entries = read_manifest(archive)
    blobs = [_entry_blob(archive, e) for e in entries]
    arrays = parallel_decompress(blobs, n_workers=n_workers)
    return {e.name: a for e, a in zip(entries, arrays)}


def archive_info(archive: bytes) -> list[dict]:
    """Per-entry header info (shape, dtype, CF) without decompressing."""
    from repro.chunked import container_info_any

    rows = []
    for entry in read_manifest(archive):
        info = container_info_any(_entry_blob(archive, entry))
        n_values = int(np.prod(info["shape"], dtype=np.int64)) if info["shape"] else 0
        itemsize = np.dtype(info["dtype"]).itemsize
        rows.append(
            {
                "name": entry.name,
                "shape": info["shape"],
                "dtype": info["dtype"],
                "format": info.get("format", "v1"),
                "n_tiles": info.get("n_tiles"),
                "compressed_bytes": entry.length,
                "cf": n_values * itemsize / max(1, entry.length),
            }
        )
    return rows
