"""Multi-file archives: the paper's off-line compression workflow.

Section VI: "ATM data sets have a total of 11400 files ... users can
load these files by multiple processes and run our compressor in
parallel, without inter-process communications."  This module packages
that workflow: compress a directory of ``.npy`` snapshots (optionally in
parallel) into one archive with a manifest, and restore or selectively
extract from it.

Archive layout::

    magic 'SZAR' (4) | version (1) | entry count (4, big endian)
    per entry: name length (2) | utf-8 name | container length (6)
    entry containers, concatenated in manifest order
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import compress as sz_compress
from repro.core import container_info
from repro.core import decompress as sz_decompress
from repro.parallel.pool import parallel_compress, parallel_decompress

__all__ = ["ArchiveEntry", "create_archive", "read_manifest", "extract", "extract_all"]

_MAGIC = b"SZAR"
_VERSION = 1


@dataclass(frozen=True)
class ArchiveEntry:
    name: str
    offset: int
    length: int


def create_archive(
    arrays: dict[str, np.ndarray] | None = None,
    directory: str | Path | None = None,
    out_path: str | Path | None = None,
    n_workers: int = 1,
    **compress_kwargs,
) -> bytes:
    """Build an archive from named arrays and/or a directory of ``.npy``.

    Each variable is compressed independently (its own value range and
    bounds), so any entry can be extracted without touching the others —
    the property that makes the paper's off-line mode embarrassingly
    parallel.
    """
    items: list[tuple[str, np.ndarray]] = []
    if arrays:
        items.extend(sorted(arrays.items()))
    if directory is not None:
        for path in sorted(Path(directory).glob("*.npy")):
            items.append((path.stem, np.load(path)))
    if not items:
        raise ValueError("nothing to archive")
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ValueError("duplicate entry names")
    chunks = [arr for _, arr in items]
    if n_workers > 1:
        blobs = parallel_compress(chunks, n_workers=n_workers, **compress_kwargs)
    else:
        blobs = [sz_compress(c, **compress_kwargs) for c in chunks]

    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    out += len(items).to_bytes(4, "big")
    for name, blob in zip(names, blobs):
        encoded = name.encode("utf-8")
        if len(encoded) > 65535:
            raise ValueError(f"entry name too long: {name!r}")
        out += len(encoded).to_bytes(2, "big")
        out += encoded
        out += len(blob).to_bytes(6, "big")
    for blob in blobs:
        out += blob
    data = bytes(out)
    if out_path is not None:
        Path(out_path).write_bytes(data)
    return data


def read_manifest(archive: bytes) -> list[ArchiveEntry]:
    """Parse the manifest without touching any entry payload."""
    if archive[:4] != _MAGIC:
        raise ValueError("not an SZ archive")
    if archive[4] != _VERSION:
        raise ValueError(f"unsupported archive version {archive[4]}")
    count = int.from_bytes(archive[5:9], "big")
    pos = 9
    metas: list[tuple[str, int]] = []
    for _ in range(count):
        nlen = int.from_bytes(archive[pos : pos + 2], "big")
        pos += 2
        name = archive[pos : pos + nlen].decode("utf-8")
        pos += nlen
        length = int.from_bytes(archive[pos : pos + 6], "big")
        pos += 6
        metas.append((name, length))
    entries = []
    offset = pos
    for name, length in metas:
        if offset + length > len(archive):
            raise ValueError("truncated archive")
        entries.append(ArchiveEntry(name, offset, length))
        offset += length
    return entries


def extract(archive: bytes, name: str) -> np.ndarray:
    """Decompress a single entry (no other entry is parsed)."""
    for entry in read_manifest(archive):
        if entry.name == name:
            return sz_decompress(
                archive[entry.offset : entry.offset + entry.length]
            )
    raise KeyError(f"no entry named {name!r}")


def extract_all(
    archive: bytes, n_workers: int = 1
) -> dict[str, np.ndarray]:
    """Decompress every entry, optionally with a process pool."""
    entries = read_manifest(archive)
    blobs = [archive[e.offset : e.offset + e.length] for e in entries]
    if n_workers > 1:
        arrays = parallel_decompress(blobs, n_workers=n_workers)
    else:
        arrays = [sz_decompress(b) for b in blobs]
    return {e.name: a for e, a in zip(entries, arrays)}


def archive_info(archive: bytes) -> list[dict]:
    """Per-entry header info (shape, dtype, CF) without decompressing."""
    rows = []
    for entry in read_manifest(archive):
        info = container_info(
            archive[entry.offset : entry.offset + entry.length]
        )
        n_values = int(np.prod(info["shape"])) if info["shape"] else 0
        itemsize = np.dtype(info["dtype"]).itemsize
        rows.append(
            {
                "name": entry.name,
                "shape": info["shape"],
                "dtype": info["dtype"],
                "compressed_bytes": entry.length,
                "cf": n_values * itemsize / max(1, entry.length),
            }
        )
    return rows
