"""Process-pool parallel compression of independent chunks.

The paper's off-line parallel mode: "an MPI program or a script can be
used to load the data into multiple processes and run the compression
separately on them ... without inter-process communications."  With no
communication, a process pool is the faithful single-node equivalent of
one MPI rank per file.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext

import numpy as np

from repro.core import compress as sz_compress
from repro.obs.tracer import Collector, active_collector
from repro.perf.timer import StageTimer, active_timer

__all__ = [
    "parallel_compress",
    "parallel_decompress",
    "measure_pool_scaling",
    "chunk_array",
    "pool_map",
]


def chunk_array(data: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split along the first axis into near-equal independent chunks.

    The *effective* chunk count is ``min(n_chunks, data.shape[0])`` — an
    axis cannot be split finer than one row per chunk — and equals
    ``len()`` of the returned list; callers that size a worker pool from
    the request must use that length, not ``n_chunks``.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    data = np.asarray(data)
    if data.ndim == 0:
        raise ValueError("cannot chunk a 0-d (scalar) array: no axis to split")
    n_chunks = min(n_chunks, data.shape[0])
    return [np.ascontiguousarray(c) for c in np.array_split(data, n_chunks)]


def _telemetry_job(args):
    """Run one item under fresh worker-local instruments.

    Dispatched instead of the bare ``fn`` when the parent had a
    :class:`~repro.perf.StageTimer` and/or :class:`~repro.obs.Collector`
    active: context variables do not cross process boundaries, so the
    worker activates its own and ships the collected telemetry back with
    the result for the parent to merge.
    """
    fn, item, want_stages, want_obs = args
    timer = StageTimer() if want_stages else None
    collector = Collector() if want_obs else None
    with timer or nullcontext(), collector or nullcontext():
        result = fn(item)
    return (
        result,
        timer.records if timer is not None else None,
        collector.to_payload() if collector is not None else None,
    )


def pool_map(fn, items: list, n_workers: int | None = None) -> list:
    """``map(fn, items)`` over a process pool, order preserved.

    ``fn`` must be picklable (a module-level function).  With one worker
    (or one item) the map runs in-process — results are identical either
    way, so callers get deterministic output independent of worker count.

    Telemetry crosses the pool: when the caller has an active
    :class:`~repro.perf.StageTimer` or :class:`~repro.obs.Collector`,
    each worker runs its item under fresh local instruments and returns
    their records alongside the result; the parent merges them (stage
    aggregates accumulate, worker spans graft under the caller's open
    span with per-item attribution and a lane per worker process).
    """
    n_workers = n_workers or os.cpu_count() or 1
    if n_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    timer = active_timer()
    collector = active_collector()
    if timer is None and collector is None:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(fn, items))
    jobs = [
        (fn, item, timer is not None, collector is not None)
        for item in items
    ]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        shipped = list(pool.map(_telemetry_job, jobs))
    results = []
    for i, (result, records, payload) in enumerate(shipped):
        if timer is not None and records is not None:
            timer.merge_records(records)
        if collector is not None and payload is not None:
            collector.merge_payload(payload, attrs={"item": i})
        results.append(result)
    return results


def _compress_worker(args) -> bytes:
    chunk, kwargs = args
    return sz_compress(chunk, **kwargs)


def _decompress_worker(blob: bytes) -> np.ndarray:
    # Lazy import: repro.chunked builds on this module, so the dispatch
    # to tiled containers cannot be a top-level import.
    from repro.chunked import decompress_any

    return decompress_any(blob)


def parallel_compress(
    chunks: list[np.ndarray],
    n_workers: int | None = None,
    **compress_kwargs,
) -> list[bytes]:
    """Compress independent chunks across a process pool."""
    n_workers = n_workers or os.cpu_count() or 1
    if n_workers == 1:
        return [sz_compress(c, **compress_kwargs) for c in chunks]
    return pool_map(
        _compress_worker,
        [(c, compress_kwargs) for c in chunks],
        n_workers=n_workers,
    )


def parallel_decompress(
    blobs: list[bytes], n_workers: int | None = None
) -> list[np.ndarray]:
    """Decompress independent containers (v1 or tiled v2) across a pool."""
    n_workers = n_workers or os.cpu_count() or 1
    if n_workers == 1:
        return [_decompress_worker(b) for b in blobs]
    return pool_map(_decompress_worker, blobs, n_workers=n_workers)


def measure_pool_scaling(
    data: np.ndarray,
    proc_counts: list[int],
    **compress_kwargs,
) -> list[dict]:
    """Measured strong scaling on this machine (Tables VII/VIII, local part).

    The array is pre-split into ``max(proc_counts)`` chunks so every run
    compresses identical work; each row reports wall-clock speed for one
    pool size.
    """
    max_procs = max(proc_counts)
    chunks = chunk_array(data, max_procs)
    total_bytes = sum(c.nbytes for c in chunks)
    rows = []
    base_speed = None
    for p in proc_counts:
        t0 = time.perf_counter()
        blobs = parallel_compress(chunks, n_workers=p, **compress_kwargs)
        comp_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel_decompress(blobs, n_workers=p)
        decomp_t = time.perf_counter() - t0
        row = {
            "processes": p,
            "comp_speed_mb_s": total_bytes / 1e6 / comp_t,
            "decomp_speed_mb_s": total_bytes / 1e6 / decomp_t,
        }
        if base_speed is None:
            base_speed = row["comp_speed_mb_s"]
        row["speedup"] = row["comp_speed_mb_s"] / base_speed
        row["efficiency"] = row["speedup"] / p
        rows.append(row)
    return rows
