"""Process-pool parallel compression of independent chunks.

The paper's off-line parallel mode: "an MPI program or a script can be
used to load the data into multiple processes and run the compression
separately on them ... without inter-process communications."  With no
communication, a process pool is the faithful single-node equivalent of
one MPI rank per file.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core import compress as sz_compress

__all__ = [
    "parallel_compress",
    "parallel_decompress",
    "measure_pool_scaling",
    "chunk_array",
    "pool_map",
]


def chunk_array(data: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split along the first axis into near-equal independent chunks.

    The *effective* chunk count is ``min(n_chunks, data.shape[0])`` — an
    axis cannot be split finer than one row per chunk — and equals
    ``len()`` of the returned list; callers that size a worker pool from
    the request must use that length, not ``n_chunks``.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    data = np.asarray(data)
    if data.ndim == 0:
        raise ValueError("cannot chunk a 0-d (scalar) array: no axis to split")
    n_chunks = min(n_chunks, data.shape[0])
    return [np.ascontiguousarray(c) for c in np.array_split(data, n_chunks)]


def pool_map(fn, items: list, n_workers: int | None = None) -> list:
    """``map(fn, items)`` over a process pool, order preserved.

    ``fn`` must be picklable (a module-level function).  With one worker
    (or one item) the map runs in-process — results are identical either
    way, so callers get deterministic output independent of worker count.
    """
    n_workers = n_workers or os.cpu_count() or 1
    if n_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))


def _compress_worker(args) -> bytes:
    chunk, kwargs = args
    return sz_compress(chunk, **kwargs)


def _decompress_worker(blob: bytes) -> np.ndarray:
    # Lazy import: repro.chunked builds on this module, so the dispatch
    # to tiled containers cannot be a top-level import.
    from repro.chunked import decompress_any

    return decompress_any(blob)


def parallel_compress(
    chunks: list[np.ndarray],
    n_workers: int | None = None,
    **compress_kwargs,
) -> list[bytes]:
    """Compress independent chunks across a process pool."""
    n_workers = n_workers or os.cpu_count() or 1
    if n_workers == 1:
        return [sz_compress(c, **compress_kwargs) for c in chunks]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(
            pool.map(_compress_worker, [(c, compress_kwargs) for c in chunks])
        )


def parallel_decompress(
    blobs: list[bytes], n_workers: int | None = None
) -> list[np.ndarray]:
    """Decompress independent containers (v1 or tiled v2) across a pool."""
    n_workers = n_workers or os.cpu_count() or 1
    if n_workers == 1:
        return [_decompress_worker(b) for b in blobs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_decompress_worker, blobs))


def measure_pool_scaling(
    data: np.ndarray,
    proc_counts: list[int],
    **compress_kwargs,
) -> list[dict]:
    """Measured strong scaling on this machine (Tables VII/VIII, local part).

    The array is pre-split into ``max(proc_counts)`` chunks so every run
    compresses identical work; each row reports wall-clock speed for one
    pool size.
    """
    max_procs = max(proc_counts)
    chunks = chunk_array(data, max_procs)
    total_bytes = sum(c.nbytes for c in chunks)
    rows = []
    base_speed = None
    for p in proc_counts:
        t0 = time.perf_counter()
        blobs = parallel_compress(chunks, n_workers=p, **compress_kwargs)
        comp_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel_decompress(blobs, n_workers=p)
        decomp_t = time.perf_counter() - t0
        row = {
            "processes": p,
            "comp_speed_mb_s": total_bytes / 1e6 / comp_t,
            "decomp_speed_mb_s": total_bytes / 1e6 / decomp_t,
        }
        if base_speed is None:
            base_speed = row["comp_speed_mb_s"]
        row["speedup"] = row["comp_speed_mb_s"] / base_speed
        row["efficiency"] = row["speedup"] / p
        rows.append(row)
    return rows
