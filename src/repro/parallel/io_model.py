"""Shared-filesystem I/O model behind the paper's Figure 10.

Figure 10 compares, per process count, the stacked shares of

* compression (or decompression) time,
* writing (reading) the *compressed* data, and
* writing (reading) the *initial* data,

normalized to 100 %.  The punchline: from ~32 processes up, writing the
initial data costs more than compressing **plus** writing the compressed
data, so compression reduces total I/O time.

The model: codec throughput scales like the cluster model (near-linear),
while the shared filesystem saturates at ``fs_peak_gb_s`` — per-process
bandwidth ``min(p * per_process_io, fs_peak)`` — which is why the I/O
share grows with scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.cluster import BluesClusterModel

__all__ = ["IOBreakdown", "ParallelIOModel"]


@dataclass(frozen=True)
class IOBreakdown:
    processes: int
    codec_seconds: float
    compressed_io_seconds: float
    initial_io_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.codec_seconds + self.compressed_io_seconds + self.initial_io_seconds

    @property
    def shares(self) -> tuple[float, float, float]:
        """(codec, compressed-io, initial-io) as fractions of the total."""
        t = self.total_seconds
        return (
            self.codec_seconds / t,
            self.compressed_io_seconds / t,
            self.initial_io_seconds / t,
        )

    @property
    def compression_pays_off(self) -> bool:
        """True when codec + compressed I/O beats writing initial data."""
        return (
            self.codec_seconds + self.compressed_io_seconds
            < self.initial_io_seconds
        )


@dataclass
class ParallelIOModel:
    """Blues-like cluster + GPFS-like shared filesystem."""

    cluster: BluesClusterModel = None
    per_process_io_gb_s: float = 0.35
    fs_peak_gb_s: float = 1.5
    compression_factor: float = 6.3  # ATM at eb_rel 1e-4 (paper Fig. 6)

    def __post_init__(self) -> None:
        if self.cluster is None:
            self.cluster = BluesClusterModel()

    def io_bandwidth(self, processes: int) -> float:
        """Aggregate filesystem bandwidth seen by ``processes`` writers."""
        return min(processes * self.per_process_io_gb_s, self.fs_peak_gb_s)

    def breakdown(
        self,
        processes: int,
        data_gb: float,
        codec_single_gb_s: float | None = None,
    ) -> IOBreakdown:
        codec_speed = self.cluster.speed(processes, codec_single_gb_s)
        io_bw = self.io_bandwidth(processes)
        return IOBreakdown(
            processes=processes,
            codec_seconds=data_gb / codec_speed,
            compressed_io_seconds=(data_gb / self.compression_factor) / io_bw,
            initial_io_seconds=data_gb / io_bw,
        )

    def sweep(
        self,
        proc_counts: list[int] | None = None,
        data_gb: float = 2500.0,
        codec_single_gb_s: float | None = None,
    ) -> list[IOBreakdown]:
        proc_counts = proc_counts or [2**k for k in range(11)]
        return [
            self.breakdown(p, data_gb, codec_single_gb_s) for p in proc_counts
        ]
