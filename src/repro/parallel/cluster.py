"""Analytical Blues-cluster strong-scaling model (Tables VII/VIII).

We cannot run on 64 Blues nodes; this model extends a measured (or the
paper's) single-process speed to 1..1024 processes using the scheduling
the paper describes — fill nodes breadth-first up to 64 nodes, then add
processes per node — and a per-node memory-bandwidth contention curve
calibrated on the paper's own parallel-efficiency column:

==================  =======================
processes per node  parallel efficiency
==================  =======================
1-2                 ~99.7-100 %  (linear)
4                   ~96 %
8                   ~90 %
16                  ~91 %
==================  =======================

The paper attributes the drop beyond 2 processes/node to "node internal
limitations"; the curve is exposed so other machines can be modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BluesClusterModel", "ScalingRow"]

# (processes per node -> efficiency) read off Tables VII/VIII
_DEFAULT_CONTENTION = {1: 0.9995, 2: 0.998, 4: 0.960, 8: 0.904, 16: 0.909}


@dataclass(frozen=True)
class ScalingRow:
    processes: int
    nodes: int
    speed_gb_s: float
    speedup: float
    efficiency: float


@dataclass
class BluesClusterModel:
    """64-node cluster with two 8-core Xeon E5-2670 per node."""

    n_nodes: int = 64
    cores_per_node: int = 16
    single_process_gb_s: float = 0.09  # paper Table VII, 1 process
    contention: dict = field(default_factory=lambda: dict(_DEFAULT_CONTENTION))

    def _efficiency(self, ppn: float) -> float:
        """Interpolate the per-node contention curve in log2(ppn)."""
        pts = sorted(self.contention.items())
        xs = np.log2([p for p, _ in pts])
        ys = np.array([e for _, e in pts])
        return float(np.interp(np.log2(max(ppn, 1.0)), xs, ys))

    def placement(self, processes: int) -> tuple[int, float]:
        """(nodes used, processes per node) for breadth-first placement."""
        if processes < 1:
            raise ValueError("need at least one process")
        if processes > self.n_nodes * self.cores_per_node:
            raise ValueError(
                f"cluster holds at most {self.n_nodes * self.cores_per_node} processes"
            )
        nodes = min(processes, self.n_nodes)
        return nodes, processes / nodes

    def speed(self, processes: int, single_gb_s: float | None = None) -> float:
        """Aggregate throughput (GB/s) at the given process count."""
        s1 = single_gb_s if single_gb_s is not None else self.single_process_gb_s
        _, ppn = self.placement(processes)
        return processes * s1 * self._efficiency(ppn)

    def strong_scaling(
        self,
        proc_counts: list[int] | None = None,
        single_gb_s: float | None = None,
    ) -> list[ScalingRow]:
        """Rows of Table VII (or VIII when fed the decompression speed)."""
        proc_counts = proc_counts or [2**k for k in range(11)]
        s1 = single_gb_s if single_gb_s is not None else self.single_process_gb_s
        base = self.speed(1, s1)
        rows = []
        for p in proc_counts:
            nodes, _ = self.placement(p)
            sp = self.speed(p, s1)
            rows.append(
                ScalingRow(
                    processes=p,
                    nodes=nodes,
                    speed_gb_s=sp,
                    speedup=sp / base,
                    efficiency=sp / base / p,
                )
            )
        return rows
