"""Parallel compression (paper Section VI).

``pool`` runs real process-parallel compression on the local machine
(the paper's off-line mode: independent files/chunks, no inter-process
communication).  ``cluster`` extends the measured single-process speed to
the paper's 64-node Blues configuration with a documented node-contention
model, reproducing Tables VII/VIII.  ``io_model`` adds the shared-
filesystem bandwidth model behind Figure 10.
"""

from repro.parallel.cluster import BluesClusterModel, ScalingRow
from repro.parallel.files import (
    archive_info,
    create_archive,
    extract,
    extract_all,
    extract_region,
    read_manifest,
)
from repro.parallel.io_model import IOBreakdown, ParallelIOModel
from repro.parallel.pool import (
    measure_pool_scaling,
    parallel_compress,
    parallel_decompress,
    pool_map,
)

__all__ = [
    "BluesClusterModel",
    "IOBreakdown",
    "ParallelIOModel",
    "ScalingRow",
    "archive_info",
    "create_archive",
    "extract",
    "extract_all",
    "extract_region",
    "measure_pool_scaling",
    "parallel_compress",
    "parallel_decompress",
    "pool_map",
    "read_manifest",
]
