"""CI perf-regression gate: compare a fresh bench run against a baseline.

Fails (exit 1) when any per-stage median — or the end-to-end compress /
decompress time — of a case regresses more than the tolerance factor
versus the committed baseline.  Times are normalized by each report's
``calibration_seconds`` (a fixed NumPy workload timed on the same
machine) so a slower CI runner shifts both sides equally instead of
tripping the gate; pass ``--absolute`` to compare raw seconds.

Usage::

    python -m repro.perf.gate benchmarks/baselines/bench_baseline.json \
        BENCH_micro.json --tolerance 1.5

Stages faster than ``--floor`` seconds (default 5 ms) in the baseline
are skipped: at that scale timer/scheduler noise dominates and any
ratio is meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro.perf.bench import validate_report

__all__ = [
    "compare_reports",
    "missing_required_stages",
    "stage_coverage_notes",
    "main",
]

DEFAULT_TOLERANCE = 1.5
DEFAULT_FLOOR_SECONDS = 5e-3
"""Stages faster than this in the baseline are skipped: below ~5 ms,
scheduler noise on shared CI runners swings ratios past any reasonable
tolerance (observed 1.8x between back-to-back identical runs)."""


def compare_reports(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    floor_seconds: float = DEFAULT_FLOOR_SECONDS,
    normalize: bool = True,
) -> list[dict[str, Any]]:
    """Return the list of regressions (empty = gate passes).

    Each regression dict has ``case``, ``metric`` (``compress``,
    ``decompress`` or a stage path), ``baseline_seconds``,
    ``fresh_seconds`` and the calibrated ``slowdown`` factor.
    """
    validate_report(baseline)
    validate_report(fresh)
    scale = 1.0
    if normalize:
        base_cal = float(baseline["calibration_seconds"])
        fresh_cal = float(fresh["calibration_seconds"])
        if base_cal > 0 and fresh_cal > 0:
            scale = base_cal / fresh_cal
    fresh_cases = {c["name"]: c for c in fresh["cases"]}
    regressions: list[dict[str, Any]] = []
    for base_case in baseline["cases"]:
        name = base_case["name"]
        new_case = fresh_cases.get(name)
        if new_case is None:
            regressions.append(
                {
                    "case": name,
                    "metric": "missing",
                    "baseline_seconds": 0.0,
                    "fresh_seconds": 0.0,
                    "slowdown": float("inf"),
                }
            )
            continue
        checks: list[tuple[str, float, float]] = []
        for side in ("compress", "decompress"):
            checks.append(
                (
                    side,
                    float(base_case[side]["seconds"]),
                    float(new_case[side]["seconds"]),
                )
            )
            base_stages = base_case[side]["stages"]
            new_stages = new_case[side]["stages"]
            for path, rec in base_stages.items():
                if path in new_stages:
                    checks.append(
                        (
                            f"{side}:{path}",
                            float(rec["seconds"]),
                            float(new_stages[path]["seconds"]),
                        )
                    )
                elif float(rec["seconds"]) >= floor_seconds:
                    # A stage that was measured in the baseline but is
                    # absent now means instrumentation was removed or
                    # renamed — that must not pass vacuously.
                    regressions.append(
                        {
                            "case": name,
                            "metric": f"{side}:{path} (stage missing)",
                            "baseline_seconds": float(rec["seconds"]),
                            "fresh_seconds": 0.0,
                            "slowdown": float("inf"),
                        }
                    )
        for metric, base_sec, new_sec in checks:
            if base_sec < floor_seconds:
                continue
            slowdown = (new_sec * scale) / base_sec if base_sec > 0 else 0.0
            if slowdown > tolerance:
                regressions.append(
                    {
                        "case": name,
                        "metric": metric,
                        "baseline_seconds": base_sec,
                        "fresh_seconds": new_sec,
                        "slowdown": slowdown,
                    }
                )
    return regressions


def stage_coverage_notes(
    baseline: dict[str, Any], fresh: dict[str, Any]
) -> list[str]:
    """Human-readable notes on absent/empty per-stage data.

    An empty ``stages`` map is structurally valid (a subprocess-heavy
    case whose stage records never reached the parent looks exactly like
    this), and the per-stage loop of :func:`compare_reports` then passes
    vacuously — nothing to compare, nothing to flag.  These notes make
    that state explicit so a gate run says *why* a side contributed no
    stage checks instead of silently covering zero stages.
    """
    notes: list[str] = []
    fresh_cases = {c["name"]: c for c in fresh.get("cases", [])}
    for base_case in baseline.get("cases", []):
        name = base_case["name"]
        new_case = fresh_cases.get(name)
        for side in ("compress", "decompress"):
            base_empty = not base_case[side]["stages"]
            new_empty = new_case is not None and not new_case[side]["stages"]
            if base_empty and new_empty:
                notes.append(
                    f"{name} {side}: no stage data in baseline or fresh "
                    "run — only end-to-end seconds were compared"
                )
            elif base_empty:
                notes.append(
                    f"{name} {side}: baseline has no stage data — "
                    "per-stage checks skipped (re-baseline to cover them)"
                )
            elif new_empty:
                notes.append(
                    f"{name} {side}: fresh run has no stage data — "
                    "stage instrumentation may have been lost"
                )
    for new_case in fresh.get("cases", []):
        if new_case["name"] not in {c["name"] for c in baseline.get("cases", [])}:
            notes.append(
                f"{new_case['name']}: not in baseline — uncovered by the gate"
            )
    return notes


def missing_required_stages(
    fresh: dict[str, Any], requirements: list[str]
) -> list[str]:
    """Requirements (``case:side:stage/path``) absent from ``fresh``.

    The per-stage comparison loop only checks stages present in the
    *baseline*, so a stage that matters (say ``entropy/huffman_decode``)
    could silently vanish from coverage if a baseline refresh was taken
    while its instrumentation was broken.  Required stages pin coverage
    against the fresh report itself, independent of baseline contents.
    """
    fresh_cases = {c["name"]: c for c in fresh.get("cases", [])}
    missing: list[str] = []
    for spec in requirements:
        parts = spec.split(":", 2)
        if len(parts) != 3 or parts[1] not in ("compress", "decompress"):
            raise ValueError(
                f"bad --require-stage spec {spec!r}; "
                "expected case:compress|decompress:stage/path"
            )
        case_name, side, stage_path = parts
        case = fresh_cases.get(case_name)
        if case is None or stage_path not in case[side]["stages"]:
            missing.append(spec)
    return missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.gate",
        description="fail when a bench run regresses versus the baseline",
    )
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(
            os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)
        ),
        help="max allowed slowdown factor per stage (default 1.5)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR_SECONDS,
        help="skip stages below this many baseline seconds "
             "(noise floor, default 5 ms)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw seconds without machine-speed calibration",
    )
    parser.add_argument(
        "--require-stage",
        action="append",
        default=[],
        metavar="CASE:SIDE:STAGE",
        help="fail unless the fresh report records this stage, e.g. "
             "3d-f32-rel:decompress:entropy/huffman_decode "
             "(repeatable; checked against the fresh report so lost "
             "instrumentation cannot be re-baselined away)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    regressions = compare_reports(
        baseline,
        fresh,
        tolerance=args.tolerance,
        floor_seconds=args.floor,
        normalize=not args.absolute,
    )
    cal_note = (
        "calibrated"
        if not args.absolute
        else "absolute (no machine normalization)"
    )
    print(
        f"perf gate: tolerance {args.tolerance:.2f}x, floor {args.floor*1e3:.1f} ms, "
        f"{cal_note}"
    )
    for note in stage_coverage_notes(baseline, fresh):
        print(f"perf gate: note — {note}")
    missing = missing_required_stages(fresh, args.require_stage)
    if missing:
        for spec in missing:
            print(f"perf gate: required stage absent from fresh run — {spec}")
        return 1
    if not regressions:
        print("perf gate: OK — no stage regressed beyond tolerance")
        return 0
    print(f"perf gate: {len(regressions)} regression(s):")
    for r in regressions:
        print(
            f"  {r['case']:14s} {r['metric']:40s} "
            f"{r['baseline_seconds']*1e3:9.2f} ms -> "
            f"{r['fresh_seconds']*1e3:9.2f} ms  ({r['slowdown']:.2f}x)"
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
