"""Benchmark runner: sweep the compressor and emit ``BENCH_micro.json``.

Runs ``{dtype} x {dims} x {mode}`` compression/decompression cases at a
chosen size scale, aggregates medians over repeats, and writes a
schema-versioned JSON report with machine info, git revision, end-to-end
throughput and the per-stage breakdown collected by
:mod:`repro.perf.timer`.  The committed ``BENCH_*.json`` files form the
repo's performance trajectory; the CI gate (:mod:`repro.perf.gate`)
compares a fresh run against ``benchmarks/baselines/bench_baseline.json``.

Usage::

    python -m repro.perf.bench --scale tiny --out BENCH_micro.json
    repro-sz bench --scale small --repeats 5

The sweep is deterministic: fields are seeded synthetics, so two runs on
the same revision produce structurally identical reports (timings aside)
— pinned by ``tests/test_perf.py``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import subprocess
import sys
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.perf.timer import StageTimer, _median

if TYPE_CHECKING:
    from repro.api import SZConfig

__all__ = [
    "SCHEMA",
    "SCALES",
    "bench_report",
    "calibrate",
    "main",
    "synth_field",
    "validate_report",
]

SCHEMA = "repro-bench/1"

#: per-scale shapes, indexed by dimensionality
SCALES: dict[str, dict[int, tuple[int, ...]]] = {
    "tiny": {1: (4096,), 2: (48, 64), 3: (16, 24, 32)},
    "small": {1: (65536,), 2: (384, 512), 3: (64, 96, 96)},
    "large": {1: (1 << 20,), 2: (1536, 2048), 3: (128, 192, 256)},
}

_DTYPES = {"float32": np.float32, "float64": np.float64}
_DEFAULT_MODES = ("abs", "rel")
_ALL_MODES = ("abs", "rel", "pw_rel", "psnr")
_DEFAULT_KINDS = ("sweep",)
_ALL_KINDS = ("sweep", "estimate")


def synth_field(shape: tuple[int, ...], dtype: str, seed: int = 0) -> np.ndarray:
    """Deterministic smooth-plus-noise field mimicking simulation output."""
    rng = np.random.default_rng(seed)
    axes = [np.linspace(0.0, 4.0 * np.pi, s) for s in shape]
    mesh = np.meshgrid(*axes, indexing="ij") if len(shape) > 1 else [axes[0]]
    field = np.zeros(shape, dtype=np.float64)
    for k, m in enumerate(mesh):
        field += np.sin(m * (1.0 + 0.25 * k))
    field += 0.01 * rng.standard_normal(shape)
    return field.astype(_DTYPES[dtype])


def _mode_config(mode: str, workers: int = 1) -> "SZConfig":
    """The :class:`repro.api.SZConfig` realizing one sweep mode."""
    from repro.api import SZConfig

    bound = {"abs": 1e-3, "rel": 1e-4, "pw_rel": 1e-3, "psnr": 84.0}[mode]
    return SZConfig.from_kwargs(mode=mode, bound=bound, workers=workers)


def calibrate(repeats: int = 5) -> float:
    """Median seconds of a fixed NumPy workload — a machine-speed yardstick.

    The CI gate divides stage times by this before comparing against the
    committed baseline, so a slower/faster runner shifts both sides
    equally instead of tripping the tolerance.
    """
    rng = np.random.default_rng(12345)
    x = rng.standard_normal(1 << 21)
    times: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        y = np.cumsum(x)
        y = np.sort(y[: 1 << 19])
        float(y[0])
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def _git_rev() -> str:
    with contextlib.suppress(OSError, subprocess.SubprocessError):
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    return "unknown"


def _machine_info() -> dict[str, str | int]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def _run_case(
    name: str,
    dtype: str,
    shape: tuple[int, ...],
    mode: str,
    repeats: int,
    workers: int = 1,
) -> dict[str, Any]:
    from repro.api import Codec
    from repro.obs import Collector

    field = synth_field(shape, dtype, seed=len(shape))
    codec = Codec(_mode_config(mode, workers=workers))
    # warm-up: plan caches, first-touch allocations.  Run it under a
    # private collector — the codec metrics (outlier counts, Huffman
    # table shape, compression factor) are deterministic for a seeded
    # field, so they ride along in the report without touching the
    # timed repeats below.
    with Collector() as obs:
        blob = codec.encode(field)
        codec.decode(blob)
    obs_metrics = {
        "counters": dict(sorted(obs.counters.items())),
        "observations": {
            k: dict(v) for k, v in sorted(obs.observations.items())
        },
        "histograms": {k: list(v) for k, v in sorted(obs.histograms.items())},
    }

    c_times: list[float] = []
    d_times: list[float] = []
    c_timers: list[StageTimer] = []
    d_timers: list[StageTimer] = []
    for _ in range(repeats):
        with StageTimer() as ct:
            t0 = time.perf_counter()
            blob = codec.encode(field)
            c_times.append(time.perf_counter() - t0)
        c_timers.append(ct)
        with StageTimer() as dt_:
            t0 = time.perf_counter()
            out = codec.decode(blob)
            d_times.append(time.perf_counter() - t0)
        d_timers.append(dt_)
    if out.shape != field.shape:
        raise RuntimeError(f"bench case {name}: round-trip shape mismatch")
    c_sec = _median(c_times)
    d_sec = _median(d_times)
    return {
        "name": name,
        "dtype": dtype,
        "ndim": len(shape),
        "shape": list(shape),
        "mode": mode,
        "n_bytes": int(field.nbytes),
        "compressed_bytes": len(blob),
        "compression_factor": field.nbytes / max(1, len(blob)),
        "compress": {
            "seconds": c_sec,
            "mb_per_s": field.nbytes / c_sec / 1e6 if c_sec > 0 else 0.0,
            "stages": StageTimer.median_stages(c_timers),
        },
        "decompress": {
            "seconds": d_sec,
            "mb_per_s": field.nbytes / d_sec / 1e6 if d_sec > 0 else 0.0,
            "stages": StageTimer.median_stages(d_timers),
        },
        "obs": obs_metrics,
    }


def _run_estimate_case(
    name: str,
    dtype: str,
    shape: tuple[int, ...],
    mode: str,
    repeats: int,
) -> dict[str, Any]:
    """Sampled estimation vs. full compression on one bench field.

    Records the accuracy (predicted ratio vs. the true ratio of a real
    compression) and the wall-clock speedup of :func:`repro.tuning.
    estimate` — the numbers the README's estimation section quotes and
    the CI smoke asserts on.
    """
    from repro.core.compressor import compress_array
    from repro.tuning import estimate

    field = synth_field(shape, dtype, seed=len(shape))
    config = _mode_config(mode)
    # warm-up both paths: plan caches, first-touch allocations.
    blob, _ = compress_array(field, config)
    est = estimate(field, config)
    c_times: list[float] = []
    e_times: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        blob, _ = compress_array(field, config)
        c_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        est = estimate(field, config)
        e_times.append(time.perf_counter() - t0)
    actual = field.nbytes / max(1, len(blob))
    c_sec = _median(c_times)
    e_sec = _median(e_times)
    return {
        "name": name,
        "dtype": dtype,
        "ndim": len(shape),
        "shape": list(shape),
        "mode": mode,
        "n_bytes": int(field.nbytes),
        "actual_ratio": actual,
        "predicted_ratio": est.ratio,
        "predicted_ratio_low": est.ratio_low,
        "predicted_ratio_high": est.ratio_high,
        "rel_err": est.ratio / actual - 1.0,
        "sample_fraction": est.sample_fraction,
        "n_blocks": est.n_blocks,
        "compress_seconds": c_sec,
        "estimate_seconds": e_sec,
        "speedup": c_sec / max(e_sec, 1e-12),
    }


def bench_report(
    scale: str = "tiny",
    repeats: int = 3,
    modes: tuple[str, ...] = _DEFAULT_MODES,
    dtypes: tuple[str, ...] = ("float32", "float64"),
    dims: tuple[int, ...] = (1, 2, 3),
    only: tuple[str, ...] | None = None,
    workers: int = 1,
    kinds: tuple[str, ...] = _DEFAULT_KINDS,
) -> dict[str, Any]:
    """Run the sweep and return the report dict (see :data:`SCHEMA`).

    ``kinds`` selects the case families: ``"sweep"`` is the classic
    compress/decompress stage breakdown; ``"estimate"`` adds 3-D
    estimator accuracy/speedup cases under ``estimate_cases``.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    for m in modes:
        if m not in _ALL_MODES:
            raise ValueError(f"unknown mode {m!r}; choose from {_ALL_MODES}")
    for kind in kinds:
        if kind not in _ALL_KINDS:
            raise ValueError(f"unknown kind {kind!r}; choose from {_ALL_KINDS}")
    if not kinds:
        raise ValueError("kinds must name at least one case family")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    cases: list[dict[str, Any]] = []
    if "sweep" in kinds:
        for dtype in dtypes:
            for ndim in dims:
                for mode in modes:
                    name = (
                        f"{ndim}d-{'f32' if dtype == 'float32' else 'f64'}"
                        f"-{mode}"
                    )
                    if only is not None and name not in only:
                        continue
                    shape = SCALES[scale][ndim]
                    cases.append(
                        _run_case(name, dtype, shape, mode, repeats, workers)
                    )
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "git_rev": _git_rev(),
        "machine": _machine_info(),
        "scale": scale,
        "repeats": repeats,
        "calibration_seconds": calibrate(),
        "cases": cases,
    }
    if "estimate" in kinds:
        # The estimator's value shows on the 3-D fields (the paper's
        # target workload); f32 keeps the family small and comparable.
        report["estimate_cases"] = [
            _run_estimate_case(
                f"3d-f32-{mode}-estimate", "float32", SCALES[scale][3],
                mode, repeats,
            )
            for mode in modes
        ]
    validate_report(report)
    return report


_REQUIRED_TOP = (
    "schema",
    "created_unix",
    "git_rev",
    "machine",
    "scale",
    "repeats",
    "calibration_seconds",
    "cases",
)
_REQUIRED_CASE = (
    "name",
    "dtype",
    "ndim",
    "shape",
    "mode",
    "n_bytes",
    "compressed_bytes",
    "compression_factor",
    "compress",
    "decompress",
)
_REQUIRED_SIDE = ("seconds", "mb_per_s", "stages")
_REQUIRED_STAGE = ("calls", "seconds", "bytes", "mb_per_s")
_REQUIRED_ESTIMATE_CASE = (
    "name",
    "dtype",
    "ndim",
    "shape",
    "mode",
    "actual_ratio",
    "predicted_ratio",
    "rel_err",
    "compress_seconds",
    "estimate_seconds",
    "speedup",
)


def validate_report(report: dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``report`` is not a valid bench report."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported bench schema {report.get('schema')!r}; want {SCHEMA!r}"
        )
    for key in _REQUIRED_TOP:
        if key not in report:
            raise ValueError(f"bench report missing required key {key!r}")
    if not isinstance(report["cases"], list):
        raise ValueError("bench report cases must be a list")
    # ``estimate_cases`` is an optional family (reports predating it and
    # estimate-only runs both validate); when present it must be
    # well-formed, and at least one family must be non-empty.
    est_cases = report.get("estimate_cases", [])
    if not isinstance(est_cases, list):
        raise ValueError("bench report estimate_cases must be a list")
    for case in est_cases:
        for key in _REQUIRED_ESTIMATE_CASE:
            if key not in case:
                raise ValueError(
                    f"estimate case {case.get('name', '?')!r} "
                    f"missing key {key!r}"
                )
    if not report["cases"] and not est_cases:
        raise ValueError("bench report has no cases")
    for case in report["cases"]:
        for key in _REQUIRED_CASE:
            if key not in case:
                raise ValueError(
                    f"bench case {case.get('name', '?')!r} missing key {key!r}"
                )
        for side in ("compress", "decompress"):
            for key in _REQUIRED_SIDE:
                if key not in case[side]:
                    raise ValueError(
                        f"case {case['name']!r} {side} missing key {key!r}"
                    )
            for path, rec in case[side]["stages"].items():
                for key in _REQUIRED_STAGE:
                    if key not in rec:
                        raise ValueError(
                            f"case {case['name']!r} stage {path!r} "
                            f"missing key {key!r}"
                        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="micro-benchmark the compressor and write BENCH_micro.json",
    )
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "small"),
        choices=sorted(SCALES),
        help="sweep size (env REPRO_BENCH_SCALE overrides the default)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--modes",
        default=",".join(_DEFAULT_MODES),
        help=f"comma-separated subset of {_ALL_MODES}",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated case names to run (e.g. 3d-f32-rel)",
    )
    parser.add_argument(
        "--cases",
        default=",".join(_DEFAULT_KINDS),
        help=f"comma-separated case families from {_ALL_KINDS}: "
             "'sweep' is the stage-breakdown matrix, 'estimate' the "
             "sampled-estimator accuracy/speedup cases",
    )
    parser.add_argument("--out", default="BENCH_micro.json")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="wavefront pool width; >1 enables the multi-process "
             "hyperplane split on arrays above the size gate",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="record the sweep under a repro.obs Collector and write the "
             "repro-obs/1 run report (adds tracing overhead to the "
             "timed sections; use for profiling, not for baselines)",
    )
    args = parser.parse_args(argv)
    collector = None
    if args.trace:
        from repro.obs import Collector

        collector = Collector()
        collector.__enter__()
    try:
        report = bench_report(
            scale=args.scale,
            repeats=args.repeats,
            modes=tuple(m for m in args.modes.split(",") if m),
            only=tuple(args.only.split(",")) if args.only else None,
            workers=args.workers,
            kinds=tuple(k for k in args.cases.split(",") if k),
        )
    finally:
        if collector is not None:
            collector.__exit__(None, None, None)
    if collector is not None:
        from repro.obs import write_run_report

        write_run_report(collector, args.trace)
        print(f"trace: {len(collector.spans)} spans -> {args.trace}")
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for case in report["cases"]:
        print(
            f"{case['name']:14s} compress {case['compress']['mb_per_s']:8.2f} MB/s"
            f"  decompress {case['decompress']['mb_per_s']:8.2f} MB/s"
            f"  CF {case['compression_factor']:6.2f}"
        )
    for case in report.get("estimate_cases", []):
        print(
            f"{case['name']:20s} actual CF {case['actual_ratio']:7.2f}"
            f"  predicted {case['predicted_ratio']:7.2f}"
            f"  err {case['rel_err']:+7.2%}"
            f"  speedup {case['speedup']:6.1f}x"
        )
    n_cases = len(report["cases"]) + len(report.get("estimate_cases", []))
    print(f"wrote {args.out} ({n_cases} cases, scale {args.scale})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
