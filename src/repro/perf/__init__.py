"""Performance substrate: stage instrumentation, bench runner, CI gate.

* :mod:`repro.perf.timer` — :class:`StageTimer` and the :func:`stage`
  hook the pipeline modules call around their hot sections (near-free
  when no timer is active).
* :mod:`repro.perf.bench` — ``python -m repro.perf.bench`` sweeps
  {dtype x dims x mode} and writes the schema-versioned
  ``BENCH_micro.json`` perf-trajectory point.
* :mod:`repro.perf.gate` — ``python -m repro.perf.gate`` compares a
  fresh run against the committed baseline and fails CI on a >1.5x
  per-stage slowdown.
"""

from repro.perf.timer import StageRecord, StageTimer, active_timer, stage

__all__ = ["StageRecord", "StageTimer", "active_timer", "stage"]
